// Extension bench: the paper's five-strategy comparison applied to the
// PolyBench kernels it did not evaluate — gemm, 2mm, and syrk — on the
// same simulated device. Tests whether the paper's conclusions (ytopt
// competitive and fastest; grid search worst) generalize across kernels.
#include <cstdio>

#include "framework/analysis.h"
#include "framework/figures.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

using namespace tvmbo;

namespace {

void run_kernel(const char* kernel, kernels::Dataset dataset) {
  const autotvm::Task task = kernels::make_task(kernel, dataset);
  runtime::SwingSimDevice device(2023);
  framework::SessionOptions options;
  options.max_evaluations = 100;
  options.xgb_paper_eval_cap = 56;
  framework::AutotuningSession session(&task, &device, options);
  const auto results = session.run_all();
  std::printf("%s",
              framework::render_minimum_summary(
                  results,
                  std::string(kernel) + " / " +
                      kernels::dataset_name(dataset) + " (" +
                      std::to_string(task.config.space().cardinality()) +
                      " configs)",
                  0.0)
                  .c_str());
  std::printf("%s\n",
              framework::render_table(framework::summary_table(results))
                  .c_str());
}

}  // namespace

int main() {
  std::printf("Extension: five-strategy comparison on kernels outside the "
              "paper's evaluation\n\n");
  run_kernel("gemm", kernels::Dataset::kLarge);
  run_kernel("syrk", kernels::Dataset::kLarge);
  run_kernel("2mm", kernels::Dataset::kLarge);
  run_kernel("atax", kernels::Dataset::kLarge);
  run_kernel("mvt", kernels::Dataset::kLarge);
  return 0;
}
