// Figures 10 & 11: autotuning Cholesky with the extralarge dataset
// (N = 4000). Paper result: ytopt takes the smallest process time and
// identifies tensor size 80x32 with the smallest runtime, 13.99 s.
#include "figure_common.h"

int main(int argc, char** argv) {
  tvmbo::bench::FigureSpec spec;
  spec.kernel = "cholesky";
  spec.dataset = tvmbo::kernels::Dataset::kExtraLarge;
  spec.process_figure = "Fig10";
  spec.minimum_figure = "Fig11";
  spec.paper_best_runtime_s = 13.99;
  spec.paper_best_config = "80x32 (ytopt)";
  tvmbo::bench::parse_figure_args(argc, argv, &spec);
  return tvmbo::bench::run_figure_experiment(spec);
}
