// Figures 4 & 5: autotuning LU with the large dataset (N = 2000).
// Paper result: ytopt finishes 100 evaluations fastest and identifies
// tensor size 400x50 with the smallest runtime, 1.659 s.
#include "figure_common.h"

int main(int argc, char** argv) {
  tvmbo::bench::FigureSpec spec;
  spec.kernel = "lu";
  spec.dataset = tvmbo::kernels::Dataset::kLarge;
  spec.process_figure = "Fig4";
  spec.minimum_figure = "Fig5";
  spec.paper_best_runtime_s = 1.659;
  spec.paper_best_config = "400x50 (ytopt)";
  tvmbo::bench::parse_figure_args(argc, argv, &spec);
  return tvmbo::bench::run_figure_experiment(spec);
}
