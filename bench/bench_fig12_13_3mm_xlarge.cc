// Figures 12 & 13: autotuning 3mm with the extralarge dataset
// (N,L,M,O,P = 1600,1800,2000,2200,2400; 228,614,400 configurations).
// Paper result: AutoTVM-XGB's best is 30.99 s at (1000x32, 600x2, 15x40);
// ytopt reaches 31.1 s at (1x5, 120x25, 60x100) — wildly different
// configurations within 0.4% in runtime (the broad plateau).
#include "figure_common.h"

int main(int argc, char** argv) {
  tvmbo::bench::FigureSpec spec;
  spec.kernel = "3mm";
  spec.dataset = tvmbo::kernels::Dataset::kExtraLarge;
  spec.process_figure = "Fig12";
  spec.minimum_figure = "Fig13";
  spec.paper_best_runtime_s = 30.99;
  spec.paper_best_config =
      "(1000x32, 600x2, 15x40) (XGB, 30.99 s) / (1x5, 120x25, 60x100) "
      "(ytopt, 31.1 s)";
  tvmbo::bench::parse_figure_args(argc, argv, &spec);
  return tvmbo::bench::run_figure_experiment(spec);
}
