// Surface characterization: exhaustive (or sampled) statistics of every
// configuration->runtime surface used in the evaluation. This is the
// evidence behind two claims in EXPERIMENTS.md: the calibration contract
// (surface minimum == paper best) and the plateau structure (the fraction
// of the space within 5%/10% of the minimum, which determines how hard
// each search problem is).
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "framework/figures.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

using namespace tvmbo;

namespace {

void characterize(const char* kernel, kernels::Dataset dataset,
                  std::size_t samples) {
  const auto workload = kernels::make_workload(kernel, dataset);
  const auto space = kernels::build_space(kernel, workload.dims);
  runtime::SwingSimDevice device;
  Rng rng(99);

  std::vector<double> runtimes;
  std::vector<std::int64_t> best_tiles;
  double best = 1e300;
  auto consider = [&](const cs::Configuration& config) {
    const auto tiles = space.values_int(config);
    const double t = device.surface_runtime(workload, tiles);
    runtimes.push_back(t);
    if (t < best) {
      best = t;
      best_tiles = tiles;
    }
  };
  const bool exhaustive = space.cardinality() <= 200000;
  if (exhaustive) {
    for (std::uint64_t flat = 0; flat < space.cardinality(); ++flat) {
      consider(space.from_flat_index(flat));
    }
  } else {
    for (std::size_t i = 0; i < samples; ++i) consider(space.sample(rng));
  }

  std::size_t within5 = 0, within10 = 0, within2x = 0;
  for (double t : runtimes) {
    if (t <= best * 1.05) ++within5;
    if (t <= best * 1.10) ++within10;
    if (t <= best * 2.00) ++within2x;
  }
  const double n = static_cast<double>(runtimes.size());
  std::printf("%-9s %-11s | %s %8zu pts | min %9.3f @ %-22s | med %9.3f | "
              "p95 %10.3f | <=1.05x %5.2f%% | <=1.1x %5.2f%% | <=2x %5.1f%%\n",
              kernel, kernels::dataset_name(dataset),
              exhaustive ? "exhaustive" : "sampled   ", runtimes.size(),
              best, framework::tiles_to_string(best_tiles).c_str(),
              median(runtimes), quantile(runtimes, 0.95),
              100.0 * static_cast<double>(within5) / n,
              100.0 * static_cast<double>(within10) / n,
              100.0 * static_cast<double>(within2x) / n);
}

}  // namespace

int main() {
  std::printf("Configuration->runtime surface characterization "
              "(SwingSimDevice)\n\n");
  characterize("lu", kernels::Dataset::kLarge, 0);
  characterize("lu", kernels::Dataset::kExtraLarge, 0);
  characterize("cholesky", kernels::Dataset::kLarge, 0);
  characterize("cholesky", kernels::Dataset::kExtraLarge, 0);
  characterize("3mm", kernels::Dataset::kLarge, 100000);
  characterize("3mm", kernels::Dataset::kExtraLarge, 100000);
  characterize("gemm", kernels::Dataset::kLarge, 0);
  characterize("syrk", kernels::Dataset::kLarge, 0);
  characterize("2mm", kernels::Dataset::kLarge, 100000);
  characterize("atax", kernels::Dataset::kLarge, 0);
  characterize("bicg", kernels::Dataset::kLarge, 0);
  characterize("mvt", kernels::Dataset::kLarge, 0);
  return 0;
}
