// Async streaming vs batch/wave measurement throughput.
//
// Replays the same heterogeneous-latency trial set (a long-tailed mix
// modeled on real tuning runs, where a handful of pathological tilings
// run 10-50x longer than the rest) through the MeasureRunner's batch
// path (waves of `slots`, each wave barriered on its slowest member) and
// through the streaming submit/wait_any path (every slot refilled the
// moment it frees). Prints wall-clock per mode and the speedup.
//
//   bench_async_throughput [--trials N] [--slots N] [--straggler-ms MS]
//                          [--fast-ms MS] [--straggler-every N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "runtime/cpu_device.h"
#include "runtime/measure_runner.h"

using namespace tvmbo;

namespace {

struct Args {
  std::size_t trials = 32;
  std::size_t slots = 4;
  int straggler_ms = 80;
  int fast_ms = 4;
  std::size_t straggler_every = 4;  ///< one straggler per this many trials
};

runtime::MeasureInput sleep_input(int ms) {
  runtime::MeasureInput input;
  input.workload.kernel = "sleep";
  input.workload.size_name = std::to_string(ms) + "ms";
  input.run = [ms] {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--trials") == 0) {
      args.trials = std::strtoul(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--slots") == 0) {
      args.slots = std::strtoul(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--straggler-ms") == 0) {
      args.straggler_ms = std::atoi(value());
    } else if (std::strcmp(argv[i], "--fast-ms") == 0) {
      args.fast_ms = std::atoi(value());
    } else if (std::strcmp(argv[i], "--straggler-every") == 0) {
      args.straggler_every = std::strtoul(value(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trials N] [--slots N] [--straggler-ms MS] "
                   "[--fast-ms MS] [--straggler-every N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<runtime::MeasureInput> inputs;
  for (std::size_t i = 0; i < args.trials; ++i) {
    const bool straggler =
        args.straggler_every > 0 && i % args.straggler_every == 0;
    inputs.push_back(
        sleep_input(straggler ? args.straggler_ms : args.fast_ms));
  }

  runtime::CpuDevice device;
  runtime::MeasureRunnerOptions options;
  options.parallel = true;
  ThreadPool pool(args.slots);
  runtime::MeasureRunner runner(&device, options, &pool);
  runtime::MeasureOption option;
  option.repeat = 1;

  std::printf("async throughput: %zu trials, %zu slots, %d ms stragglers "
              "(1 per %zu), %d ms fast\n",
              args.trials, runner.async_slots(), args.straggler_ms,
              args.straggler_every, args.fast_ms);

  const Stopwatch batch_wall;
  runner.measure_batch(inputs, option);
  const double batch_s = batch_wall.elapsed_seconds();

  const Stopwatch stream_wall;
  for (const runtime::MeasureInput& input : inputs) {
    runner.submit(input, option);
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) runner.wait_any();
  const double stream_s = stream_wall.elapsed_seconds();

  std::printf("  batch/wave : %.3f s\n", batch_s);
  std::printf("  streaming  : %.3f s\n", stream_s);
  std::printf("  speedup    : %.2fx\n",
              stream_s > 0.0 ? batch_s / stream_s : 0.0);
  return 0;
}
