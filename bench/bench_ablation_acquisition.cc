// Ablation: LCB exploration weight (kappa) in the ytopt Bayesian
// optimizer. kappa = 0 is pure exploitation of the surrogate mean; large
// kappa approaches pure uncertainty-chasing. The paper uses ytopt's
// default balance; this bench shows where that sits on LU-large and
// Cholesky-xlarge.
#include <cstdio>

#include "framework/figures.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

using namespace tvmbo;

namespace {

void sweep(const char* kernel, kernels::Dataset dataset) {
  const autotvm::Task task = kernels::make_task(kernel, dataset);
  std::printf("kernel %s/%s, 100 evaluations, 3 seeds per kappa\n", kernel,
              kernels::dataset_name(dataset));
  std::printf("%8s %14s %14s %14s\n", "kappa", "best_mean_s", "best_min_s",
              "process_s");
  for (double kappa : {0.0, 0.5, 1.0, 1.96, 4.0, 16.0}) {
    double best_sum = 0.0;
    double best_min = 1e300;
    double time_sum = 0.0;
    const int seeds = 3;
    for (int seed = 0; seed < seeds; ++seed) {
      runtime::SwingSimDevice device(static_cast<std::uint64_t>(seed));
      framework::SessionOptions options;
      options.max_evaluations = 100;
      options.seed = 1000 + static_cast<std::uint64_t>(seed);
      options.bo.kappa = kappa;
      framework::AutotuningSession session(&task, &device, options);
      const auto result = session.run(framework::StrategyKind::kYtopt);
      best_sum += result.best->runtime_s;
      best_min = std::min(best_min, result.best->runtime_s);
      time_sum += result.total_time_s;
    }
    std::printf("%8.2f %14.4f %14.4f %14.1f\n", kappa, best_sum / seeds,
                best_min, time_sum / seeds);
  }
}

}  // namespace

int main() {
  std::printf("Ablation: LCB acquisition kappa (ytopt surrogate search)\n\n");
  sweep("lu", kernels::Dataset::kLarge);
  std::printf("\n");
  sweep("cholesky", kernels::Dataset::kExtraLarge);
  return 0;
}
