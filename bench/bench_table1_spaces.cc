// Table 1: parameter-space size for each application. Recomputes every
// space from the PolyBench extents (divisor sets) and checks it against
// the paper's numbers.
#include <cstdio>

#include "configspace/divisors.h"
#include "kernels/polybench.h"

using namespace tvmbo;

int main() {
  struct Row {
    const char* kernel;
    kernels::Dataset dataset;
    unsigned long long paper;
  };
  const Row rows[] = {
      {"3mm", kernels::Dataset::kLarge, 74649600ull},
      {"3mm", kernels::Dataset::kExtraLarge, 228614400ull},
      {"cholesky", kernels::Dataset::kLarge, 400ull},
      {"cholesky", kernels::Dataset::kExtraLarge, 576ull},
      {"lu", kernels::Dataset::kLarge, 400ull},
      {"lu", kernels::Dataset::kExtraLarge, 576ull},
  };

  std::printf("Table 1: parameter space for each application\n");
  std::printf("%-10s %-12s %16s %16s %s\n", "Kernels", "Problem Size",
              "Paper", "Ours", "Match");
  bool all_match = true;
  for (const Row& row : rows) {
    const auto dims = kernels::polybench_dims(row.kernel, row.dataset);
    const auto space = kernels::build_space(row.kernel, dims);
    const unsigned long long ours = space.cardinality();
    const bool match = ours == row.paper;
    all_match = all_match && match;
    std::printf("%-10s %-12s %16llu %16llu %s\n", row.kernel,
                kernels::dataset_name(row.dataset), row.paper, ours,
                match ? "yes" : "NO");
  }

  std::printf("\nPer-parameter candidate counts (divisor sets):\n");
  for (const Row& row : rows) {
    const auto dims = kernels::polybench_dims(row.kernel, row.dataset);
    const auto space = kernels::build_space(row.kernel, dims);
    std::printf("  %-10s %-12s:", row.kernel,
                kernels::dataset_name(row.dataset));
    for (std::size_t p = 0; p < space.num_params(); ++p) {
      std::printf(" %s=%llu", space.param(p).name().c_str(),
                  static_cast<unsigned long long>(
                      space.param(p).cardinality()));
    }
    std::printf("\n");
  }
  return all_match ? 0 : 1;
}
