// Instant-config lookup latency smoke bench (PR 9 acceptance):
// populates a ConfigLookup cache the way a serve daemon would — from a
// perf database of measured trials — then times cache-hit queries and
// model-fallback queries. The acceptance bar is p50 cache-hit service
// latency under 1 ms (the observed figure is microseconds; the bar
// leaves three orders of magnitude of slack for loaded CI machines).
//
//   bench_transfer_lookup [queries]   (default 2000)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"
#include "transfer/cost_model.h"
#include "transfer/lookup.h"

using namespace tvmbo;

namespace {

/// Fills `db` with `count` swing-surface measurements of one kernel.
void sample_kernel(runtime::PerfDatabase& db,
                   const runtime::SwingSimDevice& sim,
                   const std::string& kernel, std::size_t count,
                   std::uint64_t seed) {
  const runtime::Workload workload =
      kernels::make_workload(kernel, kernels::Dataset::kMini);
  const cs::ConfigurationSpace space =
      kernels::build_space(kernel, workload.dims);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const std::vector<std::int64_t> tiles =
        space.values_int(space.sample(rng));
    runtime::TrialRecord record;
    record.eval_index = static_cast<int>(i);
    record.strategy = "bench";
    record.workload_id = workload.id();
    record.tiles = tiles;
    record.runtime_s = sim.surface_runtime(workload, tiles);
    record.valid = true;
    record.backend = "sim";
    db.add(record);
  }
}

double percentile(std::vector<double>& sorted_us, double p) {
  std::sort(sorted_us.begin(), sorted_us.end());
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[index];
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t queries =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 2000;

  const runtime::SwingSimDevice sim(2023);
  runtime::PerfDatabase db;
  sample_kernel(db, sim, "lu", 64, 11);
  sample_kernel(db, sim, "cholesky", 64, 22);
  sample_kernel(db, sim, "gemm", 64, 33);

  transfer::ConfigLookup lookup;
  lookup.load_database(db);

  transfer::CostModel model;
  model.add_database(db);
  model.fit();
  lookup.set_model(std::make_shared<transfer::CostModel>(std::move(model)));

  const char* kernels_cycle[] = {"lu", "cholesky", "gemm"};
  // Warm-up (first queries touch cold map pages).
  for (int i = 0; i < 16; ++i) {
    (void)lookup.lookup(kernels_cycle[i % 3], "mini", 1, 1);
  }

  std::vector<double> cache_us;
  cache_us.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    const Stopwatch watch;
    const transfer::LookupAnswer answer =
        lookup.lookup(kernels_cycle[i % 3], "mini", 1, 1);
    cache_us.push_back(watch.elapsed_seconds() * 1e6);
    if (answer.source != "cache") {
      std::fprintf(stderr, "FAIL: expected a cache answer, got '%s'\n",
                   answer.source.c_str());
      return 1;
    }
  }

  // Model fallback: 2mm was never measured, so every query re-ranks a
  // candidate pool through the cost model.
  std::vector<double> model_us;
  const std::size_t model_queries = std::min<std::size_t>(queries, 50);
  for (std::size_t i = 0; i < model_queries; ++i) {
    const Stopwatch watch;
    const transfer::LookupAnswer answer = lookup.lookup("2mm", "mini", 1, 3);
    model_us.push_back(watch.elapsed_seconds() * 1e6);
    if (answer.source != "model") {
      std::fprintf(stderr, "FAIL: expected a model answer, got '%s'\n",
                   answer.source.c_str());
      return 1;
    }
  }

  const double cache_p50 = percentile(cache_us, 0.50);
  const double cache_p95 = percentile(cache_us, 0.95);
  const double model_p50 = percentile(model_us, 0.50);
  std::printf("cache lookups: %zu queries, p50 %.2f us, p95 %.2f us\n",
              queries, cache_p50, cache_p95);
  std::printf("model lookups: %zu queries, p50 %.2f us\n", model_queries,
              model_p50);

  if (cache_p50 >= 1000.0) {
    std::fprintf(stderr,
                 "FAIL: cache-hit p50 %.2f us exceeds the 1 ms bar\n",
                 cache_p50);
    return 1;
  }
  std::printf("PASS: cache-hit p50 under 1 ms\n");
  return 0;
}
