// Micro-benchmarks (google-benchmark) for the framework's moving parts:
// surrogate fit/predict (the per-iteration BO overhead), TE lowering and
// interpretation, configuration-space operations, the simulated device,
// and the tiled native kernels.
#include <benchmark/benchmark.h>

#include "codegen/jit_program.h"
#include "configspace/divisors.h"
#include "kernels/native.h"
#include "kernels/polybench.h"
#include "kernels/reference.h"
#include "kernels/te_kernels.h"
#include "runtime/swing_sim.h"
#include "surrogate/gbt.h"
#include "surrogate/random_forest.h"
#include "te/compile.h"
#include "te/interp.h"
#include "ytopt/bayes_opt.h"

using namespace tvmbo;

namespace {

cs::ConfigurationSpace lu_space() {
  cs::ConfigurationSpace space;
  space.add(cs::tile_factor_param("P0", 2000));
  space.add(cs::tile_factor_param("P1", 2000));
  return space;
}

surrogate::Dataset make_dataset(std::size_t n) {
  Rng rng(1);
  surrogate::Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(), x1 = rng.uniform();
    data.add({x0, x1, x0 * x1, x0 - x1},
             (x0 - 0.4) * (x0 - 0.4) + 0.2 * x1);
  }
  return data;
}

void BM_RandomForestFit(benchmark::State& state) {
  const auto data = make_dataset(static_cast<std::size_t>(state.range(0)));
  surrogate::ForestOptions options;
  options.num_trees = 100;
  for (auto _ : state) {
    Rng rng(7);
    surrogate::RandomForest forest(options);
    forest.fit(data, rng);
    benchmark::DoNotOptimize(forest);
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(20)->Arg(50)->Arg(100);

void BM_RandomForestPredict(benchmark::State& state) {
  const auto data = make_dataset(100);
  surrogate::RandomForest forest;
  Rng rng(7);
  forest.fit(data, rng);
  const std::vector<double> x{0.3, 0.6, 0.18, -0.3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict_with_std(x));
  }
}
BENCHMARK(BM_RandomForestPredict);

void BM_GbtFit(benchmark::State& state) {
  const auto data = make_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Rng rng(7);
    surrogate::GradientBoostedTrees gbt;
    gbt.fit(data, rng);
    benchmark::DoNotOptimize(gbt);
  }
}
BENCHMARK(BM_GbtFit)->Arg(50)->Arg(100);

void BM_BoAskTell(benchmark::State& state) {
  // Full per-iteration BO cost at a 60-observation history.
  const auto space = lu_space();
  for (auto _ : state) {
    state.PauseTiming();
    ytopt::BayesianOptimizer bo(&space, 3);
    Rng rng(4);
    for (int i = 0; i < 60; ++i) {
      const auto config = bo.ask();
      bo.tell(config, 1.0 + rng.uniform());
    }
    state.ResumeTiming();
    const auto config = bo.ask();
    bo.tell(config, 1.5);
  }
}
BENCHMARK(BM_BoAskTell);

void BM_ConfigSpaceSample(benchmark::State& state) {
  const auto space = lu_space();
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.sample(rng));
  }
}
BENCHMARK(BM_ConfigSpaceSample);

void BM_ConfigSpaceFlatIndex(benchmark::State& state) {
  const auto space = lu_space();
  std::uint64_t flat = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.from_flat_index(flat));
    flat = (flat + 1) % space.cardinality();
  }
}
BENCHMARK(BM_ConfigSpaceFlatIndex);

void BM_SwingSimSurface(benchmark::State& state) {
  runtime::SwingSimDevice device;
  const auto workload = kernels::make_workload(
      "lu", kernels::Dataset::kLarge);
  const std::int64_t tiles[2] = {400, 50};
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.surface_runtime(workload, tiles));
  }
}
BENCHMARK(BM_SwingSimSurface);

void BM_TeLower3mm(benchmark::State& state) {
  const auto t = kernels::make_3mm(16, 18, 20, 22, 24);
  const std::int64_t tiles[6] = {4, 5, 4, 2, 4, 6};
  for (auto _ : state) {
    te::Schedule sched = kernels::schedule_3mm(t, tiles);
    benchmark::DoNotOptimize(te::lower(sched));
  }
}
BENCHMARK(BM_TeLower3mm);

void BM_TeInterpMatmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto t = kernels::make_gemm(n, n, n);
  te::Schedule sched = kernels::schedule_gemm(t, 4, 4);
  const te::Stmt program = te::lower(sched);
  runtime::NDArray a({n, n}), b({n, n}), c({n, n});
  kernels::init_gemm(a, b);
  for (auto _ : state) {
    te::Interpreter interp;
    interp.bind(t.A, &a);
    interp.bind(t.B, &b);
    interp.bind(t.C, &c);
    interp.run(program);
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TeInterpMatmul)->Arg(16)->Arg(32);

void BM_TeCompiledMatmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto t = kernels::make_gemm(n, n, n);
  te::Schedule sched = kernels::schedule_gemm(t, 4, 4);
  const te::Stmt program = te::lower(sched);
  runtime::NDArray a({n, n}), b({n, n}), c({n, n});
  kernels::init_gemm(a, b);
  const te::CompiledProgram compiled = te::CompiledProgram::compile(
      program, {{t.A, &a}, {t.B, &b}, {t.C, &c}});
  for (auto _ : state) {
    compiled.run();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TeCompiledMatmul)->Arg(16)->Arg(32);

void BM_TeJitMatmul(benchmark::State& state) {
  if (!codegen::JitProgram::toolchain_available()) {
    state.SkipWithError("no C compiler available for the jit backend");
    return;
  }
  const std::int64_t n = state.range(0);
  const auto t = kernels::make_gemm(n, n, n);
  te::Schedule sched = kernels::schedule_gemm(t, 4, 4);
  const te::Stmt program = te::lower(sched);
  runtime::NDArray a({n, n}), b({n, n}), c({n, n});
  kernels::init_gemm(a, b);
  const codegen::JitProgram jit = codegen::JitProgram::compile(
      program, {{t.A, &a}, {t.B, &b}, {t.C, &c}});
  for (auto _ : state) {
    jit.run();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TeJitMatmul)->Arg(16)->Arg(32);

void BM_NativeMatmulTiled(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  runtime::NDArray a({n, n}), b({n, n}), c({n, n});
  kernels::init_gemm(a, b);
  for (auto _ : state) {
    kernels::matmul_tiled(a, b, c, 32, 32);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_NativeMatmulTiled)->Arg(64)->Arg(128);

void BM_NativeLuTiled(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  runtime::NDArray original({n, n});
  kernels::init_lu(original);
  for (auto _ : state) {
    runtime::NDArray work = original;
    kernels::lu_tiled(work, 16, 32);
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_NativeLuTiled)->Arg(64)->Arg(128);

void BM_NativeCholeskyTiled(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  runtime::NDArray original({n, n});
  kernels::init_spd(original);
  for (auto _ : state) {
    runtime::NDArray work = original;
    kernels::cholesky_tiled(work, 16, 32);
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_NativeCholeskyTiled)->Arg(64)->Arg(128);

// --- array packing: strided vs packed column traversal -----------------------

// What Stage::cache_write buys: walking a column of a row-major matrix
// strides n doubles per step; the packed scratch makes the identical
// traversal stride-1. The pack copy itself is amortized across the tile
// loops that reuse the window, so the benchmarks compare steady-state
// traversal only. CI runs the pair as an advisory smoke: the stride-1
// walk should be >= 1.3x the strided one on items/s (logged, not gating —
// cache geometry varies across runners).
void BM_ColumnTraversalStrided(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  runtime::NDArray a({n, n});
  kernels::init_lu(a);
  const double* av = a.f64().data();
  double sink = 0.0;
  for (auto _ : state) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < n; ++i) acc += av[i * n + j];
      sink += acc;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ColumnTraversalStrided)->Arg(512)->Arg(1024);

void BM_ColumnTraversalPacked(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  runtime::NDArray a({n, n});
  kernels::init_lu(a);
  // The packed layout: column j contiguous (what pack_reads's permuted
  // scratch holds). Packed once outside the timing loop — steady state.
  runtime::NDArray packed({n, n});
  {
    const double* av = a.f64().data();
    double* pv = packed.f64().data();
    for (std::int64_t j = 0; j < n; ++j) {
      for (std::int64_t i = 0; i < n; ++i) pv[j * n + i] = av[i * n + j];
    }
  }
  const double* pv = packed.f64().data();
  double sink = 0.0;
  for (auto _ : state) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < n; ++i) acc += pv[j * n + i];
      sink += acc;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ColumnTraversalPacked)->Arg(512)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
