// Figures 6 & 7: autotuning LU with the extralarge dataset (N = 4000).
// Paper result: ytopt takes the smallest autotuning process time and
// identifies tensor size 40x32 with the smallest runtime, 13.77 s.
#include "figure_common.h"

int main(int argc, char** argv) {
  tvmbo::bench::FigureSpec spec;
  spec.kernel = "lu";
  spec.dataset = tvmbo::kernels::Dataset::kExtraLarge;
  spec.process_figure = "Fig6";
  spec.minimum_figure = "Fig7";
  spec.paper_best_runtime_s = 13.77;
  spec.paper_best_config = "40x32 (ytopt)";
  tvmbo::bench::parse_figure_args(argc, argv, &spec);
  return tvmbo::bench::run_figure_experiment(spec);
}
