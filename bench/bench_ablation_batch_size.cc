// Ablation: AutoTVM measurement batch size. Larger batches amortize the
// parallel builder better (smaller process time) but give model-guided
// tuners staler feedback (XGB retrains less often per evaluation).
#include <cstdio>

#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

using namespace tvmbo;

int main() {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kExtraLarge);
  const int seeds = 3;

  std::printf("Ablation: AutoTVM batch size (LU extralarge, 100 evals, "
              "%d seeds)\n\n",
              seeds);
  for (auto kind : {framework::StrategyKind::kAutotvmXgb,
                    framework::StrategyKind::kAutotvmGa,
                    framework::StrategyKind::kAutotvmRandom}) {
    std::printf("strategy %s\n", framework::strategy_name(kind));
    std::printf("%10s %14s %14s\n", "batch", "best_mean_s",
                "process_mean_s");
    for (std::size_t batch : {1u, 4u, 8u, 16u, 32u}) {
      double best_sum = 0.0, time_sum = 0.0;
      for (int seed = 0; seed < seeds; ++seed) {
        runtime::SwingSimDevice device(static_cast<std::uint64_t>(seed));
        framework::SessionOptions options;
        options.max_evaluations = 100;
        options.batch_size = batch;
        options.seed = 42 + static_cast<std::uint64_t>(seed);
        framework::AutotuningSession session(&task, &device, options);
        const auto result = session.run(kind);
        best_sum += result.best->runtime_s;
        time_sum += result.total_time_s;
      }
      std::printf("%10zu %14.4f %14.1f\n", static_cast<std::size_t>(batch),
                  best_sum / seeds, time_sum / seeds);
    }
    std::printf("\n");
  }
  return 0;
}
