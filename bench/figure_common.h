// Shared driver for the per-figure experiment binaries.
//
// Each figure bench runs the paper's experiment — 100 evaluations per
// strategy, 5 strategies, XGB capped at 56 as observed in the paper — on
// the simulated Swing device, prints the minimum-runtime summary
// (the paper's "Minimum runtimes" bar charts) and the head of the
// process-over-time series (the scatter plots), and writes the full data
// series as CSV files under bench_out/.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "codegen/artifact_cache.h"
#include "distd/proc_device.h"
#include "framework/analysis.h"
#include "framework/figures.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/cpu_device.h"
#include "runtime/exec_backend.h"
#include "runtime/swing_sim.h"
#include "runtime/trace_log.h"

namespace tvmbo::bench {

struct FigureSpec {
  std::string kernel;
  kernels::Dataset dataset;
  std::string process_figure;  ///< e.g. "Fig4"
  std::string minimum_figure;  ///< e.g. "Fig5"
  double paper_best_runtime_s = 0.0;
  std::string paper_best_config;   ///< the paper's reported tensor size
  std::size_t evaluations = 100;   ///< per strategy, as in §5
  std::uint64_t seed = 2023;
  /// "sim" reproduces the paper's figures deterministically (default);
  /// "cpu" executes the kernel for real through `backend`.
  std::string device = "sim";
  runtime::ExecBackend backend = runtime::ExecBackend::kNative;
  codegen::JitOptions jit_options;  ///< cache dir etc. for kJit
  /// Thread-count cap for the parallel-schedule knobs on cpu TE-program
  /// backends: 1 (default) keeps the space serial, 0 = all cores, N caps
  /// the candidates at N.
  std::int64_t threads = 1;
  /// Widen the cpu TE-program space with the vectorize (vec_axis),
  /// unroll, and pack knobs (see kernels::ScheduleKnobs).
  bool vectorize = false;
  bool unroll = false;
  bool pack = false;
  /// Measurement runner for --device cpu: "local" measures in-process
  /// (default), "proc" in out-of-process workers (src/distd/) with crash
  /// isolation and hard timeouts.
  std::string runner = "local";
  /// Worker-fleet size for runner == "proc".
  std::size_t workers = 2;
};

/// Optional per-bench overrides so every figure binary can rerun its
/// experiment on real hardware:
///   --device sim|cpu   --backend native|interp|closure|jit
///   --size S           --evals N   --seed N   --jit-cache DIR
///   --threads N        (parallel-schedule knobs; see FigureSpec::threads)
///   --vectorize --unroll --pack  (widen the cpu space with the
///                      vec_axis/unroll/pack schedule knobs)
///   --runner local|proc  --workers N  (out-of-process measurement)
/// Exits with usage on unknown flags.
inline void parse_figure_args(int argc, char** argv, FigureSpec* spec) {
  auto usage = [&]() {
    std::fprintf(stderr,
                 "usage: %s [--device sim|cpu] "
                 "[--backend native|interp|closure|jit] [--size S] "
                 "[--evals N] [--seed N] [--jit-cache DIR] [--threads N] "
                 "[--vectorize] [--unroll] [--pack] "
                 "[--runner local|proc] [--workers N]\n",
                 argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--vectorize") {
      spec->vectorize = true;
      continue;
    }
    if (flag == "--unroll") {
      spec->unroll = true;
      continue;
    }
    if (flag == "--pack") {
      spec->pack = true;
      continue;
    }
    if (i + 1 >= argc) usage();
    const std::string value = argv[++i];
    if (flag == "--device") {
      if (value != "sim" && value != "cpu") usage();
      spec->device = value;
    } else if (flag == "--backend") {
      const auto backend = runtime::exec_backend_from_name(value);
      if (!backend.has_value()) usage();
      spec->backend = *backend;
    } else if (flag == "--size") {
      spec->dataset = kernels::dataset_from_name(value);
    } else if (flag == "--evals") {
      spec->evaluations = std::stoul(value);
    } else if (flag == "--seed") {
      spec->seed = std::stoull(value);
    } else if (flag == "--jit-cache") {
      spec->jit_options.cache_dir = value;
    } else if (flag == "--threads") {
      spec->threads = std::stoll(value);
      if (spec->threads < 0) usage();
    } else if (flag == "--runner") {
      if (value != "local" && value != "proc") usage();
      spec->runner = value;
    } else if (flag == "--workers") {
      spec->workers = std::stoul(value);
      if (spec->workers == 0) usage();
    } else {
      usage();
    }
  }
  if (spec->runner == "proc" && spec->device != "cpu") {
    std::fprintf(stderr,
                 "error: --runner proc requires --device cpu\n");
    std::exit(2);
  }
}

inline int run_figure_experiment(const FigureSpec& spec) {
  const bool cpu = spec.device == "cpu";
  kernels::ScheduleKnobs schedule_knobs;
  schedule_knobs.enabled = cpu && spec.threads != 1;
  schedule_knobs.max_threads = spec.threads;
  schedule_knobs.vectorize = cpu && spec.vectorize;
  schedule_knobs.unroll = cpu && spec.unroll;
  schedule_knobs.pack = cpu && spec.pack;
  const autotvm::Task task =
      cpu ? kernels::make_task(spec.kernel, spec.dataset, spec.backend,
                               spec.jit_options, schedule_knobs)
          : kernels::make_task(spec.kernel, spec.dataset);
  const std::string name =
      spec.kernel + "-" + kernels::dataset_name(spec.dataset);

  // Opt-in per-trial provenance: TVMBO_TRACE_DIR=<dir> appends a
  // JSON-lines event log per figure without touching the CSV outputs.
  // Declared before the devices so a ProcDevice's worker pool can still
  // emit its shutdown lifecycle events through it.
  std::unique_ptr<runtime::TraceLog> trace;
  if (const char* trace_dir = std::getenv("TVMBO_TRACE_DIR")) {
    std::filesystem::create_directories(trace_dir);
    trace = std::make_unique<runtime::TraceLog>(
        std::string(trace_dir) + "/" + name + "_trace.jsonl");
  }

  runtime::SwingSimDevice sim_device(spec.seed);
  runtime::CpuDevice cpu_device;
  std::unique_ptr<distd::ProcDevice> proc_device;
  if (cpu && spec.runner == "proc") {
    distd::ProcDeviceOptions proc_options;
    proc_options.backend = spec.backend;
    proc_options.jit = spec.jit_options;
    proc_options.seed = spec.seed;
    proc_options.pool.num_workers = spec.workers;
    proc_options.pool.trace = trace.get();
    proc_device = std::make_unique<distd::ProcDevice>(std::move(proc_options));
  }
  runtime::Device& device =
      proc_device != nullptr
          ? static_cast<runtime::Device&>(*proc_device)
          : cpu ? static_cast<runtime::Device&>(cpu_device) : sim_device;

  framework::SessionOptions options;
  options.max_evaluations = spec.evaluations;
  options.xgb_paper_eval_cap = 56;  // reproduce the paper's XGB artifact
  options.seed = spec.seed;
  // Figures require bit-identical reproduction: keep the measurement
  // engine on its serial fallback (the simulated device is serialized by
  // the runner even in parallel mode, but be explicit about the contract).
  options.measure.parallel = false;
  if (trace != nullptr) options.measure.trace = trace.get();

  framework::AutotuningSession session(&task, &device, options);
  const std::vector<framework::SessionResult> results = session.run_all();
  std::printf("=================================================="
              "==============\n");
  std::printf("%s & %s: %s, %s dataset (workload %s)\n",
              spec.process_figure.c_str(), spec.minimum_figure.c_str(),
              spec.kernel.c_str(), kernels::dataset_name(spec.dataset),
              task.workload.id().c_str());
  std::printf("space size: %llu configurations | %zu evaluations per "
              "strategy\n\n",
              static_cast<unsigned long long>(
                  task.config.space().cardinality()),
              spec.evaluations);

  // Minimum-runtime figure (bar chart data).
  std::printf("%s",
              framework::render_minimum_summary(
                  results, spec.minimum_figure + " minimum runtimes",
                  spec.paper_best_runtime_s)
                  .c_str());
  if (!spec.paper_best_config.empty()) {
    std::printf("paper best config: %s\n", spec.paper_best_config.c_str());
  }

  // Process-over-time figure: ASCII scatter on the console (the paper's
  // per-evaluation runtime-vs-process-time plot), full series to CSV.
  std::printf("\n%s process over time:\n%s",
              spec.process_figure.c_str(),
              framework::ascii_scatter(results).c_str());

  // Convergence analytics (beyond the paper's figures).
  std::printf("\nconvergence summary:\n%s",
              framework::render_table(framework::summary_table(results))
                  .c_str());

  // Process-over-time figure (scatter data): first rows on the console,
  // full series to CSV.
  const CsvTable process = framework::process_over_time_table(results);
  std::printf("\n%s process over time (first 3 evaluations per strategy; "
              "full series in bench_out/%s_process.csv):\n",
              spec.process_figure.c_str(), name.c_str());
  CsvTable head(process.header());
  std::size_t shown = 0;
  std::string last_strategy;
  for (std::size_t r = 0; r < process.num_rows(); ++r) {
    const auto& row = process.row(r);
    if (row[0] != last_strategy) {
      last_strategy = row[0];
      shown = 0;
    }
    if (shown++ < 3) head.add_row(row);
  }
  std::printf("%s\n", framework::render_table(head).c_str());

  std::filesystem::create_directories("bench_out");
  process.write_file("bench_out/" + name + "_process.csv");
  framework::minimum_runtimes_table(results).write_file(
      "bench_out/" + name + "_minimum.csv");
  framework::best_so_far_table(results).write_file(
      "bench_out/" + name + "_best_so_far.csv");
  std::printf("CSV series written to bench_out/%s_{process,minimum,"
              "best_so_far}.csv\n",
              name.c_str());

  if (cpu && spec.backend == runtime::ExecBackend::kJit) {
    codegen::ArtifactCache& cache =
        codegen::ArtifactCache::shared(spec.jit_options);
    const codegen::CacheStats stats = cache.stats();
    std::printf("jit cache: %zu hit(s), %zu miss(es), %zu failure(s), "
                "hit rate %.1f%%, %.2f s compiling, dir %s\n",
                stats.hits, stats.misses, stats.failures,
                100.0 * stats.hit_rate(), stats.compile_s,
                cache.dir().c_str());
  }
  return 0;
}

}  // namespace tvmbo::bench
