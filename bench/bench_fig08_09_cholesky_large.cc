// Figures 8 & 9: autotuning Cholesky with the large dataset (N = 2000).
// Paper result: AutoTVM-GA's best is 1.65 s at 50x50; ytopt reaches
// 1.66 s at 125x50 while finishing its evaluations in much less time.
#include "figure_common.h"

int main(int argc, char** argv) {
  tvmbo::bench::FigureSpec spec;
  spec.kernel = "cholesky";
  spec.dataset = tvmbo::kernels::Dataset::kLarge;
  spec.process_figure = "Fig8";
  spec.minimum_figure = "Fig9";
  spec.paper_best_runtime_s = 1.65;
  spec.paper_best_config = "50x50 (GA, 1.65 s) / 125x50 (ytopt, 1.66 s)";
  tvmbo::bench::parse_figure_args(argc, argv, &spec);
  return tvmbo::bench::run_figure_experiment(spec);
}
