// Extension bench: tuning objective — runtime vs energy vs energy-delay
// product on the simulated Swing A100 (the direction of ytopt's
// performance+energy work, the paper's reference [9]). Shows how the
// chosen configuration and its runtime/energy trade off per objective.
#include <cstdio>

#include "framework/figures.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

using namespace tvmbo;

namespace {

void tune_with(const char* kernel, kernels::Dataset dataset,
               framework::Objective objective) {
  const autotvm::Task task = kernels::make_task(kernel, dataset);
  runtime::SwingSimDevice device(2023);
  framework::SessionOptions options;
  options.max_evaluations = 100;
  options.objective = objective;
  framework::AutotuningSession session(&task, &device, options);
  const auto result = session.run(framework::StrategyKind::kYtopt);
  std::printf("%-14s best config %-12s runtime %8.4f s  energy %9.1f J  "
              "EDP %10.1f Js\n",
              framework::objective_name(objective),
              framework::tiles_to_string(result.best->tiles).c_str(),
              result.best->runtime_s, result.best->energy_j,
              result.best->energy_j * result.best->runtime_s);
}

void sweep(const char* kernel, kernels::Dataset dataset) {
  std::printf("%s / %s — ytopt, 100 evaluations per objective:\n", kernel,
              kernels::dataset_name(dataset));
  for (framework::Objective objective :
       {framework::Objective::kRuntime, framework::Objective::kEnergy,
        framework::Objective::kEnergyDelay}) {
    tune_with(kernel, dataset, objective);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Ablation: tuning objective (runtime | energy | EDP)\n\n");
  sweep("lu", kernels::Dataset::kLarge);
  sweep("cholesky", kernels::Dataset::kExtraLarge);
  sweep("3mm", kernels::Dataset::kLarge);
  return 0;
}
