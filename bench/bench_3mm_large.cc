// 3mm with the large dataset (800,900,1000,1100,1200). Table 1 lists its
// 74,649,600-configuration space; the paper shows no figure for it, so
// there is no reference runtime — this bench completes the Table 1 grid.
#include "figure_common.h"

int main(int argc, char** argv) {
  tvmbo::bench::FigureSpec spec;
  spec.kernel = "3mm";
  spec.dataset = tvmbo::kernels::Dataset::kLarge;
  spec.process_figure = "Table1-row1";
  spec.minimum_figure = "Table1-row1";
  spec.paper_best_runtime_s = 0.0;
  tvmbo::bench::parse_figure_args(argc, argv, &spec);
  return tvmbo::bench::run_figure_experiment(spec);
}
