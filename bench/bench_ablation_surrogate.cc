// Ablation: Random-Forest surrogate size and the init-design budget.
// Trades surrogate quality (better acquisition) against refit cost
// (ytopt refits every iteration, so tree count feeds straight into the
// autotuning process time).
#include <cstdio>

#include "common/timer.h"
#include "framework/session.h"
#include "kernels/polybench.h"
#include "runtime/swing_sim.h"

using namespace tvmbo;

namespace {

framework::SessionResult run_with(const autotvm::Task& task,
                                  framework::SessionOptions options,
                                  std::uint64_t seed) {
  runtime::SwingSimDevice device(seed);
  options.seed = seed;
  framework::AutotuningSession session(&task, &device, options);
  return session.run(framework::StrategyKind::kYtopt);
}

}  // namespace

int main() {
  const autotvm::Task task =
      kernels::make_task("lu", kernels::Dataset::kLarge);
  const int seeds = 3;

  std::printf("Ablation A: forest size (LU large, 100 evals, %d seeds)\n",
              seeds);
  std::printf("%10s %14s %18s\n", "trees", "best_mean_s", "refit_ms_mean");
  for (int trees : {5, 20, 50, 100, 200}) {
    double best_sum = 0.0;
    double wall_ms = 0.0;
    for (int seed = 0; seed < seeds; ++seed) {
      framework::SessionOptions options;
      options.max_evaluations = 100;
      options.bo.forest.num_trees = trees;
      Stopwatch timer;
      const auto result =
          run_with(task, options, static_cast<std::uint64_t>(seed));
      wall_ms += timer.elapsed_ms();
      best_sum += result.best->runtime_s;
    }
    std::printf("%10d %14.4f %18.1f\n", trees, best_sum / seeds,
                wall_ms / seeds);
  }

  std::printf("\nAblation B: initial random design size (LU large)\n");
  std::printf("%10s %14s\n", "init", "best_mean_s");
  for (std::size_t init : {2u, 5u, 10u, 20u, 40u, 80u}) {
    double best_sum = 0.0;
    for (int seed = 0; seed < seeds; ++seed) {
      framework::SessionOptions options;
      options.max_evaluations = 100;
      options.bo.initial_points = init;
      best_sum +=
          run_with(task, options, static_cast<std::uint64_t>(seed))
              .best->runtime_s;
    }
    std::printf("%10zu %14.4f\n", static_cast<std::size_t>(init),
                best_sum / seeds);
  }

  std::printf("\nAblation C: candidate-pool size per iteration\n");
  std::printf("%10s %14s\n", "pool", "best_mean_s");
  for (std::size_t pool : {16u, 64u, 256u, 512u, 2048u}) {
    double best_sum = 0.0;
    for (int seed = 0; seed < seeds; ++seed) {
      framework::SessionOptions options;
      options.max_evaluations = 100;
      options.bo.candidates_per_iteration = pool;
      best_sum +=
          run_with(task, options, static_cast<std::uint64_t>(seed))
              .best->runtime_s;
    }
    std::printf("%10zu %14.4f\n", static_cast<std::size_t>(pool),
                best_sum / seeds);
  }
  return 0;
}
