// Cross-kernel cost model over the global PerfDatabase.
//
// Every record carries (kernel, dims, tiles) — enough to re-lower the
// configuration and featurize it with transfer/features.h — plus the
// measured runtime. A single GBT or random-forest learner (src/surrogate)
// is trained on log-runtime over those kernel-agnostic features, so one
// model ranks candidate configurations for *any* TE kernel, including ones
// absent from the training set (transfer). The model seeds new tuning
// sessions (SessionOptions::transfer_model) and backs the serve daemon's
// config_lookup fallback (transfer/lookup.h).
//
// Determinism: fit() always retrains from scratch over the full sample
// list with a fresh Rng(options.seed), so two models holding the same
// samples in the same order predict identically — the property the
// dataset-replay model store (transfer/model_store.h) relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "configspace/configspace.h"
#include "runtime/perf_db.h"
#include "surrogate/gbt.h"
#include "surrogate/random_forest.h"

namespace tvmbo::transfer {

/// One featurized PerfDatabase record.
struct TransferSample {
  std::string workload_id;
  std::string kernel;
  std::vector<std::int64_t> dims;
  std::vector<std::int64_t> tiles;
  std::vector<double> features;
  double runtime_s = 0.0;
  std::int64_t nthreads = 1;
  std::string backend;
};

/// Splits a Workload::id() string "kernel/size[AxBxC]" into its parts.
/// Returns false (outputs untouched) when the id is malformed.
bool parse_workload_id(const std::string& id, std::string* kernel,
                       std::string* size, std::vector<std::int64_t>* dims);

/// Featurizes one record. nullopt when the record is invalid (failed
/// measurement or non-positive runtime), its workload id is malformed, the
/// kernel has no TE program, or the tile vector does not fit the kernel's
/// schedule.
std::optional<TransferSample> featurize_record(
    const runtime::TrialRecord& record);

struct CostModelOptions {
  std::string learner = "gbt";  ///< "gbt" or "forest"
  /// Deeper trees than the in-loop surrogate default: cross-kernel
  /// training needs kernel-structure x tile-shape interactions (the tile
  /// response that is right for a deep-reduction gemm is wrong for a
  /// depth-1 rank-k update), and depth-4 trees cannot express them.
  surrogate::GbtOptions gbt{
      .num_rounds = 150,
      .learning_rate = 0.1,
      .tree = {.max_depth = 6, .min_samples_split = 4,
               .min_samples_leaf = 2}};
  surrogate::ForestOptions forest;
  std::uint64_t seed = 2023;
  /// observe() refits after this many unfitted samples accumulate
  /// (0 = refit on every sample).
  std::size_t refit_interval = 16;
  /// Novelty penalty used by rank_configs(): candidates are ordered by
  /// predicted log-runtime plus this weight times their distance to the
  /// nearest training sample (z-scored feature space). Tree learners
  /// predict garbage outside the training hull — degenerate 1-wide tiles
  /// of a new kernel can land in feature regions no training kernel ever
  /// produced and get flattering leaf means — so ranking trusts the model
  /// most where it has actually seen data. 0 disables.
  double novelty_weight = 0.25;
};

class CostModel {
 public:
  explicit CostModel(CostModelOptions options = {});

  const CostModelOptions& options() const { return options_; }
  std::size_t size() const { return samples_.size(); }
  const std::vector<TransferSample>& samples() const { return samples_; }
  bool fitted() const { return fitted_; }

  /// Adds one sample without refitting.
  void add(TransferSample sample);

  /// Featurizes and adds every usable record; returns how many were added
  /// (records featurize_record rejects are skipped).
  std::size_t add_database(const runtime::PerfDatabase& db);

  /// Trains on all samples. Requires >= 2 samples. The regression target
  /// is log(runtime) centered per workload (each sample's target is its
  /// log-runtime minus the mean log-runtime of its workload's training
  /// samples): cross-kernel transfer only needs the *within-workload*
  /// ordering, and centering stops the learner from spending its whole
  /// capacity explaining that a 2000^3 kernel is slower than a 40^3 one.
  /// The global mean log-runtime is added back at prediction time, so
  /// predict_runtime() stays in (approximate) seconds.
  void fit();

  /// Incremental path: featurize + add the record, refit once
  /// `refit_interval` new samples have accumulated since the last fit.
  /// Returns true when the record was usable.
  bool observe(const runtime::TrialRecord& record);

  /// Predicted log(runtime_s) / runtime_s for a feature vector.
  double predict_log_runtime(std::span<const double> features) const;
  double predict_runtime(std::span<const double> features) const;

  /// Distance from `features` to the nearest training sample, measured in
  /// z-scored feature space and normalized by sqrt(num_features) so the
  /// scale is comparable across feature-set revisions. 0 on a training
  /// point; grows as the candidate leaves the training distribution.
  double novelty(std::span<const double> features) const;

 private:
  CostModelOptions options_;
  std::vector<TransferSample> samples_;
  surrogate::GradientBoostedTrees gbt_;
  surrogate::RandomForest forest_;
  bool fitted_ = false;
  std::size_t fitted_on_ = 0;  ///< samples_.size() at the last fit()
  double baseline_ = 0.0;      ///< global mean log-runtime at the last fit()
  std::vector<double> feature_scale_;  ///< per-column 1/std at the last fit()
};

/// One model-ranked candidate for a (kernel, dims) task.
struct RankedConfig {
  cs::Configuration config;
  std::vector<std::int64_t> tiles;
  double predicted_runtime_s = 0.0;
  double novelty = 0.0;  ///< distance to the nearest training sample
};

/// Samples up to `pool` distinct configurations from `space`, featurizes
/// each (candidates whose lowering fails are skipped), and returns the
/// `topk` with the lowest predicted runtime, best first. Deterministic for
/// a fixed seed.
std::vector<RankedConfig> rank_configs(const CostModel& model,
                                       const cs::ConfigurationSpace& space,
                                       const std::string& kernel,
                                       const std::vector<std::int64_t>& dims,
                                       std::size_t topk, std::size_t pool,
                                       std::uint64_t seed);

/// rank_configs() projected to just the configurations — the shape
/// BayesianOptimizer::seed_proposals() consumes.
std::vector<cs::Configuration> rank_seed_configs(
    const CostModel& model, const cs::ConfigurationSpace& space,
    const std::string& kernel, const std::vector<std::int64_t>& dims,
    std::size_t topk, std::size_t pool, std::uint64_t seed);

/// Leave-one-kernel-out evaluation: for each distinct kernel, train on all
/// other kernels' samples and score predictions on the held-out kernel.
struct LokoResult {
  std::string kernel;
  std::size_t train_size = 0;
  std::size_t test_size = 0;
  /// Spearman rank correlation between predicted and measured runtime on
  /// the held-out kernel (1 = perfect ranking).
  double rank_correlation = 0.0;
  /// runtime(best-predicted config) / best measured runtime - 1.
  double top1_regret = 0.0;
};

std::vector<LokoResult> leave_one_kernel_out(
    const std::vector<TransferSample>& samples,
    const CostModelOptions& options);

}  // namespace tvmbo::transfer
