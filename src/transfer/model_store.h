// Versioned save/load for the cross-kernel cost model.
//
// The store serializes the *training set* (dataset replay), not the fitted
// trees: CostModel::fit() is deterministic for a fixed sample order and
// seed, so reloading the samples and refitting reproduces the model
// bit-for-bit — with none of the fragility of serializing tree internals,
// and the loaded model stays a live substrate for incremental observe()
// refits as the daemon appends new trials.
//
// File format: one JSON object —
//   {"v": 1, "feature_schema": 1, "learner": "gbt", "seed": ...,
//    "refit_interval": ..., "feature_names": [...], "samples": [...]}
// Each sample stores its provenance (workload, kernel, dims, tiles,
// nthreads, backend) alongside the feature row, so a file written under an
// older feature schema can be re-featurized on load instead of rejected.
#pragma once

#include <string>

#include "transfer/cost_model.h"

namespace tvmbo::transfer {

/// Bump on incompatible file-layout changes.
inline constexpr int kModelFileVersion = 1;

/// Writes the model's samples + learner options to `path` (overwrites).
void save_model(const CostModel& model, const std::string& path);

/// Loads a model file and deterministically refits (when it holds >= 2
/// samples). Throws CheckError on an unsupported file version or a
/// structurally malformed file; samples written under an older feature
/// schema are re-featurized from their stored (kernel, dims, tiles).
CostModel load_model(const std::string& path);

}  // namespace tvmbo::transfer
