#include "transfer/lookup.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "kernels/polybench.h"
#include "kernels/te_programs.h"

namespace tvmbo::transfer {

ConfigLookup::ConfigLookup(LookupOptions options) : options_(options) {}

std::string ConfigLookup::key(const std::string& workload_id,
                              std::int64_t nthreads) {
  return workload_id + "|t" + std::to_string(nthreads);
}

void ConfigLookup::set_model(std::shared_ptr<const CostModel> model) {
  TVMBO_CHECK(model == nullptr || model->fitted())
      << "lookup model must be fitted";
  std::lock_guard<std::mutex> lock(mutex_);
  model_ = std::move(model);
}

bool ConfigLookup::has_model() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return model_ != nullptr;
}

std::size_t ConfigLookup::load_database(const runtime::PerfDatabase& db) {
  std::size_t indexed = 0;
  for (const runtime::TrialRecord& record : db.records()) {
    if (!record.valid || record.runtime_s <= 0.0) continue;
    observe(record);
    ++indexed;
  }
  return indexed;
}

void ConfigLookup::observe(const runtime::TrialRecord& record) {
  if (!record.valid || record.runtime_s <= 0.0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = cache_[key(record.workload_id, record.nthreads)];
  if (entry.records == 0 || record.runtime_s < entry.runtime_s) {
    entry.tiles = record.tiles;
    entry.runtime_s = record.runtime_s;
  }
  ++entry.records;
}

std::size_t ConfigLookup::cache_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

LookupAnswer ConfigLookup::lookup(const std::string& kernel,
                                  const std::string& size,
                                  std::int64_t nthreads,
                                  std::size_t topk) const {
  LookupAnswer answer;
  answer.nthreads = nthreads;
  runtime::Workload workload;
  try {
    workload =
        kernels::make_workload(kernel, kernels::dataset_from_name(size));
  } catch (const std::exception& e) {
    answer.source = "none";
    answer.error = e.what();
    return answer;
  }
  answer.workload_id = workload.id();
  topk = std::clamp<std::size_t>(topk, 1, options_.topk_cap);

  std::shared_ptr<const CostModel> model;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key(answer.workload_id, nthreads));
    if (it != cache_.end()) {
      answer.source = "cache";
      answer.cache_records = it->second.records;
      answer.configs.push_back({it->second.tiles, it->second.runtime_s});
      return answer;
    }
    model = model_;
  }

  // Model fallback — outside the lock: ranking lowers `model_pool`
  // candidate schedules, and a concurrent observe() must not wait on it.
  if (model != nullptr && kernels::te_backend_supported(kernel)) {
    kernels::ScheduleKnobs knobs;
    knobs.enabled = nthreads != 1;
    knobs.max_threads = nthreads;
    const cs::ConfigurationSpace space =
        kernels::build_space(kernel, workload.dims, knobs);
    std::vector<RankedConfig> ranked =
        rank_configs(*model, space, kernel, workload.dims, topk,
                     options_.model_pool, options_.seed);
    for (RankedConfig& candidate : ranked) {
      answer.configs.push_back(
          {std::move(candidate.tiles), candidate.predicted_runtime_s});
    }
    if (!answer.configs.empty()) {
      answer.source = "model";
      return answer;
    }
  }
  answer.source = "none";
  return answer;
}

}  // namespace tvmbo::transfer
