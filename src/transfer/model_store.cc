#include "transfer/model_store.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "transfer/features.h"

namespace tvmbo::transfer {

namespace {

Json int_array(const std::vector<std::int64_t>& values) {
  Json out = Json::array();
  for (std::int64_t v : values) out.push_back(Json(v));
  return out;
}

Json double_array(const std::vector<double>& values) {
  Json out = Json::array();
  for (double v : values) out.push_back(Json(v));
  return out;
}

std::vector<std::int64_t> parse_int_array(const Json& json) {
  std::vector<std::int64_t> out;
  for (const Json& v : json.as_array()) out.push_back(v.as_int());
  return out;
}

std::vector<double> parse_double_array(const Json& json) {
  std::vector<double> out;
  for (const Json& v : json.as_array()) out.push_back(v.as_double());
  return out;
}

}  // namespace

void save_model(const CostModel& model, const std::string& path) {
  const CostModelOptions& options = model.options();
  Json names = Json::array();
  for (const std::string& name : feature_names()) {
    names.push_back(Json(name));
  }
  Json samples = Json::array();
  for (const TransferSample& sample : model.samples()) {
    Json row = Json::object();
    row.set("workload", Json(sample.workload_id));
    row.set("kernel", Json(sample.kernel));
    row.set("dims", int_array(sample.dims));
    row.set("tiles", int_array(sample.tiles));
    row.set("features", double_array(sample.features));
    row.set("runtime_s", Json(sample.runtime_s));
    row.set("nthreads", Json(sample.nthreads));
    row.set("backend", Json(sample.backend));
    samples.push_back(std::move(row));
  }
  Json doc = Json::object();
  doc.set("v", Json(kModelFileVersion));
  doc.set("feature_schema", Json(kFeatureSchemaVersion));
  doc.set("learner", Json(options.learner));
  doc.set("seed", Json(static_cast<std::int64_t>(options.seed)));
  doc.set("refit_interval",
          Json(static_cast<std::int64_t>(options.refit_interval)));
  doc.set("feature_names", std::move(names));
  doc.set("samples", std::move(samples));

  std::ofstream stream(path, std::ios::trunc);
  TVMBO_CHECK(stream.good())
      << "cannot open '" << path << "' for writing";
  stream << doc.dump_pretty() << '\n';
  TVMBO_CHECK(stream.good()) << "write to '" << path << "' failed";
}

CostModel load_model(const std::string& path) {
  std::ifstream stream(path);
  TVMBO_CHECK(stream.good())
      << "cannot open model file '" << path << "' for reading";
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  Json doc;
  try {
    doc = Json::parse(buffer.str());
  } catch (const JsonParseError& e) {
    TVMBO_CHECK(false) << "malformed model file '" << path
                       << "': " << e.what();
  }
  const int version = static_cast<int>(doc.at("v").as_int());
  TVMBO_CHECK_EQ(version, kModelFileVersion)
      << "unsupported model file version v" << version << " in '" << path
      << "' (this build reads v" << kModelFileVersion << ")";
  const int feature_schema =
      static_cast<int>(doc.at("feature_schema").as_int());

  CostModelOptions options;
  options.learner = doc.at("learner").as_string();
  options.seed = static_cast<std::uint64_t>(doc.at("seed").as_int());
  options.refit_interval =
      static_cast<std::size_t>(doc.at("refit_interval").as_int());
  CostModel model(options);

  const bool refeaturize = feature_schema != kFeatureSchemaVersion;
  std::size_t dropped = 0;
  for (const Json& row : doc.at("samples").as_array()) {
    TransferSample sample;
    sample.workload_id = row.at("workload").as_string();
    sample.kernel = row.at("kernel").as_string();
    sample.dims = parse_int_array(row.at("dims"));
    sample.tiles = parse_int_array(row.at("tiles"));
    sample.runtime_s = row.at("runtime_s").as_double();
    sample.nthreads = row.at("nthreads").as_int();
    sample.backend = row.at("backend").as_string();
    if (refeaturize) {
      try {
        sample.features =
            featurize_config(sample.kernel, sample.dims, sample.tiles);
      } catch (const std::exception&) {
        ++dropped;
        continue;
      }
    } else {
      sample.features = parse_double_array(row.at("features"));
    }
    model.add(std::move(sample));
  }
  if (refeaturize) {
    TVMBO_LOG(Warning) << "transfer model '" << path
                       << "': re-featurized " << model.size()
                       << " sample(s) from feature schema v"
                       << feature_schema << " to v" << kFeatureSchemaVersion
                       << (dropped > 0 ? " (" + std::to_string(dropped) +
                                             " dropped)"
                                       : "");
  }
  if (model.size() >= 2) model.fit();
  return model;
}

}  // namespace tvmbo::transfer
