// Kernel-agnostic feature extraction from lowered loop IR — the front end
// of the transfer-learning subsystem.
//
// Per-space FeatureEncoder vectors (surrogate/dataset.h) only make sense
// inside one configuration space: a gemm tile index and a lu tile index
// share a column but mean different things. To learn *across* kernels and
// sizes, every configuration is instead described by what its lowered
// program looks like: loop-nest shape, trip counts, annotation mix
// (parallel/vectorized/unrolled/packed), thread budget, and
// footprint/locality estimates from the affine machinery in src/analysis.
// Configurations of different kernels then live in one fixed-width feature
// space and a single cost model (transfer/cost_model.h) can rank them all.
//
// Determinism contract: the vector is a pure function of the lowered
// statement and the thread budget. It never reads variable names, node ids,
// or addresses, and all reductions accumulate in traversal order, so the
// same configuration yields a byte-identical vector across processes and
// across the interp/closure/jit tiers (which share one lowering).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "te/ir.h"

namespace tvmbo::transfer {

/// Bump when the feature definition changes. Model files record the schema
/// they were featurized under; a loaded model with an older schema is
/// re-featurized from its stored (kernel, dims, tiles) triples.
inline constexpr int kFeatureSchemaVersion = 1;

/// Number of features extract_features() emits.
std::size_t num_features();

/// Stable names for each feature column, in emission order.
const std::vector<std::string>& feature_names();

/// Extracts the feature vector from one lowered program.
///
/// `parallel_threads` is the thread budget from the extended tile vector
/// (TeLoweredProgram::parallel_threads); 0 means "all cores" and is mapped
/// to the host's hardware concurrency so the feature reflects the actual
/// parallelism the config requests.
std::vector<double> extract_features(const te::Stmt& stmt,
                                     int parallel_threads);

/// Lowers (kernel, dims, tiles) via kernels::lower_te_program — schedule +
/// lowering only, no buffer allocation — and extracts. Throws CheckError
/// for kernels without a TE program or invalid tile vectors.
std::vector<double> featurize_config(const std::string& kernel,
                                     const std::vector<std::int64_t>& dims,
                                     std::span<const std::int64_t> tiles);

}  // namespace tvmbo::transfer
