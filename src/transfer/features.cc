#include "transfer/features.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "analysis/affine.h"
#include "common/logging.h"
#include "kernels/te_programs.h"

namespace tvmbo::transfer {

namespace {

double log2_1p(double value) { return std::log2(1.0 + value); }

/// Counts arithmetic operator nodes (binary + unary) in an expression.
std::size_t count_ops(const te::ExprNode* expr) {
  if (expr == nullptr) return 0;
  switch (expr->kind()) {
    case te::ExprKind::kBinary: {
      const auto* node = static_cast<const te::BinaryNode*>(expr);
      return 1 + count_ops(node->a.get()) + count_ops(node->b.get());
    }
    case te::ExprKind::kUnary: {
      const auto* node = static_cast<const te::UnaryNode*>(expr);
      return 1 + count_ops(node->operand.get());
    }
    case te::ExprKind::kCompare: {
      const auto* node = static_cast<const te::CompareNode*>(expr);
      return count_ops(node->a.get()) + count_ops(node->b.get());
    }
    case te::ExprKind::kSelect: {
      const auto* node = static_cast<const te::SelectNode*>(expr);
      return count_ops(node->condition.get()) +
             count_ops(node->true_value.get()) +
             count_ops(node->false_value.get());
    }
    case te::ExprKind::kTensorAccess: {
      const auto* node = static_cast<const te::TensorAccessNode*>(expr);
      std::size_t total = 0;
      for (const te::Expr& index : node->indices) {
        total += count_ops(index.get());
      }
      return total;
    }
    case te::ExprKind::kReduce: {
      const auto* node = static_cast<const te::ReduceNode*>(expr);
      return count_ops(node->source.get());
    }
    default:
      return 0;
  }
}

/// True when the expression reads an element of `tensor` (a reduction
/// update: C[i,j] = C[i,j] + ...).
bool reads_tensor(const te::ExprNode* expr, const te::TensorNode* tensor) {
  if (expr == nullptr) return false;
  switch (expr->kind()) {
    case te::ExprKind::kBinary: {
      const auto* node = static_cast<const te::BinaryNode*>(expr);
      return reads_tensor(node->a.get(), tensor) ||
             reads_tensor(node->b.get(), tensor);
    }
    case te::ExprKind::kUnary:
      return reads_tensor(
          static_cast<const te::UnaryNode*>(expr)->operand.get(), tensor);
    case te::ExprKind::kCompare: {
      const auto* node = static_cast<const te::CompareNode*>(expr);
      return reads_tensor(node->a.get(), tensor) ||
             reads_tensor(node->b.get(), tensor);
    }
    case te::ExprKind::kSelect: {
      const auto* node = static_cast<const te::SelectNode*>(expr);
      return reads_tensor(node->condition.get(), tensor) ||
             reads_tensor(node->true_value.get(), tensor) ||
             reads_tensor(node->false_value.get(), tensor);
    }
    case te::ExprKind::kTensorAccess: {
      const auto* node = static_cast<const te::TensorAccessNode*>(expr);
      if (node->tensor.get() == tensor) return true;
      for (const te::Expr& index : node->indices) {
        if (reads_tensor(index.get(), tensor)) return true;
      }
      return false;
    }
    case te::ExprKind::kReduce:
      return reads_tensor(
          static_cast<const te::ReduceNode*>(expr)->source.get(), tensor);
    default:
      return false;
  }
}

struct LoopFrame {
  const te::VarNode* var = nullptr;
  std::int64_t extent = 1;
  te::ForKind kind = te::ForKind::kSerial;
};

/// One pass over the statement tree. All containers are insertion-ordered
/// (no pointer-keyed hash maps), so accumulation order — and therefore the
/// floating-point result — is identical across processes.
class FeatureCollector {
 public:
  void run(const te::Stmt& stmt) { visit(stmt); }

  std::size_t loops = 0;
  std::size_t max_depth = 0;
  double total_work = 0.0;
  double parallel_work = 0.0;
  double vector_work = 0.0;
  double max_extent = 0.0;
  double innermost_log_sum = 0.0;
  std::size_t parallel_loops = 0;
  std::size_t vector_loops = 0;
  std::size_t unroll_loops = 0;
  double parallel_extent_max = 0.0;
  double vector_extent_max = 0.0;
  double unroll_extent_max = 0.0;
  std::size_t realizes = 0;
  double realize_elems = 0.0;
  std::size_t stores = 0;
  std::size_t reduce_stores = 0;
  std::size_t guards = 0;
  // Store-tile shape, accumulated per store site over the loops that move
  // the stored element (see note_store_tile): the innermost two spatial
  // extents are the effective (ty, tx) tile of that stage, independent of
  // where any reduction loop sits in the nest.
  double tile_x_log_sum = 0.0;
  double tile_y_log_sum = 0.0;
  double spatial_blocks_log_sum = 0.0;
  std::size_t tile_x_mod8 = 0;
  std::size_t tile_x_mod32 = 0;
  double total_ops = 0.0;
  std::size_t accesses = 0;
  std::size_t unit_stride_accesses = 0;
  std::size_t invariant_accesses = 0;
  /// Per-tensor maximum access-box volume, in first-touch order.
  std::vector<std::pair<const te::TensorNode*, double>> footprints;

 private:
  void note_footprint(const te::TensorNode* tensor, double volume) {
    for (auto& [seen, vol] : footprints) {
      if (seen == tensor) {
        vol = std::max(vol, volume);
        return;
      }
    }
    footprints.emplace_back(tensor, volume);
  }

  double trip_product() const {
    double product = 1.0;
    for (const LoopFrame& frame : stack_) {
      product *= static_cast<double>(frame.extent);
    }
    return product;
  }

  bool under_kind(te::ForKind kind) const {
    for (const LoopFrame& frame : stack_) {
      if (frame.kind == kind) return true;
    }
    return false;
  }

  void visit_access(const te::TensorNode* tensor,
                    const std::vector<te::Expr>& indices) {
    ++accesses;
    const te::VarNode* innermost =
        stack_.empty() ? nullptr : stack_.back().var;
    double volume = 1.0;
    bool moves_innermost = false;
    bool unit_stride = false;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const analysis::Interval range =
          analysis::range_of_expr(indices[i].get(), ranges_, constraints_);
      double width;
      if (range.bounded()) {
        width = static_cast<double>(*range.hi - *range.lo + 1);
      } else if (i < tensor->shape.size()) {
        width = static_cast<double>(tensor->shape[i]);
      } else {
        width = 1.0;
      }
      volume *= std::max(width, 1.0);
      if (innermost != nullptr) {
        const analysis::AffineForm form =
            analysis::analyze_affine(indices[i].get());
        if (form.affine) {
          const std::int64_t coeff = form.coeff(innermost);
          if (coeff != 0) moves_innermost = true;
          // Unit stride = the *last* (fastest-varying) index advances by
          // one per innermost iteration.
          if (i + 1 == indices.size() && (coeff == 1 || coeff == -1)) {
            unit_stride = true;
          }
        } else {
          moves_innermost = true;  // conservative: assume it moves
        }
      }
    }
    note_footprint(tensor, volume);
    if (unit_stride) ++unit_stride_accesses;
    if (!moves_innermost) ++invariant_accesses;
  }

  /// Classifies the enclosing loops of a store by whether they move the
  /// stored element (non-zero affine coefficient in some store index, or
  /// a non-affine index — conservatively "moves"). The innermost two such
  /// spatial loops are the stage's tile; everything outside them is the
  /// block grid. Reduction loops (which move only the reads) drop out, so
  /// gemm's k-innermost nest and lu's rank-1 update report comparable
  /// tile shapes.
  void note_store_tile(const std::vector<te::Expr>& indices) {
    std::vector<analysis::AffineForm> forms;
    forms.reserve(indices.size());
    for (const te::Expr& index : indices) {
      forms.push_back(analysis::analyze_affine(index.get()));
    }
    std::vector<std::int64_t> spatial;  // outermost -> innermost
    for (const LoopFrame& frame : stack_) {
      bool moves = false;
      for (const analysis::AffineForm& form : forms) {
        if (!form.affine || form.coeff(frame.var) != 0) {
          moves = true;
          break;
        }
      }
      if (moves) spatial.push_back(frame.extent);
    }
    const std::int64_t tile_x =
        spatial.empty() ? 1 : spatial[spatial.size() - 1];
    const std::int64_t tile_y =
        spatial.size() < 2 ? 1 : spatial[spatial.size() - 2];
    double blocks = 1.0;
    for (std::size_t i = 0; i + 2 < spatial.size(); ++i) {
      blocks *= static_cast<double>(spatial[i]);
    }
    tile_x_log_sum += std::log2(static_cast<double>(tile_x));
    tile_y_log_sum += std::log2(static_cast<double>(tile_y));
    spatial_blocks_log_sum += std::log2(blocks);
    if (tile_x % 8 == 0) ++tile_x_mod8;
    if (tile_x % 32 == 0) ++tile_x_mod32;
  }

  void visit_value_accesses(const te::ExprNode* expr) {
    if (expr == nullptr) return;
    switch (expr->kind()) {
      case te::ExprKind::kBinary: {
        const auto* node = static_cast<const te::BinaryNode*>(expr);
        visit_value_accesses(node->a.get());
        visit_value_accesses(node->b.get());
        break;
      }
      case te::ExprKind::kUnary:
        visit_value_accesses(
            static_cast<const te::UnaryNode*>(expr)->operand.get());
        break;
      case te::ExprKind::kCompare: {
        const auto* node = static_cast<const te::CompareNode*>(expr);
        visit_value_accesses(node->a.get());
        visit_value_accesses(node->b.get());
        break;
      }
      case te::ExprKind::kSelect: {
        const auto* node = static_cast<const te::SelectNode*>(expr);
        visit_value_accesses(node->condition.get());
        visit_value_accesses(node->true_value.get());
        visit_value_accesses(node->false_value.get());
        break;
      }
      case te::ExprKind::kTensorAccess: {
        const auto* node = static_cast<const te::TensorAccessNode*>(expr);
        visit_access(node->tensor.get(), node->indices);
        for (const te::Expr& index : node->indices) {
          visit_value_accesses(index.get());
        }
        break;
      }
      case te::ExprKind::kReduce:
        visit_value_accesses(
            static_cast<const te::ReduceNode*>(expr)->source.get());
        break;
      default:
        break;
    }
  }

  void visit(const te::Stmt& stmt) {
    if (stmt == nullptr) return;
    switch (stmt->kind()) {
      case te::StmtKind::kFor: {
        const auto* node = static_cast<const te::ForNode*>(stmt.get());
        ++loops;
        const double extent = static_cast<double>(node->extent);
        max_extent = std::max(max_extent, extent);
        switch (node->for_kind) {
          case te::ForKind::kParallel:
            ++parallel_loops;
            parallel_extent_max = std::max(parallel_extent_max, extent);
            break;
          case te::ForKind::kVectorized:
            ++vector_loops;
            vector_extent_max = std::max(vector_extent_max, extent);
            break;
          case te::ForKind::kUnrolled:
            ++unroll_loops;
            unroll_extent_max = std::max(unroll_extent_max, extent);
            break;
          case te::ForKind::kSerial:
            break;
        }
        stack_.push_back({node->var.get(), node->extent, node->for_kind});
        max_depth = std::max(max_depth, stack_.size());
        ranges_.bind(node->var.get(), node->extent);
        visit(node->body);
        ranges_.pop();
        stack_.pop_back();
        break;
      }
      case te::StmtKind::kStore: {
        const auto* node = static_cast<const te::StoreNode*>(stmt.get());
        ++stores;
        const double trip = trip_product();
        total_work += trip;
        if (under_kind(te::ForKind::kParallel)) parallel_work += trip;
        if (under_kind(te::ForKind::kVectorized)) vector_work += trip;
        innermost_log_sum += std::log2(static_cast<double>(
            stack_.empty() ? 1 : stack_.back().extent));
        total_ops += trip * static_cast<double>(count_ops(node->value.get()));
        if (reads_tensor(node->value.get(), node->tensor.get())) {
          ++reduce_stores;
        }
        note_store_tile(node->indices);
        visit_access(node->tensor.get(), node->indices);
        visit_value_accesses(node->value.get());
        break;
      }
      case te::StmtKind::kSeq: {
        const auto* node = static_cast<const te::SeqNode*>(stmt.get());
        for (const te::Stmt& child : node->stmts) visit(child);
        break;
      }
      case te::StmtKind::kIfThenElse: {
        const auto* node =
            static_cast<const te::IfThenElseNode*>(stmt.get());
        ++guards;
        const std::size_t saved = constraints_.size();
        analysis::collect_constraints(node->condition, constraints_);
        visit(node->then_case);
        constraints_.resize(saved);
        if (node->else_case != nullptr) {
          analysis::collect_negated_constraints(node->condition,
                                                constraints_);
          visit(node->else_case);
          constraints_.resize(saved);
        }
        break;
      }
      case te::StmtKind::kRealize: {
        const auto* node = static_cast<const te::RealizeNode*>(stmt.get());
        ++realizes;
        double elems = 1.0;
        for (std::int64_t dim : node->tensor->shape) {
          elems *= static_cast<double>(dim);
        }
        realize_elems += elems;
        visit(node->body);
        break;
      }
    }
  }

  std::vector<LoopFrame> stack_;
  analysis::VarRanges ranges_;
  std::vector<analysis::AffineForm> constraints_;
};

const std::vector<std::string>& names_impl() {
  static const std::vector<std::string> names = {
      "loops",                    // total loop count
      "loop_depth",               // deepest nest
      "log_trip_total",           // log2(1 + sum of store trip counts)
      "log_max_extent",           // log2(1 + largest loop extent)
      "innermost_log_extent",     // mean log2 innermost extent over stores
      "parallel_loops",           // kParallel loop count
      "log_parallel_extent",      // log2(1 + largest kParallel extent)
      "parallel_work_frac",       // store work under a kParallel loop
      "log_threads",              // log2(1 + thread budget)
      "vector_loops",             // kVectorized loop count
      "log_vector_extent",        // log2(1 + largest kVectorized extent)
      "vector_work_frac",         // store work under a kVectorized loop
      "unroll_loops",             // kUnrolled loop count
      "log_unroll_extent",        // log2(1 + largest kUnrolled extent)
      "pack_buffers",             // Realize count (packed scratch buffers)
      "log_pack_bytes",           // log2(1 + bytes of Realize scratch)
      "stores",                   // static store-site count
      "reduce_stores",            // stores whose value reads their tensor
      "guards",                   // IfThenElse count (split tails etc.)
      "log_footprint_bytes",      // log2(1 + summed per-tensor access boxes)
      "log_flops",                // log2(1 + trip-weighted arith op count)
      "arith_intensity",          // log_flops - log_footprint_bytes
      "unit_stride_frac",         // accesses advancing by 1 innermost
      "innermost_invariant_frac",  // accesses invariant in the innermost loop
      "tile_x_log_extent",   // mean log2 innermost store-moving extent
      "tile_y_log_extent",   // mean log2 2nd-innermost store-moving extent
      "tile_x_mod8_frac",    // stores whose tile_x is a multiple of 8
      "tile_x_mod32_frac",   // stores whose tile_x is a multiple of 32
      "log_spatial_blocks"   // mean log2 outer store-moving block count
  };
  return names;
}

}  // namespace

std::size_t num_features() { return names_impl().size(); }

const std::vector<std::string>& feature_names() { return names_impl(); }

std::vector<double> extract_features(const te::Stmt& stmt,
                                     int parallel_threads) {
  TVMBO_CHECK(stmt != nullptr) << "null statement";
  FeatureCollector collect;
  collect.run(stmt);

  // 0 = "all cores": resolve to the host's concurrency so the feature
  // ranks above every explicit budget the space can express.
  double threads = static_cast<double>(parallel_threads);
  if (parallel_threads == 0) {
    threads = std::max(1.0,
                       static_cast<double>(
                           std::thread::hardware_concurrency()));
  }

  double footprint_elems = 0.0;
  for (const auto& [tensor, volume] : collect.footprints) {
    footprint_elems += volume;
  }
  const double footprint_bytes = 8.0 * footprint_elems;
  const double pack_bytes = 8.0 * collect.realize_elems;
  const double log_flops = log2_1p(collect.total_ops);
  const double log_footprint = log2_1p(footprint_bytes);

  std::vector<double> features;
  features.reserve(num_features());
  features.push_back(static_cast<double>(collect.loops));
  features.push_back(static_cast<double>(collect.max_depth));
  features.push_back(log2_1p(collect.total_work));
  features.push_back(log2_1p(collect.max_extent));
  features.push_back(collect.stores == 0
                         ? 0.0
                         : collect.innermost_log_sum /
                               static_cast<double>(collect.stores));
  features.push_back(static_cast<double>(collect.parallel_loops));
  features.push_back(log2_1p(collect.parallel_extent_max));
  features.push_back(collect.total_work <= 0.0
                         ? 0.0
                         : collect.parallel_work / collect.total_work);
  features.push_back(log2_1p(threads));
  features.push_back(static_cast<double>(collect.vector_loops));
  features.push_back(log2_1p(collect.vector_extent_max));
  features.push_back(collect.total_work <= 0.0
                         ? 0.0
                         : collect.vector_work / collect.total_work);
  features.push_back(static_cast<double>(collect.unroll_loops));
  features.push_back(log2_1p(collect.unroll_extent_max));
  features.push_back(static_cast<double>(collect.realizes));
  features.push_back(log2_1p(pack_bytes));
  features.push_back(static_cast<double>(collect.stores));
  features.push_back(static_cast<double>(collect.reduce_stores));
  features.push_back(static_cast<double>(collect.guards));
  features.push_back(log_footprint);
  features.push_back(log_flops);
  features.push_back(log_flops - log_footprint);
  features.push_back(collect.accesses == 0
                         ? 0.0
                         : static_cast<double>(collect.unit_stride_accesses) /
                               static_cast<double>(collect.accesses));
  features.push_back(collect.accesses == 0
                         ? 0.0
                         : static_cast<double>(collect.invariant_accesses) /
                               static_cast<double>(collect.accesses));
  const double store_count =
      collect.stores == 0 ? 1.0 : static_cast<double>(collect.stores);
  features.push_back(collect.tile_x_log_sum / store_count);
  features.push_back(collect.tile_y_log_sum / store_count);
  features.push_back(static_cast<double>(collect.tile_x_mod8) / store_count);
  features.push_back(static_cast<double>(collect.tile_x_mod32) /
                     store_count);
  features.push_back(collect.spatial_blocks_log_sum / store_count);
  TVMBO_CHECK_EQ(features.size(), num_features());
  return features;
}

std::vector<double> featurize_config(const std::string& kernel,
                                     const std::vector<std::int64_t>& dims,
                                     std::span<const std::int64_t> tiles) {
  const kernels::TeLoweredProgram lowered =
      kernels::lower_te_program(kernel, dims, tiles);
  return extract_features(lowered.stmt, lowered.parallel_threads);
}

}  // namespace tvmbo::transfer
