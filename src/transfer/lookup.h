// Instant-config lookup: the read-only serving path behind the daemon's
// `config_lookup` request.
//
// Answers "best configuration for (kernel, size, nthreads)" from two
// sources, in order:
//   1. cache — an in-memory index of best measured records, built from the
//      shared PerfDatabase at startup and kept fresh by observe() as live
//      tuning jobs complete;
//   2. model — when no exact record exists and a cost model is attached,
//      the model ranks a sampled candidate pool and returns the predicted
//      top-k.
// Neither path touches the worker fleet, a measurement, or the scheduler
// lock: ConfigLookup has its own mutex and every query is a few map/string
// operations (cache) or a bounded featurize+predict sweep (model), so
// cached answers return in microseconds even while the daemon is tuning.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/perf_db.h"
#include "transfer/cost_model.h"

namespace tvmbo::transfer {

struct LookupOptions {
  std::size_t topk_cap = 16;     ///< server-side cap on requested top-k
  std::size_t model_pool = 128;  ///< candidates ranked by the model path
  std::uint64_t seed = 2023;     ///< candidate-sampling seed (determinism)
};

/// One answered configuration: measured (cache) or predicted (model).
struct LookupAnswer {
  std::string source;       ///< "cache", "model", or "none"
  std::string workload_id;  ///< resolved id ("" when unresolvable)
  std::int64_t nthreads = 1;
  std::size_t cache_records = 0;  ///< records behind a cache answer
  struct Candidate {
    std::vector<std::int64_t> tiles;
    double runtime_s = 0.0;  ///< measured (cache) or predicted (model)
  };
  std::vector<Candidate> configs;  ///< best first
  std::string error;  ///< non-empty when the query itself is invalid
};

class ConfigLookup {
 public:
  explicit ConfigLookup(LookupOptions options = {});

  /// Attaches (or replaces) the model fallback. The model must be fitted.
  void set_model(std::shared_ptr<const CostModel> model);
  bool has_model() const;

  /// Indexes every valid record; returns how many entered the cache.
  std::size_t load_database(const runtime::PerfDatabase& db);

  /// Folds one live record into the cache (no-op for invalid records).
  void observe(const runtime::TrialRecord& record);

  std::size_t cache_size() const;

  /// Answers (kernel, size, nthreads). `size` is a PolyBench dataset name
  /// ("mini".."extralarge"); unknown kernels/sizes yield an error answer.
  LookupAnswer lookup(const std::string& kernel, const std::string& size,
                      std::int64_t nthreads, std::size_t topk) const;

 private:
  struct Entry {
    std::vector<std::int64_t> tiles;
    double runtime_s = 0.0;
    std::size_t records = 0;  ///< valid records folded into this key
  };
  static std::string key(const std::string& workload_id,
                         std::int64_t nthreads);

  LookupOptions options_;
  mutable std::mutex mutex_;
  std::shared_ptr<const CostModel> model_;
  std::map<std::string, Entry> cache_;
};

}  // namespace tvmbo::transfer
