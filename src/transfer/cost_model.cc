#include "transfer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "surrogate/dataset.h"
#include "transfer/features.h"

namespace tvmbo::transfer {

bool parse_workload_id(const std::string& id, std::string* kernel,
                       std::string* size,
                       std::vector<std::int64_t>* dims) {
  const std::size_t slash = id.find('/');
  if (slash == std::string::npos || slash == 0) return false;
  const std::size_t bracket = id.find('[', slash + 1);
  if (bracket == std::string::npos || bracket == slash + 1) return false;
  if (id.empty() || id.back() != ']') return false;
  std::vector<std::int64_t> parsed;
  std::int64_t current = 0;
  bool have_digit = false;
  for (std::size_t i = bracket + 1; i + 1 < id.size(); ++i) {
    const char c = id[i];
    if (c >= '0' && c <= '9') {
      current = current * 10 + (c - '0');
      have_digit = true;
    } else if (c == 'x' && have_digit) {
      parsed.push_back(current);
      current = 0;
      have_digit = false;
    } else {
      return false;
    }
  }
  if (!have_digit) return false;
  parsed.push_back(current);
  if (kernel != nullptr) *kernel = id.substr(0, slash);
  if (size != nullptr) *size = id.substr(slash + 1, bracket - slash - 1);
  if (dims != nullptr) *dims = std::move(parsed);
  return true;
}

std::optional<TransferSample> featurize_record(
    const runtime::TrialRecord& record) {
  if (!record.valid || record.runtime_s <= 0.0) return std::nullopt;
  TransferSample sample;
  if (!parse_workload_id(record.workload_id, &sample.kernel, nullptr,
                         &sample.dims)) {
    return std::nullopt;
  }
  try {
    sample.features =
        featurize_config(sample.kernel, sample.dims, record.tiles);
  } catch (const std::exception&) {
    return std::nullopt;  // no TE program, or tiles don't fit the schedule
  }
  sample.workload_id = record.workload_id;
  sample.tiles = record.tiles;
  sample.runtime_s = record.runtime_s;
  sample.nthreads = record.nthreads;
  sample.backend = record.backend;
  return sample;
}

CostModel::CostModel(CostModelOptions options)
    : options_(std::move(options)),
      gbt_(options_.gbt),
      forest_(options_.forest) {
  TVMBO_CHECK(options_.learner == "gbt" || options_.learner == "forest")
      << "unknown transfer learner '" << options_.learner
      << "' (want gbt or forest)";
}

void CostModel::add(TransferSample sample) {
  TVMBO_CHECK_EQ(sample.features.size(), num_features())
      << "feature width mismatch for " << sample.workload_id;
  samples_.push_back(std::move(sample));
}

std::size_t CostModel::add_database(const runtime::PerfDatabase& db) {
  std::size_t added = 0;
  for (const runtime::TrialRecord& record : db.records()) {
    std::optional<TransferSample> sample = featurize_record(record);
    if (!sample.has_value()) continue;
    add(std::move(*sample));
    ++added;
  }
  return added;
}

void CostModel::fit() {
  TVMBO_CHECK_GE(samples_.size(), 2u)
      << "cost model needs at least 2 samples to fit";
  // Per-workload target centering (see the header): mean log-runtime per
  // workload id, plus the global mean as the prediction baseline.
  std::map<std::string, std::pair<double, std::size_t>> workload_stats;
  double global_sum = 0.0;
  for (const TransferSample& sample : samples_) {
    const double log_runtime = std::log(sample.runtime_s);
    auto& [sum, count] = workload_stats[sample.workload_id];
    sum += log_runtime;
    ++count;
    global_sum += log_runtime;
  }
  baseline_ = global_sum / static_cast<double>(samples_.size());
  surrogate::Dataset data;
  for (const TransferSample& sample : samples_) {
    const auto& [sum, count] = workload_stats[sample.workload_id];
    const double workload_mean = sum / static_cast<double>(count);
    data.add(sample.features, std::log(sample.runtime_s) - workload_mean);
  }
  // Fresh seed per fit: refitting the same sample list reproduces the
  // model bit-for-bit (the save/load contract of model_store.h).
  Rng rng(options_.seed);
  if (options_.learner == "gbt") {
    gbt_ = surrogate::GradientBoostedTrees(options_.gbt);
    gbt_.fit(data, rng);
  } else {
    forest_ = surrogate::RandomForest(options_.forest);
    forest_.fit(data, rng);
  }
  fitted_ = true;
  fitted_on_ = samples_.size();
  // Per-column inverse std for novelty(): z-scoring keeps wide-range
  // features (log footprints) from drowning narrow ones (fractions).
  const std::size_t width = num_features();
  std::vector<double> mean(width, 0.0), var(width, 0.0);
  for (const TransferSample& sample : samples_) {
    for (std::size_t j = 0; j < width; ++j) mean[j] += sample.features[j];
  }
  for (std::size_t j = 0; j < width; ++j) {
    mean[j] /= static_cast<double>(samples_.size());
  }
  for (const TransferSample& sample : samples_) {
    for (std::size_t j = 0; j < width; ++j) {
      const double d = sample.features[j] - mean[j];
      var[j] += d * d;
    }
  }
  feature_scale_.assign(width, 0.0);
  for (std::size_t j = 0; j < width; ++j) {
    const double std_dev =
        std::sqrt(var[j] / static_cast<double>(samples_.size()));
    // Constant columns get scale 0: any deviation from the constant would
    // be infinitely novel, which is too harsh for a single feature.
    feature_scale_[j] = std_dev > 1e-12 ? 1.0 / std_dev : 0.0;
  }
}

double CostModel::novelty(std::span<const double> features) const {
  TVMBO_CHECK(fitted_) << "cost model not fitted";
  TVMBO_CHECK_EQ(features.size(), feature_scale_.size())
      << "feature width mismatch in novelty";
  double best = std::numeric_limits<double>::infinity();
  for (const TransferSample& sample : samples_) {
    double dist_sq = 0.0;
    for (std::size_t j = 0; j < features.size(); ++j) {
      const double d =
          (features[j] - sample.features[j]) * feature_scale_[j];
      dist_sq += d * d;
      if (dist_sq >= best) break;
    }
    best = std::min(best, dist_sq);
  }
  if (!std::isfinite(best)) return 0.0;
  return std::sqrt(best / static_cast<double>(
                              std::max<std::size_t>(features.size(), 1)));
}

bool CostModel::observe(const runtime::TrialRecord& record) {
  std::optional<TransferSample> sample = featurize_record(record);
  if (!sample.has_value()) return false;
  add(std::move(*sample));
  const std::size_t pending = samples_.size() - fitted_on_;
  if (samples_.size() >= 2 &&
      (!fitted_ || pending > options_.refit_interval)) {
    fit();
  }
  return true;
}

double CostModel::predict_log_runtime(
    std::span<const double> features) const {
  TVMBO_CHECK(fitted_) << "cost model not fitted";
  const double centered = options_.learner == "gbt"
                              ? gbt_.predict(features)
                              : forest_.predict(features);
  return centered + baseline_;
}

double CostModel::predict_runtime(std::span<const double> features) const {
  return std::exp(predict_log_runtime(features));
}

std::vector<RankedConfig> rank_configs(const CostModel& model,
                                       const cs::ConfigurationSpace& space,
                                       const std::string& kernel,
                                       const std::vector<std::int64_t>& dims,
                                       std::size_t topk, std::size_t pool,
                                       std::uint64_t seed) {
  TVMBO_CHECK(model.fitted()) << "cost model not fitted";
  Rng rng(seed);
  std::vector<RankedConfig> ranked;
  std::unordered_set<std::uint64_t> seen;
  // Oversample to absorb duplicate draws from small spaces; the dedup set
  // keeps the pool at distinct configurations.
  const std::size_t max_draws = pool * 4 + 16;
  for (std::size_t draw = 0;
       draw < max_draws && ranked.size() < pool; ++draw) {
    cs::Configuration config = space.sample(rng);
    if (!seen.insert(config.hash()).second) continue;
    std::vector<std::int64_t> tiles = space.values_int(config);
    std::vector<double> features;
    try {
      features = featurize_config(kernel, dims, tiles);
    } catch (const std::exception&) {
      continue;  // candidate doesn't lower (e.g. rejected annotation)
    }
    RankedConfig candidate;
    candidate.config = std::move(config);
    candidate.tiles = std::move(tiles);
    candidate.predicted_runtime_s = model.predict_runtime(features);
    candidate.novelty = model.novelty(features);
    ranked.push_back(std::move(candidate));
  }
  const double weight = model.options().novelty_weight;
  auto score = [weight](const RankedConfig& c) {
    return std::log(c.predicted_runtime_s) + weight * c.novelty;
  };
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&score](const RankedConfig& a, const RankedConfig& b) {
                     return score(a) < score(b);
                   });
  if (ranked.size() > topk) ranked.resize(topk);
  return ranked;
}

std::vector<cs::Configuration> rank_seed_configs(
    const CostModel& model, const cs::ConfigurationSpace& space,
    const std::string& kernel, const std::vector<std::int64_t>& dims,
    std::size_t topk, std::size_t pool, std::uint64_t seed) {
  std::vector<cs::Configuration> configs;
  for (RankedConfig& candidate :
       rank_configs(model, space, kernel, dims, topk, pool, seed)) {
    configs.push_back(std::move(candidate.config));
  }
  return configs;
}

namespace {

/// Spearman rank correlation of two paired vectors (average ranks on ties).
double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  if (n < 2) return 0.0;
  auto ranks = [n](const std::vector<double>& values) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return values[x] < values[y];
                     });
    std::vector<double> rank(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i;
      while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
      const double mean_rank = 0.5 * (static_cast<double>(i) +
                                      static_cast<double>(j));
      for (std::size_t k = i; k <= j; ++k) rank[order[k]] = mean_rank;
      i = j + 1;
    }
    return rank;
  };
  const std::vector<double> ra = ranks(a);
  const std::vector<double> rb = ranks(b);
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_a += ra[i];
    mean_b += rb[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = ra[i] - mean_a;
    const double db = rb[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace

std::vector<LokoResult> leave_one_kernel_out(
    const std::vector<TransferSample>& samples,
    const CostModelOptions& options) {
  std::vector<std::string> kernels;
  for (const TransferSample& sample : samples) {
    if (std::find(kernels.begin(), kernels.end(), sample.kernel) ==
        kernels.end()) {
      kernels.push_back(sample.kernel);
    }
  }
  std::vector<LokoResult> results;
  for (const std::string& held_out : kernels) {
    CostModel model(options);
    std::vector<const TransferSample*> test;
    for (const TransferSample& sample : samples) {
      if (sample.kernel == held_out) {
        test.push_back(&sample);
      } else {
        model.add(sample);
      }
    }
    LokoResult result;
    result.kernel = held_out;
    result.train_size = model.size();
    result.test_size = test.size();
    if (model.size() < 2 || test.size() < 2) {
      results.push_back(std::move(result));
      continue;
    }
    model.fit();
    std::vector<double> predicted, measured;
    double best_measured = test[0]->runtime_s;
    double best_predicted_value = 0.0;
    double best_predicted_measured = 0.0;
    bool first = true;
    for (const TransferSample* sample : test) {
      const double prediction = model.predict_runtime(sample->features);
      predicted.push_back(prediction);
      measured.push_back(sample->runtime_s);
      best_measured = std::min(best_measured, sample->runtime_s);
      if (first || prediction < best_predicted_value) {
        best_predicted_value = prediction;
        best_predicted_measured = sample->runtime_s;
        first = false;
      }
    }
    result.rank_correlation = spearman(predicted, measured);
    result.top1_regret =
        best_measured > 0.0 ? best_predicted_measured / best_measured - 1.0
                            : 0.0;
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace tvmbo::transfer
