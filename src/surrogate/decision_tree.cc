#include "surrogate/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace tvmbo::surrogate {

DecisionTree::DecisionTree(TreeOptions options) : options_(options) {
  TVMBO_CHECK_GT(options_.max_depth, 0) << "max_depth must be positive";
  TVMBO_CHECK_GE(options_.min_samples_leaf, 1)
      << "min_samples_leaf must be >= 1";
}

void DecisionTree::fit(const Dataset& data,
                       std::span<const std::size_t> rows, Rng* rng) {
  TVMBO_CHECK(!data.x.empty()) << "fit on empty dataset";
  TVMBO_CHECK_EQ(data.x.size(), data.y.size()) << "dataset size mismatch";
  nodes_.clear();
  std::vector<std::size_t> working;
  if (rows.empty()) {
    working.resize(data.size());
    std::iota(working.begin(), working.end(), std::size_t{0});
  } else {
    working.assign(rows.begin(), rows.end());
  }
  if (options_.max_features > 0) {
    TVMBO_CHECK(rng != nullptr)
        << "random feature subsetting requires an Rng";
  }
  build(data, working, 0, working.size(), 0, rng);
}

int DecisionTree::build(const Dataset& data,
                        std::vector<std::size_t>& rows, std::size_t begin,
                        std::size_t end, int depth, Rng* rng) {
  TVMBO_CHECK_LT(begin, end) << "empty node range";
  const std::size_t count = end - begin;

  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double y = data.y[rows[i]];
    sum += y;
    sum_sq += y * y;
  }
  const double node_mean = sum / static_cast<double>(count);
  const double node_var =
      sum_sq / static_cast<double>(count) - node_mean * node_mean;

  auto make_leaf = [&]() -> int {
    Node leaf;
    leaf.value = node_mean;
    nodes_.push_back(leaf);
    return static_cast<int>(nodes_.size()) - 1;
  };

  if (depth >= options_.max_depth ||
      count < static_cast<std::size_t>(options_.min_samples_split) ||
      node_var <= 1e-24) {
    return make_leaf();
  }

  // Candidate features: all, or a random subset.
  const std::size_t num_features = data.num_features();
  std::vector<std::size_t> features(num_features);
  std::iota(features.begin(), features.end(), std::size_t{0});
  if (options_.max_features > 0 &&
      static_cast<std::size_t>(options_.max_features) < num_features) {
    rng->shuffle(features);
    features.resize(static_cast<std::size_t>(options_.max_features));
  }

  // Exact best split: for each candidate feature, sort this node's rows by
  // the feature and scan split points between distinct values.
  double best_gain = options_.min_variance_decrease;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::size_t> sorted(rows.begin() + begin, rows.begin() + end);
  const double total_sum = sum;
  for (std::size_t feature : features) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return data.x[a][feature] < data.x[b][feature];
              });
    double left_sum = 0.0;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      left_sum += data.y[sorted[i]];
      const double v = data.x[sorted[i]][feature];
      const double v_next = data.x[sorted[i + 1]][feature];
      if (v == v_next) continue;
      const std::size_t left_n = i + 1;
      const std::size_t right_n = count - left_n;
      if (left_n < static_cast<std::size_t>(options_.min_samples_leaf) ||
          right_n < static_cast<std::size_t>(options_.min_samples_leaf)) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      // Variance reduction up to constants: sum^2/n terms.
      const double gain =
          left_sum * left_sum / static_cast<double>(left_n) +
          right_sum * right_sum / static_cast<double>(right_n) -
          total_sum * total_sum / static_cast<double>(count);
      if (gain / static_cast<double>(count) > best_gain) {
        best_gain = gain / static_cast<double>(count);
        best_feature = static_cast<int>(feature);
        // Midpoint, unless v and v_next are so close it rounds up to
        // v_next — then `x <= threshold` would send every row left and
        // produce an empty partition. v itself always splits cleanly
        // (no training value lies strictly between v and v_next).
        best_threshold = 0.5 * (v + v_next);
        if (best_threshold >= v_next) best_threshold = v;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition rows in place around the chosen split.
  const auto middle = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) {
        return data.x[row][static_cast<std::size_t>(best_feature)] <=
               best_threshold;
      });
  const std::size_t split =
      static_cast<std::size_t>(middle - rows.begin());
  TVMBO_CHECK(split > begin && split < end)
      << "degenerate partition in tree build";

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_index)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_index)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(node_index)].value = node_mean;

  const int left = build(data, rows, begin, split, depth + 1, rng);
  const int right = build(data, rows, split, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

double DecisionTree::predict(std::span<const double> features) const {
  TVMBO_CHECK(fitted()) << "predict before fit";
  const Node* node = &nodes_[0];
  while (!node->is_leaf()) {
    TVMBO_CHECK_LT(static_cast<std::size_t>(node->feature), features.size())
        << "feature arity mismatch in predict";
    node = features[static_cast<std::size_t>(node->feature)] <=
                   node->threshold
               ? &nodes_[static_cast<std::size_t>(node->left)]
               : &nodes_[static_cast<std::size_t>(node->right)];
  }
  return node->value;
}

std::size_t DecisionTree::num_leaves() const {
  std::size_t leaves = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf()) ++leaves;
  }
  return leaves;
}

std::size_t DecisionTree::depth_below(int node) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.is_leaf()) return 1;
  return 1 + std::max(depth_below(n.left), depth_below(n.right));
}

std::size_t DecisionTree::depth() const {
  if (nodes_.empty()) return 0;
  return depth_below(0);
}

}  // namespace tvmbo::surrogate
