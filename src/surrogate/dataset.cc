#include "surrogate/dataset.h"

#include <cmath>

#include "common/logging.h"

namespace tvmbo::surrogate {

void Dataset::add(std::vector<double> features, double target) {
  if (!x.empty()) {
    TVMBO_CHECK_EQ(features.size(), x[0].size())
        << "feature arity mismatch in dataset";
  }
  x.push_back(std::move(features));
  y.push_back(target);
}

FeatureEncoder::FeatureEncoder(const cs::ConfigurationSpace* space)
    : space_(space) {
  TVMBO_CHECK(space_ != nullptr) << "encoder requires a space";
}

std::size_t FeatureEncoder::num_features() const {
  return 2 * space_->num_params();
}

std::vector<double> FeatureEncoder::encode(
    const cs::Configuration& config) const {
  std::vector<double> features;
  features.reserve(num_features());
  const std::vector<double> values = space_->values(config);
  for (std::size_t i = 0; i < space_->num_params(); ++i) {
    const auto& param = space_->param(i);
    const std::uint64_t card = param.cardinality();
    double position;
    if (card > 1) {
      position = static_cast<double>(config.index(i)) /
                 static_cast<double>(card - 1);
    } else if (card == 1) {
      position = 0.0;
    } else {
      // Continuous: normalize the real value.
      const auto& f =
          static_cast<const cs::UniformFloatHyperparameter&>(param);
      position = (config.real(i) - f.lower()) / (f.upper() - f.lower());
    }
    features.push_back(position);
    features.push_back(std::log2(1.0 + std::fabs(values[i])));
  }
  return features;
}

}  // namespace tvmbo::surrogate
