// Feature matrices for the surrogate models, plus the encoder that turns
// ConfigSpace configurations into model features.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "configspace/configspace.h"

namespace tvmbo::surrogate {

/// Row-major regression dataset.
struct Dataset {
  std::vector<std::vector<double>> x;  ///< feature rows
  std::vector<double> y;               ///< targets

  std::size_t size() const { return x.size(); }
  std::size_t num_features() const { return x.empty() ? 0 : x[0].size(); }

  void add(std::vector<double> features, double target);
};

/// Encodes a configuration as surrogate features. Each parameter
/// contributes two features: its normalized position in the domain
/// (ordinal locality) and log2(1 + |value|) (magnitude, which is what
/// matters for tile sizes spanning 1..2400).
class FeatureEncoder {
 public:
  explicit FeatureEncoder(const cs::ConfigurationSpace* space);

  std::size_t num_features() const;
  std::vector<double> encode(const cs::Configuration& config) const;

 private:
  const cs::ConfigurationSpace* space_;
};

}  // namespace tvmbo::surrogate
