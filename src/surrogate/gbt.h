// Gradient-boosted regression trees (squared loss) — the cost model behind
// AutoTVM's XGBTuner ("train a XGBoost model to predict the runtime of
// lowered IR and pick the next batch according to the prediction").
//
// Squared-error boosting: each round fits a shallow tree to the current
// residuals and adds it with shrinkage; optional row subsampling
// (stochastic gradient boosting) matches XGBoost's subsample parameter.
#pragma once

#include <vector>

#include "common/rng.h"
#include "surrogate/decision_tree.h"

namespace tvmbo::surrogate {

struct GbtOptions {
  int num_rounds = 80;
  double learning_rate = 0.15;
  double subsample = 0.8;  ///< row fraction per round (without replacement)
  TreeOptions tree{.max_depth = 4, .min_samples_split = 2,
                   .min_samples_leaf = 2};
  /// Early stop when the training RMSE improves by less than this over a
  /// round (0 disables).
  double early_stop_tolerance = 0.0;
};

class GradientBoostedTrees {
 public:
  explicit GradientBoostedTrees(GbtOptions options = {});

  void fit(const Dataset& data, Rng& rng);

  bool fitted() const { return fitted_; }
  std::size_t num_rounds_used() const { return trees_.size(); }

  double predict(std::span<const double> features) const;

  /// Training RMSE after the final round (model-quality diagnostics).
  double training_rmse() const { return training_rmse_; }

 private:
  GbtOptions options_;
  double base_score_ = 0.0;
  double training_rmse_ = 0.0;
  bool fitted_ = false;
  std::vector<DecisionTree> trees_;
};

}  // namespace tvmbo::surrogate
