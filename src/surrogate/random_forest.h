// Random-Forest regressor with predictive uncertainty — the surrogate
// model ytopt's Bayesian optimization uses (§2.2 of the paper: "a
// dynamically updated Random Forest surrogate model ... balance
// exploration and exploitation"). The per-tree spread provides the
// uncertainty the LCB acquisition needs.
#pragma once

#include <vector>

#include "common/rng.h"
#include "surrogate/decision_tree.h"

namespace tvmbo::surrogate {

struct ForestOptions {
  int num_trees = 100;
  /// Fit trees on the shared thread pool. Deterministic regardless: every
  /// tree's RNG stream is derived up front, so parallel and serial fits
  /// produce identical forests.
  bool parallel_fit = false;
  /// Bootstrap sample fraction per tree (with replacement).
  double bootstrap_fraction = 1.0;
  bool bootstrap = true;
  TreeOptions tree{.max_depth = 16, .min_samples_split = 2,
                   .min_samples_leaf = 1};
  /// Per-split random feature count; 0 = ceil(num_features / 3)
  /// (the scikit-learn regression default).
  int max_features = 0;
};

struct Prediction {
  double mean = 0.0;
  double std = 0.0;
};

class RandomForest {
 public:
  explicit RandomForest(ForestOptions options = {});

  void fit(const Dataset& data, Rng& rng);

  bool fitted() const { return !trees_.empty(); }
  std::size_t num_trees() const { return trees_.size(); }

  double predict(std::span<const double> features) const;
  /// Mean and standard deviation across trees.
  Prediction predict_with_std(std::span<const double> features) const;

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
};

}  // namespace tvmbo::surrogate
