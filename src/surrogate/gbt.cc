#include "surrogate/gbt.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace tvmbo::surrogate {

GradientBoostedTrees::GradientBoostedTrees(GbtOptions options)
    : options_(options) {
  TVMBO_CHECK_GT(options_.num_rounds, 0) << "num_rounds must be positive";
  TVMBO_CHECK(options_.learning_rate > 0.0 && options_.learning_rate <= 1.0)
      << "learning_rate must be in (0, 1]";
  TVMBO_CHECK(options_.subsample > 0.0 && options_.subsample <= 1.0)
      << "subsample must be in (0, 1]";
}

void GradientBoostedTrees::fit(const Dataset& data, Rng& rng) {
  TVMBO_CHECK(!data.x.empty()) << "fit on empty dataset";
  trees_.clear();
  const std::size_t n = data.size();

  base_score_ =
      std::accumulate(data.y.begin(), data.y.end(), 0.0) /
      static_cast<double>(n);

  // Current model output per training row.
  std::vector<double> prediction(n, base_score_);
  Dataset residuals;
  residuals.x = data.x;
  residuals.y.resize(n);

  const std::size_t sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             options_.subsample * static_cast<double>(n))));

  double previous_rmse = std::numeric_limits<double>::infinity();
  for (int round = 0; round < options_.num_rounds; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      residuals.y[i] = data.y[i] - prediction[i];
    }
    Rng round_rng = rng.split();
    std::vector<std::size_t> rows;
    if (sample_size < n) {
      rows = round_rng.sample_without_replacement(n, sample_size);
    }
    DecisionTree tree(options_.tree);
    tree.fit(residuals, rows, &round_rng);

    double sq_error = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      prediction[i] += options_.learning_rate * tree.predict(data.x[i]);
      const double e = data.y[i] - prediction[i];
      sq_error += e * e;
    }
    trees_.push_back(std::move(tree));

    training_rmse_ = std::sqrt(sq_error / static_cast<double>(n));
    if (options_.early_stop_tolerance > 0.0 &&
        previous_rmse - training_rmse_ < options_.early_stop_tolerance) {
      break;
    }
    previous_rmse = training_rmse_;
  }
  fitted_ = true;
}

double GradientBoostedTrees::predict(
    std::span<const double> features) const {
  TVMBO_CHECK(fitted_) << "predict before fit";
  double value = base_score_;
  for (const DecisionTree& tree : trees_) {
    value += options_.learning_rate * tree.predict(features);
  }
  return value;
}

}  // namespace tvmbo::surrogate
