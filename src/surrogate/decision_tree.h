// CART regression tree with exact variance-reduction splits.
//
// The building block for both the Random-Forest surrogate (ytopt) and the
// gradient-boosted model (AutoTVM's XGBTuner). Trees are fit on at most a
// few hundred observations here, so exact split scans (sort per feature
// per node) are the right tradeoff — no histograms needed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "surrogate/dataset.h"

namespace tvmbo::surrogate {

struct TreeOptions {
  int max_depth = 16;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  double min_variance_decrease = 0.0;
  /// Features examined per split: 0 = all (CART), otherwise a random
  /// subset of this size (random-forest style decorrelation).
  int max_features = 0;
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeOptions options = {});

  /// Fits on `data` restricted to `rows` (all rows when empty). `rng` is
  /// required when options.max_features > 0.
  void fit(const Dataset& data, std::span<const std::size_t> rows = {},
           Rng* rng = nullptr);

  double predict(std::span<const double> features) const;

  bool fitted() const { return !nodes_.empty(); }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_leaves() const;
  std::size_t depth() const;

 private:
  struct Node {
    int feature = -1;      ///< -1 for leaves
    double threshold = 0;  ///< go left when x[feature] <= threshold
    double value = 0;      ///< leaf prediction (mean of its samples)
    int left = -1;
    int right = -1;
    bool is_leaf() const { return feature < 0; }
  };

  int build(const Dataset& data, std::vector<std::size_t>& rows,
            std::size_t begin, std::size_t end, int depth, Rng* rng);
  std::size_t depth_below(int node) const;

  TreeOptions options_;
  std::vector<Node> nodes_;
};

}  // namespace tvmbo::surrogate
