#include "surrogate/random_forest.h"

#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace tvmbo::surrogate {

RandomForest::RandomForest(ForestOptions options) : options_(options) {
  TVMBO_CHECK_GT(options_.num_trees, 0) << "num_trees must be positive";
  TVMBO_CHECK(options_.bootstrap_fraction > 0.0 &&
              options_.bootstrap_fraction <= 1.0)
      << "bootstrap_fraction must be in (0, 1]";
}

void RandomForest::fit(const Dataset& data, Rng& rng) {
  TVMBO_CHECK(!data.x.empty()) << "fit on empty dataset";
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(options_.num_trees));

  TreeOptions tree_options = options_.tree;
  if (options_.max_features == 0) {
    tree_options.max_features = static_cast<int>(
        (data.num_features() + 2) / 3);  // ceil(p/3), regression default
  } else {
    tree_options.max_features = options_.max_features;
  }

  const std::size_t n = data.size();
  const std::size_t sample_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(options_.bootstrap_fraction *
                          static_cast<double>(n))));

  // Derive every tree's independent RNG stream up front so the fit is
  // deterministic whether trees are built serially or on the pool.
  const auto num_trees = static_cast<std::size_t>(options_.num_trees);
  std::vector<Rng> streams;
  streams.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) streams.push_back(rng.split());

  trees_.assign(num_trees, DecisionTree(tree_options));
  auto fit_one = [&](std::size_t t) {
    Rng& tree_rng = streams[t];
    std::vector<std::size_t> rows;
    if (options_.bootstrap) {
      rows.resize(sample_size);
      for (std::size_t i = 0; i < sample_size; ++i) {
        rows[i] = static_cast<std::size_t>(
            tree_rng.uniform_int(static_cast<std::int64_t>(n)));
      }
    }
    trees_[t].fit(data, rows, &tree_rng);
  };
  if (options_.parallel_fit) {
    default_thread_pool().parallel_for(num_trees, fit_one);
  } else {
    for (std::size_t t = 0; t < num_trees; ++t) fit_one(t);
  }
}

double RandomForest::predict(std::span<const double> features) const {
  return predict_with_std(features).mean;
}

Prediction RandomForest::predict_with_std(
    std::span<const double> features) const {
  TVMBO_CHECK(fitted()) << "predict before fit";
  double sum = 0.0, sum_sq = 0.0;
  for (const DecisionTree& tree : trees_) {
    const double value = tree.predict(features);
    sum += value;
    sum_sq += value * value;
  }
  const double n = static_cast<double>(trees_.size());
  Prediction prediction;
  prediction.mean = sum / n;
  const double variance =
      std::max(0.0, sum_sq / n - prediction.mean * prediction.mean);
  prediction.std = std::sqrt(variance);
  return prediction;
}

}  // namespace tvmbo::surrogate
