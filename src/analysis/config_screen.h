// Config-space pre-screening: run the full verifier (structure + bounds +
// races) over a candidate program before it is handed to a measurement
// backend, so statically-illegal configs cost an analysis pass instead of
// a worker. MeasureRunner consumes the result through
// MeasureInput::static_check; tvmbo_lint aggregates ScreenStats over
// whole config spaces.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/verify.h"

namespace tvmbo::analysis {

struct ScreenResult {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// First violation as "rule: message" (the tuner-visible error string),
  /// empty when the program screens clean.
  std::string first_error() const;
};

/// Verifies one lowered program against the full rule catalogue.
ScreenResult screen_program(const te::Stmt& stmt,
                            const std::vector<te::Tensor>& params,
                            const VerifyOptions& options = {});

/// Aggregate counters for a sweep over many configs.
struct ScreenStats {
  std::size_t screened = 0;
  std::size_t rejected = 0;
  std::map<std::string, std::size_t> by_rule;

  void add(const ScreenResult& result);
  /// e.g. "screened 64 config(s), rejected 2 (out-of-bounds-access: 2)".
  std::string summary() const;
};

}  // namespace tvmbo::analysis
