#include "analysis/witness.h"

#include <sstream>

namespace tvmbo::analysis {
namespace {

// Floor division/modulo matching the interpreter and C emitter (round
// toward negative infinity; divisor must be positive).
std::int64_t floor_div_positive(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b) != 0 && a < 0) --q;
  return q;
}

std::int64_t floor_mod_positive(std::int64_t a, std::int64_t b) {
  return a - floor_div_positive(a, b) * b;
}

void render_iteration(
    std::ostringstream& os,
    const std::vector<std::pair<std::string, std::int64_t>>& iteration) {
  os << "{";
  for (std::size_t i = 0; i < iteration.size(); ++i) {
    if (i > 0) os << ", ";
    os << iteration[i].first << "=" << iteration[i].second;
  }
  os << "}";
}

}  // namespace

std::string Witness::describe() const {
  std::ostringstream os;
  os << "iterations ";
  render_iteration(os, iteration_a);
  os << " and ";
  render_iteration(os, iteration_b);
  os << " both touch " << tensor << "[";
  for (std::size_t d = 0; d < element.size(); ++d) {
    if (d > 0) os << ", ";
    os << element[d];
  }
  os << "] (" << access_a << " vs " << access_b << ")";
  if (validated) os << " [witness validated by replay]";
  return os.str();
}

bool eval_int_expr(const te::ExprNode* expr, const WitnessEnv& env,
                   std::int64_t* out) {
  if (expr == nullptr) return false;
  switch (expr->kind()) {
    case te::ExprKind::kIntImm:
      *out = static_cast<const te::IntImmNode*>(expr)->value;
      return true;
    case te::ExprKind::kVar: {
      const auto it = env.find(static_cast<const te::VarNode*>(expr));
      if (it == env.end()) return false;
      *out = it->second;
      return true;
    }
    case te::ExprKind::kBinary: {
      const auto* node = static_cast<const te::BinaryNode*>(expr);
      std::int64_t a = 0;
      std::int64_t b = 0;
      if (!eval_int_expr(node->a.get(), env, &a) ||
          !eval_int_expr(node->b.get(), env, &b)) {
        return false;
      }
      switch (node->op) {
        case te::BinaryOp::kAdd:
          *out = a + b;
          return true;
        case te::BinaryOp::kSub:
          *out = a - b;
          return true;
        case te::BinaryOp::kMul:
          *out = a * b;
          return true;
        case te::BinaryOp::kDiv:
        case te::BinaryOp::kFloorDiv:
          if (b <= 0) return false;
          *out = floor_div_positive(a, b);
          return true;
        case te::BinaryOp::kMod:
          if (b <= 0) return false;
          *out = floor_mod_positive(a, b);
          return true;
        case te::BinaryOp::kMin:
          *out = a < b ? a : b;
          return true;
        case te::BinaryOp::kMax:
          *out = a > b ? a : b;
          return true;
      }
      return false;
    }
    case te::ExprKind::kUnary: {
      const auto* node = static_cast<const te::UnaryNode*>(expr);
      std::int64_t a = 0;
      if (!eval_int_expr(node->operand.get(), env, &a)) return false;
      switch (node->op) {
        case te::UnaryOp::kNeg:
          *out = -a;
          return true;
        case te::UnaryOp::kAbs:
          *out = a < 0 ? -a : a;
          return true;
        default:
          return false;  // sqrt/exp/log are not integer expressions
      }
    }
    case te::ExprKind::kCompare: {
      const auto* node = static_cast<const te::CompareNode*>(expr);
      std::int64_t a = 0;
      std::int64_t b = 0;
      if (!eval_int_expr(node->a.get(), env, &a) ||
          !eval_int_expr(node->b.get(), env, &b)) {
        return false;
      }
      bool truth = false;
      switch (node->op) {
        case te::CmpOp::kLt:
          truth = a < b;
          break;
        case te::CmpOp::kLe:
          truth = a <= b;
          break;
        case te::CmpOp::kGt:
          truth = a > b;
          break;
        case te::CmpOp::kGe:
          truth = a >= b;
          break;
        case te::CmpOp::kEq:
          truth = a == b;
          break;
        case te::CmpOp::kNe:
          truth = a != b;
          break;
      }
      *out = truth ? 1 : 0;
      return true;
    }
    case te::ExprKind::kSelect: {
      const auto* node = static_cast<const te::SelectNode*>(expr);
      std::int64_t condition = 0;
      if (!eval_int_expr(node->condition.get(), env, &condition)) {
        return false;
      }
      const te::Expr& branch =
          condition != 0 ? node->true_value : node->false_value;
      return eval_int_expr(branch.get(), env, out);
    }
    default:
      // Float immediates and tensor accesses cannot appear in an index
      // expression we are willing to certify.
      return false;
  }
}

bool validate_witness(const std::vector<te::Expr>& indices_a,
                      const std::vector<te::Expr>& indices_b,
                      const WitnessEnv& env_a, const WitnessEnv& env_b,
                      Witness* witness) {
  if (indices_a.size() != indices_b.size()) return false;
  std::vector<std::int64_t> element;
  element.reserve(indices_a.size());
  for (std::size_t d = 0; d < indices_a.size(); ++d) {
    std::int64_t value_a = 0;
    std::int64_t value_b = 0;
    if (!eval_int_expr(indices_a[d].get(), env_a, &value_a)) return false;
    if (!eval_int_expr(indices_b[d].get(), env_b, &value_b)) return false;
    if (value_a != value_b) return false;
    element.push_back(value_a);
  }
  if (witness != nullptr) {
    witness->element = std::move(element);
    witness->validated = true;
  }
  return true;
}

}  // namespace tvmbo::analysis
