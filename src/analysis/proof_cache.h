// Structural proof cache: memoizes race-freedom verdicts and whole-stmt
// verification results across schedule configs that lower to the same IR
// shape, so `tvmbo_tune --screen`, distd worker re-verification, and
// `tvmbo_lint --sweep` stop re-proving isomorphic programs.
//
// Keys are content hashes, never pointers:
//   * variables hash as de Bruijn-style binding ordinals (the n-th loop
//     var bound on the path from the root), so two lowerings of the same
//     schedule shape collide regardless of VarNode addresses or names;
//   * tensors hash as name + shape;
//   * affine index/guard expressions hash as their canonical
//     decomposition — constant plus coefficient terms sorted by ordinal —
//     so `a[i + j]` and `a[j + i]` produce the same key;
//   * per-loop keys additionally normalize EVERY loop annotation to
//     kSerial: a race verdict depends only on the iteration structure,
//     never on which loops are annotated, so one proof serves a loop
//     under kParallel, under kVectorized, and under any annotation state
//     of its inner loops (this is where the bulk of sweep hits come
//     from — vec/unroll/threads knob variants share one proof).
//
// Two independently seeded 64-bit lanes form a 128-bit key; a collision
// would need both lanes to agree. The cache is process-global and
// mutex-guarded (parallel runners and distd workers share it), capped,
// and can be disabled with TVMBO_ANALYSIS_CACHE=0 or set_enabled(false)
// for cache-off differential runs. Stats distinguish queries from hits
// from actual prover executions so tests can assert the ">= 5x fewer
// prover runs" acceptance bar directly.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "analysis/dependence.h"
#include "analysis/verify.h"
#include "common/json.h"
#include "te/ir.h"

namespace tvmbo::analysis {

struct AffineForm;

/// 128-bit structural cache key (two independently seeded 64-bit lanes).
struct CacheKey {
  std::uint64_t lane0 = 0;
  std::uint64_t lane1 = 0;
  bool operator==(const CacheKey& other) const {
    return lane0 == other.lane0 && lane1 == other.lane1;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const {
    return static_cast<std::size_t>(key.lane0 ^ (key.lane1 * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental two-lane structural hasher. Feed scalars/strings directly;
/// bind_var() assigns the next binding ordinal to a loop var before
/// hashing anything that mentions it (enclosing loops first).
class StructuralHasher {
 public:
  /// `normalize_for_kinds` hashes every ForKind as kSerial (per-loop race
  /// keys); verification keys keep the real kinds.
  explicit StructuralHasher(bool normalize_for_kinds)
      : normalize_for_kinds_(normalize_for_kinds) {}

  void feed(std::uint64_t value);
  void feed_string(const std::string& text);
  /// Assigns the next de Bruijn ordinal to `var` (later feeds hash it by
  /// ordinal). Rebinding shadows; unbind restores the previous binding.
  void bind_var(const te::VarNode* var);
  void unbind_var(const te::VarNode* var);

  void feed_expr(const te::ExprNode* expr);
  void feed_stmt(const te::StmtNode* stmt);
  /// Canonical affine feed: constant + coefficient terms sorted by
  /// binding ordinal (used for guard-constraint context in loop keys).
  void feed_affine(const AffineForm& form);

  CacheKey key() const { return {lane0_, lane1_}; }

 private:
  std::uint64_t var_token(const te::VarNode* var);

  bool normalize_for_kinds_;
  std::uint64_t lane0_ = 0x6a09e667f3bcc908ULL;
  std::uint64_t lane1_ = 0xbb67ae8584caa73bULL;
  std::unordered_map<const te::VarNode*, std::vector<std::uint64_t>>
      ordinals_;
  std::uint64_t next_ordinal_ = 1;
};

/// Counters for one process (or since the last reset_stats()).
struct AnalysisCacheStats {
  std::size_t loop_queries = 0;  ///< per-loop race-freedom lookups
  std::size_t loop_hits = 0;
  std::size_t prover_runs = 0;  ///< full LoopProver executions (misses)
  std::size_t verify_queries = 0;  ///< whole-stmt verify_stmt lookups
  std::size_t verify_hits = 0;
  std::size_t verify_runs = 0;  ///< full Verifier executions (misses)

  /// One-line human summary for tool output.
  std::string summary() const;
  /// Payload for the `analysis_cache_stats` trace event.
  Json to_json() const;
};

/// Cached per-loop verdict: a LoopProof minus the (config-specific) node
/// pointer, re-attached on hit.
struct CachedLoopProof {
  Verdict verdict = Verdict::kUnknown;
  std::string detail;
  std::optional<Witness> witness;
};

class ProofCache {
 public:
  /// The process-global instance shared by every analysis consumer.
  /// Honors TVMBO_ANALYSIS_CACHE=0 at first use.
  static ProofCache& global();

  bool enabled() const;
  void set_enabled(bool enabled);

  /// Lookup counts a query; a true return counts a hit. Disabled caches
  /// still count queries (so cache-off runs produce comparable stats) but
  /// never hit and never store.
  bool lookup_loop(const CacheKey& key, CachedLoopProof* out);
  void store_loop(const CacheKey& key, CachedLoopProof proof);
  bool lookup_verify(const CacheKey& key, std::vector<Violation>* out);
  void store_verify(const CacheKey& key, std::vector<Violation> violations);

  /// Called by the analyzers when the full prover/verifier actually runs.
  void note_prover_run();
  void note_verify_run();

  AnalysisCacheStats stats() const;
  void reset_stats();
  /// Drops all entries (stats survive).
  void clear();

 private:
  ProofCache();

  // Soft cap; both maps are dropped wholesale when exceeded (sweep working
  // sets are far smaller, this only bounds pathological runs).
  static constexpr std::size_t kMaxEntries = 1 << 16;

  mutable std::mutex mutex_;
  bool enabled_ = true;
  std::unordered_map<CacheKey, CachedLoopProof, CacheKeyHash> loops_;
  std::unordered_map<CacheKey, std::vector<Violation>, CacheKeyHash>
      verifies_;
  AnalysisCacheStats stats_;
};

}  // namespace tvmbo::analysis
