// Affine index maps and interval arithmetic over loop extents — the
// numeric core shared by the IR verifier (verify.h) and the dependence
// analyzer (dependence.h).
//
// The lowered loop IR indexes tensors almost exclusively with affine
// expressions of loop variables (coefficient * var + offset): splits
// produce outer*factor + inner, compute_at regions produce lo + p, and
// reductions add nothing. analyze_affine() decomposes such an expression
// into an AffineForm; affine_range() bounds it over the enclosing loop
// extents; constrained_range() additionally tightens the bounds with the
// guard conditions on the access path (split tail guards, compute_at
// region guards, the triangular guards of LU/Cholesky), cancelling terms
// symbolically so e.g. `yo*8 + yi` under the guard `yo*8 + yi < 10` gets
// the exact bound 9 rather than the unguarded 15.
//
// Fused axes produce floordiv/mod indices that are not affine;
// range_of_expr() falls back to structural recursion for those (and for
// min/max/select), re-entering the affine path on subexpressions, so every
// index the lowering pipeline can emit still gets a finite bound.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "te/expr.h"

namespace tvmbo::analysis {

/// Affine decomposition of an integer expression:
///   constant + sum(coefficient_i * var_i)
/// `affine` is false when the expression does not fit this shape.
struct AffineForm {
  bool affine = true;
  std::int64_t constant = 0;
  std::vector<std::pair<const te::VarNode*, std::int64_t>> terms;

  /// Adds `coefficient * var`, merging with an existing term for the same
  /// var (symbolic cancellation happens here: coefficients may sum to 0).
  void add_term(const te::VarNode* var, std::int64_t coefficient);
  /// Coefficient of `var` (0 when absent).
  std::int64_t coeff(const te::VarNode* var) const;
  /// True when the form has no variable with a non-zero coefficient.
  bool is_constant() const;
  /// Sorts terms by the var's stable id, so syntactically different
  /// spellings of the same form (`i + j` vs `j + i`) become one canonical
  /// shape. The dependence analyzer canonicalizes residual forms before
  /// instancing and the proof cache before hashing; lowering must NOT
  /// (pack-path expr reconstruction depends on source term order).
  void canonicalize();
};

/// Decomposes `expr` into an AffineForm (add/sub/mul-by-constant over vars
/// and int immediates). Anything else yields `affine == false`.
AffineForm analyze_affine(const te::ExprNode* expr);

AffineForm affine_add(const AffineForm& a, const AffineForm& b);
AffineForm affine_sub(const AffineForm& a, const AffineForm& b);

/// Inclusive integer interval; a disengaged side is unbounded.
struct Interval {
  std::optional<std::int64_t> lo;
  std::optional<std::int64_t> hi;

  /// Fully unbounded interval.
  static Interval unbounded() { return {}; }
  static Interval point(std::int64_t v) { return {v, v}; }
  bool bounded() const { return lo.has_value() && hi.has_value(); }
};

/// Loop-variable environment: var -> extent, meaning var in [0, extent-1].
class VarRanges {
 public:
  void bind(const te::VarNode* var, std::int64_t extent);
  void pop();
  /// Extent of `var`, or nullptr when unbound.
  const std::int64_t* extent_of(const te::VarNode* var) const;
  bool contains(const te::VarNode* var) const {
    return extent_of(var) != nullptr;
  }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<const te::VarNode*, std::int64_t>> entries_;
};

/// Appends the affine constraints `h >= 0` implied by `condition` being
/// true. Understands compares and the `select(a, b, 0)` encoding of
/// logical_and; disjunctions, `!=`, and non-affine operands contribute
/// nothing (conservative).
void collect_constraints(const te::Expr& condition,
                         std::vector<AffineForm>& out);

/// Like collect_constraints, but also reports whether the condition was
/// captured *exactly* (every conjunct became an affine constraint). The
/// exact dependence solver needs this: a satisfying point of relaxed
/// guards may not correspond to a real execution, so "proven racy"
/// claims are only made when the guards were exact (disjointness proofs
/// stay sound either way — dropping constraints only enlarges the
/// system's solution set).
bool collect_constraints_checked(const te::Expr& condition,
                                 std::vector<AffineForm>& out);

/// Appends the constraints implied by `condition` being *false* (for else
/// branches): the negation of a single compare. Conjunctions negate to
/// disjunctions and contribute nothing.
void collect_negated_constraints(const te::Expr& condition,
                                 std::vector<AffineForm>& out);

/// Exactness-reporting variant of collect_negated_constraints (see
/// collect_constraints_checked).
bool collect_negated_constraints_checked(const te::Expr& condition,
                                         std::vector<AffineForm>& out);

/// Range of `form` with every var spanning [0, extent-1]. A var with an
/// unknown extent and a non-zero coefficient makes the interval unbounded.
Interval affine_range(const AffineForm& form, const VarRanges& ranges);

/// affine_range() tightened by guard constraints: for each `h >= 0`,
///   form <= max(form + h)   and   form >= min(form - h),
/// where the addition cancels shared terms symbolically first.
Interval constrained_range(const AffineForm& form, const VarRanges& ranges,
                           const std::vector<AffineForm>& constraints);

/// Range of an arbitrary integer expression: the constrained affine path
/// when the expression is affine, structural recursion otherwise
/// (floordiv/mod by positive constants, min/max, select with
/// branch-refined constraints, compares). Unbounded when nothing applies.
Interval range_of_expr(const te::ExprNode* expr, const VarRanges& ranges,
                       const std::vector<AffineForm>& constraints);

}  // namespace tvmbo::analysis
