#include "analysis/proof_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "analysis/affine.h"

namespace tvmbo::analysis {
namespace {

// splitmix64 finalizers with distinct constants per lane; the two lanes
// never mix with each other, so a collision needs both to agree.
std::uint64_t mix0(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t mix1(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Node-kind tags kept disjoint across enums so a Store can never hash
// like a For with coincidental fields.
enum HashTag : std::uint64_t {
  kTagAffine = 0x41,
  kTagExpr = 0x1000,
  kTagStmt = 0x2000,
  kTagTensor = 0x3000,
  kTagBoundVar = 0x4000,
  kTagFreeVar = 0x5000,
  kTagNull = 0x6000,
};

}  // namespace

void StructuralHasher::feed(std::uint64_t value) {
  lane0_ = mix0(lane0_ ^ value);
  lane1_ = mix1(lane1_ + (value | 1) * 0x9e3779b97f4a7c15ULL);
}

void StructuralHasher::feed_string(const std::string& text) {
  feed(text.size());
  feed(fnv1a(text.data(), text.size()));
}

void StructuralHasher::bind_var(const te::VarNode* var) {
  ordinals_[var].push_back(next_ordinal_++);
}

void StructuralHasher::unbind_var(const te::VarNode* var) {
  auto it = ordinals_.find(var);
  if (it == ordinals_.end()) return;
  it->second.pop_back();
  if (it->second.empty()) ordinals_.erase(it);
}

std::uint64_t StructuralHasher::var_token(const te::VarNode* var) {
  const auto it = ordinals_.find(var);
  if (it != ordinals_.end() && !it->second.empty()) {
    return kTagBoundVar + it->second.back();
  }
  // Free var (should not occur in closed lowered IR): fall back to the
  // name so the hash stays deterministic rather than address-dependent.
  return kTagFreeVar ^ fnv1a(var->name.data(), var->name.size());
}

void StructuralHasher::feed_affine(const AffineForm& form) {
  if (!form.affine) {
    feed(kTagNull);
    return;
  }
  feed(kTagAffine);
  feed(static_cast<std::uint64_t>(form.constant));
  std::vector<std::pair<std::uint64_t, std::int64_t>> terms;
  terms.reserve(form.terms.size());
  for (const auto& [var, coefficient] : form.terms) {
    terms.emplace_back(var_token(var), coefficient);
  }
  std::sort(terms.begin(), terms.end());
  feed(terms.size());
  for (const auto& [token, coefficient] : terms) {
    feed(token);
    feed(static_cast<std::uint64_t>(coefficient));
  }
}

void StructuralHasher::feed_expr(const te::ExprNode* expr) {
  if (expr == nullptr) {
    feed(kTagNull);
    return;
  }
  // Affine expressions hash as their canonical decomposition (constant +
  // coefficient terms sorted by binding ordinal), so syntactically
  // different spellings of the same index map — `i + j` vs `j + i` —
  // collide on purpose.
  const AffineForm form = analyze_affine(expr);
  if (form.affine) {
    feed_affine(form);
    return;
  }
  feed(kTagExpr + static_cast<std::uint64_t>(expr->kind()));
  switch (expr->kind()) {
    case te::ExprKind::kIntImm:
      feed(static_cast<std::uint64_t>(
          static_cast<const te::IntImmNode*>(expr)->value));
      return;
    case te::ExprKind::kFloatImm: {
      const double value = static_cast<const te::FloatImmNode*>(expr)->value;
      std::uint64_t bits = 0;
      std::memcpy(&bits, &value, sizeof(bits));
      feed(bits);
      return;
    }
    case te::ExprKind::kVar:
      feed(var_token(static_cast<const te::VarNode*>(expr)));
      return;
    case te::ExprKind::kBinary: {
      const auto* node = static_cast<const te::BinaryNode*>(expr);
      feed(static_cast<std::uint64_t>(node->op));
      feed_expr(node->a.get());
      feed_expr(node->b.get());
      return;
    }
    case te::ExprKind::kUnary: {
      const auto* node = static_cast<const te::UnaryNode*>(expr);
      feed(static_cast<std::uint64_t>(node->op));
      feed_expr(node->operand.get());
      return;
    }
    case te::ExprKind::kCompare: {
      const auto* node = static_cast<const te::CompareNode*>(expr);
      feed(static_cast<std::uint64_t>(node->op));
      feed_expr(node->a.get());
      feed_expr(node->b.get());
      return;
    }
    case te::ExprKind::kSelect: {
      const auto* node = static_cast<const te::SelectNode*>(expr);
      feed_expr(node->condition.get());
      feed_expr(node->true_value.get());
      feed_expr(node->false_value.get());
      return;
    }
    case te::ExprKind::kTensorAccess: {
      const auto* node = static_cast<const te::TensorAccessNode*>(expr);
      feed(kTagTensor);
      feed_string(node->tensor->name);
      feed(node->tensor->shape.size());
      for (const std::int64_t dim : node->tensor->shape) {
        feed(static_cast<std::uint64_t>(dim));
      }
      feed(node->indices.size());
      for (const te::Expr& index : node->indices) feed_expr(index.get());
      return;
    }
    case te::ExprKind::kReduce: {
      const auto* node = static_cast<const te::ReduceNode*>(expr);
      feed(static_cast<std::uint64_t>(node->reduce_kind));
      for (const te::Var& axis : node->axes) feed(var_token(axis.get()));
      feed_expr(node->source.get());
      return;
    }
  }
}

void StructuralHasher::feed_stmt(const te::StmtNode* stmt) {
  if (stmt == nullptr) {
    feed(kTagNull);
    return;
  }
  feed(kTagStmt + static_cast<std::uint64_t>(stmt->kind()));
  switch (stmt->kind()) {
    case te::StmtKind::kFor: {
      const auto* node = static_cast<const te::ForNode*>(stmt);
      feed(static_cast<std::uint64_t>(node->extent));
      feed(normalize_for_kinds_
               ? static_cast<std::uint64_t>(te::ForKind::kSerial)
               : static_cast<std::uint64_t>(node->for_kind));
      bind_var(node->var.get());
      feed_stmt(node->body.get());
      unbind_var(node->var.get());
      return;
    }
    case te::StmtKind::kStore: {
      const auto* node = static_cast<const te::StoreNode*>(stmt);
      feed(kTagTensor);
      feed_string(node->tensor->name);
      feed(node->tensor->shape.size());
      for (const std::int64_t dim : node->tensor->shape) {
        feed(static_cast<std::uint64_t>(dim));
      }
      feed(node->indices.size());
      for (const te::Expr& index : node->indices) feed_expr(index.get());
      feed_expr(node->value.get());
      return;
    }
    case te::StmtKind::kSeq: {
      const auto* node = static_cast<const te::SeqNode*>(stmt);
      feed(node->stmts.size());
      for (const te::Stmt& sub : node->stmts) feed_stmt(sub.get());
      return;
    }
    case te::StmtKind::kIfThenElse: {
      const auto* node = static_cast<const te::IfThenElseNode*>(stmt);
      feed_expr(node->condition.get());
      feed_stmt(node->then_case.get());
      feed(node->else_case != nullptr ? 1 : 0);
      if (node->else_case) feed_stmt(node->else_case.get());
      return;
    }
    case te::StmtKind::kRealize: {
      const auto* node = static_cast<const te::RealizeNode*>(stmt);
      feed(kTagTensor);
      feed_string(node->tensor->name);
      feed(node->tensor->shape.size());
      for (const std::int64_t dim : node->tensor->shape) {
        feed(static_cast<std::uint64_t>(dim));
      }
      feed_stmt(node->body.get());
      return;
    }
  }
}

std::string AnalysisCacheStats::summary() const {
  std::ostringstream os;
  os << "proof cache: loop queries " << loop_queries << ", hits "
     << loop_hits << ", prover runs " << prover_runs << "; verify queries "
     << verify_queries << ", hits " << verify_hits << ", runs "
     << verify_runs;
  return os.str();
}

Json AnalysisCacheStats::to_json() const {
  Json out = Json::object();
  out.set("loop_queries", loop_queries);
  out.set("loop_hits", loop_hits);
  out.set("prover_runs", prover_runs);
  out.set("verify_queries", verify_queries);
  out.set("verify_hits", verify_hits);
  out.set("verify_runs", verify_runs);
  return out;
}

ProofCache::ProofCache() {
  const char* env = std::getenv("TVMBO_ANALYSIS_CACHE");
  if (env != nullptr && std::string(env) == "0") enabled_ = false;
}

ProofCache& ProofCache::global() {
  static ProofCache cache;
  return cache;
}

bool ProofCache::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void ProofCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool ProofCache::lookup_loop(const CacheKey& key, CachedLoopProof* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.loop_queries;
  if (!enabled_) return false;
  const auto it = loops_.find(key);
  if (it == loops_.end()) return false;
  ++stats_.loop_hits;
  if (out != nullptr) *out = it->second;
  return true;
}

void ProofCache::store_loop(const CacheKey& key, CachedLoopProof proof) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  if (loops_.size() + verifies_.size() >= kMaxEntries) {
    loops_.clear();
    verifies_.clear();
  }
  loops_[key] = std::move(proof);
}

bool ProofCache::lookup_verify(const CacheKey& key,
                               std::vector<Violation>* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.verify_queries;
  if (!enabled_) return false;
  const auto it = verifies_.find(key);
  if (it == verifies_.end()) return false;
  ++stats_.verify_hits;
  if (out != nullptr) *out = it->second;
  return true;
}

void ProofCache::store_verify(const CacheKey& key,
                              std::vector<Violation> violations) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  if (loops_.size() + verifies_.size() >= kMaxEntries) {
    loops_.clear();
    verifies_.clear();
  }
  verifies_[key] = std::move(violations);
}

void ProofCache::note_prover_run() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.prover_runs;
}

void ProofCache::note_verify_run() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.verify_runs;
}

AnalysisCacheStats ProofCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ProofCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = AnalysisCacheStats{};
}

void ProofCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  loops_.clear();
  verifies_.clear();
}

}  // namespace tvmbo::analysis
