// Exact integer linear-arithmetic solver — the "Presburger-lite" engine
// behind the dependence analyzer's three-valued verdicts.
//
// A PresburgerSystem is a conjunction of linear constraints
//   sum(c_i * x_i) + k >= 0   (or == 0)
// over integer variables with known inclusive bounds (loop iteration
// variables always have them: extents are concrete in the lowered IR).
// solve() decides satisfiability exactly or gives up explicitly:
//
//   kUnsat   — no integer point satisfies the system (a disjointness proof)
//   kSat     — a concrete satisfying assignment is returned (a race witness
//              candidate, later validated by replaying the accesses)
//   kUnknown — a work bound was hit; the caller must treat the query as
//              undecided (never as either answer)
//
// The pipeline, cheapest first:
//   1. equality normalization — Gaussian-style substitution on unit
//      coefficients (Omega's exact elimination step) plus the GCD
//      divisibility test for the rest;
//   2. interval (bounds-consistency) propagation to a fixpoint;
//   3. Fourier–Motzkin elimination with integer tightening (every derived
//      inequality is divided by the gcd of its coefficients and floored) as
//      a rational/parity refutation accelerator — FME UNSAT is sound for
//      integers, FME SAT proves nothing and falls through;
//   4. a complete depth-first search over the (finite) propagated domains
//      that either finds an integer witness, exhausts the space (exact
//      UNSAT), or runs out of budget (kUnknown).
//
// All arithmetic is widened to 128 bits internally so tile-sized
// coefficients times large extents cannot overflow silently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tvmbo::analysis {

/// Work bounds for one solve() call. Exceeding either yields kUnknown —
/// never a wrong answer, never an unbounded run.
struct SolverLimits {
  /// Cap on the FME working set; elimination is abandoned (not the whole
  /// solve) when a projection would exceed it.
  std::size_t max_fme_constraints = 2048;
  /// Budget for the complete search, counted in value assignments tried.
  std::size_t max_search_nodes = 100000;
};

enum class SolveStatus { kUnsat, kSat, kUnknown };

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  /// Satisfying assignment indexed by variable id; only valid for kSat.
  std::vector<std::int64_t> assignment;
  /// Search nodes spent (tests assert budgets are honored).
  std::size_t search_nodes = 0;
  /// Why the solver gave up, when status == kUnknown.
  std::string note;
};

class PresburgerSystem {
 public:
  /// Adds an integer variable constrained to [lo, hi] (inclusive) and
  /// returns its id. Requires lo <= hi.
  std::size_t add_var(std::string name, std::int64_t lo, std::int64_t hi);

  /// Adds sum(coeffs[i] * x_i) + constant >= 0. `coeffs` may be shorter
  /// than num_vars(); missing entries are zero.
  void add_inequality(std::vector<std::int64_t> coeffs,
                      std::int64_t constant);
  /// Adds sum(coeffs[i] * x_i) + constant == 0.
  void add_equality(std::vector<std::int64_t> coeffs, std::int64_t constant);

  std::size_t num_vars() const { return vars_.size(); }
  const std::string& var_name(std::size_t v) const { return vars_[v].name; }
  std::int64_t var_lo(std::size_t v) const { return vars_[v].lo; }
  std::int64_t var_hi(std::size_t v) const { return vars_[v].hi; }

  SolveResult solve(const SolverLimits& limits = {}) const;

 private:
  struct VarInfo {
    std::string name;
    std::int64_t lo;
    std::int64_t hi;
  };
  struct Constraint {
    std::vector<std::int64_t> coeffs;  // dense over vars at add time
    std::int64_t constant = 0;
    bool equality = false;
  };

  std::vector<VarInfo> vars_;
  std::vector<Constraint> constraints_;
};

}  // namespace tvmbo::analysis
