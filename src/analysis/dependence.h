// Affine dependence analysis: machine-checked race-freedom proofs for
// concurrent loop annotations (kParallel, kVectorized).
//
// A loop is race-free when no two distinct iterations touch the same
// tensor element with at least one write. For every write/access pair on
// the same tensor (W-W and W-R, including the pair of an access with
// itself) the prover tries, cheapest rule first:
//
//  * the **coefficient rule** — when both index maps carry the same
//    non-zero coefficient `c` on the loop var, the index difference
//    between iterations p_a != p_b is `c*(p_a - p_b) + R` with R the
//    difference of the residual forms (inner loop vars freshly instanced
//    per side); if R's range fits strictly inside (-|c|, |c|), the
//    difference can never be zero. This is the proof for split axes:
//    `ty*yo + yi` across yo iterations differs by at least ty - (ty-1).
//
//  * the **separation rule** — instance both sides and bound the plain
//    index difference under each side's own path constraints; a range
//    entirely >= 1 or <= -1 means the two accesses never overlap at all.
//    This is the proof for the triangular guards of LU/Cholesky: a write
//    to column j guarded by `j > k` cannot alias a read of column k.
//
//  * the **exact solver** (presburger.h) — when the interval rules are
//    inconclusive, the pair's aliasing condition (index equalities per
//    dimension, guard constraints, iteration distinctness, with
//    floordiv/mod by positive constants linearized through auxiliary
//    quotient/remainder variables) is decided exactly. UNSAT proves the
//    pair disjoint (coupled indices like `c1*i + c2*j` and split-tail
//    modulo residues prove here); SAT yields a concrete iteration pair
//    which is *validated* by replaying the original index expressions
//    (witness.h) before the loop is reported racy; a solver budget hit
//    leaves the pair — and the loop — kUnknown.
//
// Verdicts are three-valued (Verdict): kSafe with a proof, kRacy with a
// replay-validated counterexample Witness, or kUnknown (never a guess).
// Results are memoized in the structural proof cache (proof_cache.h):
// the per-loop key normalizes loop annotations and canonicalizes index
// forms, so isomorphic loops across schedule configs prove only once.
//
// Tensors Realize'd *inside* the loop body are rejected outright (the
// closure tier shares one buffer across iterations), reported kRacy
// without an elementwise witness. Shared outer loop vars are NOT
// instanced, so symbolic cancellation keeps the proofs exact even when
// outer extents are unknown.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/presburger.h"
#include "analysis/witness.h"
#include "te/ir.h"

namespace tvmbo::analysis {

/// Which loop annotations assert concurrent execution and therefore need
/// a race-freedom proof (kParallel, kVectorized). kSerial and kUnrolled
/// preserve sequential order and never do.
bool kind_requires_race_proof(te::ForKind kind);

/// Three-valued outcome of a race-freedom query.
enum class Verdict {
  kSafe,     ///< proven: no two distinct iterations conflict
  kRacy,     ///< proven: a concrete conflicting iteration pair exists
  kUnknown,  ///< undecided: a solver work bound was hit
};

const char* verdict_name(Verdict verdict);

/// Proof outcome for one proof-requiring loop.
struct LoopProof {
  const te::ForNode* loop = nullptr;
  /// Convenience mirror of `verdict == kSafe`; annotate/lower gate on it.
  bool proven = false;
  Verdict verdict = Verdict::kUnknown;
  std::string detail;  ///< how it was proven, or the first failing pair
  /// Replay-validated counterexample; present for solver-found races
  /// (absent for realize-inside rejections, which race on a whole shared
  /// buffer rather than one element).
  std::optional<Witness> witness;
};

/// Knobs for one analysis run. The proof cache only serves queries made
/// with default options so non-default solver budgets can never pollute
/// cached verdicts.
struct DependenceOptions {
  SolverLimits solver;
  bool use_cache = true;

  bool cacheable() const {
    const SolverLimits defaults;
    return use_cache &&
           solver.max_fme_constraints == defaults.max_fme_constraints &&
           solver.max_search_nodes == defaults.max_search_nodes;
  }
};

/// Proves (or refutes, or gives up on) race freedom for every loop in
/// `root` whose kind requires it. Analysis runs from the root so outer
/// loop vars keep their extents and guards.
std::vector<LoopProof> analyze_parallel_loops(const te::Stmt& root);
std::vector<LoopProof> analyze_parallel_loops(const te::Stmt& root,
                                              const DependenceOptions& options);

/// The kParallel loops of `root` with a successful race-freedom proof,
/// identified by node address — codegen gates OpenMP pragma emission on
/// membership.
std::vector<const te::ForNode*> proven_parallel_loops(const te::Stmt& root);

/// The kVectorized loops of `root` with a successful race-freedom proof,
/// identified by node address — codegen gates `#pragma omp simd` emission
/// on membership exactly as proven_parallel_loops gates `omp parallel
/// for`.
std::vector<const te::ForNode*> proven_vectorized_loops(
    const te::Stmt& root);

/// Throws CheckError (rule `parallel-loop-race`) unless the loop bound by
/// `loop_var` in `root` is proven race-free — a kRacy verdict embeds the
/// witness in the message, a kUnknown verdict says so. A loop whose kind
/// needs no proof passes trivially. `context` names the caller (schedule
/// primitive or lowering stage) in the error message.
void require_race_free(const te::Stmt& root, const te::Var& loop_var,
                       const std::string& context);

}  // namespace tvmbo::analysis
