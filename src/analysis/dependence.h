// Affine dependence analysis: machine-checked race-freedom proofs for
// concurrent loop annotations (kParallel, kVectorized).
//
// A loop is race-free when no two distinct iterations touch the same
// tensor element with at least one write. For every write/access pair on
// the same tensor (W-W and W-R, including the pair of an access with
// itself) the prover tries, per tensor dimension:
//
//  * the **coefficient rule** — when both index maps carry the same
//    non-zero coefficient `c` on the loop var, the index difference
//    between iterations p_a != p_b is `c*(p_a - p_b) + R` with R the
//    difference of the residual forms (inner loop vars freshly instanced
//    per side); if R's range fits strictly inside (-|c|, |c|), the
//    difference can never be zero. This is the proof for split axes:
//    `ty*yo + yi` across yo iterations differs by at least ty - (ty-1).
//
//  * the **separation rule** — instance both sides and bound the plain
//    index difference under each side's own path constraints; a range
//    entirely >= 1 or <= -1 means the two accesses never overlap at all.
//    This is the proof for the triangular guards of LU/Cholesky: a write
//    to column j guarded by `j > k` cannot alias a read of column k.
//
// Tensors Realize'd *inside* the loop body are per-iteration private
// buffers and are excluded. Shared outer loop vars are NOT instanced, so
// symbolic cancellation keeps the proofs exact even when outer extents
// are unknown.
#pragma once

#include <string>
#include <vector>

#include "te/ir.h"

namespace tvmbo::analysis {

/// Which loop annotations assert concurrent execution and therefore need
/// a race-freedom proof (kParallel, kVectorized). kSerial and kUnrolled
/// preserve sequential order and never do.
bool kind_requires_race_proof(te::ForKind kind);

/// Proof outcome for one proof-requiring loop.
struct LoopProof {
  const te::ForNode* loop = nullptr;
  bool proven = false;
  std::string detail;  ///< how it was proven, or the first failing pair
};

/// Proves (or fails to prove) race freedom for every loop in `root` whose
/// kind requires it. Analysis runs from the root so outer loop vars keep
/// their extents and guards.
std::vector<LoopProof> analyze_parallel_loops(const te::Stmt& root);

/// The kParallel loops of `root` with a successful race-freedom proof,
/// identified by node address — codegen gates OpenMP pragma emission on
/// membership.
std::vector<const te::ForNode*> proven_parallel_loops(const te::Stmt& root);

/// The kVectorized loops of `root` with a successful race-freedom proof,
/// identified by node address — codegen gates `#pragma omp simd` emission
/// on membership exactly as proven_parallel_loops gates `omp parallel
/// for`.
std::vector<const te::ForNode*> proven_vectorized_loops(
    const te::Stmt& root);

/// Throws CheckError (rule `parallel-loop-race`) unless the loop bound by
/// `loop_var` in `root` is proven race-free. A loop whose kind needs no
/// proof passes trivially. `context` names the caller (schedule primitive
/// or lowering stage) in the error message.
void require_race_free(const te::Stmt& root, const te::Var& loop_var,
                       const std::string& context);

}  // namespace tvmbo::analysis
