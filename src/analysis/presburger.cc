#include "analysis/presburger.h"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/logging.h"

namespace tvmbo::analysis {
namespace {

using Wide = __int128;

constexpr std::int64_t kCoeffLimit = std::int64_t{1} << 62;

std::int64_t clamp_wide(Wide v) {
  if (v > Wide(kCoeffLimit)) return kCoeffLimit;
  if (v < -Wide(kCoeffLimit)) return -kCoeffLimit;
  return static_cast<std::int64_t>(v);
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  a = a < 0 ? -a : a;
  b = b < 0 ? -b : b;
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// floor(a / b) for b > 0.
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b) != 0 && a < 0) --q;
  return q;
}

// ceil(a / b) for b > 0.
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b) != 0 && a > 0) ++q;
  return q;
}

/// One inequality sum(coeffs * x) + constant >= 0 over dense var indices.
struct Ineq {
  std::vector<std::int64_t> coeffs;
  std::int64_t constant = 0;
};

/// Divides by the gcd of the coefficients and floors the constant — exact
/// for integer solutions (Omega's "integer tightening" normalization).
void tighten(Ineq& q) {
  std::int64_t g = 0;
  for (std::int64_t c : q.coeffs) g = gcd64(g, c);
  if (g <= 1) return;
  for (std::int64_t& c : q.coeffs) c /= g;
  q.constant = floor_div(q.constant, g);
}

bool is_constant(const Ineq& q) {
  return std::all_of(q.coeffs.begin(), q.coeffs.end(),
                     [](std::int64_t c) { return c == 0; });
}

struct Domain {
  std::int64_t lo;
  std::int64_t hi;
  bool empty() const { return lo > hi; }
};

/// Bounds-consistency propagation of `ineqs` over `domains` to a fixpoint
/// (pass-capped; propagation only ever shrinks, so capping stays sound).
/// Returns false when some domain empties (the system is UNSAT).
bool propagate(const std::vector<Ineq>& ineqs, std::vector<Domain>& domains) {
  for (int pass = 0; pass < 100; ++pass) {
    bool changed = false;
    for (const Ineq& q : ineqs) {
      // Max achievable value of the affine form over current domains.
      Wide smax = q.constant;
      for (std::size_t v = 0; v < q.coeffs.size(); ++v) {
        const std::int64_t c = q.coeffs[v];
        if (c > 0) {
          smax += Wide(c) * domains[v].hi;
        } else if (c < 0) {
          smax += Wide(c) * domains[v].lo;
        }
      }
      if (smax < 0) return false;
      for (std::size_t v = 0; v < q.coeffs.size(); ++v) {
        const std::int64_t c = q.coeffs[v];
        if (c == 0) continue;
        // smax without v's max contribution: c*x_v + rest_max >= 0 must
        // hold, so x_v is bounded by -rest_max / c.
        const Wide contrib =
            c > 0 ? Wide(c) * domains[v].hi : Wide(c) * domains[v].lo;
        const Wide rest = smax - contrib;
        if (c > 0) {
          // x_v >= ceil(-rest / c)
          const Wide bound_num = -rest;
          if (bound_num > Wide(kCoeffLimit)) return false;
          const std::int64_t nb =
              ceil_div(clamp_wide(bound_num), c);
          if (nb > domains[v].lo) {
            domains[v].lo = nb;
            changed = true;
          }
        } else {
          // x_v <= floor(rest / -c)
          Wide bound_num = rest;
          if (bound_num > Wide(kCoeffLimit)) bound_num = Wide(kCoeffLimit);
          const std::int64_t nb =
              floor_div(clamp_wide(bound_num), -c);
          if (nb < domains[v].hi) {
            domains[v].hi = nb;
            changed = true;
          }
        }
        if (domains[v].empty()) return false;
      }
    }
    if (!changed) break;
  }
  return true;
}

/// Fourier–Motzkin refutation with integer tightening. Returns true when
/// the system is proven UNSAT; false means "no conclusion" (either the
/// projection stayed satisfiable or the working set blew past the limit).
bool fme_refutes(std::vector<Ineq> work, std::size_t num_vars,
                 const std::vector<Domain>& domains,
                 const SolverLimits& limits) {
  // Var bounds participate as ordinary inequalities.
  for (std::size_t v = 0; v < num_vars; ++v) {
    Ineq lo;
    lo.coeffs.assign(num_vars, 0);
    lo.coeffs[v] = 1;
    lo.constant = -domains[v].lo;
    work.push_back(std::move(lo));
    Ineq hi;
    hi.coeffs.assign(num_vars, 0);
    hi.coeffs[v] = -1;
    hi.constant = domains[v].hi;
    work.push_back(std::move(hi));
  }
  for (std::size_t v = 0; v < num_vars; ++v) {
    std::vector<Ineq> lower, upper, rest;
    for (Ineq& q : work) {
      if (q.coeffs[v] > 0) {
        lower.push_back(std::move(q));
      } else if (q.coeffs[v] < 0) {
        upper.push_back(std::move(q));
      } else {
        rest.push_back(std::move(q));
      }
    }
    if (rest.size() + lower.size() * upper.size() >
        limits.max_fme_constraints) {
      return false;  // abandoned, not refuted
    }
    work = std::move(rest);
    for (const Ineq& l : lower) {
      for (const Ineq& u : upper) {
        const std::int64_t al = l.coeffs[v];
        const std::int64_t au = -u.coeffs[v];
        Ineq combined;
        combined.coeffs.assign(num_vars, 0);
        bool overflow = false;
        for (std::size_t i = 0; i < num_vars; ++i) {
          const Wide c = Wide(au) * l.coeffs[i] + Wide(al) * u.coeffs[i];
          if (c > Wide(kCoeffLimit) || c < -Wide(kCoeffLimit)) {
            overflow = true;
            break;
          }
          combined.coeffs[i] = static_cast<std::int64_t>(c);
        }
        const Wide k = Wide(au) * l.constant + Wide(al) * u.constant;
        if (overflow || k > Wide(kCoeffLimit) || k < -Wide(kCoeffLimit)) {
          return false;  // coefficients out of range: abandon
        }
        combined.constant = static_cast<std::int64_t>(k);
        tighten(combined);
        if (is_constant(combined)) {
          if (combined.constant < 0) return true;  // 0 >= -k with k < 0
          continue;
        }
        work.push_back(std::move(combined));
      }
    }
  }
  for (const Ineq& q : work) {
    if (is_constant(q) && q.constant < 0) return true;
  }
  return false;
}

/// Complete bounded DFS: enumerate the propagated domains, propagating
/// after every assignment. Exact when it finishes; kUnknown on budget.
struct Searcher {
  const std::vector<Ineq>& ineqs;
  /// Vars with a non-zero coefficient somewhere; only these need
  /// branching. Unconstrained vars keep their domain lo in the answer.
  const std::vector<char>& constrained;
  std::size_t budget;
  std::size_t nodes = 0;

  SolveStatus search(std::vector<Domain> domains,
                     std::vector<std::int64_t>& out) {
    if (!propagate(ineqs, domains)) return SolveStatus::kUnsat;
    // Pick the unassigned constrained var with the smallest domain; a var
    // is "assigned" when its domain is a point.
    std::size_t pick = domains.size();
    unsigned __int128 best = 0;
    for (std::size_t v = 0; v < domains.size(); ++v) {
      if (!constrained[v]) continue;
      const unsigned __int128 width =
          static_cast<unsigned __int128>(Wide(domains[v].hi) -
                                         Wide(domains[v].lo));
      if (width == 0) continue;
      if (pick == domains.size() || width < best) {
        pick = v;
        best = width;
      }
    }
    if (pick == domains.size()) {
      // Full assignment: double-check every constraint exactly.
      for (const Ineq& q : ineqs) {
        Wide sum = q.constant;
        for (std::size_t v = 0; v < domains.size(); ++v) {
          sum += Wide(q.coeffs[v]) * domains[v].lo;
        }
        if (sum < 0) return SolveStatus::kUnsat;
      }
      out.resize(domains.size());
      for (std::size_t v = 0; v < domains.size(); ++v) {
        out[v] = domains[v].lo;
      }
      return SolveStatus::kSat;
    }
    const Domain range = domains[pick];
    for (std::int64_t value = range.lo; value <= range.hi; ++value) {
      if (++nodes > budget) return SolveStatus::kUnknown;
      std::vector<Domain> child = domains;
      child[pick] = {value, value};
      const SolveStatus status = search(std::move(child), out);
      if (status != SolveStatus::kUnsat) return status;
    }
    return SolveStatus::kUnsat;
  }
};

}  // namespace

std::size_t PresburgerSystem::add_var(std::string name, std::int64_t lo,
                                      std::int64_t hi) {
  TVMBO_CHECK_LE(lo, hi) << "presburger var '" << name
                         << "' has an empty domain";
  vars_.push_back({std::move(name), lo, hi});
  return vars_.size() - 1;
}

void PresburgerSystem::add_inequality(std::vector<std::int64_t> coeffs,
                                      std::int64_t constant) {
  TVMBO_CHECK_LE(coeffs.size(), vars_.size())
      << "inequality names an unknown var";
  constraints_.push_back({std::move(coeffs), constant, /*equality=*/false});
}

void PresburgerSystem::add_equality(std::vector<std::int64_t> coeffs,
                                    std::int64_t constant) {
  TVMBO_CHECK_LE(coeffs.size(), vars_.size())
      << "equality names an unknown var";
  constraints_.push_back({std::move(coeffs), constant, /*equality=*/true});
}

SolveResult PresburgerSystem::solve(const SolverLimits& limits) const {
  SolveResult result;
  const std::size_t n = vars_.size();

  // Densify.
  std::vector<Ineq> ineqs;
  struct Equality {
    std::vector<std::int64_t> coeffs;
    std::int64_t constant;
  };
  std::vector<Equality> equalities;
  for (const Constraint& c : constraints_) {
    std::vector<std::int64_t> dense(n, 0);
    std::copy(c.coeffs.begin(), c.coeffs.end(), dense.begin());
    if (c.equality) {
      equalities.push_back({std::move(dense), c.constant});
    } else {
      ineqs.push_back({std::move(dense), c.constant});
    }
  }

  // Equality normalization: substitute out vars carrying a unit
  // coefficient (exact, Omega-style); GCD-test the rest and keep them as
  // inequality pairs.
  //
  // A substitution records x_v = sum(coeffs * x) + constant; they are
  // replayed in reverse at the end to reconstruct the full assignment.
  struct Substitution {
    std::size_t var;
    std::vector<std::int64_t> coeffs;
    std::int64_t constant;
  };
  std::vector<Substitution> subs;
  std::vector<bool> eliminated(n, false);

  auto substitute_into = [&](std::vector<std::int64_t>& coeffs,
                             std::int64_t& constant,
                             const Substitution& sub) -> bool {
    const std::int64_t factor = coeffs[sub.var];
    if (factor == 0) return true;
    coeffs[sub.var] = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Wide c = Wide(coeffs[i]) + Wide(factor) * sub.coeffs[i];
      if (c > Wide(kCoeffLimit) || c < -Wide(kCoeffLimit)) return false;
      coeffs[i] = static_cast<std::int64_t>(c);
    }
    const Wide k = Wide(constant) + Wide(factor) * sub.constant;
    if (k > Wide(kCoeffLimit) || k < -Wide(kCoeffLimit)) return false;
    constant = static_cast<std::int64_t>(k);
    return true;
  };

  bool progress = true;
  while (progress && !equalities.empty()) {
    progress = false;
    for (std::size_t e = 0; e < equalities.size(); ++e) {
      Equality& eq = equalities[e];
      // GCD feasibility first: g | constant or no integer solution.
      std::int64_t g = 0;
      bool any = false;
      for (std::int64_t c : eq.coeffs) {
        if (c != 0) any = true;
        g = gcd64(g, c);
      }
      if (!any) {
        if (eq.constant != 0) {
          result.status = SolveStatus::kUnsat;
          return result;
        }
        equalities.erase(equalities.begin() + e);
        progress = true;
        break;
      }
      if (g > 1 && (eq.constant % g) != 0) {
        result.status = SolveStatus::kUnsat;
        return result;
      }
      std::size_t unit = n;
      for (std::size_t v = 0; v < n; ++v) {
        if (eq.coeffs[v] == 1 || eq.coeffs[v] == -1) {
          unit = v;
          break;
        }
      }
      if (unit == n) continue;
      // coeff == +1:  x_v = -(constant + sum_others)
      // coeff == -1:  x_v = constant + sum_others
      const std::int64_t sign = eq.coeffs[unit] == 1 ? -1 : 1;
      Substitution sub;
      sub.var = unit;
      sub.coeffs.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (i != unit) sub.coeffs[i] = sign * eq.coeffs[i];
      }
      sub.constant = sign * eq.constant;
      equalities.erase(equalities.begin() + e);
      // x_v's own bounds survive as inequalities on the substituted form.
      Ineq lo;
      lo.coeffs = sub.coeffs;
      lo.constant = sub.constant - vars_[unit].lo;  // expr - lo >= 0
      Ineq hi;
      hi.coeffs.assign(n, 0);
      for (std::size_t i = 0; i < n; ++i) hi.coeffs[i] = -sub.coeffs[i];
      hi.constant = vars_[unit].hi - sub.constant;  // hi - expr >= 0
      ineqs.push_back(std::move(lo));
      ineqs.push_back(std::move(hi));
      bool overflow = false;
      for (Equality& other : equalities) {
        if (!substitute_into(other.coeffs, other.constant, sub)) {
          overflow = true;
        }
      }
      for (Ineq& other : ineqs) {
        if (!substitute_into(other.coeffs, other.constant, sub)) {
          overflow = true;
        }
      }
      if (overflow) {
        result.status = SolveStatus::kUnknown;
        result.note = "coefficient overflow during equality substitution";
        return result;
      }
      eliminated[unit] = true;
      subs.push_back(std::move(sub));
      progress = true;
      break;
    }
  }
  // Leftover equalities (no unit coefficient): keep exactly as two
  // inequalities; the search remains complete.
  for (const Equality& eq : equalities) {
    Ineq ge{eq.coeffs, eq.constant};
    Ineq le;
    le.coeffs.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) le.coeffs[i] = -eq.coeffs[i];
    le.constant = -eq.constant;
    ineqs.push_back(std::move(ge));
    ineqs.push_back(std::move(le));
  }
  for (Ineq& q : ineqs) tighten(q);

  // Domains for the surviving vars (eliminated vars get a placeholder
  // point domain so indices stay aligned; their values are reconstructed
  // from the substitutions afterwards).
  std::vector<Domain> domains(n);
  for (std::size_t v = 0; v < n; ++v) {
    domains[v] = eliminated[v] ? Domain{0, 0}
                               : Domain{vars_[v].lo, vars_[v].hi};
  }

  if (!propagate(ineqs, domains)) {
    result.status = SolveStatus::kUnsat;
    return result;
  }
  if (fme_refutes(ineqs, n, domains, limits)) {
    result.status = SolveStatus::kUnsat;
    return result;
  }

  std::vector<char> constrained(n, 0);
  for (const Ineq& q : ineqs) {
    for (std::size_t v = 0; v < n; ++v) {
      if (q.coeffs[v] != 0) constrained[v] = 1;
    }
  }
  Searcher searcher{ineqs, constrained, limits.max_search_nodes};
  std::vector<std::int64_t> assignment;
  const SolveStatus status = searcher.search(domains, assignment);
  result.search_nodes = searcher.nodes;
  result.status = status;
  if (status == SolveStatus::kUnknown) {
    result.note = "search budget exhausted (" +
                  std::to_string(limits.max_search_nodes) + " nodes)";
    return result;
  }
  if (status != SolveStatus::kSat) return result;

  // Reconstruct eliminated vars in reverse substitution order.
  for (auto it = subs.rbegin(); it != subs.rend(); ++it) {
    Wide value = it->constant;
    for (std::size_t i = 0; i < n; ++i) {
      value += Wide(it->coeffs[i]) * assignment[i];
    }
    assignment[it->var] = clamp_wide(value);
  }
  result.assignment = std::move(assignment);
  return result;
}

}  // namespace tvmbo::analysis
