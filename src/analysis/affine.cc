#include "analysis/affine.h"

#include <algorithm>

namespace tvmbo::analysis {
namespace {

std::optional<std::int64_t> opt_min(std::optional<std::int64_t> a,
                                    std::optional<std::int64_t> b) {
  if (a.has_value() && b.has_value()) return std::min(*a, *b);
  return a.has_value() ? a : b;
}

std::optional<std::int64_t> opt_max(std::optional<std::int64_t> a,
                                    std::optional<std::int64_t> b) {
  if (a.has_value() && b.has_value()) return std::max(*a, *b);
  return a.has_value() ? a : b;
}

AffineForm affine_scale(const AffineForm& form, std::int64_t factor) {
  AffineForm out;
  out.affine = form.affine;
  out.constant = form.constant * factor;
  if (factor != 0) {
    for (const auto& [var, coefficient] : form.terms) {
      out.add_term(var, coefficient * factor);
    }
  }
  return out;
}

// floor division matching the interpreter/emitter semantics (round toward
// negative infinity; divisor known positive here).
std::int64_t floor_div_positive(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b) != 0 && a < 0) --q;
  return q;
}

}  // namespace

void AffineForm::add_term(const te::VarNode* var, std::int64_t coefficient) {
  if (coefficient == 0) return;
  for (auto it = terms.begin(); it != terms.end(); ++it) {
    if (it->first == var) {
      it->second += coefficient;
      if (it->second == 0) terms.erase(it);
      return;
    }
  }
  terms.emplace_back(var, coefficient);
}

std::int64_t AffineForm::coeff(const te::VarNode* var) const {
  for (const auto& [v, c] : terms) {
    if (v == var) return c;
  }
  return 0;
}

bool AffineForm::is_constant() const {
  for (const auto& [v, c] : terms) {
    (void)v;
    if (c != 0) return false;
  }
  return true;
}

void AffineForm::canonicalize() {
  std::sort(terms.begin(), terms.end(),
            [](const std::pair<const te::VarNode*, std::int64_t>& a,
               const std::pair<const te::VarNode*, std::int64_t>& b) {
              return a.first->id < b.first->id;
            });
}

AffineForm analyze_affine(const te::ExprNode* expr) {
  AffineForm non_affine;
  non_affine.affine = false;
  if (expr == nullptr) return non_affine;
  switch (expr->kind()) {
    case te::ExprKind::kIntImm: {
      AffineForm f;
      f.constant = static_cast<const te::IntImmNode*>(expr)->value;
      return f;
    }
    case te::ExprKind::kVar: {
      AffineForm f;
      f.add_term(static_cast<const te::VarNode*>(expr), 1);
      return f;
    }
    case te::ExprKind::kBinary: {
      const auto* node = static_cast<const te::BinaryNode*>(expr);
      AffineForm a = analyze_affine(node->a.get());
      AffineForm b = analyze_affine(node->b.get());
      if (!a.affine || !b.affine) return non_affine;
      switch (node->op) {
        case te::BinaryOp::kAdd:
          return affine_add(a, b);
        case te::BinaryOp::kSub:
          return affine_sub(a, b);
        case te::BinaryOp::kMul:
          if (a.is_constant()) return affine_scale(b, a.constant);
          if (b.is_constant()) return affine_scale(a, b.constant);
          return non_affine;
        default:
          return non_affine;
      }
    }
    default:
      return non_affine;
  }
}

AffineForm affine_add(const AffineForm& a, const AffineForm& b) {
  AffineForm out;
  out.affine = a.affine && b.affine;
  out.constant = a.constant + b.constant;
  out.terms = a.terms;
  for (const auto& [var, coefficient] : b.terms) {
    out.add_term(var, coefficient);
  }
  return out;
}

AffineForm affine_sub(const AffineForm& a, const AffineForm& b) {
  return affine_add(a, affine_scale(b, -1));
}

void VarRanges::bind(const te::VarNode* var, std::int64_t extent) {
  entries_.emplace_back(var, extent);
}

void VarRanges::pop() { entries_.pop_back(); }

const std::int64_t* VarRanges::extent_of(const te::VarNode* var) const {
  // Backwards so an inner rebinding shadows an outer one.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->first == var) return &it->second;
  }
  return nullptr;
}

bool collect_constraints_checked(const te::Expr& condition,
                                 std::vector<AffineForm>& out) {
  if (!condition) return true;
  switch (condition->kind()) {
    case te::ExprKind::kCompare: {
      const auto* node = static_cast<const te::CompareNode*>(condition.get());
      AffineForm a = analyze_affine(node->a.get());
      AffineForm b = analyze_affine(node->b.get());
      if (!a.affine || !b.affine) return false;
      // Normalize each compare to `h >= 0`.
      switch (node->op) {
        case te::CmpOp::kLt: {  // a < b  ==>  b - a - 1 >= 0
          AffineForm h = affine_sub(b, a);
          h.constant -= 1;
          out.push_back(std::move(h));
          return true;
        }
        case te::CmpOp::kLe:  // a <= b  ==>  b - a >= 0
          out.push_back(affine_sub(b, a));
          return true;
        case te::CmpOp::kGt: {  // a > b  ==>  a - b - 1 >= 0
          AffineForm h = affine_sub(a, b);
          h.constant -= 1;
          out.push_back(std::move(h));
          return true;
        }
        case te::CmpOp::kGe:  // a >= b  ==>  a - b >= 0
          out.push_back(affine_sub(a, b));
          return true;
        case te::CmpOp::kEq:  // both directions
          out.push_back(affine_sub(b, a));
          out.push_back(affine_sub(a, b));
          return true;
        case te::CmpOp::kNe:  // disjunction: no single affine constraint
          return false;
      }
      return false;
    }
    case te::ExprKind::kSelect: {
      // logical_and(a, b) lowers to select(a, b, 0): both conjuncts hold
      // when the whole select is truthy.
      const auto* node = static_cast<const te::SelectNode*>(condition.get());
      if (te::is_const_int(node->false_value, 0)) {
        const bool exact_a = collect_constraints_checked(node->condition, out);
        const bool exact_b =
            collect_constraints_checked(node->true_value, out);
        return exact_a && exact_b;
      }
      return false;
    }
    default:
      return false;
  }
}

void collect_constraints(const te::Expr& condition,
                         std::vector<AffineForm>& out) {
  collect_constraints_checked(condition, out);
}

bool collect_negated_constraints_checked(const te::Expr& condition,
                                         std::vector<AffineForm>& out) {
  if (!condition) return true;
  if (condition->kind() != te::ExprKind::kCompare) {
    // !(a && b) is a disjunction — nothing conservative to add.
    return false;
  }
  const auto* node = static_cast<const te::CompareNode*>(condition.get());
  switch (node->op) {
    case te::CmpOp::kLt:
      return collect_constraints_checked(te::ge(node->a, node->b), out);
    case te::CmpOp::kLe:
      return collect_constraints_checked(te::gt(node->a, node->b), out);
    case te::CmpOp::kGt:
      return collect_constraints_checked(te::le(node->a, node->b), out);
    case te::CmpOp::kGe:
      return collect_constraints_checked(te::lt(node->a, node->b), out);
    case te::CmpOp::kEq:  // negates to !=, which adds nothing
      return false;
    case te::CmpOp::kNe:
      return collect_constraints_checked(te::eq(node->a, node->b), out);
  }
  return false;
}

void collect_negated_constraints(const te::Expr& condition,
                                 std::vector<AffineForm>& out) {
  collect_negated_constraints_checked(condition, out);
}

Interval affine_range(const AffineForm& form, const VarRanges& ranges) {
  if (!form.affine) return Interval::unbounded();
  std::int64_t lo = form.constant;
  std::int64_t hi = form.constant;
  for (const auto& [var, coefficient] : form.terms) {
    if (coefficient == 0) continue;
    const std::int64_t* extent = ranges.extent_of(var);
    if (extent == nullptr || *extent <= 0) return Interval::unbounded();
    const std::int64_t span = *extent - 1;
    if (coefficient > 0) {
      hi += coefficient * span;
    } else {
      lo += coefficient * span;
    }
  }
  return {lo, hi};
}

Interval constrained_range(const AffineForm& form, const VarRanges& ranges,
                           const std::vector<AffineForm>& constraints) {
  if (!form.affine) return Interval::unbounded();
  Interval result = affine_range(form, ranges);
  for (const AffineForm& h : constraints) {
    if (!h.affine) continue;
    // h >= 0, so form <= form + h <= max(form + h). Adding the forms first
    // cancels shared terms symbolically, which is what makes guards like
    // `yo*f + yi < extent` tighten `yo*f + yi` exactly (and bound it even
    // when an outer var has no known extent).
    const Interval upper = affine_range(affine_add(form, h), ranges);
    if (upper.hi.has_value() &&
        (!result.hi.has_value() || *upper.hi < *result.hi)) {
      result.hi = upper.hi;
    }
    // Symmetrically, form >= form - h >= min(form - h).
    const Interval lower = affine_range(affine_sub(form, h), ranges);
    if (lower.lo.has_value() &&
        (!result.lo.has_value() || *lower.lo > *result.lo)) {
      result.lo = lower.lo;
    }
  }
  return result;
}

Interval range_of_expr(const te::ExprNode* expr, const VarRanges& ranges,
                       const std::vector<AffineForm>& constraints) {
  if (expr == nullptr) return Interval::unbounded();
  const AffineForm form = analyze_affine(expr);
  if (form.affine) return constrained_range(form, ranges, constraints);
  switch (expr->kind()) {
    case te::ExprKind::kBinary: {
      const auto* node = static_cast<const te::BinaryNode*>(expr);
      const Interval a = range_of_expr(node->a.get(), ranges, constraints);
      const Interval b = range_of_expr(node->b.get(), ranges, constraints);
      switch (node->op) {
        case te::BinaryOp::kAdd: {
          Interval out;
          if (a.lo && b.lo) out.lo = *a.lo + *b.lo;
          if (a.hi && b.hi) out.hi = *a.hi + *b.hi;
          return out;
        }
        case te::BinaryOp::kSub: {
          Interval out;
          if (a.lo && b.hi) out.lo = *a.lo - *b.hi;
          if (a.hi && b.lo) out.hi = *a.hi - *b.lo;
          return out;
        }
        case te::BinaryOp::kMul: {
          if (!a.bounded() || !b.bounded()) return Interval::unbounded();
          const std::int64_t products[4] = {*a.lo * *b.lo, *a.lo * *b.hi,
                                            *a.hi * *b.lo, *a.hi * *b.hi};
          return {*std::min_element(products, products + 4),
                  *std::max_element(products, products + 4)};
        }
        case te::BinaryOp::kFloorDiv: {
          // Fused-axis indices: floordiv by a positive constant extent.
          const AffineForm divisor = analyze_affine(node->b.get());
          if (!divisor.affine || !divisor.is_constant() ||
              divisor.constant <= 0 || !a.bounded()) {
            return Interval::unbounded();
          }
          return {floor_div_positive(*a.lo, divisor.constant),
                  floor_div_positive(*a.hi, divisor.constant)};
        }
        case te::BinaryOp::kMod: {
          const AffineForm divisor = analyze_affine(node->b.get());
          if (!divisor.affine || !divisor.is_constant() ||
              divisor.constant <= 0) {
            return Interval::unbounded();
          }
          // Floor-mod with a positive modulus lands in [0, m-1]; keep the
          // dividend's own range when it is already inside.
          if (a.bounded() && *a.lo >= 0 && *a.hi < divisor.constant) return a;
          return {0, divisor.constant - 1};
        }
        case te::BinaryOp::kMin: {
          Interval out;
          out.hi = opt_min(a.hi, b.hi);
          if (a.lo && b.lo) out.lo = std::min(*a.lo, *b.lo);
          return out;
        }
        case te::BinaryOp::kMax: {
          Interval out;
          out.lo = opt_max(a.lo, b.lo);
          if (a.hi && b.hi) out.hi = std::max(*a.hi, *b.hi);
          return out;
        }
        default:
          return Interval::unbounded();
      }
    }
    case te::ExprKind::kSelect: {
      const auto* node = static_cast<const te::SelectNode*>(expr);
      std::vector<AffineForm> then_constraints = constraints;
      collect_constraints(node->condition, then_constraints);
      const Interval t = range_of_expr(node->true_value.get(), ranges,
                                       then_constraints);
      std::vector<AffineForm> else_constraints = constraints;
      collect_negated_constraints(node->condition, else_constraints);
      const Interval f = range_of_expr(node->false_value.get(), ranges,
                                       else_constraints);
      Interval out;
      if (t.lo && f.lo) out.lo = std::min(*t.lo, *f.lo);
      if (t.hi && f.hi) out.hi = std::max(*t.hi, *f.hi);
      return out;
    }
    case te::ExprKind::kCompare:
      return {0, 1};
    case te::ExprKind::kUnary: {
      const auto* node = static_cast<const te::UnaryNode*>(expr);
      if (node->op != te::UnaryOp::kNeg) return Interval::unbounded();
      const Interval a =
          range_of_expr(node->operand.get(), ranges, constraints);
      Interval out;
      if (a.hi) out.lo = -*a.hi;
      if (a.lo) out.hi = -*a.lo;
      return out;
    }
    default:
      return Interval::unbounded();
  }
}

}  // namespace tvmbo::analysis
