#include "analysis/config_screen.h"

#include <set>
#include <sstream>

namespace tvmbo::analysis {

std::string ScreenResult::first_error() const {
  if (violations.empty()) return {};
  return violations.front().rule + ": " + violations.front().message;
}

ScreenResult screen_program(const te::Stmt& stmt,
                            const std::vector<te::Tensor>& params,
                            const VerifyOptions& options) {
  ScreenResult result;
  result.violations = verify_stmt(stmt, params, options);
  return result;
}

void ScreenStats::add(const ScreenResult& result) {
  ++screened;
  if (result.ok()) return;
  ++rejected;
  std::set<std::string> rules;
  for (const Violation& violation : result.violations) {
    rules.insert(violation.rule);
  }
  for (const std::string& rule : rules) ++by_rule[rule];
}

std::string ScreenStats::summary() const {
  std::ostringstream os;
  os << "screened " << screened << " config(s), rejected " << rejected;
  if (!by_rule.empty()) {
    os << " (";
    bool first = true;
    for (const auto& [rule, count] : by_rule) {
      if (!first) os << ", ";
      first = false;
      os << rule << ": " << count;
    }
    os << ")";
  }
  return os.str();
}

}  // namespace tvmbo::analysis
