#include "analysis/verify.h"

#include <set>
#include <sstream>
#include <utility>

#include "analysis/affine.h"
#include "analysis/dependence.h"
#include "analysis/proof_cache.h"
#include "te/printer.h"

namespace tvmbo::analysis {
namespace {

std::string truncate_ir(const std::string& text) {
  constexpr std::size_t kMax = 400;
  if (text.size() <= kMax) return text;
  return text.substr(0, kMax) + "...";
}

void collect_vars(const te::ExprNode* expr,
                  std::vector<const te::VarNode*>& out) {
  if (expr == nullptr) return;
  switch (expr->kind()) {
    case te::ExprKind::kVar:
      out.push_back(static_cast<const te::VarNode*>(expr));
      return;
    case te::ExprKind::kBinary: {
      const auto* node = static_cast<const te::BinaryNode*>(expr);
      collect_vars(node->a.get(), out);
      collect_vars(node->b.get(), out);
      return;
    }
    case te::ExprKind::kUnary:
      collect_vars(static_cast<const te::UnaryNode*>(expr)->operand.get(),
                   out);
      return;
    case te::ExprKind::kCompare: {
      const auto* node = static_cast<const te::CompareNode*>(expr);
      collect_vars(node->a.get(), out);
      collect_vars(node->b.get(), out);
      return;
    }
    case te::ExprKind::kSelect: {
      const auto* node = static_cast<const te::SelectNode*>(expr);
      collect_vars(node->condition.get(), out);
      collect_vars(node->true_value.get(), out);
      collect_vars(node->false_value.get(), out);
      return;
    }
    case te::ExprKind::kTensorAccess: {
      const auto* node = static_cast<const te::TensorAccessNode*>(expr);
      for (const te::Expr& index : node->indices) {
        collect_vars(index.get(), out);
      }
      return;
    }
    case te::ExprKind::kReduce:
      collect_vars(static_cast<const te::ReduceNode*>(expr)->source.get(),
                   out);
      return;
    default:
      return;
  }
}

/// Affine-form equality for the RMW rule (same constant, same term set).
bool same_affine(const AffineForm& a, const AffineForm& b) {
  if (!a.affine || !b.affine) return false;
  if (a.constant != b.constant) return false;
  for (const auto& [var, coefficient] : a.terms) {
    if (b.coeff(var) != coefficient) return false;
  }
  for (const auto& [var, coefficient] : b.terms) {
    if (a.coeff(var) != coefficient) return false;
  }
  return true;
}

class Verifier {
 public:
  Verifier(const std::vector<te::Tensor>& params,
           const VerifyOptions& options)
      : options_(options) {
    for (const te::Tensor& param : params) available_.insert(param.get());
  }

  std::vector<Violation> run(const te::Stmt& stmt) {
    visit_stmt(stmt);
    if (options_.check_races) {
      for (const LoopProof& proof : analyze_parallel_loops(stmt)) {
        if (proof.proven) continue;
        const std::string where = proof.loop->body
                                      ? te::to_string(proof.loop->body)
                                      : std::string();
        // Three-valued verdicts split into two rejection rules: a proven
        // race carries its replay-validated witness, an undecided query
        // (solver work bound) is rejected conservatively under its own id.
        if (proof.verdict == Verdict::kUnknown) {
          add("parallel-loop-unproven", proof.detail, where);
        } else {
          add("parallel-loop-race", proof.detail, where);
          if (proof.witness.has_value()) {
            violations_.back().witness = proof.witness->describe();
          }
        }
      }
    }
    return std::move(violations_);
  }

 private:
  void add(const std::string& rule, const std::string& message,
           const std::string& where) {
    violations_.push_back({rule, message, truncate_ir(where)});
  }

  void visit_stmt(const te::Stmt& stmt) {
    if (!stmt) return;
    switch (stmt->kind()) {
      case te::StmtKind::kFor: {
        const auto* node = static_cast<const te::ForNode*>(stmt.get());
        if (node->extent <= 0) {
          std::ostringstream os;
          os << "loop '" << node->var->name << "' has extent "
             << node->extent << " (must be positive)";
          add("nonpositive-extent", os.str(), te::to_string(stmt));
        }
        if (ranges_.contains(node->var.get())) {
          std::ostringstream os;
          os << "loop var '" << node->var->name
             << "' is already bound by an enclosing loop";
          add("duplicate-loop-var", os.str(), te::to_string(stmt));
        }
        ranges_.bind(node->var.get(), node->extent > 0 ? node->extent : 1);
        visit_stmt(node->body);
        ranges_.pop();
        return;
      }
      case te::StmtKind::kStore: {
        const auto* node = static_cast<const te::StoreNode*>(stmt.get());
        check_access(node->tensor, node->indices, stmt);
        visit_expr(node->value, stmt);
        check_rmw(node, stmt);
        return;
      }
      case te::StmtKind::kSeq: {
        const auto* node = static_cast<const te::SeqNode*>(stmt.get());
        for (const te::Stmt& sub : node->stmts) visit_stmt(sub);
        return;
      }
      case te::StmtKind::kIfThenElse: {
        const auto* node =
            static_cast<const te::IfThenElseNode*>(stmt.get());
        visit_expr(node->condition, stmt);
        const std::size_t before = constraints_.size();
        collect_constraints(node->condition, constraints_);
        visit_stmt(node->then_case);
        constraints_.resize(before);
        if (node->else_case) {
          collect_negated_constraints(node->condition, constraints_);
          visit_stmt(node->else_case);
          constraints_.resize(before);
        }
        return;
      }
      case te::StmtKind::kRealize: {
        const auto* node = static_cast<const te::RealizeNode*>(stmt.get());
        const bool already = available_.count(node->tensor.get()) != 0;
        available_.insert(node->tensor.get());
        visit_stmt(node->body);
        if (!already) available_.erase(node->tensor.get());
        return;
      }
    }
  }

  void visit_expr(const te::Expr& expr, const te::Stmt& at) {
    if (!expr) return;
    switch (expr->kind()) {
      case te::ExprKind::kTensorAccess: {
        const auto* node =
            static_cast<const te::TensorAccessNode*>(expr.get());
        check_access(node->tensor, node->indices, at);
        for (const te::Expr& index : node->indices) visit_expr(index, at);
        return;
      }
      case te::ExprKind::kBinary: {
        const auto* node = static_cast<const te::BinaryNode*>(expr.get());
        visit_expr(node->a, at);
        visit_expr(node->b, at);
        return;
      }
      case te::ExprKind::kUnary:
        visit_expr(static_cast<const te::UnaryNode*>(expr.get())->operand,
                   at);
        return;
      case te::ExprKind::kCompare: {
        const auto* node = static_cast<const te::CompareNode*>(expr.get());
        visit_expr(node->a, at);
        visit_expr(node->b, at);
        return;
      }
      case te::ExprKind::kSelect: {
        const auto* node = static_cast<const te::SelectNode*>(expr.get());
        visit_expr(node->condition, at);
        visit_expr(node->true_value, at);
        visit_expr(node->false_value, at);
        return;
      }
      case te::ExprKind::kReduce:
        add("reduce-marker",
            "Reduce marker expression leaked into lowered IR (only valid "
            "as the top-level body of a compute definition)",
            te::to_string(at));
        visit_expr(static_cast<const te::ReduceNode*>(expr.get())->source,
                   at);
        return;
      default:
        return;
    }
  }

  void check_access(const te::Tensor& tensor,
                    const std::vector<te::Expr>& indices,
                    const te::Stmt& at) {
    if (available_.count(tensor.get()) == 0) {
      std::ostringstream os;
      os << "access to tensor '" << tensor->name
         << "' outside its Realize region (and it is not a parameter)";
      add("unrealized-access", os.str(), te::to_string(at));
    }
    if (indices.size() != tensor->shape.size()) {
      std::ostringstream os;
      os << "tensor '" << tensor->name << "' has rank "
         << tensor->shape.size() << " but is accessed with "
         << indices.size() << " index(es)";
      add("access-arity", os.str(), te::to_string(at));
      return;
    }
    for (std::size_t d = 0; d < indices.size(); ++d) {
      std::vector<const te::VarNode*> vars;
      collect_vars(indices[d].get(), vars);
      bool all_bound = true;
      for (const te::VarNode* var : vars) {
        if (!ranges_.contains(var)) {
          all_bound = false;
          std::ostringstream os;
          os << "index var '" << var->name << "' in dim " << d
             << " of tensor '" << tensor->name
             << "' is not bound by any enclosing loop";
          add("unbound-var", os.str(), te::to_string(at));
        }
      }
      if (!all_bound || !options_.check_bounds) continue;
      const Interval range =
          range_of_expr(indices[d].get(), ranges_, constraints_);
      const std::int64_t limit = tensor->shape[d];
      const bool proven_in = range.lo.has_value() && *range.lo >= 0 &&
                             range.hi.has_value() && *range.hi < limit;
      if (!proven_in) {
        std::ostringstream os;
        os << "index " << te::to_string(indices[d]) << " of tensor '"
           << tensor->name << "' dim " << d << " has range [";
        if (range.lo.has_value()) {
          os << *range.lo;
        } else {
          os << "-inf";
        }
        os << ", ";
        if (range.hi.has_value()) {
          os << *range.hi;
        } else {
          os << "+inf";
        }
        os << "], not provably within [0, " << (limit - 1) << "]";
        add("out-of-bounds-access", os.str(), te::to_string(at));
      }
    }
  }

  /// Reduction updates must read-modify-write the same element: when the
  /// store's value combines (at top level, through unary ops) a read of
  /// the stored tensor, that read's index map must equal the store's.
  /// Deeper same-tensor reads (LU's A[i2,k] etc.) are the race analyzer's
  /// concern, not this rule's.
  void check_rmw(const te::StoreNode* store, const te::Stmt& at) {
    const te::ExprNode* value = store->value.get();
    while (value != nullptr && value->kind() == te::ExprKind::kUnary) {
      value = static_cast<const te::UnaryNode*>(value)->operand.get();
    }
    const te::TensorAccessNode* self_read = nullptr;
    if (value != nullptr && value->kind() == te::ExprKind::kBinary) {
      const auto* combine = static_cast<const te::BinaryNode*>(value);
      for (const te::Expr& operand : {combine->a, combine->b}) {
        if (operand->kind() != te::ExprKind::kTensorAccess) continue;
        const auto* read =
            static_cast<const te::TensorAccessNode*>(operand.get());
        if (read->tensor.get() == store->tensor.get()) {
          self_read = read;
          break;
        }
      }
    } else if (value != nullptr &&
               value->kind() == te::ExprKind::kTensorAccess) {
      const auto* read = static_cast<const te::TensorAccessNode*>(value);
      if (read->tensor.get() == store->tensor.get()) self_read = read;
    }
    if (self_read == nullptr) return;
    if (self_read->indices.size() != store->indices.size()) return;
    for (std::size_t d = 0; d < store->indices.size(); ++d) {
      const AffineForm stored = analyze_affine(store->indices[d].get());
      const AffineForm read = analyze_affine(self_read->indices[d].get());
      if (!stored.affine || !read.affine) continue;  // conservative accept
      if (!same_affine(stored, read)) {
        std::ostringstream os;
        os << "store to '" << store->tensor->name
           << "' combines a read of the same tensor at a different "
              "element (dim "
           << d << ": " << te::to_string(store->indices[d]) << " vs "
           << te::to_string(self_read->indices[d])
           << ") — reduction updates must read-modify-write in place";
        add("reduce-rmw-mismatch", os.str(), te::to_string(at));
        return;
      }
    }
  }

  VerifyOptions options_;
  std::set<const te::TensorNode*> available_;
  VarRanges ranges_;
  std::vector<AffineForm> constraints_;
  std::vector<Violation> violations_;
};

}  // namespace

std::vector<Violation> verify_stmt(const te::Stmt& stmt,
                                   const std::vector<te::Tensor>& params,
                                   const VerifyOptions& options) {
  // Whole-stmt memoization: configs that lower to structurally identical
  // IR (same extents, same annotations, same params) share one verdict.
  // Verification keys keep the real ForKinds — unlike per-loop race keys,
  // the full rule set does depend on which loops are annotated.
  StructuralHasher hasher(/*normalize_for_kinds=*/false);
  hasher.feed(options.check_bounds ? 1 : 0);
  hasher.feed(options.check_races ? 1 : 0);
  hasher.feed(params.size());
  for (const te::Tensor& param : params) {
    hasher.feed_string(param->name);
    hasher.feed(param->shape.size());
    for (const std::int64_t dim : param->shape) {
      hasher.feed(static_cast<std::uint64_t>(dim));
    }
  }
  hasher.feed_stmt(stmt.get());
  const CacheKey key = hasher.key();
  ProofCache& cache = ProofCache::global();
  std::vector<Violation> violations;
  if (cache.lookup_verify(key, &violations)) return violations;
  cache.note_verify_run();
  Verifier verifier(params, options);
  violations = verifier.run(stmt);
  cache.store_verify(key, violations);
  return violations;
}

std::string format_violations(const std::vector<Violation>& violations) {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << "\n";
    os << violations[i].rule << ": " << violations[i].message;
  }
  return os.str();
}

}  // namespace tvmbo::analysis
