#include "analysis/dependence.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <sstream>
#include <utility>

#include "analysis/affine.h"
#include "analysis/proof_cache.h"
#include "common/logging.h"
#include "te/printer.h"

namespace tvmbo::analysis {
namespace {

/// One tensor access inside a proof-requiring loop, with everything the
/// prover needs to instance it: affine index maps, the original index
/// expressions (for the exact solver and witness replay), the path
/// constraints guarding it, and the inner loop vars (var, extent) it
/// ranges over.
struct Access {
  const te::TensorNode* tensor = nullptr;
  bool is_write = false;
  std::vector<AffineForm> dims;
  std::vector<te::Expr> index_exprs;
  std::vector<AffineForm> constraints;
  std::vector<std::pair<const te::VarNode*, std::int64_t>> inner_vars;
  /// Every guard on the path to this access (including those outside the
  /// analyzed loop) was captured exactly as affine constraints. Required
  /// before a solver SAT point may be reported as a proven race.
  bool guards_exact = true;
  std::string text;  ///< pretty-printed, for failure messages
};

std::string describe_access(const te::Tensor& tensor,
                            const std::vector<te::Expr>& indices,
                            bool is_write) {
  std::ostringstream os;
  os << (is_write ? "write " : "read ") << tensor->name << "[";
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i > 0) os << ", ";
    os << te::to_string(indices[i]);
  }
  os << "]";
  return os.str();
}

/// Collects every tensor access in the body of one proof-requiring loop.
/// `exact` tracks whether all guards so far were captured exactly.
struct AccessCollector {
  std::vector<Access> accesses;
  std::vector<AffineForm> constraints;
  std::vector<std::pair<const te::VarNode*, std::int64_t>> inner_vars;
  std::vector<const te::TensorNode*> realized_inside;

  void record(const te::Tensor& tensor, const std::vector<te::Expr>& indices,
              bool is_write, bool exact) {
    Access access;
    access.tensor = tensor.get();
    access.is_write = is_write;
    for (const te::Expr& index : indices) {
      AffineForm form = analyze_affine(index.get());
      // Canonical term order before instancing: symmetric spellings like
      // a[i+j] vs a[j+i] must become one residual shape.
      form.canonicalize();
      access.dims.push_back(std::move(form));
      access.index_exprs.push_back(index);
    }
    access.constraints = constraints;
    access.inner_vars = inner_vars;
    access.guards_exact = exact;
    access.text = describe_access(tensor, indices, is_write);
    accesses.push_back(std::move(access));
  }

  void collect_expr(const te::Expr& expr, bool exact) {
    if (!expr) return;
    switch (expr->kind()) {
      case te::ExprKind::kTensorAccess: {
        const auto* node =
            static_cast<const te::TensorAccessNode*>(expr.get());
        record(node->tensor, node->indices, /*is_write=*/false, exact);
        for (const te::Expr& index : node->indices) {
          collect_expr(index, exact);
        }
        return;
      }
      case te::ExprKind::kBinary: {
        const auto* node = static_cast<const te::BinaryNode*>(expr.get());
        collect_expr(node->a, exact);
        collect_expr(node->b, exact);
        return;
      }
      case te::ExprKind::kUnary:
        collect_expr(static_cast<const te::UnaryNode*>(expr.get())->operand,
                     exact);
        return;
      case te::ExprKind::kCompare: {
        const auto* node = static_cast<const te::CompareNode*>(expr.get());
        collect_expr(node->a, exact);
        collect_expr(node->b, exact);
        return;
      }
      case te::ExprKind::kSelect: {
        const auto* node = static_cast<const te::SelectNode*>(expr.get());
        collect_expr(node->condition, exact);
        collect_expr(node->true_value, exact);
        collect_expr(node->false_value, exact);
        return;
      }
      case te::ExprKind::kReduce:
        collect_expr(static_cast<const te::ReduceNode*>(expr.get())->source,
                     exact);
        return;
      default:
        return;
    }
  }

  void canonicalize_from(std::size_t begin) {
    for (std::size_t i = begin; i < constraints.size(); ++i) {
      constraints[i].canonicalize();
    }
  }

  void collect_stmt(const te::Stmt& stmt, bool exact) {
    if (!stmt) return;
    switch (stmt->kind()) {
      case te::StmtKind::kFor: {
        const auto* node = static_cast<const te::ForNode*>(stmt.get());
        inner_vars.emplace_back(node->var.get(), node->extent);
        collect_stmt(node->body, exact);
        inner_vars.pop_back();
        return;
      }
      case te::StmtKind::kStore: {
        const auto* node = static_cast<const te::StoreNode*>(stmt.get());
        record(node->tensor, node->indices, /*is_write=*/true, exact);
        for (const te::Expr& index : node->indices) {
          collect_expr(index, exact);
        }
        collect_expr(node->value, exact);
        return;
      }
      case te::StmtKind::kSeq: {
        const auto* node = static_cast<const te::SeqNode*>(stmt.get());
        for (const te::Stmt& sub : node->stmts) collect_stmt(sub, exact);
        return;
      }
      case te::StmtKind::kIfThenElse: {
        const auto* node = static_cast<const te::IfThenElseNode*>(stmt.get());
        collect_expr(node->condition, exact);
        const std::size_t before = constraints.size();
        const bool then_exact =
            collect_constraints_checked(node->condition, constraints);
        canonicalize_from(before);
        collect_stmt(node->then_case, exact && then_exact);
        constraints.resize(before);
        if (node->else_case) {
          const bool else_exact = collect_negated_constraints_checked(
              node->condition, constraints);
          canonicalize_from(before);
          collect_stmt(node->else_case, exact && else_exact);
          constraints.resize(before);
        }
        return;
      }
      case te::StmtKind::kRealize: {
        const auto* node = static_cast<const te::RealizeNode*>(stmt.get());
        // A buffer realized inside the loop is NOT iteration-private: the
        // closure tier allocates realize storage once at compile time and
        // re-zeroes the shared buffer on every region entry, so concurrent
        // iterations race on it no matter how disjoint the IR-level
        // accesses look. Record it; the prover rejects the loop outright.
        realized_inside.push_back(node->tensor.get());
        collect_stmt(node->body, exact);
        return;
      }
    }
  }
};

/// Per-side variable renaming (loop var + that access's inner vars map to
/// fresh instance vars; shared outer vars pass through unchanged).
struct Instance {
  std::map<const te::VarNode*, const te::VarNode*> rename;

  AffineForm apply(const AffineForm& form) const {
    AffineForm out;
    out.affine = form.affine;
    out.constant = form.constant;
    for (const auto& [var, coefficient] : form.terms) {
      auto it = rename.find(var);
      out.add_term(it == rename.end() ? var : it->second, coefficient);
    }
    return out;
  }
};

// floor division rounding toward negative infinity (divisor positive).
std::int64_t floor_div_positive(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b) != 0 && a < 0) --q;
  return q;
}

/// Outcome of the exact solver on one access pair.
enum class PairStatus { kDisjoint, kRacy, kUnknown };

struct PairOutcome {
  PairStatus status = PairStatus::kUnknown;
  std::string note;
  Witness witness;  ///< valid when status == kRacy
};

/// The prover for a single loop. Tries the cheap interval rules first and
/// escalates failing pairs to the exact Presburger solver. Keeps the
/// fresh instance vars alive.
class LoopProver {
 public:
  LoopProver(const te::ForNode* loop, const VarRanges& outer_ranges,
             const std::vector<AffineForm>& outer_constraints,
             bool outer_exact, const SolverLimits& limits)
      : loop_(loop), outer_constraints_(outer_constraints),
        outer_exact_(outer_exact), limits_(limits) {
    ranges_ = outer_ranges;
    for (AffineForm& form : outer_constraints_) form.canonicalize();
  }

  LoopProof prove() {
    LoopProof proof;
    proof.loop = loop_;
    if (loop_->extent <= 1) {
      proof.proven = true;
      proof.verdict = Verdict::kSafe;
      proof.detail = "single iteration, no concurrency";
      return proof;
    }
    AccessCollector collector;
    collector.collect_stmt(loop_->body, outer_exact_);
    if (!collector.realized_inside.empty()) {
      proof.proven = false;
      proof.verdict = Verdict::kRacy;
      std::ostringstream os;
      os << "loop '" << loop_->var->name << "': tensor '"
         << collector.realized_inside.front()->name
         << "' is realized inside the loop; intermediate buffers are "
            "shared across iterations (the closure tier re-zeroes one "
            "compile-time allocation on every entry), so per-iteration "
            "recomputation races";
      proof.detail = os.str();
      return proof;
    }
    std::size_t pairs = 0;
    std::size_t solver_pairs = 0;
    std::string first_unknown;
    for (const Access& write : collector.accesses) {
      if (!write.is_write) continue;
      for (const Access& other : collector.accesses) {
        if (other.tensor != write.tensor) continue;
        ++pairs;
        std::string why;
        if (pair_disjoint(write, other, &why)) continue;
        const PairOutcome outcome = solve_pair_exact(write, other);
        if (outcome.status == PairStatus::kDisjoint) {
          ++solver_pairs;
          continue;
        }
        if (outcome.status == PairStatus::kRacy) {
          proof.proven = false;
          proof.verdict = Verdict::kRacy;
          proof.witness = outcome.witness;
          std::ostringstream os;
          os << "loop '" << loop_->var->name << "': " << write.text
             << " races with " << other.text << " — "
             << outcome.witness.describe();
          proof.detail = os.str();
          return proof;
        }
        if (first_unknown.empty()) {
          std::ostringstream os;
          os << write.text << " vs " << other.text << ": " << outcome.note;
          if (!why.empty()) os << " (interval rules: " << why << ")";
          first_unknown = os.str();
        }
      }
    }
    if (!first_unknown.empty()) {
      proof.proven = false;
      proof.verdict = Verdict::kUnknown;
      std::ostringstream os;
      os << "loop '" << loop_->var->name
         << "': race freedom undecided — " << first_unknown;
      proof.detail = os.str();
      return proof;
    }
    proof.proven = true;
    proof.verdict = Verdict::kSafe;
    std::ostringstream os;
    os << "loop '" << loop_->var->name << "': " << pairs
       << " access pair(s) proven disjoint across iterations";
    if (solver_pairs > 0) {
      os << " (" << solver_pairs << " via exact solver)";
    }
    proof.detail = os.str();
    return proof;
  }

 private:
  const te::VarNode* fresh(const te::VarNode* original, const char* side,
                           std::int64_t extent) {
    te::Var var = te::make_var(original->name + "." + side);
    fresh_vars_.push_back(var);
    ranges_.bind(var.get(), extent);
    return var.get();
  }

  Instance instance_side(const Access& access, const char* side) {
    Instance inst;
    inst.rename[loop_->var.get()] =
        fresh(loop_->var.get(), side, loop_->extent);
    for (const auto& [var, extent] : access.inner_vars) {
      inst.rename[var] = fresh(var, side, extent);
    }
    return inst;
  }

  /// Cheap interval rules: true when no iteration pair p_a != p_b can make
  /// `a` and `b` hit the same element of their tensor.
  bool pair_disjoint(const Access& a, const Access& b, std::string* why) {
    const std::size_t saved = ranges_.size();
    const Instance inst_a = instance_side(a, "a");
    const Instance inst_b = instance_side(b, "b");
    std::vector<AffineForm> constraints = outer_constraints_;
    for (const AffineForm& h : a.constraints) {
      constraints.push_back(inst_a.apply(h));
    }
    for (const AffineForm& h : b.constraints) {
      constraints.push_back(inst_b.apply(h));
    }
    bool disjoint = false;
    std::ostringstream failure;
    const std::size_t rank = std::min(a.dims.size(), b.dims.size());
    for (std::size_t d = 0; d < rank && !disjoint; ++d) {
      const AffineForm& fa = a.dims[d];
      const AffineForm& fb = b.dims[d];
      if (!fa.affine || !fb.affine) {
        failure << (d > 0 ? "; " : "") << "dim " << d << " non-affine";
        continue;
      }
      // Separation rule: the accesses never overlap in this dimension at
      // all (e.g. triangular guards keep a written column past a read one).
      const AffineForm gap =
          affine_sub(inst_a.apply(fa), inst_b.apply(fb));
      const Interval gap_range = constrained_range(gap, ranges_, constraints);
      if ((gap_range.lo.has_value() && *gap_range.lo >= 1) ||
          (gap_range.hi.has_value() && *gap_range.hi <= -1)) {
        disjoint = true;
        break;
      }
      // Coefficient rule: same non-zero coefficient c on the loop var and
      // a residual difference strictly inside (-|c|, |c|) means distinct
      // iterations land on distinct elements of this dimension.
      const std::int64_t ca = fa.coeff(loop_->var.get());
      const std::int64_t cb = fb.coeff(loop_->var.get());
      if (ca == cb && ca != 0) {
        AffineForm residual_a = fa;
        residual_a.add_term(loop_->var.get(), -ca);
        AffineForm residual_b = fb;
        residual_b.add_term(loop_->var.get(), -cb);
        AffineForm residual =
            affine_sub(inst_a.apply(residual_a), inst_b.apply(residual_b));
        residual.canonicalize();
        const Interval range =
            constrained_range(residual, ranges_, constraints);
        const std::int64_t magnitude = std::abs(ca);
        if (range.bounded() && *range.lo > -magnitude &&
            *range.hi < magnitude) {
          disjoint = true;
          break;
        }
        failure << (d > 0 ? "; " : "") << "dim " << d
                << " residual not confined to the iteration's stride";
        continue;
      }
      failure << (d > 0 ? "; " : "") << "dim " << d
              << (ca == 0 && cb == 0
                      ? " does not depend on the loop var"
                      : " carries mismatched loop-var coefficients");
    }
    while (ranges_.size() > saved) ranges_.pop();
    if (!disjoint && why != nullptr) *why = failure.str();
    return disjoint;
  }

  /// Escalation: decide the pair exactly with the Presburger solver.
  ///
  /// The system models one candidate conflict: iteration p_a of side a and
  /// p_b of side b (each with its own instance of the inner loop vars,
  /// sharing the outer vars), constrained by every captured guard, with
  /// per-dimension index equality and p_a != p_b split into the two
  /// branches p_a >= p_b + 1 and p_b >= p_a + 1. floordiv/mod by positive
  /// constants are linearized exactly through auxiliary quotient/remainder
  /// variables (x = q*m + r, 0 <= r < m).
  ///
  /// UNSAT of both branches proves disjointness — sound even when some
  /// guard or dimension could not be encoded, because dropping constraints
  /// only enlarges the solution set. A SAT point is only reported racy
  /// after (a) replaying both original index expressions under the
  /// assignment (witness validation) and (b) confirming every guard on
  /// both paths was captured exactly.
  PairOutcome solve_pair_exact(const Access& a, const Access& b) {
    PairOutcome out;
    PresburgerSystem sys;
    std::map<const te::VarNode*, std::size_t> a_ids;
    std::map<const te::VarNode*, std::size_t> b_ids;
    std::map<const te::VarNode*, std::size_t> shared_ids;
    std::vector<std::pair<const te::VarNode*, std::size_t>> shared_order;

    const auto register_side =
        [&](const Access& access,
            std::map<const te::VarNode*, std::size_t>& ids,
            const char* suffix) {
          ids[loop_->var.get()] = sys.add_var(
              loop_->var->name + suffix, 0, loop_->extent - 1);
          for (const auto& [var, extent] : access.inner_vars) {
            if (ids.count(var) != 0) continue;
            ids[var] = sys.add_var(var->name + suffix, 0,
                                   std::max<std::int64_t>(extent, 1) - 1);
          }
        };
    register_side(a, a_ids, ".a");
    register_side(b, b_ids, ".b");
    const std::size_t pa = a_ids[loop_->var.get()];
    const std::size_t pb = b_ids[loop_->var.get()];

    // Side-local vars resolve through `ids`; everything else is a shared
    // outer var bounded by its loop extent (registered lazily).
    const auto lookup =
        [&](const te::VarNode* var,
            std::map<const te::VarNode*, std::size_t>& ids)
        -> std::optional<std::size_t> {
      const auto it = ids.find(var);
      if (it != ids.end()) return it->second;
      const auto shared = shared_ids.find(var);
      if (shared != shared_ids.end()) return shared->second;
      const std::int64_t* extent = ranges_.extent_of(var);
      if (extent == nullptr || *extent <= 0) return std::nullopt;
      const std::size_t id = sys.add_var(var->name, 0, *extent - 1);
      shared_ids.emplace(var, id);
      shared_order.emplace_back(var, id);
      return id;
    };

    struct LinExpr {
      std::map<std::size_t, std::int64_t> coeffs;
      std::int64_t constant = 0;
    };
    const auto densify = [&](const LinExpr& lin) {
      std::vector<std::int64_t> coeffs(sys.num_vars(), 0);
      for (const auto& [id, c] : lin.coeffs) coeffs[id] = c;
      return coeffs;
    };

    bool guards_relaxed = false;
    const auto add_guards =
        [&](const std::vector<AffineForm>& forms,
            std::map<const te::VarNode*, std::size_t>& ids) {
          for (const AffineForm& form : forms) {
            LinExpr lin;
            lin.constant = form.constant;
            bool ok = form.affine;
            for (const auto& [var, coefficient] : form.terms) {
              const auto id = lookup(var, ids);
              if (!id.has_value()) {
                ok = false;
                break;
              }
              lin.coeffs[*id] += coefficient;
            }
            if (!ok) {
              guards_relaxed = true;
              continue;
            }
            sys.add_inequality(densify(lin), lin.constant);
          }
        };
    add_guards(outer_constraints_, a_ids);
    add_guards(a.constraints, a_ids);
    add_guards(b.constraints, b_ids);

    // Exact linear translation of an index expression; floordiv/mod by a
    // positive constant introduce an auxiliary (quotient, remainder) pair.
    std::size_t aux = 0;
    std::function<std::optional<LinExpr>(
        const te::ExprNode*, std::map<const te::VarNode*, std::size_t>&)>
        translate = [&](const te::ExprNode* expr,
                        std::map<const te::VarNode*, std::size_t>& ids)
        -> std::optional<LinExpr> {
      if (expr == nullptr) return std::nullopt;
      switch (expr->kind()) {
        case te::ExprKind::kIntImm: {
          LinExpr lin;
          lin.constant = static_cast<const te::IntImmNode*>(expr)->value;
          return lin;
        }
        case te::ExprKind::kVar: {
          const auto id =
              lookup(static_cast<const te::VarNode*>(expr), ids);
          if (!id.has_value()) return std::nullopt;
          LinExpr lin;
          lin.coeffs[*id] = 1;
          return lin;
        }
        case te::ExprKind::kUnary: {
          const auto* node = static_cast<const te::UnaryNode*>(expr);
          if (node->op != te::UnaryOp::kNeg) return std::nullopt;
          auto operand = translate(node->operand.get(), ids);
          if (!operand.has_value()) return std::nullopt;
          for (auto& [id, c] : operand->coeffs) c = -c;
          operand->constant = -operand->constant;
          return operand;
        }
        case te::ExprKind::kBinary: {
          const auto* node = static_cast<const te::BinaryNode*>(expr);
          if (node->op == te::BinaryOp::kAdd ||
              node->op == te::BinaryOp::kSub) {
            auto lhs = translate(node->a.get(), ids);
            auto rhs = translate(node->b.get(), ids);
            if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
            const std::int64_t sign =
                node->op == te::BinaryOp::kAdd ? 1 : -1;
            for (const auto& [id, c] : rhs->coeffs) {
              lhs->coeffs[id] += sign * c;
            }
            lhs->constant += sign * rhs->constant;
            return lhs;
          }
          if (node->op == te::BinaryOp::kMul) {
            auto lhs = translate(node->a.get(), ids);
            auto rhs = translate(node->b.get(), ids);
            if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
            if (!rhs->coeffs.empty()) std::swap(lhs, rhs);
            if (!rhs->coeffs.empty()) return std::nullopt;  // var * var
            for (auto& [id, c] : lhs->coeffs) c *= rhs->constant;
            lhs->constant *= rhs->constant;
            return lhs;
          }
          if (node->op == te::BinaryOp::kFloorDiv ||
              node->op == te::BinaryOp::kMod) {
            const auto divisor = translate(node->b.get(), ids);
            if (!divisor.has_value() || !divisor->coeffs.empty() ||
                divisor->constant <= 0) {
              return std::nullopt;
            }
            const std::int64_t m = divisor->constant;
            const auto operand = translate(node->a.get(), ids);
            if (!operand.has_value()) return std::nullopt;
            // Interval of the operand over the solver var bounds gives the
            // quotient's domain.
            std::int64_t lo = operand->constant;
            std::int64_t hi = operand->constant;
            for (const auto& [id, c] : operand->coeffs) {
              const std::int64_t vlo = sys.var_lo(id);
              const std::int64_t vhi = sys.var_hi(id);
              lo += c > 0 ? c * vlo : c * vhi;
              hi += c > 0 ? c * vhi : c * vlo;
            }
            const std::string tag = "#" + std::to_string(aux++);
            const std::size_t q = sys.add_var(
                "q" + tag, floor_div_positive(lo, m),
                floor_div_positive(hi, m));
            const std::size_t r = sys.add_var("r" + tag, 0, m - 1);
            // operand - q*m - r == 0 makes q/r exactly floor_div/floor_mod.
            LinExpr link = *operand;
            link.coeffs[q] -= m;
            link.coeffs[r] -= 1;
            sys.add_equality(densify(link), link.constant);
            LinExpr result;
            result.coeffs[node->op == te::BinaryOp::kFloorDiv ? q : r] = 1;
            return result;
          }
          return std::nullopt;
        }
        default:
          return std::nullopt;
      }
    };

    bool dims_exact = true;
    std::size_t encoded_dims = 0;
    const std::size_t rank = std::min(a.dims.size(), b.dims.size());
    for (std::size_t d = 0; d < rank; ++d) {
      auto ea = translate(a.index_exprs[d].get(), a_ids);
      auto eb = translate(b.index_exprs[d].get(), b_ids);
      if (!ea.has_value() || !eb.has_value()) {
        dims_exact = false;
        continue;
      }
      for (const auto& [id, c] : eb->coeffs) ea->coeffs[id] -= c;
      ea->constant -= eb->constant;
      sys.add_equality(densify(*ea), ea->constant);
      ++encoded_dims;
    }
    if (encoded_dims == 0) {
      out.status = PairStatus::kUnknown;
      out.note = "no index dimension could be encoded linearly";
      return out;
    }

    const auto run_branch = [&](bool a_after_b) {
      PresburgerSystem branch = sys;
      std::vector<std::int64_t> coeffs(branch.num_vars(), 0);
      coeffs[pa] = a_after_b ? 1 : -1;
      coeffs[pb] = a_after_b ? -1 : 1;
      branch.add_inequality(std::move(coeffs), -1);  // p_x - p_y - 1 >= 0
      return branch.solve(limits_);
    };

    const SolveResult first = run_branch(true);
    SolveResult second;
    second.status = SolveStatus::kUnsat;
    if (first.status != SolveStatus::kSat) {
      // A self-pair is symmetric under swapping the sides, so one branch
      // decides both.
      if (&a == &b) {
        second = first;
      } else {
        second = run_branch(false);
      }
    }

    const SolveResult* sat = nullptr;
    if (first.status == SolveStatus::kSat) sat = &first;
    if (sat == nullptr && second.status == SolveStatus::kSat) sat = &second;
    if (sat == nullptr) {
      if (first.status == SolveStatus::kUnsat &&
          second.status == SolveStatus::kUnsat) {
        out.status = PairStatus::kDisjoint;
        return out;
      }
      out.status = PairStatus::kUnknown;
      out.note = "exact solver gave up: " +
                 (first.status == SolveStatus::kUnknown ? first.note
                                                        : second.note);
      return out;
    }

    // Candidate conflict: build the witness and validate it by replay.
    const std::vector<std::int64_t>& assignment = sat->assignment;
    Witness witness;
    witness.loop_var = loop_->var->name;
    witness.tensor = a.tensor->name;
    witness.access_a = a.text;
    witness.access_b = b.text;
    WitnessEnv env_a;
    WitnessEnv env_b;
    for (const auto& [var, id] : a_ids) env_a[var] = assignment[id];
    for (const auto& [var, id] : b_ids) env_b[var] = assignment[id];
    for (const auto& [var, id] : shared_ids) {
      env_a[var] = assignment[id];
      env_b[var] = assignment[id];
    }
    witness.iteration_a.emplace_back(loop_->var->name, assignment[pa]);
    for (const auto& [var, extent] : a.inner_vars) {
      (void)extent;
      witness.iteration_a.emplace_back(var->name, env_a[var]);
    }
    witness.iteration_b.emplace_back(loop_->var->name, assignment[pb]);
    for (const auto& [var, extent] : b.inner_vars) {
      (void)extent;
      witness.iteration_b.emplace_back(var->name, env_b[var]);
    }
    for (const auto& [var, id] : shared_order) {
      witness.iteration_a.emplace_back(var->name, assignment[id]);
      witness.iteration_b.emplace_back(var->name, assignment[id]);
    }

    const bool distinct = assignment[pa] != assignment[pb];
    const bool replayed =
        distinct && validate_witness(a.index_exprs, b.index_exprs, env_a,
                                     env_b, &witness);
    const bool guards_exact =
        a.guards_exact && b.guards_exact && !guards_relaxed;
    if (replayed && guards_exact) {
      out.status = PairStatus::kRacy;
      out.witness = std::move(witness);
      return out;
    }
    out.status = PairStatus::kUnknown;
    if (replayed) {
      out.note =
          "a conflicting iteration pair exists under the captured "
          "constraints, but some guard was approximated — cannot certify "
          "the race";
    } else if (!dims_exact || guards_relaxed) {
      out.note =
          "candidate conflict did not replay (some constraint was "
          "approximated)";
    } else {
      // The system was exact and the point still failed replay: that is a
      // solver/translation bug, never a verdict. CI greps for this tag.
      out.note = "witness-validation-failed: solver point did not replay";
    }
    return out;
  }

  const te::ForNode* loop_;
  std::vector<AffineForm> outer_constraints_;
  bool outer_exact_;
  SolverLimits limits_;
  VarRanges ranges_;
  std::vector<te::Var> fresh_vars_;
};

/// Walk state: enclosing loop ranges, guard constraints, and the ordered
/// (var, extent) list the cache key derives binding ordinals from.
struct WalkState {
  VarRanges ranges;
  std::vector<AffineForm> constraints;
  std::vector<std::pair<const te::VarNode*, std::int64_t>> outer_loops;
};

/// Structural cache key for one proof-requiring loop: enclosing extents
/// and guards, the loop's extent, and its body with EVERY loop annotation
/// normalized to kSerial — the race verdict depends only on iteration
/// structure, so one proof serves all annotation states of this subtree.
CacheKey loop_cache_key(const te::ForNode* loop, const WalkState& state,
                        bool exact) {
  StructuralHasher hasher(/*normalize_for_kinds=*/true);
  hasher.feed(exact ? 1 : 0);
  hasher.feed(state.outer_loops.size());
  for (const auto& [var, extent] : state.outer_loops) {
    hasher.bind_var(var);
    hasher.feed(static_cast<std::uint64_t>(extent));
  }
  hasher.feed(state.constraints.size());
  for (const AffineForm& form : state.constraints) {
    hasher.feed_affine(form);
  }
  hasher.feed(static_cast<std::uint64_t>(loop->extent));
  hasher.bind_var(loop->var.get());
  hasher.feed_stmt(loop->body.get());
  return hasher.key();
}

/// Walks from the root, proving each proof-requiring loop in the context
/// of its enclosing loops and guards. `exact` tracks whether every guard
/// on the path was captured exactly (see Access::guards_exact).
void walk(const te::Stmt& stmt, WalkState& state, bool exact,
          const DependenceOptions& options, std::vector<LoopProof>& out) {
  if (!stmt) return;
  switch (stmt->kind()) {
    case te::StmtKind::kFor: {
      const auto* node = static_cast<const te::ForNode*>(stmt.get());
      if (kind_requires_race_proof(node->for_kind)) {
        ProofCache& cache = ProofCache::global();
        const bool cacheable = options.cacheable();
        CacheKey key;
        bool hit = false;
        if (cacheable) {
          key = loop_cache_key(node, state, exact);
          CachedLoopProof cached;
          if (cache.lookup_loop(key, &cached)) {
            LoopProof proof;
            proof.loop = node;
            proof.proven = cached.verdict == Verdict::kSafe;
            proof.verdict = cached.verdict;
            proof.detail = std::move(cached.detail);
            proof.witness = std::move(cached.witness);
            out.push_back(std::move(proof));
            hit = true;
          }
        }
        if (!hit) {
          cache.note_prover_run();
          LoopProver prover(node, state.ranges, state.constraints, exact,
                            options.solver);
          LoopProof proof = prover.prove();
          if (cacheable) {
            cache.store_loop(
                key, CachedLoopProof{proof.verdict, proof.detail,
                                     proof.witness});
          }
          out.push_back(std::move(proof));
        }
      }
      state.ranges.bind(node->var.get(), node->extent);
      state.outer_loops.emplace_back(node->var.get(), node->extent);
      walk(node->body, state, exact, options, out);
      state.outer_loops.pop_back();
      state.ranges.pop();
      return;
    }
    case te::StmtKind::kSeq: {
      const auto* node = static_cast<const te::SeqNode*>(stmt.get());
      for (const te::Stmt& sub : node->stmts) {
        walk(sub, state, exact, options, out);
      }
      return;
    }
    case te::StmtKind::kIfThenElse: {
      const auto* node = static_cast<const te::IfThenElseNode*>(stmt.get());
      const std::size_t before = state.constraints.size();
      const bool then_exact =
          collect_constraints_checked(node->condition, state.constraints);
      for (std::size_t i = before; i < state.constraints.size(); ++i) {
        state.constraints[i].canonicalize();
      }
      walk(node->then_case, state, exact && then_exact, options, out);
      state.constraints.resize(before);
      if (node->else_case) {
        const bool else_exact = collect_negated_constraints_checked(
            node->condition, state.constraints);
        for (std::size_t i = before; i < state.constraints.size(); ++i) {
          state.constraints[i].canonicalize();
        }
        walk(node->else_case, state, exact && else_exact, options, out);
        state.constraints.resize(before);
      }
      return;
    }
    case te::StmtKind::kRealize:
      walk(static_cast<const te::RealizeNode*>(stmt.get())->body, state,
           exact, options, out);
      return;
    case te::StmtKind::kStore:
      return;
  }
}

std::string truncate_ir(const std::string& text) {
  constexpr std::size_t kMax = 400;
  if (text.size() <= kMax) return text;
  return text.substr(0, kMax) + "...";
}

}  // namespace

bool kind_requires_race_proof(te::ForKind kind) {
  return kind == te::ForKind::kParallel || kind == te::ForKind::kVectorized;
}

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kSafe:
      return "proven-safe";
    case Verdict::kRacy:
      return "proven-racy";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::vector<LoopProof> analyze_parallel_loops(
    const te::Stmt& root, const DependenceOptions& options) {
  std::vector<LoopProof> proofs;
  WalkState state;
  walk(root, state, /*exact=*/true, options, proofs);
  return proofs;
}

std::vector<LoopProof> analyze_parallel_loops(const te::Stmt& root) {
  return analyze_parallel_loops(root, DependenceOptions{});
}

std::vector<const te::ForNode*> proven_parallel_loops(const te::Stmt& root) {
  std::vector<const te::ForNode*> proven;
  for (const LoopProof& proof : analyze_parallel_loops(root)) {
    if (proof.proven && proof.loop->for_kind == te::ForKind::kParallel) {
      proven.push_back(proof.loop);
    }
  }
  return proven;
}

std::vector<const te::ForNode*> proven_vectorized_loops(
    const te::Stmt& root) {
  std::vector<const te::ForNode*> proven;
  for (const LoopProof& proof : analyze_parallel_loops(root)) {
    if (proof.proven && proof.loop->for_kind == te::ForKind::kVectorized) {
      proven.push_back(proof.loop);
    }
  }
  return proven;
}

void require_race_free(const te::Stmt& root, const te::Var& loop_var,
                       const std::string& context) {
  for (const LoopProof& proof : analyze_parallel_loops(root)) {
    if (proof.loop->var.get() != loop_var.get()) continue;
    TVMBO_CHECK(proof.proven)
        << "parallel-loop-race: " << context << ": loop '" << loop_var->name
        << "' has no race-freedom proof [" << verdict_name(proof.verdict)
        << "] — " << proof.detail << "\n"
        << truncate_ir(te::to_string(root));
    return;
  }
  // Loop not found or its kind needs no proof: nothing to check.
}

}  // namespace tvmbo::analysis
