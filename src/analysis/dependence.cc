#include "analysis/dependence.h"

#include <cstdlib>
#include <map>
#include <sstream>
#include <utility>

#include "analysis/affine.h"
#include "common/logging.h"
#include "te/printer.h"

namespace tvmbo::analysis {
namespace {

/// One tensor access inside a proof-requiring loop, with everything the
/// prover needs to instance it: affine index maps, the path constraints
/// guarding it, and the inner loop vars (var, extent) it ranges over.
struct Access {
  const te::TensorNode* tensor = nullptr;
  bool is_write = false;
  std::vector<AffineForm> dims;
  std::vector<AffineForm> constraints;
  std::vector<std::pair<const te::VarNode*, std::int64_t>> inner_vars;
  std::string text;  ///< pretty-printed, for failure messages
};

std::string describe_access(const te::Tensor& tensor,
                            const std::vector<te::Expr>& indices,
                            bool is_write) {
  std::ostringstream os;
  os << (is_write ? "write " : "read ") << tensor->name << "[";
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i > 0) os << ", ";
    os << te::to_string(indices[i]);
  }
  os << "]";
  return os.str();
}

/// Collects every tensor access in the body of one proof-requiring loop.
struct AccessCollector {
  std::vector<Access> accesses;
  std::vector<AffineForm> constraints;
  std::vector<std::pair<const te::VarNode*, std::int64_t>> inner_vars;
  std::vector<const te::TensorNode*> realized_inside;

  void record(const te::Tensor& tensor, const std::vector<te::Expr>& indices,
              bool is_write) {
    Access access;
    access.tensor = tensor.get();
    access.is_write = is_write;
    for (const te::Expr& index : indices) {
      access.dims.push_back(analyze_affine(index.get()));
    }
    access.constraints = constraints;
    access.inner_vars = inner_vars;
    access.text = describe_access(tensor, indices, is_write);
    accesses.push_back(std::move(access));
  }

  void collect_expr(const te::Expr& expr) {
    if (!expr) return;
    switch (expr->kind()) {
      case te::ExprKind::kTensorAccess: {
        const auto* node =
            static_cast<const te::TensorAccessNode*>(expr.get());
        record(node->tensor, node->indices, /*is_write=*/false);
        for (const te::Expr& index : node->indices) collect_expr(index);
        return;
      }
      case te::ExprKind::kBinary: {
        const auto* node = static_cast<const te::BinaryNode*>(expr.get());
        collect_expr(node->a);
        collect_expr(node->b);
        return;
      }
      case te::ExprKind::kUnary:
        collect_expr(static_cast<const te::UnaryNode*>(expr.get())->operand);
        return;
      case te::ExprKind::kCompare: {
        const auto* node = static_cast<const te::CompareNode*>(expr.get());
        collect_expr(node->a);
        collect_expr(node->b);
        return;
      }
      case te::ExprKind::kSelect: {
        const auto* node = static_cast<const te::SelectNode*>(expr.get());
        collect_expr(node->condition);
        collect_expr(node->true_value);
        collect_expr(node->false_value);
        return;
      }
      case te::ExprKind::kReduce:
        collect_expr(static_cast<const te::ReduceNode*>(expr.get())->source);
        return;
      default:
        return;
    }
  }

  void collect_stmt(const te::Stmt& stmt) {
    if (!stmt) return;
    switch (stmt->kind()) {
      case te::StmtKind::kFor: {
        const auto* node = static_cast<const te::ForNode*>(stmt.get());
        inner_vars.emplace_back(node->var.get(), node->extent);
        collect_stmt(node->body);
        inner_vars.pop_back();
        return;
      }
      case te::StmtKind::kStore: {
        const auto* node = static_cast<const te::StoreNode*>(stmt.get());
        record(node->tensor, node->indices, /*is_write=*/true);
        for (const te::Expr& index : node->indices) collect_expr(index);
        collect_expr(node->value);
        return;
      }
      case te::StmtKind::kSeq: {
        const auto* node = static_cast<const te::SeqNode*>(stmt.get());
        for (const te::Stmt& sub : node->stmts) collect_stmt(sub);
        return;
      }
      case te::StmtKind::kIfThenElse: {
        const auto* node = static_cast<const te::IfThenElseNode*>(stmt.get());
        collect_expr(node->condition);
        const std::size_t before = constraints.size();
        collect_constraints(node->condition, constraints);
        collect_stmt(node->then_case);
        constraints.resize(before);
        if (node->else_case) {
          collect_negated_constraints(node->condition, constraints);
          collect_stmt(node->else_case);
          constraints.resize(before);
        }
        return;
      }
      case te::StmtKind::kRealize: {
        const auto* node = static_cast<const te::RealizeNode*>(stmt.get());
        // A buffer realized inside the loop is NOT iteration-private: the
        // closure tier allocates realize storage once at compile time and
        // re-zeroes the shared buffer on every region entry, so concurrent
        // iterations race on it no matter how disjoint the IR-level
        // accesses look. Record it; the prover rejects the loop outright.
        realized_inside.push_back(node->tensor.get());
        collect_stmt(node->body);
        return;
      }
    }
  }
};

/// Per-side variable renaming (loop var + that access's inner vars map to
/// fresh instance vars; shared outer vars pass through unchanged).
struct Instance {
  std::map<const te::VarNode*, const te::VarNode*> rename;

  AffineForm apply(const AffineForm& form) const {
    AffineForm out;
    out.affine = form.affine;
    out.constant = form.constant;
    for (const auto& [var, coefficient] : form.terms) {
      auto it = rename.find(var);
      out.add_term(it == rename.end() ? var : it->second, coefficient);
    }
    return out;
  }
};

/// The prover for a single loop. Keeps the fresh instance vars alive.
class LoopProver {
 public:
  LoopProver(const te::ForNode* loop, const VarRanges& outer_ranges,
             const std::vector<AffineForm>& outer_constraints)
      : loop_(loop), outer_constraints_(outer_constraints) {
    ranges_ = outer_ranges;
  }

  LoopProof prove() {
    LoopProof proof;
    proof.loop = loop_;
    if (loop_->extent <= 1) {
      proof.proven = true;
      proof.detail = "single iteration, no concurrency";
      return proof;
    }
    AccessCollector collector;
    collector.collect_stmt(loop_->body);
    if (!collector.realized_inside.empty()) {
      proof.proven = false;
      std::ostringstream os;
      os << "loop '" << loop_->var->name << "': tensor '"
         << collector.realized_inside.front()->name
         << "' is realized inside the loop; intermediate buffers are "
            "shared across iterations (the closure tier re-zeroes one "
            "compile-time allocation on every entry), so per-iteration "
            "recomputation races";
      proof.detail = os.str();
      return proof;
    }
    std::size_t pairs = 0;
    for (const Access& write : collector.accesses) {
      if (!write.is_write) continue;
      for (const Access& other : collector.accesses) {
        if (other.tensor != write.tensor) continue;
        ++pairs;
        std::string why;
        if (!pair_disjoint(write, other, &why)) {
          proof.proven = false;
          std::ostringstream os;
          os << "loop '" << loop_->var->name << "': " << write.text
             << " may conflict with " << other.text
             << " in another iteration (" << why << ")";
          proof.detail = os.str();
          return proof;
        }
      }
    }
    proof.proven = true;
    std::ostringstream os;
    os << "loop '" << loop_->var->name << "': " << pairs
       << " access pair(s) proven disjoint across iterations";
    proof.detail = os.str();
    return proof;
  }

 private:
  const te::VarNode* fresh(const te::VarNode* original, const char* side,
                           std::int64_t extent) {
    te::Var var = te::make_var(original->name + "." + side);
    fresh_vars_.push_back(var);
    ranges_.bind(var.get(), extent);
    return var.get();
  }

  Instance instance_side(const Access& access, const char* side) {
    Instance inst;
    inst.rename[loop_->var.get()] =
        fresh(loop_->var.get(), side, loop_->extent);
    for (const auto& [var, extent] : access.inner_vars) {
      inst.rename[var] = fresh(var, side, extent);
    }
    return inst;
  }

  /// True when no iteration pair p_a != p_b can make `a` and `b` hit the
  /// same element of their tensor.
  bool pair_disjoint(const Access& a, const Access& b, std::string* why) {
    const std::size_t saved = ranges_.size();
    const Instance inst_a = instance_side(a, "a");
    const Instance inst_b = instance_side(b, "b");
    std::vector<AffineForm> constraints = outer_constraints_;
    for (const AffineForm& h : a.constraints) {
      constraints.push_back(inst_a.apply(h));
    }
    for (const AffineForm& h : b.constraints) {
      constraints.push_back(inst_b.apply(h));
    }
    bool disjoint = false;
    std::ostringstream failure;
    const std::size_t rank = std::min(a.dims.size(), b.dims.size());
    for (std::size_t d = 0; d < rank && !disjoint; ++d) {
      const AffineForm& fa = a.dims[d];
      const AffineForm& fb = b.dims[d];
      if (!fa.affine || !fb.affine) {
        failure << (d > 0 ? "; " : "") << "dim " << d << " non-affine";
        continue;
      }
      // Separation rule: the accesses never overlap in this dimension at
      // all (e.g. triangular guards keep a written column past a read one).
      const AffineForm gap =
          affine_sub(inst_a.apply(fa), inst_b.apply(fb));
      const Interval gap_range = constrained_range(gap, ranges_, constraints);
      if ((gap_range.lo.has_value() && *gap_range.lo >= 1) ||
          (gap_range.hi.has_value() && *gap_range.hi <= -1)) {
        disjoint = true;
        break;
      }
      // Coefficient rule: same non-zero coefficient c on the loop var and
      // a residual difference strictly inside (-|c|, |c|) means distinct
      // iterations land on distinct elements of this dimension.
      const std::int64_t ca = fa.coeff(loop_->var.get());
      const std::int64_t cb = fb.coeff(loop_->var.get());
      if (ca == cb && ca != 0) {
        AffineForm residual_a = fa;
        residual_a.add_term(loop_->var.get(), -ca);
        AffineForm residual_b = fb;
        residual_b.add_term(loop_->var.get(), -cb);
        const AffineForm residual =
            affine_sub(inst_a.apply(residual_a), inst_b.apply(residual_b));
        const Interval range =
            constrained_range(residual, ranges_, constraints);
        const std::int64_t magnitude = std::abs(ca);
        if (range.bounded() && *range.lo > -magnitude &&
            *range.hi < magnitude) {
          disjoint = true;
          break;
        }
        failure << (d > 0 ? "; " : "") << "dim " << d
                << " residual not confined to the iteration's stride";
        continue;
      }
      failure << (d > 0 ? "; " : "") << "dim " << d
              << (ca == 0 && cb == 0
                      ? " does not depend on the loop var"
                      : " carries mismatched loop-var coefficients");
    }
    while (ranges_.size() > saved) ranges_.pop();
    if (!disjoint && why != nullptr) *why = failure.str();
    return disjoint;
  }

  const te::ForNode* loop_;
  std::vector<AffineForm> outer_constraints_;
  VarRanges ranges_;
  std::vector<te::Var> fresh_vars_;
};

/// Walks from the root, proving each proof-requiring loop in the context
/// of its enclosing loops and guards.
void walk(const te::Stmt& stmt, VarRanges& ranges,
          std::vector<AffineForm>& constraints,
          std::vector<LoopProof>& out) {
  if (!stmt) return;
  switch (stmt->kind()) {
    case te::StmtKind::kFor: {
      const auto* node = static_cast<const te::ForNode*>(stmt.get());
      if (kind_requires_race_proof(node->for_kind)) {
        LoopProver prover(node, ranges, constraints);
        out.push_back(prover.prove());
      }
      ranges.bind(node->var.get(), node->extent);
      walk(node->body, ranges, constraints, out);
      ranges.pop();
      return;
    }
    case te::StmtKind::kSeq: {
      const auto* node = static_cast<const te::SeqNode*>(stmt.get());
      for (const te::Stmt& sub : node->stmts) {
        walk(sub, ranges, constraints, out);
      }
      return;
    }
    case te::StmtKind::kIfThenElse: {
      const auto* node = static_cast<const te::IfThenElseNode*>(stmt.get());
      const std::size_t before = constraints.size();
      collect_constraints(node->condition, constraints);
      walk(node->then_case, ranges, constraints, out);
      constraints.resize(before);
      if (node->else_case) {
        collect_negated_constraints(node->condition, constraints);
        walk(node->else_case, ranges, constraints, out);
        constraints.resize(before);
      }
      return;
    }
    case te::StmtKind::kRealize:
      walk(static_cast<const te::RealizeNode*>(stmt.get())->body, ranges,
           constraints, out);
      return;
    case te::StmtKind::kStore:
      return;
  }
}

std::string truncate_ir(const std::string& text) {
  constexpr std::size_t kMax = 400;
  if (text.size() <= kMax) return text;
  return text.substr(0, kMax) + "...";
}

}  // namespace

bool kind_requires_race_proof(te::ForKind kind) {
  return kind == te::ForKind::kParallel || kind == te::ForKind::kVectorized;
}

std::vector<LoopProof> analyze_parallel_loops(const te::Stmt& root) {
  std::vector<LoopProof> proofs;
  VarRanges ranges;
  std::vector<AffineForm> constraints;
  walk(root, ranges, constraints, proofs);
  return proofs;
}

std::vector<const te::ForNode*> proven_parallel_loops(const te::Stmt& root) {
  std::vector<const te::ForNode*> proven;
  for (const LoopProof& proof : analyze_parallel_loops(root)) {
    if (proof.proven && proof.loop->for_kind == te::ForKind::kParallel) {
      proven.push_back(proof.loop);
    }
  }
  return proven;
}

std::vector<const te::ForNode*> proven_vectorized_loops(
    const te::Stmt& root) {
  std::vector<const te::ForNode*> proven;
  for (const LoopProof& proof : analyze_parallel_loops(root)) {
    if (proof.proven && proof.loop->for_kind == te::ForKind::kVectorized) {
      proven.push_back(proof.loop);
    }
  }
  return proven;
}

void require_race_free(const te::Stmt& root, const te::Var& loop_var,
                       const std::string& context) {
  for (const LoopProof& proof : analyze_parallel_loops(root)) {
    if (proof.loop->var.get() != loop_var.get()) continue;
    TVMBO_CHECK(proof.proven)
        << "parallel-loop-race: " << context << ": loop '" << loop_var->name
        << "' has no race-freedom proof — " << proof.detail << "\n"
        << truncate_ir(te::to_string(root));
    return;
  }
  // Loop not found or its kind needs no proof: nothing to check.
}

}  // namespace tvmbo::analysis
