// Race witnesses: concrete counterexamples produced by the exact
// dependence solver, validated by replaying the original access
// expressions through an integer evaluator — the analysis checks itself.
//
// A Witness names two iteration vectors of one proof-requiring loop (the
// loop var plus each side's inner loop vars and the shared outer vars)
// and the tensor element both accesses hit. Before the analyzer reports
// "proven racy" it calls validate_witness(), which evaluates the real
// (possibly non-affine) index expressions of both accesses under the two
// assignments and checks that (a) the loop var takes distinct values and
// (b) every dimension lands on the same element. A witness that fails
// replay is a solver/translation bug, never reported as a race: the
// verdict degrades to "unknown" and the message is tagged
// `witness-validation-failed` so CI can grep for it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "te/expr.h"

namespace tvmbo::analysis {

/// Variable assignment for one side of a conflicting iteration pair.
using WitnessEnv = std::map<const te::VarNode*, std::int64_t>;

/// A concrete racy iteration pair: everything --explain needs to print and
/// everything validation needs to replay.
struct Witness {
  std::string loop_var;             ///< name of the concurrent loop's var
  std::string tensor;               ///< name of the aliased tensor
  std::vector<std::int64_t> element;  ///< aliased element, one per dim
  /// Iteration vectors as (var name, value), loop var first, for display.
  std::vector<std::pair<std::string, std::int64_t>> iteration_a;
  std::vector<std::pair<std::string, std::int64_t>> iteration_b;
  std::string access_a;  ///< pretty-printed access, e.g. "write A[i, j]"
  std::string access_b;
  bool validated = false;  ///< replay confirmed both sides alias

  /// One-line rendering: "iterations {i.a=0, ...} and {i.b=1, ...} both
  /// touch A[3, 4]".
  std::string describe() const;
};

/// Evaluates an integer expression under `env`. Handles immediates, vars,
/// all integer binary ops (floordiv/mod with the emitter's floor
/// semantics), neg/abs, compares, and select. Returns false (and leaves
/// `out` untouched) on an unbound var, float immediate, tensor access, or
/// division by a non-positive divisor — callers treat that as "cannot
/// validate", never as a verdict.
bool eval_int_expr(const te::ExprNode* expr, const WitnessEnv& env,
                   std::int64_t* out);

/// Replays both accesses' index expressions under the two assignments and
/// fills `witness->element` / `witness->validated`. True only when every
/// dimension evaluates on both sides to the same value. Rank mismatch or
/// any evaluation failure returns false.
bool validate_witness(const std::vector<te::Expr>& indices_a,
                      const std::vector<te::Expr>& indices_b,
                      const WitnessEnv& env_a, const WitnessEnv& env_b,
                      Witness* witness);

}  // namespace tvmbo::analysis
