// Structural well-formedness verifier for lowered loop IR.
//
// Rule catalogue (each violation carries its rule id):
//   unbound-var          index var not bound by an enclosing For
//   nonpositive-extent   For extent <= 0
//   duplicate-loop-var   same Var bound by two nested loops
//   unrealized-access    access to a tensor that is neither a parameter
//                        nor inside its Realize region
//   access-arity         index count != tensor rank
//   reduce-marker        ReduceNode leaked into lowered IR
//   reduce-rmw-mismatch  store combining a read of its own tensor at a
//                        different element (reduction updates must RMW
//                        the same element)
//   out-of-bounds-access index range not provably inside [0, shape-1]
//                        (guard conditions on the access path are used to
//                        tighten the range; conservative — "cannot prove"
//                        is a violation too)
//   parallel-loop-race   a kParallel/kVectorized loop proven racy: the
//                        exact dependence solver found a conflicting
//                        iteration pair (carried in `witness`) or the
//                        loop recomputes into a shared realize buffer
//                        (see dependence.h)
//   parallel-loop-unproven  a kParallel/kVectorized loop whose race
//                        query hit a solver work bound — neither safe
//                        nor racy could be proven, so it is rejected
//                        conservatively
#pragma once

#include <string>
#include <vector>

#include "te/ir.h"

namespace tvmbo::analysis {

struct Violation {
  std::string rule;     ///< rule id from the catalogue above
  std::string message;  ///< human-readable description
  std::string where;    ///< pretty-printed IR excerpt at the violation
  /// Concrete counterexample (Witness::describe()) for parallel-loop-race
  /// violations with a replay-validated witness; empty otherwise.
  /// `tvmbo_lint --explain` prints it.
  std::string witness;
};

struct VerifyOptions {
  bool check_bounds = true;
  bool check_races = true;
};

/// Verifies `stmt` against the rule catalogue. `params` are the tensors
/// bound externally at execution time (inputs and outputs); everything
/// else must be realized before use. Returns every violation found (empty
/// = verified).
std::vector<Violation> verify_stmt(const te::Stmt& stmt,
                                   const std::vector<te::Tensor>& params,
                                   const VerifyOptions& options = {});

/// One line per violation: "rule: message".
std::string format_violations(const std::vector<Violation>& violations);

}  // namespace tvmbo::analysis
