#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace tvmbo {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_emit_mutex;

LogLevel level_from_env() {
  const char* env = std::getenv("TVMBO_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "WARNING") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARNING";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

struct EnvInit {
  EnvInit() { g_level.store(level_from_env()); }
};
EnvInit g_env_init;

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {

LogMessage::LogMessage(const char* file, int line, LogLevel level)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << level_name(level) << " " << (base ? base + 1 : file)
          << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

CheckFailStream::CheckFailStream(const char* file, int line,
                                 const char* expr) {
  const char* base = std::strrchr(file, '/');
  stream_ << "Check failed at " << (base ? base + 1 : file) << ":" << line
          << ": `" << expr << "` ";
}

CheckFailStream::~CheckFailStream() noexcept(false) {
  throw CheckError(stream_.str());
}

}  // namespace detail
}  // namespace tvmbo
