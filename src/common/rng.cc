#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace tvmbo {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::uint64_t value) {
  std::uint64_t state = value;
  return splitmix64(state);
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return hash64(seed ^ (value + 0x9E3779B97F4A7C15ull + (seed << 6) +
                        (seed >> 2)));
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TVMBO_CHECK_LE(lo, hi) << "invalid uniform range";
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t n) {
  TVMBO_CHECK_GT(n, 0) << "uniform_int requires positive bound";
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = static_cast<std::uint64_t>(n);
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return static_cast<std::int64_t>(draw % bound);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TVMBO_CHECK_LE(lo, hi) << "invalid uniform_int range";
  return lo + uniform_int(hi - lo + 1);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  TVMBO_CHECK_LE(k, n) << "cannot sample " << k << " distinct from " << n;
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: only the first k positions need to be randomized.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(uniform_int(
                            static_cast<std::int64_t>(n - i)));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::split() { return Rng((*this)() ^ 0xA3C59AC2B7F4E01Dull); }

}  // namespace tvmbo
