// Small descriptive-statistics helpers shared by tuners, surrogates, and
// the experiment harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tvmbo {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values);

/// Population variance (divides by n); 0 for spans with < 2 elements.
double variance(std::span<const double> values);

/// Population standard deviation.
double stddev(std::span<const double> values);

/// Smallest element; requires non-empty input.
double min_value(std::span<const double> values);

/// Largest element; requires non-empty input.
double max_value(std::span<const double> values);

/// Index of the smallest element; requires non-empty input.
std::size_t argmin(std::span<const double> values);

/// Index of the largest element; requires non-empty input.
std::size_t argmax(std::span<const double> values);

/// Linear-interpolation quantile, q in [0, 1]; requires non-empty input.
double quantile(std::span<const double> values, double q);

/// Median (quantile 0.5).
double median(std::span<const double> values);

/// Running minimum: out[i] = min(values[0..i]). Used for the paper's
/// "best runtime so far" series in every minimum-runtime figure.
std::vector<double> running_min(std::span<const double> values);

/// Prefix sums: out[i] = sum(values[0..i]). Used for cumulative
/// autotuning-process time.
std::vector<double> prefix_sum(std::span<const double> values);

/// Pearson correlation of two equally sized spans; 0 if degenerate.
double pearson(std::span<const double> a, std::span<const double> b);

/// Spearman rank correlation; 0 if degenerate. Used to test that surrogate
/// models actually rank configurations usefully.
double spearman(std::span<const double> a, std::span<const double> b);

/// Coefficient of determination of predictions vs. targets.
double r_squared(std::span<const double> predictions,
                 std::span<const double> targets);

}  // namespace tvmbo
