// CSV table writer (+ tiny reader) used to export the per-figure data
// series that regenerate the paper's plots.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tvmbo {

/// Column-ordered CSV table. Fields containing commas/quotes/newlines are
/// quoted per RFC 4180.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return header_.size(); }

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_doubles(const std::vector<double>& row, int precision = 6);

  const std::vector<std::string>& row(std::size_t index) const;

  /// Cell accessor by row index and column name.
  const std::string& cell(std::size_t row_index,
                          std::string_view column) const;

  /// Serializes the whole table (header + rows).
  std::string to_string() const;

  /// Writes to a file; throws CheckError on I/O failure.
  void write_file(const std::string& path) const;

  /// Parses CSV text produced by this writer (quoted fields supported).
  static CsvTable parse(std::string_view text);

 private:
  std::size_t column_index(std::string_view column) const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV field (quotes only when needed).
std::string csv_escape(std::string_view field);

}  // namespace tvmbo
