// Fixed-size worker pool used for batched measurement (AutoTVM measures a
// batch of candidate configs per round; on multi-core hosts the CpuDevice
// compiles/validates them concurrently) and for Random-Forest training.
//
// The design follows the Core Guidelines concurrency advice: the pool owns
// its threads (RAII join in the destructor), tasks communicate results via
// futures, and no raw new/delete appears anywhere.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace tvmbo {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers. Used to
  /// run nested parallel work inline instead of deadlocking the pool
  /// (every worker blocked waiting on tasks no one is left to run).
  bool in_worker_thread() const;

  /// Enqueues a task; the returned future yields its result (or rethrows
  /// its exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// complete. Work is split into at most num_threads() contiguous chunks
  /// (one task each, not one per item). Exceptions from tasks are
  /// rethrown (first chunk wins). Calls from inside a worker thread run
  /// inline — dispatching would deadlock once every worker blocks in
  /// get() on tasks still sitting in the queue.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Range-chunked variant: splits [0, count) into at most `max_chunks`
  /// contiguous chunks (additionally capped by num_threads()) and runs
  /// fn(begin, end) per chunk, blocking until all complete. `max_chunks`
  /// of 0 means num_threads(). Degenerate cases (count <= 1, one chunk,
  /// or a call from inside a worker thread) run fn(0, count) inline.
  /// Exceptions from chunk tasks are rethrown (first chunk wins).
  void parallel_for_chunks(
      std::size_t count, std::size_t max_chunks,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

/// Process-wide default pool (lazily constructed, hardware concurrency).
ThreadPool& default_thread_pool();

}  // namespace tvmbo
