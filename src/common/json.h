// Minimal self-contained JSON document model, parser, and serializer.
//
// TVM writes its tuning results as one JSON record per line; ytopt writes a
// results CSV plus a JSON space description. The performance database in
// src/runtime reuses this module for both, so the repo has no external JSON
// dependency.
//
// Supported: null, bool, double (all JSON numbers), string, array, object.
// Objects preserve insertion order (important for stable golden-file tests).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace tvmbo {

class Json;

/// Error thrown on malformed JSON input.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  // Insertion-ordered object representation.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : Json(static_cast<double>(value)) {}
  Json(std::int64_t value) : Json(static_cast<double>(value)) {}
  Json(std::size_t value) : Json(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}
  Json(Object value) : type_(Type::kObject), object_(std::move(value)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; TVMBO_CHECK on type mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Array element access (checked).
  const Json& at(std::size_t index) const;
  /// Object member access (checked; key must exist).
  const Json& at(std::string_view key) const;
  /// True if this object has the key.
  bool contains(std::string_view key) const;
  /// Number of array elements or object members.
  std::size_t size() const;

  /// Appends to an array (value must be an array).
  void push_back(Json value);
  /// Sets/overwrites an object member (value must be an object).
  void set(std::string key, Json value);

  /// Compact single-line serialization.
  std::string dump() const;
  /// Pretty-printed serialization with the given indent width.
  std::string dump_pretty(int indent = 2) const;

  /// Parses a complete JSON document; throws JsonParseError on bad input
  /// or trailing garbage.
  static Json parse(std::string_view text);

  /// Parses a newline-delimited sequence of JSON records (TVM log style),
  /// skipping blank lines.
  static std::vector<Json> parse_lines(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes a string for inclusion in JSON output (adds quotes).
std::string json_escape(std::string_view text);

}  // namespace tvmbo
