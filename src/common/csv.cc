#include "common/csv.h"

#include <fstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace tvmbo {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TVMBO_CHECK(!header_.empty()) << "CSV table requires at least one column";
}

void CsvTable::add_row(std::vector<std::string> row) {
  TVMBO_CHECK_EQ(row.size(), header_.size())
      << "CSV row width mismatch: got " << row.size() << ", expected "
      << header_.size();
  rows_.push_back(std::move(row));
}

void CsvTable::add_row_doubles(const std::vector<double>& row,
                               int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

const std::vector<std::string>& CsvTable::row(std::size_t index) const {
  TVMBO_CHECK_LT(index, rows_.size()) << "CSV row index out of range";
  return rows_[index];
}

std::size_t CsvTable::column_index(std::string_view column) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == column) return i;
  }
  TVMBO_CHECK(false) << "CSV table has no column '" << column << "'";
  return 0;
}

const std::string& CsvTable::cell(std::size_t row_index,
                                  std::string_view column) const {
  return row(row_index)[column_index(column)];
}

std::string CsvTable::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += csv_escape(header_[i]);
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += csv_escape(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream stream(path, std::ios::trunc);
  TVMBO_CHECK(stream.good()) << "cannot open '" << path << "' for writing";
  stream << to_string();
  TVMBO_CHECK(stream.good()) << "write to '" << path << "' failed";
}

namespace {

// Splits one logical CSV document into records of fields, honoring quotes
// (including embedded newlines inside quoted fields).
std::vector<std::vector<std::string>> parse_records(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(current));
    current.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_record();
        break;
      default:
        field.push_back(c);
        field_started = true;
    }
  }
  if (field_started || !field.empty() || !current.empty()) end_record();
  return records;
}

}  // namespace

CsvTable CsvTable::parse(std::string_view text) {
  auto records = parse_records(text);
  TVMBO_CHECK(!records.empty()) << "CSV text has no header";
  CsvTable table(records[0]);
  for (std::size_t i = 1; i < records.size(); ++i) {
    table.add_row(std::move(records[i]));
  }
  return table;
}

}  // namespace tvmbo
