// Deterministic pseudo-random number generation.
//
// tvmbo experiments must be reproducible bit-for-bit across runs and
// platforms, so every stochastic component (tuners, surrogates, the
// simulated device's measurement noise) draws from an explicitly seeded
// Rng rather than std::random_device / std::mt19937 defaults.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64. It satisfies the C++ UniformRandomBitGenerator concept, so it
// can also drive <random> distributions where convenient.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace tvmbo {

/// splitmix64 step; used for seeding and for stateless hash-noise.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of one 64-bit value into a well-distributed 64-bit value.
std::uint64_t hash64(std::uint64_t value);

/// Combines a hash state with another value (boost::hash_combine style,
/// but 64-bit and based on splitmix64 finalization).
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::int64_t uniform_int(std::int64_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(
          static_cast<std::int64_t>(i)));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derives an independent child generator (for per-thread / per-component
  /// streams) without correlating with this generator's future output.
  Rng split();

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tvmbo
