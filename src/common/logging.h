// Lightweight logging and assertion macros used across tvmbo.
//
// TVMBO_CHECK(cond) aborts with a diagnostic when `cond` is false; the
// streaming form lets callers append context:
//
//   TVMBO_CHECK(n > 0) << "matrix extent must be positive, got " << n;
//
// TVMBO_LOG(INFO) << ... writes a timestamped line to stderr. Log level is
// process-global and settable via set_log_level() or the TVMBO_LOG_LEVEL
// environment variable (DEBUG, INFO, WARNING, ERROR).
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tvmbo {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the minimum level that will be emitted.
void set_log_level(LogLevel level);
/// Current minimum emitted level.
LogLevel log_level();

/// Error thrown by TVMBO_CHECK failures (instead of abort) so tests can
/// assert on misuse of the public API.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

class LogMessage {
 public:
  LogMessage(const char* file, int line, LogLevel level);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  std::ostringstream stream_;
  LogLevel level_;
};

// Collects the message then throws CheckError from the destructor.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr);
  [[noreturn]] ~CheckFailStream() noexcept(false);
  std::ostringstream& stream() { return stream_; }

  CheckFailStream(const CheckFailStream&) = delete;
  CheckFailStream& operator=(const CheckFailStream&) = delete;

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace tvmbo

#define TVMBO_LOG(severity)                                                 \
  ::tvmbo::detail::LogMessage(__FILE__, __LINE__,                           \
                              ::tvmbo::LogLevel::k##severity)               \
      .stream()

#define TVMBO_CHECK(cond)                                                   \
  if (!(cond))                                                              \
  ::tvmbo::detail::CheckFailStream(__FILE__, __LINE__, #cond).stream()

#define TVMBO_CHECK_EQ(a, b) TVMBO_CHECK((a) == (b))
#define TVMBO_CHECK_NE(a, b) TVMBO_CHECK((a) != (b))
#define TVMBO_CHECK_LT(a, b) TVMBO_CHECK((a) < (b))
#define TVMBO_CHECK_LE(a, b) TVMBO_CHECK((a) <= (b))
#define TVMBO_CHECK_GT(a, b) TVMBO_CHECK((a) > (b))
#define TVMBO_CHECK_GE(a, b) TVMBO_CHECK((a) >= (b))
