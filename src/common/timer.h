// Wall-clock stopwatch used by the CpuDevice measurement path and the
// experiment harness's "autotuning process time" accounting.
#pragma once

#include <chrono>

namespace tvmbo {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tvmbo
