#include "common/thread_pool.h"

#include <algorithm>

namespace tvmbo {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::in_worker_thread() const {
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread& worker : workers_) {
    if (worker.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(count, 0, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_chunks(
    std::size_t count, std::size_t max_chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (max_chunks == 0) max_chunks = num_threads();
  // One contiguous chunk per worker, not one task per item: bounds queue
  // pressure and keeps per-item dispatch overhead off the hot path.
  const std::size_t chunks = std::min({count, max_chunks, num_threads()});
  if (count == 1 || chunks <= 1 || in_worker_thread()) {
    fn(0, count);
    return;
  }
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
    begin = end;
  }
  for (auto& future : futures) future.get();
}

ThreadPool& default_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tvmbo
