#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace tvmbo {

bool Json::as_bool() const {
  TVMBO_CHECK(is_bool()) << "JSON value is not a bool";
  return bool_;
}

double Json::as_double() const {
  TVMBO_CHECK(is_number()) << "JSON value is not a number";
  return number_;
}

std::int64_t Json::as_int() const {
  TVMBO_CHECK(is_number()) << "JSON value is not a number";
  return static_cast<std::int64_t>(std::llround(number_));
}

const std::string& Json::as_string() const {
  TVMBO_CHECK(is_string()) << "JSON value is not a string";
  return string_;
}

const Json::Array& Json::as_array() const {
  TVMBO_CHECK(is_array()) << "JSON value is not an array";
  return array_;
}

const Json::Object& Json::as_object() const {
  TVMBO_CHECK(is_object()) << "JSON value is not an object";
  return object_;
}

const Json& Json::at(std::size_t index) const {
  TVMBO_CHECK(is_array()) << "JSON value is not an array";
  TVMBO_CHECK_LT(index, array_.size()) << "JSON array index out of range";
  return array_[index];
}

const Json& Json::at(std::string_view key) const {
  TVMBO_CHECK(is_object()) << "JSON value is not an object";
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  TVMBO_CHECK(false) << "JSON object has no key '" << key << "'";
  static const Json null_value;
  return null_value;  // unreachable
}

bool Json::contains(std::string_view key) const {
  if (!is_object()) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

std::size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  TVMBO_CHECK(false) << "size() on non-container JSON value";
  return 0;
}

void Json::push_back(Json value) {
  TVMBO_CHECK(is_array()) << "push_back on non-array JSON value";
  array_.push_back(std::move(value));
}

void Json::set(std::string key, Json value) {
  TVMBO_CHECK(is_object()) << "set on non-object JSON value";
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

std::string format_number(double value) {
  if (std::isnan(value) || std::isinf(value)) {
    // JSON has no NaN/Inf; serialize as null-compatible sentinel strings
    // would break round-trips, so clamp to a large magnitude instead.
    value = std::isnan(value) ? 0.0
                              : (value > 0 ? 1e308 : -1e308);
  }
  // Integers print without a decimal point for readability/stability.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const std::string pad = pretty ? std::string(
      static_cast<std::size_t>(indent) * (static_cast<std::size_t>(depth) + 1),
      ' ') : "";
  const std::string close_pad = pretty ? std::string(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
      ' ') : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_number(number_); break;
    case Type::kString: out += json_escape(string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) {
          out.push_back('\n');
          out += pad;
        }
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out.push_back('\n');
        out += close_pad;
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (pretty) {
          out.push_back('\n');
          out += pad;
        }
        out += json_escape(object_[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) {
        out.push_back('\n');
        out += close_pad;
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Json::dump_pretty(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      throw JsonParseError("trailing characters after JSON document", pos_);
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw JsonParseError(message, pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Json(std::move(members));
  }

  Json parse_array() {
    expect('[');
    Json::Array elements;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      skip_whitespace();
      const char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Json(std::move(elements));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                fail("invalid \\u escape");
            }
            // Encode the code point as UTF-8 (BMP only; surrogate pairs
            // are passed through as two 3-byte sequences, which is enough
            // for the ASCII-dominated logs this module handles).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("invalid escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid number");
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc() || result.ptr != text_.data() + pos_) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

std::vector<Json> Json::parse_lines(std::string_view text) {
  std::vector<Json> records;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    // Skip blank / whitespace-only lines.
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (!blank) records.push_back(parse(line));
    if (end == text.size()) break;
    start = end + 1;
  }
  return records;
}

}  // namespace tvmbo
