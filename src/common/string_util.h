// String helpers: split/join/trim, numeric formatting, and the `#Pk`
// placeholder substitution used by the code-mold machinery (the paper's
// ytopt flow parameterizes TE code with #P0..#Pn markers).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tvmbo {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading/trailing whitespace.
std::string trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// printf-style double formatting with fixed precision.
std::string format_double(double value, int precision = 6);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string text, std::string_view from,
                        std::string_view to);

/// Substitutes `#P0`, `#P1`, ... placeholders in a code mold with concrete
/// values. Longer placeholder names are substituted first so that `#P10`
/// is never corrupted by the `#P1` substitution. Throws CheckError if the
/// mold references a placeholder with no binding.
std::string substitute_placeholders(
    std::string_view mold, const std::map<std::string, std::string>& values);

/// Collects the distinct `#P<digits>` placeholder names appearing in a mold.
std::vector<std::string> find_placeholders(std::string_view mold);

}  // namespace tvmbo
