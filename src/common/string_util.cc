#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>

#include "common/logging.h"

namespace tvmbo {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string replace_all(std::string text, std::string_view from,
                        std::string_view to) {
  TVMBO_CHECK(!from.empty()) << "replace_all with empty pattern";
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

std::string substitute_placeholders(
    std::string_view mold, const std::map<std::string, std::string>& values) {
  // Sort placeholder names longest-first so #P10 is replaced before #P1.
  std::vector<std::pair<std::string, std::string>> ordered(values.begin(),
                                                           values.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.first.size() != b.first.size())
                return a.first.size() > b.first.size();
              return a.first < b.first;
            });
  std::string result(mold);
  for (const auto& [name, value] : ordered) {
    result = replace_all(std::move(result), name, value);
  }
  // Any placeholder still present means the caller forgot a binding.
  const auto leftovers = find_placeholders(result);
  TVMBO_CHECK(leftovers.empty())
      << "unbound placeholder '" << (leftovers.empty() ? "" : leftovers[0])
      << "' in code mold";
  return result;
}

std::vector<std::string> find_placeholders(std::string_view mold) {
  std::set<std::string> names;
  for (std::size_t i = 0; i + 2 < mold.size() + 1; ++i) {
    if (mold[i] != '#' || i + 1 >= mold.size() || mold[i + 1] != 'P') {
      continue;
    }
    std::size_t j = i + 2;
    while (j < mold.size() &&
           std::isdigit(static_cast<unsigned char>(mold[j]))) {
      ++j;
    }
    if (j > i + 2) names.insert(std::string(mold.substr(i, j - i)));
  }
  return {names.begin(), names.end()};
}

}  // namespace tvmbo
