#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace tvmbo {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double min_value(std::span<const double> values) {
  TVMBO_CHECK(!values.empty()) << "min of empty span";
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  TVMBO_CHECK(!values.empty()) << "max of empty span";
  return *std::max_element(values.begin(), values.end());
}

std::size_t argmin(std::span<const double> values) {
  TVMBO_CHECK(!values.empty()) << "argmin of empty span";
  return static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
}

std::size_t argmax(std::span<const double> values) {
  TVMBO_CHECK(!values.empty()) << "argmax of empty span";
  return static_cast<std::size_t>(
      std::max_element(values.begin(), values.end()) - values.begin());
}

double quantile(std::span<const double> values, double q) {
  TVMBO_CHECK(!values.empty()) << "quantile of empty span";
  TVMBO_CHECK(q >= 0.0 && q <= 1.0) << "quantile " << q << " out of [0,1]";
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) {
  return quantile(values, 0.5);
}

std::vector<double> running_min(std::span<const double> values) {
  std::vector<double> out;
  out.reserve(values.size());
  double best = std::numeric_limits<double>::infinity();
  for (double v : values) {
    best = std::min(best, v);
    out.push_back(best);
  }
  return out;
}

std::vector<double> prefix_sum(std::span<const double> values) {
  std::vector<double> out;
  out.reserve(values.size());
  double acc = 0.0;
  for (double v : values) {
    acc += v;
    out.push_back(acc);
  }
  return out;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  TVMBO_CHECK_EQ(a.size(), b.size()) << "pearson size mismatch";
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

namespace {
// Average ranks with tie handling (fractional ranks).
std::vector<double> ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return values[i] < values[j]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg_rank;
    i = j + 1;
  }
  return out;
}
}  // namespace

double spearman(std::span<const double> a, std::span<const double> b) {
  TVMBO_CHECK_EQ(a.size(), b.size()) << "spearman size mismatch";
  if (a.size() < 2) return 0.0;
  const std::vector<double> ra = ranks(a);
  const std::vector<double> rb = ranks(b);
  return pearson(ra, rb);
}

double r_squared(std::span<const double> predictions,
                 std::span<const double> targets) {
  TVMBO_CHECK_EQ(predictions.size(), targets.size()) << "r2 size mismatch";
  if (targets.empty()) return 0.0;
  const double mt = mean(targets);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ss_res += (targets[i] - predictions[i]) * (targets[i] - predictions[i]);
    ss_tot += (targets[i] - mt) * (targets[i] - mt);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace tvmbo
