#include "tuners/measure_loop.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace tvmbo::tuners {

MeasureLoopResult run_measure_loop(Tuner& tuner,
                                   runtime::MeasureRunner& runner,
                                   const MeasureInputFn& make_input,
                                   const MeasureLoopOptions& options) {
  TVMBO_CHECK(static_cast<bool>(make_input))
      << "measure loop requires an input builder";
  TVMBO_CHECK_GT(options.batch_size, 0u) << "batch_size must be positive";

  MeasureLoopResult out;
  while (out.evaluations < options.max_evaluations && tuner.has_next()) {
    const std::size_t want = std::min(
        options.batch_size, options.max_evaluations - out.evaluations);
    const std::vector<cs::Configuration> batch = tuner.next_batch(want);
    if (batch.empty()) break;

    std::vector<runtime::MeasureInput> inputs;
    inputs.reserve(batch.size());
    for (const cs::Configuration& config : batch) {
      inputs.push_back(make_input(config));
    }
    const std::vector<runtime::MeasureResult> measured =
        runner.measure_batch(inputs, options.measure);

    std::vector<Trial> trials;
    trials.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      trials.push_back(
          {batch[i], measured[i].runtime_s, measured[i].valid});
    }
    tuner.update(trials);
    out.trials.insert(out.trials.end(), trials.begin(), trials.end());
    out.results.insert(out.results.end(), measured.begin(), measured.end());
    out.evaluations += batch.size();
  }
  return out;
}

MeasureLoopResult run_measure_loop_async(Tuner& tuner,
                                         runtime::MeasureRunner& runner,
                                         const MeasureInputFn& make_input,
                                         const MeasureLoopOptions& options) {
  TVMBO_CHECK(static_cast<bool>(make_input))
      << "measure loop requires an input builder";

  MeasureLoopResult out;
  std::unordered_map<runtime::MeasureRunner::Ticket, cs::Configuration>
      in_flight;
  std::size_t submitted = 0;
  bool exhausted = false;
  const std::size_t slots = runner.async_slots();

  while (out.evaluations < options.max_evaluations) {
    // Refill every free slot before blocking: the tuner's ask() is cheap
    // relative to a measurement, and a liar-imputing tuner accounts for
    // the submissions already in flight.
    while (!exhausted && in_flight.size() < slots &&
           submitted < options.max_evaluations && tuner.has_next()) {
      std::vector<cs::Configuration> next = tuner.next_batch(1);
      if (next.empty()) {
        exhausted = true;
        break;
      }
      const runtime::MeasureRunner::Ticket ticket =
          runner.submit(make_input(next[0]), options.measure);
      in_flight.emplace(ticket, std::move(next[0]));
      ++submitted;
    }
    if (in_flight.empty()) break;  // budget or space exhausted: drain done

    runtime::MeasureRunner::Completion completion = runner.wait_any();
    auto it = in_flight.find(completion.ticket);
    TVMBO_CHECK(it != in_flight.end())
        << "completion for unknown ticket " << completion.ticket;
    Trial trial{std::move(it->second), completion.result.runtime_s,
                completion.result.valid};
    in_flight.erase(it);
    tuner.update({&trial, 1});
    out.trials.push_back(std::move(trial));
    out.results.push_back(std::move(completion.result));
    out.evaluations += 1;
  }
  return out;
}

}  // namespace tvmbo::tuners
