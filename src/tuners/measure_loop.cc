#include "tuners/measure_loop.h"

#include <algorithm>

#include "common/logging.h"

namespace tvmbo::tuners {

MeasureLoopResult run_measure_loop(Tuner& tuner,
                                   runtime::MeasureRunner& runner,
                                   const MeasureInputFn& make_input,
                                   const MeasureLoopOptions& options) {
  TVMBO_CHECK(static_cast<bool>(make_input))
      << "measure loop requires an input builder";
  TVMBO_CHECK_GT(options.batch_size, 0u) << "batch_size must be positive";

  MeasureLoopResult out;
  while (out.evaluations < options.max_evaluations && tuner.has_next()) {
    const std::size_t want = std::min(
        options.batch_size, options.max_evaluations - out.evaluations);
    const std::vector<cs::Configuration> batch = tuner.next_batch(want);
    if (batch.empty()) break;

    std::vector<runtime::MeasureInput> inputs;
    inputs.reserve(batch.size());
    for (const cs::Configuration& config : batch) {
      inputs.push_back(make_input(config));
    }
    const std::vector<runtime::MeasureResult> measured =
        runner.measure_batch(inputs, options.measure);

    std::vector<Trial> trials;
    trials.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      trials.push_back(
          {batch[i], measured[i].runtime_s, measured[i].valid});
    }
    tuner.update(trials);
    out.trials.insert(out.trials.end(), trials.begin(), trials.end());
    out.results.insert(out.results.end(), measured.begin(), measured.end());
    out.evaluations += batch.size();
  }
  return out;
}

}  // namespace tvmbo::tuners
