#include "tuners/measure_loop.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace tvmbo::tuners {

MeasureLoopResult run_measure_loop(Tuner& tuner,
                                   runtime::MeasureRunner& runner,
                                   const MeasureInputFn& make_input,
                                   const MeasureLoopOptions& options) {
  TVMBO_CHECK(static_cast<bool>(make_input))
      << "measure loop requires an input builder";
  TVMBO_CHECK_GT(options.batch_size, 0u) << "batch_size must be positive";

  MeasureLoopResult out;
  while (out.evaluations < options.max_evaluations && tuner.has_next()) {
    const std::size_t want = std::min(
        options.batch_size, options.max_evaluations - out.evaluations);
    const std::vector<cs::Configuration> batch = tuner.next_batch(want);
    if (batch.empty()) break;

    std::vector<runtime::MeasureInput> inputs;
    inputs.reserve(batch.size());
    for (const cs::Configuration& config : batch) {
      inputs.push_back(make_input(config));
    }
    const std::vector<runtime::MeasureResult> measured =
        runner.measure_batch(inputs, options.measure);

    std::vector<Trial> trials;
    trials.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      trials.push_back(
          {batch[i], measured[i].runtime_s, measured[i].valid});
    }
    tuner.update(trials);
    out.trials.insert(out.trials.end(), trials.begin(), trials.end());
    out.results.insert(out.results.end(), measured.begin(), measured.end());
    out.evaluations += batch.size();
  }
  return out;
}

AskTellSession::AskTellSession(Tuner& tuner, std::size_t max_evaluations)
    : tuner_(tuner), max_evaluations_(max_evaluations) {}

bool AskTellSession::can_ask() const {
  return !exhausted_ && submitted_ < max_evaluations_ && tuner_.has_next();
}

std::optional<cs::Configuration> AskTellSession::ask() {
  if (!can_ask()) return std::nullopt;
  // Strict ask-one order: a liar-imputing tuner accounts for the
  // configurations already in flight, so asking one at a time never
  // re-proposes a pending point — and keeps the proposal sequence a pure
  // function of (space, seed, tell history), independent of how many
  // slots the driver happens to have free.
  std::vector<cs::Configuration> next = tuner_.next_batch(1);
  if (next.empty()) {
    exhausted_ = true;
    return std::nullopt;
  }
  ++submitted_;
  return std::move(next[0]);
}

void AskTellSession::tell(const cs::Configuration& config, double metric,
                          bool valid) {
  TVMBO_CHECK_LT(completed_, submitted_)
      << "tell without a matching in-flight ask";
  Trial trial{config, metric, valid};
  tuner_.update({&trial, 1});
  ++completed_;
}

void AskTellSession::abandon() {
  TVMBO_CHECK_LT(completed_, submitted_)
      << "abandon without a matching in-flight ask";
  ++completed_;
}

MeasureLoopResult run_measure_loop_async(Tuner& tuner,
                                         runtime::MeasureRunner& runner,
                                         const MeasureInputFn& make_input,
                                         const MeasureLoopOptions& options) {
  TVMBO_CHECK(static_cast<bool>(make_input))
      << "measure loop requires an input builder";

  MeasureLoopResult out;
  AskTellSession session(tuner, options.max_evaluations);
  std::unordered_map<runtime::MeasureRunner::Ticket, cs::Configuration>
      in_flight;
  const std::size_t slots = runner.async_slots();

  while (!session.done()) {
    // Refill every free slot before blocking: the tuner's ask() is cheap
    // relative to a measurement.
    while (in_flight.size() < slots) {
      std::optional<cs::Configuration> next = session.ask();
      if (!next.has_value()) break;
      const runtime::MeasureRunner::Ticket ticket =
          runner.submit(make_input(*next), options.measure);
      in_flight.emplace(ticket, std::move(*next));
    }
    if (in_flight.empty()) break;  // budget or space exhausted: drain done

    runtime::MeasureRunner::Completion completion = runner.wait_any();
    auto it = in_flight.find(completion.ticket);
    TVMBO_CHECK(it != in_flight.end())
        << "completion for unknown ticket " << completion.ticket;
    session.tell(it->second, completion.result.runtime_s,
                 completion.result.valid);
    out.trials.push_back({std::move(it->second), completion.result.runtime_s,
                          completion.result.valid});
    in_flight.erase(it);
    out.results.push_back(std::move(completion.result));
    out.evaluations += 1;
  }
  return out;
}

}  // namespace tvmbo::tuners
