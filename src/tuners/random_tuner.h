// RandomTuner: "enumerate the space in a random order" — uniform sampling
// without replacement.
#pragma once

#include "tuners/tuner.h"

namespace tvmbo::tuners {

class RandomTuner final : public Tuner {
 public:
  RandomTuner(const cs::ConfigurationSpace* space, std::uint64_t seed);

  std::string name() const override { return "autotvm-random"; }
  std::vector<cs::Configuration> next_batch(std::size_t n) override;
};

}  // namespace tvmbo::tuners
