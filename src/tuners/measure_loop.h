// The batched measure loop shared by AutoTVM-style drivers: repeatedly
// ask a Tuner for its next batch (Step 1), measure every member through a
// MeasureRunner (Steps 2–4: serial or parallel, fault-isolated, traced),
// and feed the results back (Step 5), until the evaluation budget is
// spent or the tuner exhausts its space.
//
// AutotuningSession wraps this same shape with the paper's process-time
// model; this standalone loop is for callers that want real measurements
// without the modeled clock (examples, tools, custom drivers).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "runtime/measure_runner.h"
#include "tuners/tuner.h"

namespace tvmbo::tuners {

/// Builds the MeasureInput for a proposed configuration (Step 2: bind the
/// code mold / native kernel to concrete tiles).
using MeasureInputFn =
    std::function<runtime::MeasureInput(const cs::Configuration&)>;

struct MeasureLoopOptions {
  std::size_t max_evaluations = 100;
  std::size_t batch_size = 8;
  runtime::MeasureOption measure;
};

struct MeasureLoopResult {
  /// One entry per evaluation, in measurement order; trials[i] and
  /// results[i] describe the same configuration.
  std::vector<Trial> trials;
  std::vector<runtime::MeasureResult> results;
  std::size_t evaluations = 0;
};

/// Runs the loop to completion. Per-trial failures never abort the loop:
/// they come back as invalid trials (the tuner sees valid=false).
MeasureLoopResult run_measure_loop(Tuner& tuner,
                                   runtime::MeasureRunner& runner,
                                   const MeasureInputFn& make_input,
                                   const MeasureLoopOptions& options = {});

/// The propose/tell state machine of a streaming tuning session, with the
/// driving loop factored *out*: ask() hands the caller the next
/// configuration to measure (strict ask-one order, so trajectories are
/// reproducible) and tell() feeds a completed measurement back, while the
/// session tracks budget, in-flight count, and space exhaustion. Both
/// run_measure_loop_async and the tvmbo_serve scheduler drive their
/// sessions through this class — the daemon's externally-ticked
/// multi-tenant loops and the single-tenant `--async` loop are the same
/// machine, which is what makes a fixed-seed serve job reproduce the
/// `--runner proc --async` trajectory bit-identically.
///
/// Not thread-safe: exactly one driver (the loop, or the serve scheduler
/// thread) may call ask()/tell().
class AskTellSession {
 public:
  /// The tuner must outlive the session. `max_evaluations` caps submitted
  /// trials (asked configurations), told or not.
  AskTellSession(Tuner& tuner, std::size_t max_evaluations);

  /// Proposes the next configuration, or nullopt once the budget is fully
  /// submitted or the tuner exhausts its space. Every returned
  /// configuration must eventually be tell()-ed (or abandon()-ed).
  std::optional<cs::Configuration> ask();

  /// Feeds one completed measurement back to the tuner (completion order;
  /// a liar-imputing tuner un-hallucinates the config on update).
  void tell(const cs::Configuration& config, double metric, bool valid);

  /// Drops one in-flight trial without telling the tuner (a cancelled or
  /// discarded measurement). The budget slot is *not* refunded.
  void abandon();

  /// True while ask() may still return a configuration.
  bool can_ask() const;
  /// True once every submitted trial has been told/abandoned and no more
  /// can be asked — the session's terminal state.
  bool done() const { return !can_ask() && in_flight() == 0; }

  std::size_t submitted() const { return submitted_; }
  std::size_t completed() const { return completed_; }
  std::size_t in_flight() const { return submitted_ - completed_; }
  std::size_t max_evaluations() const { return max_evaluations_; }
  Tuner& tuner() { return tuner_; }

 private:
  Tuner& tuner_;
  std::size_t max_evaluations_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  bool exhausted_ = false;
};

/// Completion-driven variant: keeps runner.async_slots() trials in
/// flight via submit()/wait_any(), asking the tuner for one more
/// configuration the moment a slot frees and telling each result back as
/// it lands (completion order) — no wave barrier, so one straggler never
/// idles the other slots. With a serial runner (async_slots() == 1) the
/// schedule degenerates to strict ask/measure/tell alternation: the
/// fixed-seed deterministic mode, trajectory-identical to the batch loop
/// at batch_size 1. trials[i]/results[i] are in completion order.
MeasureLoopResult run_measure_loop_async(
    Tuner& tuner, runtime::MeasureRunner& runner,
    const MeasureInputFn& make_input, const MeasureLoopOptions& options = {});

}  // namespace tvmbo::tuners
