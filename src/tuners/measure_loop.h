// The batched measure loop shared by AutoTVM-style drivers: repeatedly
// ask a Tuner for its next batch (Step 1), measure every member through a
// MeasureRunner (Steps 2–4: serial or parallel, fault-isolated, traced),
// and feed the results back (Step 5), until the evaluation budget is
// spent or the tuner exhausts its space.
//
// AutotuningSession wraps this same shape with the paper's process-time
// model; this standalone loop is for callers that want real measurements
// without the modeled clock (examples, tools, custom drivers).
#pragma once

#include <functional>
#include <vector>

#include "runtime/measure_runner.h"
#include "tuners/tuner.h"

namespace tvmbo::tuners {

/// Builds the MeasureInput for a proposed configuration (Step 2: bind the
/// code mold / native kernel to concrete tiles).
using MeasureInputFn =
    std::function<runtime::MeasureInput(const cs::Configuration&)>;

struct MeasureLoopOptions {
  std::size_t max_evaluations = 100;
  std::size_t batch_size = 8;
  runtime::MeasureOption measure;
};

struct MeasureLoopResult {
  /// One entry per evaluation, in measurement order; trials[i] and
  /// results[i] describe the same configuration.
  std::vector<Trial> trials;
  std::vector<runtime::MeasureResult> results;
  std::size_t evaluations = 0;
};

/// Runs the loop to completion. Per-trial failures never abort the loop:
/// they come back as invalid trials (the tuner sees valid=false).
MeasureLoopResult run_measure_loop(Tuner& tuner,
                                   runtime::MeasureRunner& runner,
                                   const MeasureInputFn& make_input,
                                   const MeasureLoopOptions& options = {});

/// Completion-driven variant: keeps runner.async_slots() trials in
/// flight via submit()/wait_any(), asking the tuner for one more
/// configuration the moment a slot frees and telling each result back as
/// it lands (completion order) — no wave barrier, so one straggler never
/// idles the other slots. With a serial runner (async_slots() == 1) the
/// schedule degenerates to strict ask/measure/tell alternation: the
/// fixed-seed deterministic mode, trajectory-identical to the batch loop
/// at batch_size 1. trials[i]/results[i] are in completion order.
MeasureLoopResult run_measure_loop_async(
    Tuner& tuner, runtime::MeasureRunner& runner,
    const MeasureInputFn& make_input, const MeasureLoopOptions& options = {});

}  // namespace tvmbo::tuners
