#include "tuners/grid_tuner.h"

#include "common/logging.h"

namespace tvmbo::tuners {

GridSearchTuner::GridSearchTuner(const cs::ConfigurationSpace* space,
                                 std::uint64_t seed)
    : Tuner(space, seed) {
  TVMBO_CHECK(space->fully_discrete())
      << "grid search requires a fully discrete space";
}

std::vector<cs::Configuration> GridSearchTuner::next_batch(std::size_t n) {
  std::vector<cs::Configuration> batch;
  const std::uint64_t total = space_->cardinality();
  while (batch.size() < n && cursor_ < total) {
    cs::Configuration config = space_->from_flat_index(cursor_++);
    if (mark_visited(config)) batch.push_back(std::move(config));
  }
  return batch;
}

bool GridSearchTuner::has_next() const {
  return cursor_ < space_->cardinality();
}

}  // namespace tvmbo::tuners
