#include "tuners/ga_tuner.h"

#include <algorithm>

#include "common/logging.h"

namespace tvmbo::tuners {

GaTuner::GaTuner(const cs::ConfigurationSpace* space, std::uint64_t seed,
                 GaOptions options)
    : Tuner(space, seed), options_(options) {
  TVMBO_CHECK_GE(options_.population_size, 2u)
      << "population must have at least two individuals";
  TVMBO_CHECK_LT(options_.elite_count, options_.population_size)
      << "elite_count must be smaller than the population";
  seed_population();
}

cs::Configuration GaTuner::fresh_random() {
  // Sample an unvisited configuration; falls back to a visited one when
  // the space is nearly exhausted (it will be filtered by mark_visited).
  for (int attempt = 0; attempt < 128; ++attempt) {
    cs::Configuration config = space_->sample(rng_);
    if (!is_visited(config)) return config;
  }
  return space_->sample(rng_);
}

void GaTuner::seed_population() {
  population_.clear();
  pending_.clear();
  for (std::size_t i = 0; i < options_.population_size; ++i) {
    population_.push_back({fresh_random(), -1.0});
    pending_.push_back(i);
  }
}

std::vector<cs::Configuration> GaTuner::next_batch(std::size_t n) {
  std::vector<cs::Configuration> batch;
  while (batch.size() < n) {
    if (pending_.empty()) {
      // Current generation fully handed out; breed the next one. Guard
      // against spaces smaller than the population where evolution cannot
      // mint new unvisited members.
      if (space_->fully_discrete() &&
          num_visited() >= space_->cardinality()) {
        break;
      }
      evolve();
      if (pending_.empty()) break;
    }
    const std::size_t member = pending_.front();
    pending_.pop_front();
    cs::Configuration config = population_[member].config;
    if (mark_visited(config)) batch.push_back(std::move(config));
  }
  return batch;
}

void GaTuner::update(std::span<const Trial> trials) {
  Tuner::update(trials);
  for (const Trial& trial : trials) {
    // Attach fitness to the matching unmeasured population member.
    for (Individual& individual : population_) {
      if (individual.fitness < 0.0 &&
          individual.config == trial.config) {
        individual.fitness =
            trial.valid && trial.runtime_s > 0.0 ? 1.0 / trial.runtime_s
                                                 : 0.0;
        break;
      }
    }
  }
}

const cs::Configuration& GaTuner::roulette_pick(double total_fitness) {
  if (total_fitness <= 0.0) {
    return population_[static_cast<std::size_t>(rng_.uniform_int(
                           static_cast<std::int64_t>(population_.size())))]
        .config;
  }
  double ticket = rng_.uniform() * total_fitness;
  for (const Individual& individual : population_) {
    ticket -= std::max(individual.fitness, 0.0);
    if (ticket <= 0.0) return individual.config;
  }
  return population_.back().config;
}

cs::Configuration GaTuner::crossover_and_mutate(
    const cs::Configuration& a, const cs::Configuration& b) {
  cs::Configuration child = a;
  for (std::size_t p = 0; p < space_->num_params(); ++p) {
    if (rng_.bernoulli(0.5)) {
      child.set_index(p, b.index(p));
      if (space_->param(p).cardinality() == 0) {
        child.set_real(p, b.real(p));
      }
    }
  }
  if (rng_.bernoulli(options_.mutation_prob)) {
    child = space_->neighbor(child, rng_);
  }
  return child;
}

void GaTuner::evolve() {
  ++generation_;
  // Rank current generation: measured individuals by fitness descending.
  std::vector<Individual> ranked = population_;
  std::sort(ranked.begin(), ranked.end(),
            [](const Individual& a, const Individual& b) {
              return a.fitness > b.fitness;
            });
  double total_fitness = 0.0;
  for (const Individual& individual : population_) {
    total_fitness += std::max(individual.fitness, 0.0);
  }

  std::vector<Individual> next;
  // Elites survive with their known fitness (not re-measured).
  for (std::size_t i = 0;
       i < options_.elite_count && ranked[i].fitness > 0.0; ++i) {
    next.push_back(ranked[i]);
  }
  // Offspring fill the rest.
  int stale_attempts = 0;
  while (next.size() < options_.population_size) {
    const cs::Configuration& parent_a = roulette_pick(total_fitness);
    const cs::Configuration& parent_b = roulette_pick(total_fitness);
    cs::Configuration child = crossover_and_mutate(parent_a, parent_b);
    if (is_visited(child)) {
      if (++stale_attempts < 64) continue;
      child = fresh_random();  // inject diversity when inbred
      stale_attempts = 0;
    }
    next.push_back({std::move(child), -1.0});
  }
  population_ = std::move(next);
  pending_.clear();
  for (std::size_t i = 0; i < population_.size(); ++i) {
    if (population_[i].fitness < 0.0) pending_.push_back(i);
  }
}

}  // namespace tvmbo::tuners
