// GridSearchTuner: "enumerate the space in a grid search order" —
// lexicographic flat-index enumeration. With 100 evaluations over spaces
// of 4e2..2e8 configurations this only ever explores a corner of the grid,
// which is exactly why the paper finds it performs worst everywhere.
#pragma once

#include "tuners/tuner.h"

namespace tvmbo::tuners {

class GridSearchTuner final : public Tuner {
 public:
  GridSearchTuner(const cs::ConfigurationSpace* space, std::uint64_t seed);

  std::string name() const override { return "autotvm-gridsearch"; }
  std::vector<cs::Configuration> next_batch(std::size_t n) override;
  bool has_next() const override;

 private:
  std::uint64_t cursor_ = 0;
};

}  // namespace tvmbo::tuners
