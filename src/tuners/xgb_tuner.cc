#include "tuners/xgb_tuner.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tvmbo::tuners {

XgbTuner::XgbTuner(const cs::ConfigurationSpace* space, std::uint64_t seed,
                   XgbOptions options)
    : Tuner(space, seed), options_(options), encoder_(space),
      model_(options.gbt) {}

bool XgbTuner::has_next() const {
  if (options_.paper_eval_cap > 0 &&
      num_visited() >= options_.paper_eval_cap) {
    return false;
  }
  return Tuner::has_next();
}

double XgbTuner::predicted_runtime(const cs::Configuration& config) const {
  TVMBO_CHECK(model_.fitted()) << "cost model not trained yet";
  // The model is trained on log-runtime; undo the transform.
  return std::exp(model_.predict(encoder_.encode(config)));
}

void XgbTuner::train_model() {
  surrogate::Dataset data;
  for (const Trial& trial : history_) {
    if (!trial.valid || trial.runtime_s <= 0.0) continue;
    // Log-transform compresses the orders-of-magnitude spread of bad tile
    // configurations so they don't dominate the squared loss.
    data.add(encoder_.encode(trial.config), std::log(trial.runtime_s));
  }
  if (data.size() < 2) return;
  model_.fit(data, rng_);
  trained_on_ = history_.size();
}

std::vector<cs::Configuration> XgbTuner::propose_random(std::size_t n) {
  std::vector<cs::Configuration> batch;
  std::size_t rejects = 0;
  while (batch.size() < n && rejects < 64 * (n + 1)) {
    cs::Configuration config = space_->sample(rng_);
    if (mark_visited(config)) {
      batch.push_back(std::move(config));
    } else {
      ++rejects;
    }
  }
  return batch;
}

std::vector<cs::Configuration> XgbTuner::propose_by_model(std::size_t n) {
  // Simulated-annealing walk scored by the cost model: chains start from
  // random points plus perturbations of the best measured configs.
  struct Chain {
    cs::Configuration state;
    double energy;  // predicted log-runtime
  };
  auto energy_of = [&](const cs::Configuration& config) {
    return model_.predict(encoder_.encode(config));
  };

  std::vector<Chain> chains;
  chains.reserve(options_.sa_chains);
  // Seed half the chains from the measured elite (exploitation).
  std::vector<const Trial*> elite;
  for (const Trial& trial : history_) {
    if (trial.valid) elite.push_back(&trial);
  }
  std::sort(elite.begin(), elite.end(), [](const Trial* a, const Trial* b) {
    return a->runtime_s < b->runtime_s;
  });
  for (std::size_t c = 0; c < options_.sa_chains; ++c) {
    cs::Configuration start =
        (c % 2 == 0 && c / 2 < elite.size())
            ? space_->neighbor(elite[c / 2]->config, rng_)
            : space_->sample(rng_);
    chains.push_back({start, energy_of(start)});
  }

  // Track the best distinct unvisited states seen along all chains.
  std::vector<Chain> pool;
  auto offer = [&](const cs::Configuration& config, double energy) {
    if (is_visited(config)) return;
    for (const Chain& existing : pool) {
      if (existing.state == config) return;
    }
    pool.push_back({config, energy});
  };
  for (Chain& chain : chains) offer(chain.state, chain.energy);

  double temperature = options_.sa_initial_temperature;
  for (std::size_t iteration = 0; iteration < options_.sa_iterations;
       ++iteration) {
    for (Chain& chain : chains) {
      cs::Configuration candidate = space_->neighbor(chain.state, rng_);
      const double energy = energy_of(candidate);
      const double delta = energy - chain.energy;
      if (delta <= 0.0 ||
          rng_.uniform() < std::exp(-delta / std::max(temperature, 1e-6))) {
        chain.state = std::move(candidate);
        chain.energy = energy;
        offer(chain.state, chain.energy);
      }
    }
    temperature *= options_.sa_cooling;
  }

  std::sort(pool.begin(), pool.end(), [](const Chain& a, const Chain& b) {
    return a.energy < b.energy;
  });

  std::vector<cs::Configuration> batch;
  const auto num_random = static_cast<std::size_t>(
      std::floor(options_.epsilon * static_cast<double>(n)));
  for (const Chain& candidate : pool) {
    if (batch.size() + num_random >= n) break;
    cs::Configuration config = candidate.state;
    if (mark_visited(config)) batch.push_back(std::move(config));
  }
  // Epsilon tail plus any shortfall from the pool.
  auto random_tail = propose_random(n - batch.size());
  for (auto& config : random_tail) batch.push_back(std::move(config));
  return batch;
}

std::vector<cs::Configuration> XgbTuner::next_batch(std::size_t n) {
  if (options_.paper_eval_cap > 0) {
    const std::size_t used = num_visited();
    if (used >= options_.paper_eval_cap) return {};
    n = std::min(n, options_.paper_eval_cap - used);
  }
  std::size_t valid_history = 0;
  for (const Trial& trial : history_) {
    if (trial.valid) ++valid_history;
  }
  if (valid_history < options_.min_history_for_model) {
    return propose_random(n);
  }
  if (history_.size() > trained_on_ || !model_.fitted()) train_model();
  if (!model_.fitted()) return propose_random(n);
  return propose_by_model(n);
}

}  // namespace tvmbo::tuners
