// AutoTVM-style tuner interface.
//
// AutoTVM tuners are batch-oriented: the driver asks for the next batch of
// candidate configurations, measures them on the device, and feeds the
// results back (tuner.update). The four concrete tuners mirror the paper's
// §3 list: RandomTuner, GridSearchTuner, GATuner, XgbTuner.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "configspace/configspace.h"

namespace tvmbo::tuners {

/// One measured configuration fed back into a tuner.
struct Trial {
  cs::Configuration config;
  double runtime_s = 0.0;
  bool valid = true;
};

class Tuner {
 public:
  Tuner(const cs::ConfigurationSpace* space, std::uint64_t seed);
  virtual ~Tuner() = default;

  virtual std::string name() const = 0;

  /// Proposes up to `n` configurations to measure next. May return fewer
  /// when the tuner exhausts its candidates; empty means done.
  virtual std::vector<cs::Configuration> next_batch(std::size_t n) = 0;

  /// Feeds back measured results (base implementation records history and
  /// the best-so-far; subclasses extend).
  virtual void update(std::span<const Trial> trials);

  /// False once the tuner cannot propose any more configurations.
  virtual bool has_next() const;

  const std::vector<Trial>& history() const { return history_; }
  /// Best valid trial so far (lowest runtime); nullptr when none.
  const Trial* best() const;

 protected:
  /// Marks a configuration as proposed; returns false when it had already
  /// been proposed (dedup across batches).
  bool mark_visited(const cs::Configuration& config);
  bool is_visited(const cs::Configuration& config) const;
  std::uint64_t num_visited() const { return visited_.size(); }

  const cs::ConfigurationSpace* space_;
  Rng rng_;
  std::vector<Trial> history_;

 private:
  std::unordered_set<std::uint64_t> visited_;  // Configuration::hash values
  std::size_t best_index_ = SIZE_MAX;
};

}  // namespace tvmbo::tuners
