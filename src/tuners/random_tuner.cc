#include "tuners/random_tuner.h"

namespace tvmbo::tuners {

RandomTuner::RandomTuner(const cs::ConfigurationSpace* space,
                         std::uint64_t seed)
    : Tuner(space, seed) {}

std::vector<cs::Configuration> RandomTuner::next_batch(std::size_t n) {
  std::vector<cs::Configuration> batch;
  // Rejection sampling against the visited set. The retry budget covers
  // the endgame where most of a small space is already visited; a full
  // linear sweep finishes the space exactly.
  const bool discrete = space_->fully_discrete();
  std::size_t rejects = 0;
  const std::size_t max_rejects = 64 * (n + 1);
  while (batch.size() < n) {
    if (discrete && num_visited() >= space_->cardinality()) break;
    cs::Configuration config = space_->sample(rng_);
    if (mark_visited(config)) {
      batch.push_back(std::move(config));
      rejects = 0;
    } else if (++rejects >= max_rejects) {
      if (!discrete) break;
      // Dense endgame: walk the whole space once for the leftovers.
      for (std::uint64_t flat = 0;
           flat < space_->cardinality() && batch.size() < n; ++flat) {
        cs::Configuration config = space_->from_flat_index(flat);
        if (mark_visited(config)) batch.push_back(std::move(config));
      }
      break;
    }
  }
  return batch;
}

}  // namespace tvmbo::tuners
