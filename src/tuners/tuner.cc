#include "tuners/tuner.h"

#include "common/logging.h"

namespace tvmbo::tuners {

Tuner::Tuner(const cs::ConfigurationSpace* space, std::uint64_t seed)
    : space_(space), rng_(seed) {
  TVMBO_CHECK(space_ != nullptr) << "tuner requires a configuration space";
  TVMBO_CHECK_GT(space_->num_params(), 0u)
      << "tuner requires a non-empty space";
}

void Tuner::update(std::span<const Trial> trials) {
  for (const Trial& trial : trials) {
    history_.push_back(trial);
    if (trial.valid &&
        (best_index_ == SIZE_MAX ||
         trial.runtime_s < history_[best_index_].runtime_s)) {
      best_index_ = history_.size() - 1;
    }
  }
}

bool Tuner::has_next() const {
  // Discrete spaces are exhausted once every configuration was proposed.
  if (space_->fully_discrete()) {
    return num_visited() < space_->cardinality();
  }
  return true;
}

const Trial* Tuner::best() const {
  if (best_index_ == SIZE_MAX) return nullptr;
  return &history_[best_index_];
}

bool Tuner::mark_visited(const cs::Configuration& config) {
  return visited_.insert(config.hash()).second;
}

bool Tuner::is_visited(const cs::Configuration& config) const {
  return visited_.contains(config.hash());
}

}  // namespace tvmbo::tuners
