// XgbTuner: cost-model-guided search following AutoTVM's XGBTuner —
// "train a XGBoost model to predict the runtime of lowered IR and pick the
// next batch according to the prediction."
//
// Each batch: (re)train a gradient-boosted-tree cost model on all measured
// trials, then run a short simulated-annealing walk over the space scored
// by the model, and propose the best-predicted unvisited configurations
// (with an epsilon of pure-random picks for diversity).
//
// The paper observed that AutoTVM's XGB tuner "could only do at most 56
// evaluations no matter how many evaluations are set"; figure benches
// reproduce that artifact via `paper_eval_cap` (0 disables it, the default
// for library use).
#pragma once

#include "surrogate/dataset.h"
#include "surrogate/gbt.h"
#include "tuners/tuner.h"

namespace tvmbo::tuners {

struct XgbOptions {
  std::size_t min_history_for_model = 8;  ///< random until this many trials
  double epsilon = 0.05;                  ///< random fraction per batch
  std::size_t sa_chains = 32;
  std::size_t sa_iterations = 40;
  double sa_initial_temperature = 1.0;
  double sa_cooling = 0.85;
  surrogate::GbtOptions gbt{};
  std::size_t paper_eval_cap = 0;  ///< 0 = unlimited
};

class XgbTuner final : public Tuner {
 public:
  XgbTuner(const cs::ConfigurationSpace* space, std::uint64_t seed,
           XgbOptions options = {});

  std::string name() const override { return "autotvm-xgb"; }
  std::vector<cs::Configuration> next_batch(std::size_t n) override;
  bool has_next() const override;

  /// Whether the cost model has been trained yet (diagnostics/tests).
  bool model_ready() const { return model_.fitted(); }
  /// Predicted runtime for a configuration (requires model_ready()).
  double predicted_runtime(const cs::Configuration& config) const;

 private:
  void train_model();
  std::vector<cs::Configuration> propose_by_model(std::size_t n);
  std::vector<cs::Configuration> propose_random(std::size_t n);

  XgbOptions options_;
  surrogate::FeatureEncoder encoder_;
  surrogate::GradientBoostedTrees model_;
  std::size_t trained_on_ = 0;  ///< history size at last training
};

}  // namespace tvmbo::tuners
