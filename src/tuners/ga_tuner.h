// GATuner: genetic-algorithm search over the knob space, following
// AutoTVM's tuner of the same name: a fixed-size population whose genes
// are the per-knob indices, roulette-wheel selection on fitness
// (1 / runtime), per-knob uniform crossover, point mutation, and elitism.
#pragma once

#include <deque>

#include "tuners/tuner.h"

namespace tvmbo::tuners {

struct GaOptions {
  std::size_t population_size = 16;
  std::size_t elite_count = 3;
  double mutation_prob = 0.10;
};

class GaTuner final : public Tuner {
 public:
  GaTuner(const cs::ConfigurationSpace* space, std::uint64_t seed,
          GaOptions options = {});

  std::string name() const override { return "autotvm-ga"; }
  std::vector<cs::Configuration> next_batch(std::size_t n) override;
  void update(std::span<const Trial> trials) override;

  std::size_t generation() const { return generation_; }

 private:
  struct Individual {
    cs::Configuration config;
    double fitness = -1.0;  ///< < 0 means not yet measured
  };

  void seed_population();
  void evolve();
  cs::Configuration crossover_and_mutate(const cs::Configuration& a,
                                         const cs::Configuration& b);
  const cs::Configuration& roulette_pick(double total_fitness);
  cs::Configuration fresh_random();

  GaOptions options_;
  std::vector<Individual> population_;
  std::deque<std::size_t> pending_;  ///< population members to measure
  std::size_t generation_ = 0;
};

}  // namespace tvmbo::tuners
