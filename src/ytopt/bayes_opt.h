// ytopt-style Bayesian optimization — the paper's proposed search (§2.2,
// §3): sample a small initial design, then iterate
//
//   Step1 select a configuration via the LCB acquisition over a
//         dynamically refit Random-Forest surrogate,
//   Step2-4 configure + compile + run the kernel (done by the caller),
//   Step5 feed the runtime back (tell), updating the performance model.
//
// One configuration per iteration (AMBS), unlike AutoTVM's batches.
//
// Exploration/exploitation is balanced by the lower-confidence-bound
// acquisition: lcb(x) = mu(x) - kappa * sigma(x), minimized over sampled
// candidates; sigma comes from the spread of per-tree predictions.
//
// Streaming ask/tell: every proposed configuration is tracked as
// *pending* until its measurement is told back. While pending, the
// configuration is hallucinated into the surrogate at the worst valid
// runtime seen (constant-liar, cl-max), so an asynchronous driver can
// keep asking while trials are still in flight — ask() never blocks on a
// pending measurement, never re-proposes one (the visited set covers
// in-flight trials), and steers away from their neighborhoods. With the
// strictly alternating ask/tell of the paper's sequential AMBS loop the
// pending set is always empty at refit time, so batch-mode trajectories
// are untouched.
#pragma once

#include "surrogate/dataset.h"
#include "surrogate/random_forest.h"
#include "tuners/tuner.h"

namespace tvmbo::ytopt {

struct BoOptions {
  std::size_t initial_points = 10;  ///< random warmup configurations
  std::size_t candidates_per_iteration = 512;
  double kappa = 1.96;  ///< LCB exploration weight
  /// Fraction of candidates sampled as neighbours of the incumbent best
  /// configurations (local refinement); the rest are uniform.
  double local_fraction = 0.25;
  std::size_t local_seeds = 5;  ///< how many top configs spawn neighbours
  surrogate::ForestOptions forest{.num_trees = 100};
  /// Refit the surrogate every k tells (1 = every iteration, as ytopt).
  std::size_t refit_interval = 1;
};

class BayesianOptimizer final : public tuners::Tuner {
 public:
  BayesianOptimizer(const cs::ConfigurationSpace* space, std::uint64_t seed,
                    BoOptions options = {});

  std::string name() const override { return "ytopt"; }

  /// Selects the single next configuration (Step 1); the paper's ytopt
  /// flow is strictly sequential (the session uses batch size 1).
  cs::Configuration ask();

  /// Multi-point proposal (qLCB): ranks one candidate pool by the
  /// acquisition and returns the n best distinct configurations. Useful
  /// when several evaluators are available.
  std::vector<cs::Configuration> next_batch(std::size_t n) override;

  /// Records a measured result (Step 5).
  void tell(const cs::Configuration& config, double runtime_s,
            bool valid = true);

  /// Transfer learning: seeds the optimizer with prior measurements from
  /// the same space (e.g. a performance database saved by an earlier
  /// run). Prior points count toward the initial design, train the first
  /// surrogate, and are never proposed again.
  void warm_start(std::span<const tuners::Trial> prior);
  void update(std::span<const tuners::Trial> trials) override;

  /// Transfer learning (model-ranked seeding): queues configurations to
  /// be proposed *first*, ahead of the random initial design — typically
  /// the cross-kernel cost model's predicted top-k for this task. Seeds
  /// are measured through the normal ask/tell cycle (so their results
  /// count toward the initial design and train the first surrogate);
  /// already-visited seeds are dropped at proposal time.
  void seed_proposals(std::vector<cs::Configuration> seeds);
  /// Seeds still queued for proposal.
  std::size_t seed_count() const { return seeds_.size(); }

  bool surrogate_ready() const { return forest_.fitted(); }
  /// Surrogate prediction in runtime seconds (requires surrogate_ready()).
  surrogate::Prediction predict(const cs::Configuration& config) const;
  /// The acquisition value used for selection (log-runtime units).
  double acquisition(const cs::Configuration& config) const;

  /// Configurations proposed but not yet told back — the streaming
  /// drivers' in-flight set, liar-imputed at the next refit.
  std::size_t pending_count() const { return pending_.size(); }
  /// Local-exploitation candidates admitted into the last
  /// surrogate-driven proposal's pool (diagnostics: local_fraction must
  /// be honored even on well-explored spaces).
  std::size_t last_local_candidates() const { return last_local_; }

 private:
  void refit();
  cs::Configuration sample_unvisited();
  std::vector<cs::Configuration> propose(std::size_t n);
  void remember_pending(const cs::Configuration& config);
  void forget_pending(const cs::Configuration& config);

  BoOptions options_;
  surrogate::FeatureEncoder encoder_;
  surrogate::RandomForest forest_;
  std::size_t fitted_on_ = 0;
  /// Insertion-ordered (a set keyed by Configuration::hash would make
  /// refit's liar rows — and thus the forest's bootstrap draws —
  /// nondeterministic).
  std::vector<cs::Configuration> pending_;
  /// Transfer seeds awaiting proposal, best-predicted first.
  std::vector<cs::Configuration> seeds_;
  std::size_t last_local_ = 0;
};

}  // namespace tvmbo::ytopt
