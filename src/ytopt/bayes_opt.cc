#include "ytopt/bayes_opt.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace tvmbo::ytopt {

BayesianOptimizer::BayesianOptimizer(const cs::ConfigurationSpace* space,
                                     std::uint64_t seed, BoOptions options)
    : Tuner(space, seed), options_(options), encoder_(space),
      forest_(options.forest) {
  TVMBO_CHECK_GT(options_.initial_points, 0u)
      << "initial design must have at least one point";
  TVMBO_CHECK_GT(options_.candidates_per_iteration, 0u)
      << "candidate pool must be non-empty";
  TVMBO_CHECK(options_.local_fraction >= 0.0 &&
              options_.local_fraction <= 1.0)
      << "local_fraction must be in [0, 1]";
}

cs::Configuration BayesianOptimizer::sample_unvisited() {
  for (int attempt = 0; attempt < 256; ++attempt) {
    cs::Configuration config = space_->sample(rng_);
    if (!is_visited(config)) return config;
  }
  // Near-exhausted small space: sweep for any leftover configuration.
  if (space_->fully_discrete()) {
    for (std::uint64_t flat = 0; flat < space_->cardinality(); ++flat) {
      cs::Configuration config = space_->from_flat_index(flat);
      if (!is_visited(config)) return config;
    }
  }
  return space_->sample(rng_);
}

void BayesianOptimizer::refit() {
  double worst = 0.0;
  for (const tuners::Trial& trial : history_) {
    if (trial.valid && trial.runtime_s > 0.0) {
      worst = std::max(worst, trial.runtime_s);
    }
  }
  // No valid measurement yet: an all-imputed constant dataset would
  // anchor the forest at an arbitrary level — stay in the random design
  // until a real runtime lands.
  if (worst <= 0.0) return;
  // Failed measurements are informative: penalize, don't discard
  // (skopt-style imputation with a value worse than anything seen). The
  // penalty is scale-relative — an absolute floor (1 s) is ~6 orders of
  // magnitude off for microsecond-scale kernels and warps the log-space
  // forest around the imputed points.
  const double penalty = worst * 2.0;
  surrogate::Dataset data;
  for (const tuners::Trial& trial : history_) {
    const double runtime =
        trial.valid && trial.runtime_s > 0.0 ? trial.runtime_s : penalty;
    data.add(encoder_.encode(trial.config), std::log(runtime));
  }
  // Constant-liar (cl-max): hallucinate in-flight configurations at the
  // worst valid runtime, so a streaming ask() avoids the neighborhoods
  // of trials still being measured without blocking on their results.
  for (const cs::Configuration& config : pending_) {
    data.add(encoder_.encode(config), std::log(worst));
  }
  if (data.size() < 2) return;
  forest_.fit(data, rng_);
  fitted_on_ = history_.size();
}

surrogate::Prediction BayesianOptimizer::predict(
    const cs::Configuration& config) const {
  TVMBO_CHECK(forest_.fitted()) << "surrogate not fitted yet";
  surrogate::Prediction log_pred =
      forest_.predict_with_std(encoder_.encode(config));
  // Report in seconds: exp(mean) with the std scaled by the derivative
  // (first-order delta method).
  surrogate::Prediction out;
  out.mean = std::exp(log_pred.mean);
  out.std = out.mean * log_pred.std;
  return out;
}

double BayesianOptimizer::acquisition(
    const cs::Configuration& config) const {
  TVMBO_CHECK(forest_.fitted()) << "surrogate not fitted yet";
  const surrogate::Prediction pred =
      forest_.predict_with_std(encoder_.encode(config));
  return pred.mean - options_.kappa * pred.std;
}

cs::Configuration BayesianOptimizer::ask() {
  std::vector<cs::Configuration> batch = propose(1);
  TVMBO_CHECK(!batch.empty()) << "search space exhausted";
  return batch[0];
}

std::vector<cs::Configuration> BayesianOptimizer::propose(std::size_t n) {
  TVMBO_CHECK_GT(n, 0u) << "propose of zero configurations";
  std::vector<cs::Configuration> batch;

  // Transfer seeds go first — before the random initial design — so a
  // model-warm-started session spends its earliest (most valuable) trials
  // on the predicted-best configurations. Their measurements flow through
  // the normal tell() path and count toward the initial design.
  while (batch.size() < n && !seeds_.empty()) {
    cs::Configuration config = std::move(seeds_.front());
    seeds_.erase(seeds_.begin());
    if (mark_visited(config)) {
      remember_pending(config);
      batch.push_back(std::move(config));
    }
  }
  if (batch.size() >= n) return batch;

  // Warmup phase (or surrogate unavailable): random design. Bounded
  // rejections: on an effectively exhausted space that is not fully
  // discrete (e.g. a conditional float pinned to its bound),
  // sample_unvisited's fallback keeps returning visited configurations
  // that mark_visited rejects — return a short batch instead of looping
  // forever.
  auto random_fill = [&] {
    int rejected = 0;
    while (batch.size() < n && rejected < 256) {
      if (space_->fully_discrete() &&
          num_visited() >= space_->cardinality()) {
        break;
      }
      cs::Configuration config = sample_unvisited();
      if (mark_visited(config)) {
        remember_pending(config);
        batch.push_back(std::move(config));
        rejected = 0;
      } else {
        ++rejected;
      }
    }
  };
  if (history_.size() < options_.initial_points || history_.size() < 2) {
    random_fill();
    return batch;
  }
  if (!forest_.fitted() ||
      history_.size() >= fitted_on_ + options_.refit_interval) {
    refit();
  }
  if (!forest_.fitted()) {
    random_fill();
    return batch;
  }

  // Candidate pool: mostly uniform exploration, plus neighbours of the
  // best configurations seen (local exploitation).
  std::vector<cs::Configuration> candidates;
  candidates.reserve(options_.candidates_per_iteration);
  const auto num_local = static_cast<std::size_t>(
      options_.local_fraction *
      static_cast<double>(options_.candidates_per_iteration));

  std::vector<const tuners::Trial*> ranked;
  for (const tuners::Trial& trial : history_) {
    if (trial.valid) ranked.push_back(&trial);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const tuners::Trial* a, const tuners::Trial* b) {
              return a->runtime_s < b->runtime_s;
            });
  const std::size_t seeds = std::min(options_.local_seeds, ranked.size());
  // Visited neighbours must be replaced, not dropped: late in a run most
  // one-hop neighbours of the incumbents are already measured, and
  // dropping them silently shrank the local share of the pool toward
  // zero — the optimizer degraded to pure uniform search exactly when
  // local refinement matters most. Retry each draw with bounded extra
  // hops (walking outward from the seed) and bound the total attempts so
  // an exhausted neighbourhood still terminates.
  last_local_ = 0;
  if (seeds > 0 && num_local > 0) {
    const std::size_t max_attempts = num_local * 4;
    for (std::size_t attempt = 0;
         attempt < max_attempts && last_local_ < num_local; ++attempt) {
      const cs::Configuration& seed_config = ranked[attempt % seeds]->config;
      cs::Configuration candidate = space_->neighbor(seed_config, rng_);
      // A couple of extra hops diversify the local cloud.
      if (rng_.bernoulli(0.5)) candidate = space_->neighbor(candidate, rng_);
      for (int hop = 0; hop < 4 && is_visited(candidate); ++hop) {
        candidate = space_->neighbor(candidate, rng_);
      }
      if (!is_visited(candidate)) {
        candidates.push_back(std::move(candidate));
        ++last_local_;
      }
    }
  }
  // Same bounded-rejection guard as random_fill: a near-exhausted space
  // may reject every uniform draw.
  int rejected = 0;
  while (candidates.size() < options_.candidates_per_iteration &&
         rejected < 256) {
    cs::Configuration candidate = space_->sample(rng_);
    if (!is_visited(candidate)) {
      candidates.push_back(std::move(candidate));
      rejected = 0;
    } else if (space_->fully_discrete() &&
               num_visited() >= space_->cardinality()) {
      break;
    } else {
      ++rejected;
    }
  }
  if (candidates.empty()) {
    random_fill();
    return batch;
  }

  // qLCB: rank the whole pool by the acquisition and take the n best
  // distinct candidates (multi-point generalization of the single pick).
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const surrogate::Prediction pred =
        forest_.predict_with_std(encoder_.encode(candidates[i]));
    scored.emplace_back(pred.mean - options_.kappa * pred.std, i);
  }
  std::sort(scored.begin(), scored.end());
  for (const auto& [lcb, index] : scored) {
    if (batch.size() >= n) break;
    cs::Configuration config = candidates[index];
    if (mark_visited(config)) {
      remember_pending(config);
      batch.push_back(std::move(config));
    }
  }
  if (batch.size() < n) random_fill();
  return batch;
}

std::vector<cs::Configuration> BayesianOptimizer::next_batch(
    std::size_t n) {
  if (n == 0 || !has_next()) return {};
  return propose(n);
}

void BayesianOptimizer::remember_pending(const cs::Configuration& config) {
  pending_.push_back(config);
}

void BayesianOptimizer::forget_pending(const cs::Configuration& config) {
  const std::uint64_t hash = config.hash();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->hash() == hash) {
      pending_.erase(it);
      return;
    }
  }
}

void BayesianOptimizer::tell(const cs::Configuration& config,
                             double runtime_s, bool valid) {
  tuners::Trial trial{config, runtime_s, valid};
  update({&trial, 1});
}

void BayesianOptimizer::update(std::span<const tuners::Trial> trials) {
  for (const tuners::Trial& trial : trials) forget_pending(trial.config);
  Tuner::update(trials);
}

void BayesianOptimizer::warm_start(std::span<const tuners::Trial> prior) {
  for (const tuners::Trial& trial : prior) {
    mark_visited(trial.config);
  }
  Tuner::update(prior);
}

void BayesianOptimizer::seed_proposals(
    std::vector<cs::Configuration> seeds) {
  for (cs::Configuration& seed : seeds) {
    seeds_.push_back(std::move(seed));
  }
}

}  // namespace tvmbo::ytopt
