// Backend-agnostic TE program instances for the PolyBench kernels — the
// bridge between the kernel definitions (te_kernels.h) and the three
// IR-level execution tiers (interpreter, closure compiler, JIT).
//
// A TeKernelData holds the initialized *input* arrays for one kernel
// instance, shared read-only across every configuration tried during a
// tuning run (and across concurrent measurement threads). A
// TeProgramInstance is one configured program: schedule applied for a
// concrete tile vector, lowered to loop IR, with per-instance output/work
// buffers so parallel trials never alias each other's writes.
//
// make_te_measure_input() wires an instance into the runtime's measurement
// contract: `prepare` lowers + compiles for the chosen backend (CpuDevice
// times it into MeasureResult::compile_s), `run` executes it. This is what
// kernels::make_task uses for every backend other than the hand-written
// native kernels.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "codegen/jit_program.h"
#include "runtime/buffer.h"
#include "runtime/exec_backend.h"
#include "runtime/measure.h"
#include "te/ir.h"

namespace tvmbo::kernels {

/// Kernels with a TE/loop-IR program: 3mm, gemm, 2mm, syrk, lu, cholesky.
bool te_backend_supported(const std::string& kernel);

/// Tile-vector length the kernel's schedule expects (3mm: 6, 2mm: 4,
/// others: 2). Matches build_space's parameter count for these kernels.
std::size_t te_num_tiles(const std::string& kernel);

/// Number of distinct parallel-axis choices (beyond 0 = serial) the
/// kernel's schedule exposes: compute-DAG kernels offer 2 (1 = yo,
/// 2 = xo per stage), lu/cholesky offer 1 (1 = the trailing-update row
/// loop io). All choices are data axes, so every backend stays
/// bit-identical to the interpreter.
std::size_t te_num_parallel_axes(const std::string& kernel);

/// Initialized input arrays for one kernel instance (PolyBench-style
/// deterministic init). Shared across configurations and threads; every
/// backend only reads them.
struct TeKernelData {
  std::string kernel;
  std::vector<std::int64_t> dims;
  std::vector<runtime::NDArray> inputs;  ///< kernel-specific order
};

/// Builds + initializes the shared inputs. Throws CheckError for kernels
/// without a TE program (see te_backend_supported).
std::shared_ptr<TeKernelData> make_te_kernel_data(
    const std::string& kernel, const std::vector<std::int64_t>& dims);

/// Lowered loop IR of one configured program, without allocating or
/// initializing any buffer — the cheap schedule-only path shared by
/// TeProgramInstance, the lint CLI, and the transfer-learning feature
/// extractor (transfer/features.h), which must lower hundreds of
/// candidate configurations per ranking pass.
///
/// `params` lists the program's parameter tensors in binding order:
/// the kernel's inputs in TeKernelData order followed by the output
/// (lu/cholesky expose a single in/out work matrix instead).
struct TeLoweredProgram {
  te::Stmt stmt;
  std::vector<te::Tensor> params;
  int parallel_threads = 1;  ///< thread budget from the extended tiles
  int unroll_factor = 0;     ///< unroll knob from the extended tiles
};

/// Applies the kernel's schedule for `tiles` (base or extended form, as
/// documented on TeProgramInstance) and lowers to loop IR. Throws
/// CheckError on invalid kernels or tile vectors.
TeLoweredProgram lower_te_program(const std::string& kernel,
                                  const std::vector<std::int64_t>& dims,
                                  std::span<const std::int64_t> tiles);

/// One configured, lowered program plus its buffer bindings.
class TeProgramInstance {
 public:
  /// Applies the kernel's schedule for `tiles` and lowers to loop IR.
  /// Output/work arrays are freshly allocated per instance; inputs alias
  /// the shared TeKernelData.
  ///
  /// `tiles` is the base tile vector (te_num_tiles entries, fully
  /// serial), or an extended form with trailing knobs appended:
  /// [parallel_axis, threads] (two extras) or
  /// [parallel_axis, threads, vec_axis, unroll, pack] (five extras).
  /// parallel_axis in [0, te_num_parallel_axes] selects the kParallel
  /// loop (0 = serial); threads is the worker budget handed to the
  /// execution tier (1 = serial dispatch, 0 = all cores, N >= 2 caps at
  /// N); vec_axis marks an inner data axis kVectorized (0 = none, 1 =
  /// innermost, 2 = second-innermost — lowering insists on a
  /// machine-checked race proof); unroll (0 or >= 2) structurally splits
  /// a data axis and marks the new inner loop kUnrolled; pack (0/1)
  /// snapshots the strided operand into a contiguous scratch
  /// (Stage::cache_write / te::pack_reads).
  TeProgramInstance(std::shared_ptr<TeKernelData> data,
                    std::span<const std::int64_t> tiles);

  const te::Stmt& stmt() const { return stmt_; }

  /// Thread budget from the extended tile vector (1 when absent).
  int parallel_threads() const { return parallel_threads_; }

  /// Unroll factor from the extended tile vector (0 when absent). Handed
  /// to JitOptions::unroll_factor so residual kUnrolled loops keep their
  /// `#pragma GCC unroll` hint in emitted C.
  int unroll_factor() const { return unroll_factor_; }

  /// Tensor -> array bindings for the program's parameters (inputs plus
  /// outputs; Realize intermediates are not bound). Stable for the
  /// lifetime of the instance — compiled programs capture the base
  /// pointers, so the arrays are never reallocated, only refilled.
  const std::vector<std::pair<te::Tensor, runtime::NDArray*>>& bindings()
      const {
    return bindings_;
  }

  /// Restores in-place-factorized buffers (lu/cholesky) to their pristine
  /// contents by copying element-wise — never reallocates (see bindings()).
  /// No-op for the pure compute kernels, whose lowered programs
  /// re-initialize their outputs on every run.
  void reset();

  /// The kernel's primary output (G, C, D, Cout, or the factored matrix),
  /// for differential comparison across backends.
  const runtime::NDArray& output() const { return *output_; }

 private:
  std::shared_ptr<TeKernelData> data_;
  te::Stmt stmt_;
  std::vector<std::pair<te::Tensor, runtime::NDArray*>> bindings_;
  std::vector<std::unique_ptr<runtime::NDArray>> owned_;
  runtime::NDArray* output_ = nullptr;
  const runtime::NDArray* pristine_ = nullptr;  ///< reset() source, or null
  int parallel_threads_ = 1;
  int unroll_factor_ = 0;
};

/// Builds a MeasureInput whose `prepare` instantiates + compiles the
/// configured program for `backend` (kInterp skips compilation) and whose
/// `run` executes it once. kNative is not valid here — native kernels
/// don't go through the TE program path.
runtime::MeasureInput make_te_measure_input(
    std::shared_ptr<TeKernelData> data, const runtime::Workload& workload,
    const std::vector<std::int64_t>& tiles, runtime::ExecBackend backend,
    const codegen::JitOptions& jit_options = {});

/// Differential-test helper: instantiate, execute once via `backend`, and
/// return a copy of the output array.
runtime::NDArray run_te_backend(const std::shared_ptr<TeKernelData>& data,
                                std::span<const std::int64_t> tiles,
                                runtime::ExecBackend backend,
                                const codegen::JitOptions& jit_options = {});

}  // namespace tvmbo::kernels
