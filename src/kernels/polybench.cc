#include "kernels/polybench.h"

#include <memory>

#include "common/logging.h"
#include "configspace/divisors.h"
#include "kernels/matvec.h"
#include "kernels/native.h"
#include "kernels/reference.h"
#include "kernels/te_programs.h"

namespace tvmbo::kernels {

const char* dataset_name(Dataset dataset) {
  switch (dataset) {
    case Dataset::kMini: return "mini";
    case Dataset::kSmall: return "small";
    case Dataset::kMedium: return "medium";
    case Dataset::kLarge: return "large";
    case Dataset::kExtraLarge: return "extralarge";
  }
  return "?";
}

Dataset dataset_from_name(const std::string& name) {
  for (Dataset d : {Dataset::kMini, Dataset::kSmall, Dataset::kMedium,
                    Dataset::kLarge, Dataset::kExtraLarge}) {
    if (name == dataset_name(d)) return d;
  }
  TVMBO_CHECK(false) << "unknown dataset '" << name << "'";
  return Dataset::kMini;
}

std::vector<std::int64_t> polybench_dims(const std::string& kernel,
                                         Dataset dataset) {
  if (kernel == "3mm") {
    switch (dataset) {
      case Dataset::kMini: return {16, 18, 20, 22, 24};
      case Dataset::kSmall: return {40, 50, 60, 70, 80};
      case Dataset::kMedium: return {180, 190, 200, 210, 220};
      case Dataset::kLarge: return {800, 900, 1000, 1100, 1200};
      case Dataset::kExtraLarge: return {1600, 1800, 2000, 2200, 2400};
    }
  }
  if (kernel == "lu" || kernel == "cholesky") {
    switch (dataset) {
      case Dataset::kMini: return {40};
      case Dataset::kSmall: return {120};
      case Dataset::kMedium: return {400};
      case Dataset::kLarge: return {2000};
      case Dataset::kExtraLarge: return {4000};
    }
  }
  if (kernel == "gemm") {
    switch (dataset) {
      case Dataset::kMini: return {20, 25, 30};
      case Dataset::kSmall: return {60, 70, 80};
      case Dataset::kMedium: return {200, 220, 240};
      case Dataset::kLarge: return {1000, 1100, 1200};
      case Dataset::kExtraLarge: return {2000, 2300, 2600};
    }
  }
  if (kernel == "syrk") {
    // {N, M}: C is N x N, A is N x M (PolyBench 4.2).
    switch (dataset) {
      case Dataset::kMini: return {30, 20};
      case Dataset::kSmall: return {80, 60};
      case Dataset::kMedium: return {240, 200};
      case Dataset::kLarge: return {1200, 1000};
      case Dataset::kExtraLarge: return {2600, 2000};
    }
  }
  if (kernel == "atax") {
    // {M, N}: A is M x N (PolyBench 4.2 extents).
    switch (dataset) {
      case Dataset::kMini: return {38, 42};
      case Dataset::kSmall: return {116, 124};
      case Dataset::kMedium: return {390, 410};
      case Dataset::kLarge: return {1900, 2100};
      case Dataset::kExtraLarge: return {1800, 2200};
    }
  }
  if (kernel == "bicg") {
    // {N, M}: A is N x M.
    switch (dataset) {
      case Dataset::kMini: return {42, 38};
      case Dataset::kSmall: return {124, 116};
      case Dataset::kMedium: return {410, 390};
      case Dataset::kLarge: return {2100, 1900};
      case Dataset::kExtraLarge: return {2200, 1800};
    }
  }
  if (kernel == "mvt") {
    switch (dataset) {
      case Dataset::kMini: return {40};
      case Dataset::kSmall: return {120};
      case Dataset::kMedium: return {400};
      case Dataset::kLarge: return {2000};
      case Dataset::kExtraLarge: return {4000};
    }
  }
  if (kernel == "2mm") {
    switch (dataset) {
      case Dataset::kMini: return {16, 18, 22, 24};
      case Dataset::kSmall: return {40, 50, 70, 80};
      case Dataset::kMedium: return {180, 190, 210, 220};
      case Dataset::kLarge: return {800, 900, 1100, 1200};
      case Dataset::kExtraLarge: return {1600, 1800, 2200, 2400};
    }
  }
  TVMBO_CHECK(false) << "unknown kernel '" << kernel << "'";
  return {};
}

double kernel_flops(const std::string& kernel,
                    const std::vector<std::int64_t>& dims) {
  auto d = [&](std::size_t i) { return static_cast<double>(dims[i]); };
  if (kernel == "3mm") {
    TVMBO_CHECK_EQ(dims.size(), 5u) << "3mm dims must be {N,L,M,O,P}";
    // E(NxM depth L) + F(MxP depth O) + G(NxP depth M), 2 flops each.
    return 2.0 * (d(0) * d(2) * d(1) + d(2) * d(4) * d(3) +
                  d(0) * d(4) * d(2));
  }
  if (kernel == "lu") {
    TVMBO_CHECK_EQ(dims.size(), 1u) << "lu dims must be {N}";
    return 2.0 / 3.0 * d(0) * d(0) * d(0);
  }
  if (kernel == "cholesky") {
    TVMBO_CHECK_EQ(dims.size(), 1u) << "cholesky dims must be {N}";
    return 1.0 / 3.0 * d(0) * d(0) * d(0);
  }
  if (kernel == "gemm") {
    TVMBO_CHECK_EQ(dims.size(), 3u) << "gemm dims must be {NI,NJ,NK}";
    return 2.0 * d(0) * d(1) * d(2);
  }
  if (kernel == "2mm") {
    TVMBO_CHECK_EQ(dims.size(), 4u) << "2mm dims must be {NI,NJ,NK,NL}";
    return 2.0 * (d(0) * d(1) * d(2) + d(0) * d(3) * d(1));
  }
  if (kernel == "syrk") {
    TVMBO_CHECK_EQ(dims.size(), 2u) << "syrk dims must be {N, M}";
    return d(0) * d(0) * d(1);  // triangular: half of 2*N^2*M
  }
  if (kernel == "atax" || kernel == "bicg") {
    TVMBO_CHECK_EQ(dims.size(), 2u) << kernel << " dims must be 2-D";
    return 4.0 * d(0) * d(1);  // two matrix-vector traversals
  }
  if (kernel == "mvt") {
    TVMBO_CHECK_EQ(dims.size(), 1u) << "mvt dims must be {N}";
    return 4.0 * d(0) * d(0);
  }
  TVMBO_CHECK(false) << "unknown kernel '" << kernel << "'";
  return 0.0;
}

runtime::Workload make_workload(const std::string& kernel,
                                Dataset dataset) {
  return make_workload(kernel, dataset_name(dataset),
                       polybench_dims(kernel, dataset));
}

runtime::Workload make_workload(const std::string& kernel,
                                const std::string& size_name,
                                std::vector<std::int64_t> dims) {
  runtime::Workload workload;
  workload.kernel = kernel;
  workload.size_name = size_name;
  workload.flops = kernel_flops(kernel, dims);
  workload.dims = std::move(dims);
  return workload;
}

namespace {

// For simulated devices on "3mm", the sim expects dims {N,L,M,O,P} and
// tiles {y0,x0,y1,x1,y2,x2}. The divisor sets follow the paper's §4
// listing: {div(M), div(N), div(P), div(M), div(P), div(N)} for P0..P5.
std::vector<std::int64_t> space_extents(
    const std::string& kernel, const std::vector<std::int64_t>& dims) {
  if (kernel == "3mm") {
    const std::int64_t N = dims[0], M = dims[2], P = dims[4];
    return {M, N, P, M, P, N};
  }
  if (kernel == "lu" || kernel == "cholesky") {
    return {dims[0], dims[0]};
  }
  if (kernel == "gemm") {
    return {dims[0], dims[1]};
  }
  if (kernel == "syrk") {
    return {dims[0], dims[0]};  // both tiles block the N x N output
  }
  if (kernel == "atax" || kernel == "bicg") {
    return {dims[0], dims[1]};  // (row, reduction) blocking of A
  }
  if (kernel == "mvt") {
    return {dims[0], dims[0]};
  }
  if (kernel == "2mm") {
    // Stage tmp is NI x NJ; stage D is NI x NL.
    return {dims[0], dims[1], dims[0], dims[3]};
  }
  TVMBO_CHECK(false) << "unknown kernel '" << kernel << "'";
  return {};
}

}  // namespace

cs::ConfigurationSpace build_space(const std::string& kernel,
                                   const std::vector<std::int64_t>& dims) {
  return build_space(kernel, dims, ParallelKnobs{});
}

cs::ConfigurationSpace build_space(const std::string& kernel,
                                   const std::vector<std::int64_t>& dims,
                                   const ScheduleKnobs& knobs) {
  cs::ConfigurationSpace space;
  const std::vector<std::int64_t> extents = space_extents(kernel, dims);
  for (std::size_t i = 0; i < extents.size(); ++i) {
    space.add(cs::tile_factor_param("P" + std::to_string(i), extents[i]));
  }
  if (knobs.extended()) {
    TVMBO_CHECK(te_backend_supported(kernel))
        << "schedule knobs require a TE program; kernel '" << kernel
        << "' has none";
    if (knobs.enabled) {
      space.add(cs::parallel_axis_param(
          "P_par",
          static_cast<std::int64_t>(te_num_parallel_axes(kernel))));
      space.add(cs::thread_count_param("P_threads", knobs.max_threads));
    } else {
      // Widened tile vectors always carry the [par_axis, threads] slots;
      // without the parallel tier they collapse to serial singletons.
      space.add(std::make_shared<cs::OrdinalHyperparameter>(
          "P_par", std::vector<double>{0.0}));
      space.add(std::make_shared<cs::OrdinalHyperparameter>(
          "P_threads", std::vector<double>{1.0}));
    }
    if (knobs.widened()) {
      space.add(cs::vectorize_axis_param("P_vec", knobs.vectorize));
      space.add(cs::unroll_factor_param("P_unroll", knobs.unroll));
      space.add(cs::pack_flag_param("P_pack", knobs.pack));
    }
  }
  return space;
}

namespace {

// Shared buffers for an executable task; allocated once per task so the
// 100-evaluation loop reuses them (as TVM's measure infrastructure does).
struct ExecBuffers3mm {
  runtime::NDArray a, b, c, d, e, f, g;
  ExecBuffers3mm(std::int64_t n, std::int64_t l, std::int64_t m,
                 std::int64_t o, std::int64_t p)
      : a({n, l}), b({l, m}), c({m, o}), d({o, p}), e({n, m}), f({m, p}),
        g({n, p}) {
    init_3mm(a, b, c, d);
  }
};

struct ExecBuffersSquare {
  runtime::NDArray original, work;
  ExecBuffersSquare(std::int64_t n, bool spd)
      : original({n, n}), work({n, n}) {
    if (spd) {
      init_spd(original);
    } else {
      init_lu(original);
    }
  }
};

}  // namespace

autotvm::Task make_task(const std::string& kernel, Dataset dataset,
                        bool executable) {
  return make_task(kernel, dataset_name(dataset),
                   polybench_dims(kernel, dataset), executable);
}

autotvm::Task make_task(const std::string& kernel,
                        const std::string& size_name,
                        std::vector<std::int64_t> dims, bool executable) {
  autotvm::Task task;
  task.name = kernel + "_" + size_name;
  task.workload = make_workload(kernel, size_name, dims);

  // Knobs mirror the ytopt space candidate-for-candidate.
  const std::vector<std::int64_t> extents = space_extents(kernel, dims);
  static const char* kKnobNames3mm[6] = {"tile_y",  "tile_x",  "tile_y1",
                                         "tile_x1", "tile_y2", "tile_x2"};
  for (std::size_t i = 0; i < extents.size(); ++i) {
    const std::string name =
        extents.size() == 6 ? kKnobNames3mm[i]
                            : (i == 0 ? "tile_y" : "tile_x");
    std::string unique = name;
    if (extents.size() != 6 && extents.size() > 2) {
      unique = "tile_" + std::to_string(i);
    }
    task.config.define_knob(unique, cs::divisors(extents[i]));
  }

  if (executable) {
    const runtime::Workload workload = task.workload;
    if (kernel == "3mm") {
      auto buffers = std::make_shared<ExecBuffers3mm>(
          dims[0], dims[1], dims[2], dims[3], dims[4]);
      task.instantiate =
          [workload, buffers](const std::vector<std::int64_t>& tiles) {
            runtime::MeasureInput input;
            input.workload = workload;
            input.tiles = tiles;
            input.run = [buffers, tiles] {
              const std::int64_t t[6] = {tiles[0], tiles[1], tiles[2],
                                         tiles[3], tiles[4], tiles[5]};
              threemm_tiled(buffers->a, buffers->b, buffers->c, buffers->d,
                            buffers->e, buffers->f, buffers->g, t);
            };
            return input;
          };
    } else if (kernel == "lu" || kernel == "cholesky") {
      const bool spd = kernel == "cholesky";
      auto buffers = std::make_shared<ExecBuffersSquare>(dims[0], spd);
      task.instantiate =
          [workload, buffers, spd](const std::vector<std::int64_t>& tiles) {
            runtime::MeasureInput input;
            input.workload = workload;
            input.tiles = tiles;
            input.run = [buffers, tiles, spd] {
              buffers->work = buffers->original;  // factorize a fresh copy
              if (spd) {
                cholesky_tiled(buffers->work, tiles[0], tiles[1]);
              } else {
                lu_tiled(buffers->work, tiles[0], tiles[1]);
              }
            };
            return input;
          };
    } else if (kernel == "syrk") {
      auto a = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0], dims[1]});
      auto c0 = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0], dims[0]});
      auto work = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0], dims[0]});
      init_syrk(*a, *c0);
      task.instantiate =
          [workload, a, c0, work](const std::vector<std::int64_t>& tiles) {
            runtime::MeasureInput input;
            input.workload = workload;
            input.tiles = tiles;
            input.run = [a, c0, work, tiles] {
              *work = *c0;  // the update is destructive; refresh C
              syrk_tiled(*a, *work, tiles[0], tiles[1]);
            };
            return input;
          };
    } else if (kernel == "atax") {
      auto a = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0], dims[1]});
      auto x = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[1]});
      auto tmp = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0]});
      auto y = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[1]});
      init_atax(*a, *x);
      task.instantiate =
          [workload, a, x, tmp, y](const std::vector<std::int64_t>& tiles) {
            runtime::MeasureInput input;
            input.workload = workload;
            input.tiles = tiles;
            input.run = [a, x, tmp, y, tiles] {
              atax_tiled(*a, *x, *tmp, *y, tiles[0], tiles[1]);
            };
            return input;
          };
    } else if (kernel == "mvt") {
      auto a = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0], dims[0]});
      auto x1 = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0]});
      auto x2 = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0]});
      auto y1 = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0]});
      auto y2 = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0]});
      init_mvt(*a, *x1, *x2, *y1, *y2);
      task.instantiate =
          [workload, a, x1, x2, y1,
           y2](const std::vector<std::int64_t>& tiles) {
            runtime::MeasureInput input;
            input.workload = workload;
            input.tiles = tiles;
            input.run = [a, x1, x2, y1, y2, tiles] {
              mvt_tiled(*a, *x1, *x2, *y1, *y2, tiles[0], tiles[1]);
            };
            return input;
          };
    } else if (kernel == "gemm") {
      auto a = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0], dims[2]});
      auto b = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[2], dims[1]});
      auto c = std::make_shared<runtime::NDArray>(
          std::vector<std::int64_t>{dims[0], dims[1]});
      init_gemm(*a, *b);
      task.instantiate =
          [workload, a, b, c](const std::vector<std::int64_t>& tiles) {
            runtime::MeasureInput input;
            input.workload = workload;
            input.tiles = tiles;
            input.run = [a, b, c, tiles] {
              matmul_tiled(*a, *b, *c, tiles[0], tiles[1]);
            };
            return input;
          };
    }
  }
  return task;
}

autotvm::Task make_task(const std::string& kernel, Dataset dataset,
                        runtime::ExecBackend backend,
                        const codegen::JitOptions& jit_options) {
  return make_task(kernel, dataset_name(dataset),
                   polybench_dims(kernel, dataset), backend, jit_options);
}

autotvm::Task make_task(const std::string& kernel,
                        const std::string& size_name,
                        std::vector<std::int64_t> dims,
                        runtime::ExecBackend backend,
                        const codegen::JitOptions& jit_options) {
  if (backend == runtime::ExecBackend::kNative) {
    return make_task(kernel, size_name, std::move(dims), /*executable=*/true);
  }
  TVMBO_CHECK(te_backend_supported(kernel))
      << "kernel '" << kernel << "' has no TE program; only the native "
      << "backend can run it";

  // Start from the non-executable task to reuse the space/knob setup,
  // then swap in the TE-backed instantiate.
  autotvm::Task task = make_task(kernel, size_name, dims,
                                 /*executable=*/false);
  const runtime::Workload workload = task.workload;
  auto data = make_te_kernel_data(kernel, dims);
  task.instantiate =
      [workload, data, backend,
       jit_options](const std::vector<std::int64_t>& tiles) {
        return make_te_measure_input(data, workload, tiles, backend,
                                     jit_options);
      };
  return task;
}

autotvm::Task make_task(const std::string& kernel, Dataset dataset,
                        runtime::ExecBackend backend,
                        const codegen::JitOptions& jit_options,
                        const ScheduleKnobs& knobs) {
  return make_task(kernel, dataset_name(dataset),
                   polybench_dims(kernel, dataset), backend, jit_options,
                   knobs);
}

autotvm::Task make_task(const std::string& kernel,
                        const std::string& size_name,
                        std::vector<std::int64_t> dims,
                        runtime::ExecBackend backend,
                        const codegen::JitOptions& jit_options,
                        const ScheduleKnobs& knobs) {
  if (!knobs.extended()) {
    return make_task(kernel, size_name, std::move(dims), backend,
                     jit_options);
  }
  TVMBO_CHECK(backend != runtime::ExecBackend::kNative)
      << "schedule knobs require a TE-program backend "
      << "(interp/closure/jit); the native kernels are serial";
  autotvm::Task task =
      make_task(kernel, size_name, std::move(dims), backend, jit_options);
  // Trailing knobs append to the instantiate tile vector in definition
  // order, matching TeProgramInstance's extended [.., parallel_axis,
  // threads, vec_axis, unroll, pack] convention and build_space's
  // P_par/P_threads/P_vec/P_unroll/P_pack (disabled knobs collapse to
  // the same singletons build_space uses).
  if (knobs.enabled) {
    std::vector<std::int64_t> axes;
    for (std::int64_t a = 0;
         a <= static_cast<std::int64_t>(te_num_parallel_axes(kernel)); ++a) {
      axes.push_back(a);
    }
    task.config.define_knob("parallel_axis", std::move(axes));
    task.config.define_knob("threads", cs::thread_counts(knobs.max_threads));
  } else {
    task.config.define_knob("parallel_axis", {0});
    task.config.define_knob("threads", {1});
  }
  if (knobs.widened()) {
    task.config.define_knob(
        "vec_axis", knobs.vectorize ? std::vector<std::int64_t>{0, 1, 2}
                                    : std::vector<std::int64_t>{0});
    task.config.define_knob("unroll",
                            knobs.unroll ? cs::unroll_factors()
                                         : std::vector<std::int64_t>{0});
    task.config.define_knob("pack",
                            knobs.pack ? std::vector<std::int64_t>{0, 1}
                                       : std::vector<std::int64_t>{0});
  }
  return task;
}

std::vector<PaperExperiment> paper_experiments() {
  return {
      {"lu", Dataset::kLarge, "Fig4", "Fig5", 1.659},
      {"lu", Dataset::kExtraLarge, "Fig6", "Fig7", 13.77},
      {"cholesky", Dataset::kLarge, "Fig8", "Fig9", 1.65},
      {"cholesky", Dataset::kExtraLarge, "Fig10", "Fig11", 13.99},
      {"3mm", Dataset::kExtraLarge, "Fig12", "Fig13", 30.99},
      {"3mm", Dataset::kLarge, "", "", 0.0},
  };
}

}  // namespace tvmbo::kernels
