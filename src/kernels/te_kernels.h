// TE-language definitions of the paper's kernels.
//
// 3mm/gemm/2mm are pure tensor contractions and are expressed exactly like
// the paper's §4 listing: placeholders, reduce axes, te.compute chains, and
// a schedule that splits each stage's (y, x) axes by the tunable tile
// factors and reorders to {yo, xo, k, yi, xi}.
//
// LU and Cholesky are sequential factorizations (loop-carried dependence
// across the k steps), which TE compute chains cannot express; like the
// paper we drop to the loop level for them: build_lu_program /
// build_cholesky_program construct the factorization directly in the loop
// IR (in-place updates on a placeholder, triangular bounds via guards).
// The interpreter runs these as the semantics oracle for the tiled native
// kernels.
#pragma once

#include <cstdint>
#include <span>

#include "te/interp.h"
#include "te/lower.h"
#include "te/schedule.h"
#include "te/tensor.h"

namespace tvmbo::kernels {

struct ThreeMmTensors {
  std::int64_t n, l, m, o, p;
  te::Tensor A, B, C, D;  ///< inputs
  te::Tensor E, F, G;     ///< E = A*B, F = C*D, G = E*F
};

/// Builds the 3mm compute DAG (the paper's 3mm_basic without schedules).
ThreeMmTensors make_3mm(std::int64_t n, std::int64_t l, std::int64_t m,
                        std::int64_t o, std::int64_t p);

/// Applies the paper's schedule: per-stage split of (y, x) by
/// tiles = {P0..P5} and reorder to {yo, xo, reduce, yi, xi}.
/// `par_axis` annotates an outer data axis of every stage as kParallel:
/// 0 = serial (default), 1 = yo, 2 = xo.
///
/// Three further knobs, shared (with identical encodings and defaults
/// that leave the schedule byte-identical to earlier releases) by every
/// compute-DAG schedule below:
///  * `vec_axis` annotates an inner data axis of every stage as
///    kVectorized: 0 = none, 1 = innermost (xi), 2 = second-innermost
///    (yi). Lowering demands a machine-checked race-freedom proof for the
///    annotation, and the jit tier emits `#pragma omp simd` only on the
///    proven loops.
///  * `unroll` (0 = off, N >= 2) structurally splits the innermost
///    remaining data axis by N and marks the new inner loop kUnrolled, so
///    the factor reshapes the loop IR on every tier (and therefore the
///    artifact-cache key) instead of being a jit-only hint.
///  * `pack` snapshots each stage's left operand into a contiguous
///    transposed scratch via Stage::cache_write (array packing), making
///    the inner data-axis traversal stride-1.
te::Schedule schedule_3mm(const ThreeMmTensors& t,
                          std::span<const std::int64_t> tiles,
                          int par_axis = 0, int vec_axis = 0,
                          std::int64_t unroll = 0, bool pack = false);

struct GemmTensors {
  std::int64_t m, n, k;
  te::Tensor A, B, C;  ///< C = A*B
};

GemmTensors make_gemm(std::int64_t m, std::int64_t n, std::int64_t k);

te::Schedule schedule_gemm(const GemmTensors& t, std::int64_t ty,
                           std::int64_t tx, int par_axis = 0,
                           int vec_axis = 0, std::int64_t unroll = 0,
                           bool pack = false);

struct TwoMmTensors {
  std::int64_t ni, nj, nk, nl;
  te::Tensor A, B, C;  ///< inputs
  te::Tensor Tmp, D;   ///< Tmp = A*B, D = Tmp*C
};

TwoMmTensors make_2mm(std::int64_t ni, std::int64_t nj, std::int64_t nk,
                      std::int64_t nl);

te::Schedule schedule_2mm(const TwoMmTensors& t,
                          std::span<const std::int64_t> tiles,
                          int par_axis = 0, int vec_axis = 0,
                          std::int64_t unroll = 0, bool pack = false);

struct SyrkTensors {
  std::int64_t n, m;
  te::Tensor A;     ///< N x M input
  te::Tensor Cin;   ///< N x N input
  te::Tensor S;     ///< S = A * A^T (full matrix; the naive TE form)
  te::Tensor Cout;  ///< select(j <= i, beta*Cin + alpha*S, Cin)
};

/// PolyBench syrk as a TE pipeline. The triangular update is expressed
/// with a select over the full output domain (TE has no triangular
/// iteration spaces — the same shape a naive TVM TE port uses).
SyrkTensors make_syrk(std::int64_t n, std::int64_t m, double alpha = 1.5,
                      double beta = 1.2);

/// Tiles the S = A*A^T stage by (ty, tx) with the paper's reorder.
/// `pack` snapshots the A[i, k] operand; the transposed A[j, k] read
/// stays unpacked (its window would not be loop-invariant to prove).
te::Schedule schedule_syrk(const SyrkTensors& t, std::int64_t ty,
                           std::int64_t tx, int par_axis = 0,
                           int vec_axis = 0, std::int64_t unroll = 0,
                           bool pack = false);

/// A factorization program plus handles to its loops, so TIR-level
/// schedule transforms (te/loop_transform.h) can tile it.
struct FactorizationProgram {
  te::Stmt stmt;
  te::Var k;         ///< sequential elimination step
  te::Var scale_i;   ///< pivot-column scale loop
  te::Var update_i;  ///< trailing-update row loop
  te::Var update_j;  ///< trailing-update column loop
};

FactorizationProgram build_lu(const te::Tensor& a, std::int64_t n);
FactorizationProgram build_cholesky(const te::Tensor& a, std::int64_t n);

/// In-place LU without pivoting on placeholder `a` (n x n), built directly
/// in the loop IR with triangular guards.
te::Stmt build_lu_program(const te::Tensor& a, std::int64_t n);

/// In-place Cholesky on placeholder `a` (n x n). The strict upper triangle
/// is left untouched (callers compare the lower triangle only, like
/// PolyBench).
te::Stmt build_cholesky_program(const te::Tensor& a, std::int64_t n);

}  // namespace tvmbo::kernels
