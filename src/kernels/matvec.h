// Matrix-vector PolyBench kernels: atax, bicg, and mvt — the
// memory-bandwidth-bound complement to the paper's matmul-chain and
// factorization kernels. Each ships in the same three forms as the rest
// of the kernel library: reference loops, TE definitions, and parametric
// tiled native implementations where (ti, tj) block the (row, reduction)
// loops of the matrix traversals.
//
//   atax:  y = A^T (A x)          A is M x N
//   bicg:  s = A^T r,  q = A p    A is N x M
//   mvt:   x1 += A y1, x2 += A^T y2,  A is N x N
#pragma once

#include <cstdint>

#include "runtime/buffer.h"
#include "te/schedule.h"
#include "te/tensor.h"

namespace tvmbo::kernels {

using runtime::NDArray;

// --- references ---------------------------------------------------------

void init_atax(NDArray& a, NDArray& x);
void ref_atax(const NDArray& a, const NDArray& x, NDArray& tmp,
              NDArray& y);

void init_bicg(NDArray& a, NDArray& p, NDArray& r);
void ref_bicg(const NDArray& a, const NDArray& p, const NDArray& r,
              NDArray& s, NDArray& q);

void init_mvt(NDArray& a, NDArray& x1, NDArray& x2, NDArray& y1,
              NDArray& y2);
void ref_mvt(const NDArray& a, NDArray& x1, NDArray& x2,
             const NDArray& y1, const NDArray& y2);

// --- tiled native kernels -------------------------------------------------

/// atax with (ti, tj) blocking both matrix traversals.
void atax_tiled(const NDArray& a, const NDArray& x, NDArray& tmp,
                NDArray& y, std::int64_t ti, std::int64_t tj);

void bicg_tiled(const NDArray& a, const NDArray& p, const NDArray& r,
                NDArray& s, NDArray& q, std::int64_t ti, std::int64_t tj);

void mvt_tiled(const NDArray& a, NDArray& x1, NDArray& x2,
               const NDArray& y1, const NDArray& y2, std::int64_t ti,
               std::int64_t tj);

// --- TE definitions ---------------------------------------------------------

struct AtaxTensors {
  std::int64_t m, n;
  te::Tensor A, X;    ///< inputs: A(M,N), x(N)
  te::Tensor Tmp, Y;  ///< tmp = A*x (M); y = A^T*tmp (N)
};

AtaxTensors make_atax(std::int64_t m, std::int64_t n);

/// Splits each stage's data axis by ti and its reduction axis by tj, with
/// reorder {io, jo, ii, ji} — reduction tiling, which the matmul kernels'
/// schedules don't exercise.
te::Schedule schedule_atax(const AtaxTensors& t, std::int64_t ti,
                           std::int64_t tj);

}  // namespace tvmbo::kernels
