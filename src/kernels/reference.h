// Reference implementations of the PolyBench 4.2 kernels the paper tunes
// (3mm, LU, Cholesky) plus the gemm/2mm extensions. Straight loop nests
// transcribed from the PolyBench C sources; these are the numerical ground
// truth every scheduled/tiled variant is validated against, and the
// "baseline" the paper's §4 refers to.
#pragma once

#include <cstdint>

#include "runtime/buffer.h"

namespace tvmbo::kernels {

using runtime::NDArray;

// --- PolyBench-style deterministic initialization ---------------------------

/// 3mm inputs (PolyBench init_array): A(N,L), B(L,M), C(M,O), D(O,P).
void init_3mm(NDArray& a, NDArray& b, NDArray& c, NDArray& d);

/// gemm inputs: A(M,K), B(K,N).
void init_gemm(NDArray& a, NDArray& b);

/// Strictly diagonally dominant SPD matrix for Cholesky (PolyBench builds
/// one via B*B^T; diagonal dominance is equivalent for our purposes and
/// keeps init O(n^2)).
void init_spd(NDArray& a);

/// Diagonally dominant matrix so LU without pivoting is stable.
void init_lu(NDArray& a);

// --- kernels ----------------------------------------------------------------

/// C = A * B.
void ref_matmul(const NDArray& a, const NDArray& b, NDArray& c);

/// 3mm: E = A*B, F = C*D, G = E*F.
void ref_3mm(const NDArray& a, const NDArray& b, const NDArray& c,
             const NDArray& d, NDArray& e, NDArray& f, NDArray& g);

/// 2mm (simplified alpha=beta=1): tmp = A*B, D = tmp*C.
void ref_2mm(const NDArray& a, const NDArray& b, const NDArray& c,
             NDArray& tmp, NDArray& d);

/// syrk (PolyBench): C = alpha*A*A^T + beta*C on the lower triangle
/// (strict upper triangle untouched). A is N x M, C is N x N.
void ref_syrk(const NDArray& a, NDArray& c, double alpha = 1.5,
              double beta = 1.2);

/// syrk inputs: A(N,M) and symmetric-ish C(N,N), PolyBench init style.
void init_syrk(NDArray& a, NDArray& c);

/// In-place LU decomposition without pivoting (PolyBench lu): on return,
/// the strict lower triangle holds L (unit diagonal implied) and the upper
/// triangle holds U.
void ref_lu(NDArray& a);

/// In-place Cholesky (PolyBench cholesky): on return the lower triangle
/// holds L with A = L*L^T; the strict upper triangle is zeroed.
void ref_cholesky(NDArray& a);

// --- validation helpers -----------------------------------------------------

/// Max |(L*U) - original| over all elements.
double lu_residual(const NDArray& factored, const NDArray& original);

/// Max |(L*L^T) - original| over the lower triangle.
double cholesky_residual(const NDArray& factored, const NDArray& original);

}  // namespace tvmbo::kernels
