#include "kernels/reference.h"

#include <cmath>

#include "common/logging.h"

namespace tvmbo::kernels {

namespace {
// Raw row-major views keep the reference kernels readable.
struct View2 {
  double* data;
  std::int64_t cols;
  double& operator()(std::int64_t i, std::int64_t j) {
    return data[i * cols + j];
  }
  double operator()(std::int64_t i, std::int64_t j) const {
    return data[i * cols + j];
  }
};

View2 view(NDArray& a) {
  TVMBO_CHECK_EQ(a.ndim(), 2u) << "2-D array expected";
  return {a.f64().data(), a.shape()[1]};
}

const View2 view(const NDArray& a) {
  TVMBO_CHECK_EQ(a.ndim(), 2u) << "2-D array expected";
  return {const_cast<double*>(a.f64().data()), a.shape()[1]};
}
}  // namespace

void init_3mm(NDArray& a, NDArray& b, NDArray& c, NDArray& d) {
  const std::int64_t ni = a.shape()[0], nk = a.shape()[1];
  const std::int64_t nj = b.shape()[1];
  const std::int64_t nm = c.shape()[1];
  const std::int64_t nl = d.shape()[1];
  TVMBO_CHECK_EQ(b.shape()[0], nk) << "3mm shape mismatch (A,B)";
  TVMBO_CHECK_EQ(d.shape()[0], nm) << "3mm shape mismatch (C,D)";
  auto va = view(a);
  for (std::int64_t i = 0; i < ni; ++i)
    for (std::int64_t j = 0; j < nk; ++j)
      va(i, j) = static_cast<double>((i * j + 1) % ni) /
                 (5.0 * static_cast<double>(ni));
  auto vb = view(b);
  for (std::int64_t i = 0; i < nk; ++i)
    for (std::int64_t j = 0; j < nj; ++j)
      vb(i, j) = static_cast<double>((i * (j + 1) + 2) % nj) /
                 (5.0 * static_cast<double>(nj));
  auto vc = view(c);
  const std::int64_t c_rows = c.shape()[0];
  for (std::int64_t i = 0; i < c_rows; ++i)
    for (std::int64_t j = 0; j < nm; ++j)
      vc(i, j) = static_cast<double>(i * (j + 3) % nl) /
                 (5.0 * static_cast<double>(nl));
  auto vd = view(d);
  for (std::int64_t i = 0; i < nm; ++i)
    for (std::int64_t j = 0; j < nl; ++j)
      vd(i, j) = static_cast<double>((i * (j + 2) + 2) % nk) /
                 (5.0 * static_cast<double>(nk));
}

void init_gemm(NDArray& a, NDArray& b) {
  const std::int64_t m = a.shape()[0], k = a.shape()[1];
  const std::int64_t n = b.shape()[1];
  auto va = view(a);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < k; ++j)
      va(i, j) = static_cast<double>((i * j + 1) % m) /
                 static_cast<double>(m);
  auto vb = view(b);
  for (std::int64_t i = 0; i < k; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      vb(i, j) = static_cast<double>((i * j + 2) % n) /
                 static_cast<double>(n);
}

void init_spd(NDArray& a) {
  const std::int64_t n = a.shape()[0];
  TVMBO_CHECK_EQ(a.shape()[1], n) << "SPD init requires a square matrix";
  auto va = view(a);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const double base =
          static_cast<double>((i * j + 7) % n) / static_cast<double>(n);
      va(i, j) = 0.5 * (base + static_cast<double>((j * i + 7) % n) /
                                   static_cast<double>(n));
    }
    // Diagonal dominance guarantees positive definiteness.
    va(i, i) = static_cast<double>(n) + 1.0;
  }
}

void init_lu(NDArray& a) {
  const std::int64_t n = a.shape()[0];
  TVMBO_CHECK_EQ(a.shape()[1], n) << "LU init requires a square matrix";
  auto va = view(a);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      va(i, j) =
          static_cast<double>((i * (j + 1) + 3) % n) /
          static_cast<double>(n);
    }
    va(i, i) = static_cast<double>(n);  // no-pivoting stability
  }
}

void ref_matmul(const NDArray& a, const NDArray& b, NDArray& c) {
  const std::int64_t m = a.shape()[0], k = a.shape()[1];
  const std::int64_t n = b.shape()[1];
  TVMBO_CHECK_EQ(b.shape()[0], k) << "matmul inner-dim mismatch";
  TVMBO_CHECK(c.shape()[0] == m && c.shape()[1] == n)
      << "matmul output shape mismatch";
  const auto va = view(a);
  const auto vb = view(b);
  auto vc = view(c);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += va(i, p) * vb(p, j);
      vc(i, j) = acc;
    }
  }
}

void ref_3mm(const NDArray& a, const NDArray& b, const NDArray& c,
             const NDArray& d, NDArray& e, NDArray& f, NDArray& g) {
  ref_matmul(a, b, e);
  ref_matmul(c, d, f);
  ref_matmul(e, f, g);
}

void ref_2mm(const NDArray& a, const NDArray& b, const NDArray& c,
             NDArray& tmp, NDArray& d) {
  ref_matmul(a, b, tmp);
  ref_matmul(tmp, c, d);
}

void init_syrk(NDArray& a, NDArray& c) {
  const std::int64_t n = a.shape()[0], m = a.shape()[1];
  TVMBO_CHECK(c.shape()[0] == n && c.shape()[1] == n)
      << "syrk C must be N x N";
  auto va = view(a);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < m; ++j)
      va(i, j) = static_cast<double>((i * j + 1) % n) /
                 static_cast<double>(n);
  auto vc = view(c);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      vc(i, j) = static_cast<double>((i * j + 2) % m) /
                 static_cast<double>(m);
}

void ref_syrk(const NDArray& a, NDArray& c, double alpha, double beta) {
  const std::int64_t n = a.shape()[0], m = a.shape()[1];
  TVMBO_CHECK(c.shape()[0] == n && c.shape()[1] == n)
      << "syrk C must be N x N";
  const auto va = view(a);
  auto vc = view(c);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < m; ++k) acc += va(i, k) * va(j, k);
      vc(i, j) = beta * vc(i, j) + alpha * acc;
    }
  }
}

void ref_lu(NDArray& a) {
  const std::int64_t n = a.shape()[0];
  TVMBO_CHECK_EQ(a.shape()[1], n) << "LU requires a square matrix";
  auto va = view(a);
  for (std::int64_t k = 0; k < n; ++k) {
    const double pivot = va(k, k);
    TVMBO_CHECK(std::fabs(pivot) > 1e-12)
        << "zero pivot at step " << k << " (LU without pivoting)";
    for (std::int64_t i = k + 1; i < n; ++i) va(i, k) /= pivot;
    for (std::int64_t i = k + 1; i < n; ++i) {
      const double lik = va(i, k);
      for (std::int64_t j = k + 1; j < n; ++j) {
        va(i, j) -= lik * va(k, j);
      }
    }
  }
}

void ref_cholesky(NDArray& a) {
  const std::int64_t n = a.shape()[0];
  TVMBO_CHECK_EQ(a.shape()[1], n) << "Cholesky requires a square matrix";
  auto va = view(a);
  for (std::int64_t k = 0; k < n; ++k) {
    const double diag = va(k, k);
    TVMBO_CHECK_GT(diag, 0.0)
        << "matrix not positive definite at step " << k;
    const double pivot = std::sqrt(diag);
    va(k, k) = pivot;
    for (std::int64_t i = k + 1; i < n; ++i) va(i, k) /= pivot;
    for (std::int64_t i = k + 1; i < n; ++i) {
      for (std::int64_t j = k + 1; j <= i; ++j) {
        va(i, j) -= va(i, k) * va(j, k);
      }
    }
  }
  // Zero the strict upper triangle, as PolyBench's kernel leaves L only.
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i + 1; j < n; ++j) va(i, j) = 0.0;
}

double lu_residual(const NDArray& factored, const NDArray& original) {
  const std::int64_t n = factored.shape()[0];
  const auto vf = view(factored);
  const auto vo = view(original);
  double worst = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      // (L*U)[i,j] with unit-diagonal L stored below the diagonal.
      double acc = 0.0;
      const std::int64_t limit = std::min(i, j);
      for (std::int64_t k = 0; k <= limit; ++k) {
        const double l = (k == i) ? 1.0 : vf(i, k);
        acc += l * vf(k, j);
      }
      worst = std::max(worst, std::fabs(acc - vo(i, j)));
    }
  }
  return worst;
}

double cholesky_residual(const NDArray& factored, const NDArray& original) {
  const std::int64_t n = factored.shape()[0];
  const auto vf = view(factored);
  const auto vo = view(original);
  double worst = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k <= j; ++k) acc += vf(i, k) * vf(j, k);
      worst = std::max(worst, std::fabs(acc - vo(i, j)));
    }
  }
  return worst;
}

}  // namespace tvmbo::kernels
