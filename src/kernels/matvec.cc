#include "kernels/matvec.h"

#include <algorithm>

#include "common/logging.h"

namespace tvmbo::kernels {

namespace {
struct View2 {
  double* data;
  std::int64_t cols;
  double& operator()(std::int64_t i, std::int64_t j) {
    return data[i * cols + j];
  }
  double operator()(std::int64_t i, std::int64_t j) const {
    return data[i * cols + j];
  }
};
View2 view(NDArray& a) { return {a.f64().data(), a.shape()[1]}; }
View2 view(const NDArray& a) {
  return {const_cast<double*>(a.f64().data()), a.shape()[1]};
}
std::int64_t clamp_tile(std::int64_t tile, std::int64_t extent) {
  return std::clamp<std::int64_t>(tile, 1, extent);
}
}  // namespace

// --- atax -------------------------------------------------------------------

void init_atax(NDArray& a, NDArray& x) {
  const std::int64_t m = a.shape()[0], n = a.shape()[1];
  TVMBO_CHECK_EQ(x.shape()[0], n) << "atax x must have N elements";
  auto va = view(a);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      va(i, j) = static_cast<double>((i + j) % n) /
                 (5.0 * static_cast<double>(m));
  auto vx = x.f64();
  for (std::int64_t j = 0; j < n; ++j)
    vx[static_cast<std::size_t>(j)] =
        1.0 + static_cast<double>(j) / static_cast<double>(n);
}

void ref_atax(const NDArray& a, const NDArray& x, NDArray& tmp,
              NDArray& y) {
  const std::int64_t m = a.shape()[0], n = a.shape()[1];
  const auto va = view(a);
  const auto vx = x.f64();
  auto vtmp = tmp.f64();
  auto vy = y.f64();
  for (std::int64_t j = 0; j < n; ++j) vy[static_cast<std::size_t>(j)] = 0.0;
  for (std::int64_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      acc += va(i, j) * vx[static_cast<std::size_t>(j)];
    }
    vtmp[static_cast<std::size_t>(i)] = acc;
  }
  for (std::int64_t i = 0; i < m; ++i) {
    const double t = vtmp[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < n; ++j) {
      vy[static_cast<std::size_t>(j)] += va(i, j) * t;
    }
  }
}

void atax_tiled(const NDArray& a, const NDArray& x, NDArray& tmp,
                NDArray& y, std::int64_t ti, std::int64_t tj) {
  const std::int64_t m = a.shape()[0], n = a.shape()[1];
  const auto va = view(a);
  const auto vx = x.f64();
  auto vtmp = tmp.f64();
  auto vy = y.f64();
  const std::int64_t bi = clamp_tile(ti, m);
  const std::int64_t bj = clamp_tile(tj, n);
  for (std::int64_t i = 0; i < m; ++i) vtmp[static_cast<std::size_t>(i)] = 0.0;
  for (std::int64_t j = 0; j < n; ++j) vy[static_cast<std::size_t>(j)] = 0.0;
  // tmp = A x, blocked (io, jo, ii, ji).
  for (std::int64_t io = 0; io < m; io += bi) {
    const std::int64_t i_end = std::min(io + bi, m);
    for (std::int64_t jo = 0; jo < n; jo += bj) {
      const std::int64_t j_end = std::min(jo + bj, n);
      for (std::int64_t i = io; i < i_end; ++i) {
        double acc = 0.0;
        for (std::int64_t j = jo; j < j_end; ++j) {
          acc += va(i, j) * vx[static_cast<std::size_t>(j)];
        }
        vtmp[static_cast<std::size_t>(i)] += acc;
      }
    }
  }
  // y = A^T tmp, blocked the same way.
  for (std::int64_t io = 0; io < m; io += bi) {
    const std::int64_t i_end = std::min(io + bi, m);
    for (std::int64_t jo = 0; jo < n; jo += bj) {
      const std::int64_t j_end = std::min(jo + bj, n);
      for (std::int64_t i = io; i < i_end; ++i) {
        const double t = vtmp[static_cast<std::size_t>(i)];
        for (std::int64_t j = jo; j < j_end; ++j) {
          vy[static_cast<std::size_t>(j)] += va(i, j) * t;
        }
      }
    }
  }
}

// --- bicg -------------------------------------------------------------------

void init_bicg(NDArray& a, NDArray& p, NDArray& r) {
  const std::int64_t n = a.shape()[0], m = a.shape()[1];
  auto va = view(a);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < m; ++j)
      va(i, j) = static_cast<double>((i * (j + 1)) % n) /
                 static_cast<double>(n);
  auto vp = p.f64();
  for (std::int64_t j = 0; j < m; ++j)
    vp[static_cast<std::size_t>(j)] =
        static_cast<double>(j % m) / static_cast<double>(m);
  auto vr = r.f64();
  for (std::int64_t i = 0; i < n; ++i)
    vr[static_cast<std::size_t>(i)] =
        static_cast<double>(i % n) / static_cast<double>(n);
}

void ref_bicg(const NDArray& a, const NDArray& p, const NDArray& r,
              NDArray& s, NDArray& q) {
  const std::int64_t n = a.shape()[0], m = a.shape()[1];
  const auto va = view(a);
  const auto vp = p.f64();
  const auto vr = r.f64();
  auto vs = s.f64();
  auto vq = q.f64();
  for (std::int64_t j = 0; j < m; ++j) vs[static_cast<std::size_t>(j)] = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < m; ++j) {
      vs[static_cast<std::size_t>(j)] +=
          vr[static_cast<std::size_t>(i)] * va(i, j);
      acc += va(i, j) * vp[static_cast<std::size_t>(j)];
    }
    vq[static_cast<std::size_t>(i)] = acc;
  }
}

void bicg_tiled(const NDArray& a, const NDArray& p, const NDArray& r,
                NDArray& s, NDArray& q, std::int64_t ti, std::int64_t tj) {
  const std::int64_t n = a.shape()[0], m = a.shape()[1];
  const auto va = view(a);
  const auto vp = p.f64();
  const auto vr = r.f64();
  auto vs = s.f64();
  auto vq = q.f64();
  const std::int64_t bi = clamp_tile(ti, n);
  const std::int64_t bj = clamp_tile(tj, m);
  for (std::int64_t j = 0; j < m; ++j) vs[static_cast<std::size_t>(j)] = 0.0;
  for (std::int64_t i = 0; i < n; ++i) vq[static_cast<std::size_t>(i)] = 0.0;
  for (std::int64_t io = 0; io < n; io += bi) {
    const std::int64_t i_end = std::min(io + bi, n);
    for (std::int64_t jo = 0; jo < m; jo += bj) {
      const std::int64_t j_end = std::min(jo + bj, m);
      for (std::int64_t i = io; i < i_end; ++i) {
        const double ri = vr[static_cast<std::size_t>(i)];
        double acc = 0.0;
        for (std::int64_t j = jo; j < j_end; ++j) {
          vs[static_cast<std::size_t>(j)] += ri * va(i, j);
          acc += va(i, j) * vp[static_cast<std::size_t>(j)];
        }
        vq[static_cast<std::size_t>(i)] += acc;
      }
    }
  }
}

// --- mvt --------------------------------------------------------------------

void init_mvt(NDArray& a, NDArray& x1, NDArray& x2, NDArray& y1,
              NDArray& y2) {
  const std::int64_t n = a.shape()[0];
  auto va = view(a);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      va(i, j) = static_cast<double>((i * j) % n) / static_cast<double>(n);
  auto write = [n](NDArray& v, double scale, double offset) {
    auto view1 = v.f64();
    for (std::int64_t i = 0; i < n; ++i) {
      view1[static_cast<std::size_t>(i)] =
          (static_cast<double>(i) + offset) * scale /
          static_cast<double>(n);
    }
  };
  write(x1, 1.0, 0.0);
  write(x2, 1.0, 1.0);
  write(y1, 2.0, 3.0);
  write(y2, 4.0, 5.0);
}

void ref_mvt(const NDArray& a, NDArray& x1, NDArray& x2,
             const NDArray& y1, const NDArray& y2) {
  const std::int64_t n = a.shape()[0];
  const auto va = view(a);
  auto vx1 = x1.f64();
  auto vx2 = x2.f64();
  const auto vy1 = y1.f64();
  const auto vy2 = y2.f64();
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      vx1[static_cast<std::size_t>(i)] +=
          va(i, j) * vy1[static_cast<std::size_t>(j)];
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      vx2[static_cast<std::size_t>(i)] +=
          va(j, i) * vy2[static_cast<std::size_t>(j)];
}

void mvt_tiled(const NDArray& a, NDArray& x1, NDArray& x2,
               const NDArray& y1, const NDArray& y2, std::int64_t ti,
               std::int64_t tj) {
  const std::int64_t n = a.shape()[0];
  const auto va = view(a);
  auto vx1 = x1.f64();
  auto vx2 = x2.f64();
  const auto vy1 = y1.f64();
  const auto vy2 = y2.f64();
  const std::int64_t bi = clamp_tile(ti, n);
  const std::int64_t bj = clamp_tile(tj, n);
  for (std::int64_t io = 0; io < n; io += bi) {
    const std::int64_t i_end = std::min(io + bi, n);
    for (std::int64_t jo = 0; jo < n; jo += bj) {
      const std::int64_t j_end = std::min(jo + bj, n);
      for (std::int64_t i = io; i < i_end; ++i) {
        double acc = 0.0;
        for (std::int64_t j = jo; j < j_end; ++j) {
          acc += va(i, j) * vy1[static_cast<std::size_t>(j)];
        }
        vx1[static_cast<std::size_t>(i)] += acc;
      }
    }
  }
  // x2 += A^T y2: traverse A row-wise for locality, scatter into x2.
  for (std::int64_t jo = 0; jo < n; jo += bj) {
    const std::int64_t j_end = std::min(jo + bj, n);
    for (std::int64_t io = 0; io < n; io += bi) {
      const std::int64_t i_end = std::min(io + bi, n);
      for (std::int64_t j = jo; j < j_end; ++j) {
        const double y = vy2[static_cast<std::size_t>(j)];
        for (std::int64_t i = io; i < i_end; ++i) {
          vx2[static_cast<std::size_t>(i)] += va(j, i) * y;
        }
      }
    }
  }
}

// --- TE atax ------------------------------------------------------------------

AtaxTensors make_atax(std::int64_t m, std::int64_t n) {
  using namespace te;
  AtaxTensors t;
  t.m = m;
  t.n = n;
  t.A = placeholder({m, n}, "A");
  t.X = placeholder({n}, "x");
  auto j = reduce_axis(n, "j");
  t.Tmp = compute(
      {m}, "tmp",
      [&](const std::vector<Var>& i) {
        return sum(access(t.A, {i[0], j->var}) * access(t.X, {j->var}),
                   {j->var});
      },
      {j});
  auto i2 = reduce_axis(m, "i2");
  t.Y = compute(
      {n}, "y",
      [&](const std::vector<Var>& jv) {
        return sum(access(t.A, {i2->var, jv[0]}) *
                       access(t.Tmp, {i2->var}),
                   {i2->var});
      },
      {i2});
  return t;
}

te::Schedule schedule_atax(const AtaxTensors& t, std::int64_t ti,
                           std::int64_t tj) {
  te::Schedule sched({t.Y});
  {
    te::Stage& stage = sched[t.Tmp];
    auto [io, ii] =
        stage.split(stage.op_axis()[0], std::min(ti, t.m));
    auto [jo, ji] =
        stage.split(stage.op_reduce_axis()[0], std::min(tj, t.n));
    stage.reorder({io, jo, ii, ji});
  }
  {
    te::Stage& stage = sched[t.Y];
    auto [jo, ji] =
        stage.split(stage.op_axis()[0], std::min(tj, t.n));
    auto [io, ii] =
        stage.split(stage.op_reduce_axis()[0], std::min(ti, t.m));
    stage.reorder({jo, io, ji, ii});
  }
  return sched;
}

}  // namespace tvmbo::kernels
