// Parametric tiled native kernels: the executable artifacts a configured
// schedule compiles to on the CPU path. The (ty, tx) arguments are the
// same tile factors the schedules and the paper's parameter spaces use —
// they block the loops for real, so CpuDevice measurements respond to the
// configuration exactly like a TVM build would.
#pragma once

#include <cstdint>

#include "runtime/buffer.h"

namespace tvmbo::kernels {

using runtime::NDArray;

/// C = A * B with (ty, tx) output blocking and a fixed reduction chunk.
void matmul_tiled(const NDArray& a, const NDArray& b, NDArray& c,
                  std::int64_t ty, std::int64_t tx);

/// 3mm with per-stage tiles {y0,x0, y1,x1, y2,x2}.
void threemm_tiled(const NDArray& a, const NDArray& b, const NDArray& c,
                   const NDArray& d, NDArray& e, NDArray& f, NDArray& g,
                   const std::int64_t tiles[6]);

/// 2mm with per-stage tiles {y0,x0, y1,x1}.
void twomm_tiled(const NDArray& a, const NDArray& b, const NDArray& c,
                 NDArray& tmp, NDArray& d, const std::int64_t tiles[4]);

/// syrk with (ty, tx) blocking of the triangular output update.
void syrk_tiled(const NDArray& a, NDArray& c, std::int64_t ty,
                std::int64_t tx, double alpha = 1.5, double beta = 1.2);

/// In-place LU without pivoting; (ty, tx) block the trailing rank-1
/// update's (i, j) loops.
void lu_tiled(NDArray& a, std::int64_t ty, std::int64_t tx);

/// In-place Cholesky; (ty, tx) block the symmetric trailing update.
void cholesky_tiled(NDArray& a, std::int64_t ty, std::int64_t tx);

}  // namespace tvmbo::kernels
