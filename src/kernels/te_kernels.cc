#include "kernels/te_kernels.h"

#include <algorithm>

#include "common/logging.h"

namespace tvmbo::kernels {

using te::access;
using te::Tensor;
using te::Var;

namespace {

// Shared par_axis encoding for the compute-DAG schedules: 0 = serial,
// 1 = parallel over yo, 2 = parallel over xo. Both are data axes, so the
// lowering-time disjointness invariant holds by construction.
void annotate_parallel(te::Stage& stage, int par_axis, const te::IterVar& yo,
                       const te::IterVar& xo) {
  TVMBO_CHECK(par_axis >= 0 && par_axis <= 2)
      << "par_axis must be 0 (serial), 1 (yo), or 2 (xo); got " << par_axis;
  if (par_axis == 1) {
    stage.parallel(yo);
  } else if (par_axis == 2) {
    stage.parallel(xo);
  }
}

// Shared vec_axis/unroll encoding, applied after the {yo, xo, k, yi, xi}
// reorder. vec_axis: 0 = none, 1 = innermost (xi), 2 = second-innermost
// (yi). unroll N >= 2 structurally splits a data axis by N and marks the
// new inner loop kUnrolled; the target is xi unless xi is vectorized, in
// which case yi takes the split — the two knobs never collide. Targets
// come from the pre-split nest, the split lands first, then the
// vectorize annotation (whose race proof lowering enforces).
void apply_axis_knobs(te::Stage& stage, const te::IterVar& yi,
                      const te::IterVar& xi, int vec_axis,
                      std::int64_t unroll) {
  TVMBO_CHECK(vec_axis >= 0 && vec_axis <= 2)
      << "vec_axis must be 0 (none), 1 (innermost), or 2 "
         "(second-innermost); got " << vec_axis;
  TVMBO_CHECK(unroll == 0 || unroll >= 2)
      << "unroll factor must be 0 (off) or >= 2; got " << unroll;
  if (unroll >= 2) {
    auto [uo, ui] = stage.split(vec_axis == 1 ? yi : xi, unroll);
    (void)uo;
    stage.unroll(ui);
  }
  if (vec_axis == 1) {
    stage.vectorize(xi);
  } else if (vec_axis == 2) {
    stage.vectorize(yi);
  }
}

}  // namespace

ThreeMmTensors make_3mm(std::int64_t n, std::int64_t l, std::int64_t m,
                        std::int64_t o, std::int64_t p) {
  ThreeMmTensors t;
  t.n = n;
  t.l = l;
  t.m = m;
  t.o = o;
  t.p = p;
  t.A = te::placeholder({n, l}, "A");
  t.B = te::placeholder({l, m}, "B");
  t.C = te::placeholder({m, o}, "C");
  t.D = te::placeholder({o, p}, "D");

  auto k = te::reduce_axis(l, "k");
  t.E = te::compute(
      {n, m}, "E",
      [&](const std::vector<Var>& i) {
        return te::sum(access(t.A, {i[0], k->var}) *
                           access(t.B, {k->var, i[1]}),
                       {k->var});
      },
      {k});
  auto lax = te::reduce_axis(o, "l");
  t.F = te::compute(
      {m, p}, "F",
      [&](const std::vector<Var>& i) {
        return te::sum(access(t.C, {i[0], lax->var}) *
                           access(t.D, {lax->var, i[1]}),
                       {lax->var});
      },
      {lax});
  auto mm = te::reduce_axis(m, "m");
  t.G = te::compute(
      {n, p}, "G",
      [&](const std::vector<Var>& i) {
        return te::sum(access(t.E, {i[0], mm->var}) *
                           access(t.F, {mm->var, i[1]}),
                       {mm->var});
      },
      {mm});
  return t;
}

te::Schedule schedule_3mm(const ThreeMmTensors& t,
                          std::span<const std::int64_t> tiles, int par_axis,
                          int vec_axis, std::int64_t unroll, bool pack) {
  TVMBO_CHECK_EQ(tiles.size(), 6u) << "3mm takes six tile factors";
  te::Schedule sched({t.G});
  const Tensor stages[3] = {t.E, t.F, t.G};
  // Each stage packs its left (row-major-strided) operand.
  const Tensor pack_sources[3] = {t.A, t.C, t.E};
  for (int s = 0; s < 3; ++s) {
    te::Stage& stage = sched[stages[s]];
    const auto& axis = stage.op_axis();
    const auto& reduce = stage.op_reduce_axis();
    // Tile factors larger than the axis extent are clamped (the paper's
    // cross-matrix divisor sets make this legal input).
    const std::int64_t ty =
        std::min(tiles[2 * s], axis[0]->extent);
    const std::int64_t tx =
        std::min(tiles[2 * s + 1], axis[1]->extent);
    auto [yo, yi] = stage.split(axis[0], ty);
    auto [xo, xi] = stage.split(axis[1], tx);
    stage.reorder({yo, xo, reduce[0], yi, xi});
    annotate_parallel(stage, par_axis, yo, xo);
    if (pack) stage.cache_write(pack_sources[s]);
    apply_axis_knobs(stage, yi, xi, vec_axis, unroll);
  }
  return sched;
}

GemmTensors make_gemm(std::int64_t m, std::int64_t n, std::int64_t k) {
  GemmTensors t;
  t.m = m;
  t.n = n;
  t.k = k;
  t.A = te::placeholder({m, k}, "A");
  t.B = te::placeholder({k, n}, "B");
  auto kk = te::reduce_axis(k, "k");
  t.C = te::compute(
      {m, n}, "C",
      [&](const std::vector<Var>& i) {
        return te::sum(access(t.A, {i[0], kk->var}) *
                           access(t.B, {kk->var, i[1]}),
                       {kk->var});
      },
      {kk});
  return t;
}

te::Schedule schedule_gemm(const GemmTensors& t, std::int64_t ty,
                           std::int64_t tx, int par_axis, int vec_axis,
                           std::int64_t unroll, bool pack) {
  te::Schedule sched({t.C});
  te::Stage& stage = sched[t.C];
  const auto& axis = stage.op_axis();
  auto [yo, yi] = stage.split(axis[0], std::min(ty, t.m));
  auto [xo, xi] = stage.split(axis[1], std::min(tx, t.n));
  stage.reorder({yo, xo, stage.op_reduce_axis()[0], yi, xi});
  annotate_parallel(stage, par_axis, yo, xo);
  if (pack) stage.cache_write(t.A);
  apply_axis_knobs(stage, yi, xi, vec_axis, unroll);
  return sched;
}

TwoMmTensors make_2mm(std::int64_t ni, std::int64_t nj, std::int64_t nk,
                      std::int64_t nl) {
  TwoMmTensors t;
  t.ni = ni;
  t.nj = nj;
  t.nk = nk;
  t.nl = nl;
  t.A = te::placeholder({ni, nk}, "A");
  t.B = te::placeholder({nk, nj}, "B");
  t.C = te::placeholder({nj, nl}, "C");
  auto k = te::reduce_axis(nk, "k");
  t.Tmp = te::compute(
      {ni, nj}, "tmp",
      [&](const std::vector<Var>& i) {
        return te::sum(access(t.A, {i[0], k->var}) *
                           access(t.B, {k->var, i[1]}),
                       {k->var});
      },
      {k});
  auto j = te::reduce_axis(nj, "j");
  t.D = te::compute(
      {ni, nl}, "D",
      [&](const std::vector<Var>& i) {
        return te::sum(access(t.Tmp, {i[0], j->var}) *
                           access(t.C, {j->var, i[1]}),
                       {j->var});
      },
      {j});
  return t;
}

te::Schedule schedule_2mm(const TwoMmTensors& t,
                          std::span<const std::int64_t> tiles, int par_axis,
                          int vec_axis, std::int64_t unroll, bool pack) {
  TVMBO_CHECK_EQ(tiles.size(), 4u) << "2mm takes four tile factors";
  te::Schedule sched({t.D});
  const Tensor stages[2] = {t.Tmp, t.D};
  const Tensor pack_sources[2] = {t.A, t.Tmp};
  for (int s = 0; s < 2; ++s) {
    te::Stage& stage = sched[stages[s]];
    const auto& axis = stage.op_axis();
    auto [yo, yi] =
        stage.split(axis[0], std::min(tiles[2 * s], axis[0]->extent));
    auto [xo, xi] =
        stage.split(axis[1], std::min(tiles[2 * s + 1], axis[1]->extent));
    stage.reorder({yo, xo, stage.op_reduce_axis()[0], yi, xi});
    annotate_parallel(stage, par_axis, yo, xo);
    if (pack) stage.cache_write(pack_sources[s]);
    apply_axis_knobs(stage, yi, xi, vec_axis, unroll);
  }
  return sched;
}

SyrkTensors make_syrk(std::int64_t n, std::int64_t m, double alpha,
                      double beta) {
  SyrkTensors t;
  t.n = n;
  t.m = m;
  t.A = te::placeholder({n, m}, "A");
  t.Cin = te::placeholder({n, n}, "Cin");
  auto k = te::reduce_axis(m, "k");
  t.S = te::compute(
      {n, n}, "S",
      [&](const std::vector<Var>& i) {
        return te::sum(access(t.A, {i[0], k->var}) *
                           access(t.A, {i[1], k->var}),
                       {k->var});
      },
      {k});
  t.Cout = te::compute({n, n}, "Cout", [&](const std::vector<Var>& i) {
    te::Expr updated = te::make_float(beta) * access(t.Cin, {i[0], i[1]}) +
                       te::make_float(alpha) * access(t.S, {i[0], i[1]});
    return te::select(te::le(i[1], i[0]), updated,
                      access(t.Cin, {i[0], i[1]}));
  });
  return t;
}

te::Schedule schedule_syrk(const SyrkTensors& t, std::int64_t ty,
                           std::int64_t tx, int par_axis, int vec_axis,
                           std::int64_t unroll, bool pack) {
  te::Schedule sched({t.Cout});
  te::Stage& stage = sched[t.S];
  const auto& axis = stage.op_axis();
  auto [yo, yi] = stage.split(axis[0], std::min(ty, t.n));
  auto [xo, xi] = stage.split(axis[1], std::min(tx, t.n));
  stage.reorder({yo, xo, stage.op_reduce_axis()[0], yi, xi});
  annotate_parallel(stage, par_axis, yo, xo);
  // Only the A[i, k] read is packable; pack_reads proves the A[j, k]
  // window non-invariant and leaves it untouched (conservative).
  if (pack) stage.cache_write(t.A);
  apply_axis_knobs(stage, yi, xi, vec_axis, unroll);
  return sched;
}

FactorizationProgram build_lu(const te::Tensor& a, std::int64_t n) {
  TVMBO_CHECK(a->is_placeholder() && a->shape.size() == 2 &&
              a->shape[0] == n && a->shape[1] == n)
      << "LU program requires an n x n placeholder";
  using namespace te;
  Var k = make_var("k");
  Var i = make_var("i");
  Var j = make_var("j");

  // Column scale: A[i,k] /= A[k,k] for i > k.
  Stmt scale = make_if(
      gt(i, k),
      make_store(a, {i, k}, access(a, {i, k}) / access(a, {k, k})));
  Stmt scale_loop = make_for(i, n, ForKind::kSerial, scale);

  // Trailing update: A[i,j] -= A[i,k] * A[k,j] for i, j > k.
  Var i2 = make_var("i2");
  Stmt update = make_if(
      logical_and(gt(i2, k), gt(j, k)),
      make_store(a, {i2, j},
                 access(a, {i2, j}) -
                     access(a, {i2, k}) * access(a, {k, j})));
  Stmt update_loops =
      make_for(i2, n, ForKind::kSerial, make_for(j, n, ForKind::kSerial,
                                                 update));

  FactorizationProgram program;
  program.stmt = make_for(k, n, ForKind::kSerial,
                          make_seq({scale_loop, update_loops}));
  program.k = k;
  program.scale_i = i;
  program.update_i = i2;
  program.update_j = j;
  return program;
}

te::Stmt build_lu_program(const te::Tensor& a, std::int64_t n) {
  return build_lu(a, n).stmt;
}

FactorizationProgram build_cholesky(const te::Tensor& a, std::int64_t n) {
  TVMBO_CHECK(a->is_placeholder() && a->shape.size() == 2 &&
              a->shape[0] == n && a->shape[1] == n)
      << "Cholesky program requires an n x n placeholder";
  using namespace te;
  Var k = make_var("k");
  Var d = make_var("d");

  // Diagonal: A[k,k] = sqrt(A[k,k]). A single-iteration loop keeps the
  // statement inside the IR's loop structure (d is unused in the body).
  Stmt diag = make_for(
      d, 1, ForKind::kSerial,
      make_store(a, {k, k}, sqrt_expr(access(a, {k, k}))));

  Var i = make_var("i");
  Stmt scale = make_if(
      gt(i, k),
      make_store(a, {i, k}, access(a, {i, k}) / access(a, {k, k})));
  Stmt scale_loop = make_for(i, n, ForKind::kSerial, scale);

  // Symmetric trailing update on the lower triangle: for i > k, k < j <= i:
  // A[i,j] -= A[i,k] * A[j,k].
  Var i2 = make_var("i2");
  Var j = make_var("j");
  Stmt update = make_if(
      logical_and(gt(i2, k), logical_and(gt(j, k), le(j, i2))),
      make_store(a, {i2, j},
                 access(a, {i2, j}) -
                     access(a, {i2, k}) * access(a, {j, k})));
  Stmt update_loops =
      make_for(i2, n, ForKind::kSerial, make_for(j, n, ForKind::kSerial,
                                                 update));

  FactorizationProgram program;
  program.stmt = make_for(k, n, ForKind::kSerial,
                          make_seq({diag, scale_loop, update_loops}));
  program.k = k;
  program.scale_i = i;
  program.update_i = i2;
  program.update_j = j;
  return program;
}

te::Stmt build_cholesky_program(const te::Tensor& a, std::int64_t n) {
  return build_cholesky(a, n).stmt;
}

}  // namespace tvmbo::kernels
