// PolyBench 4.2 dataset sizes, workload descriptors, and the paper's exact
// parameter spaces for 3mm, LU, and Cholesky (plus gemm/2mm extensions).
//
// The paper derives each tile-factor candidate list from the divisors of
// the matrix extents; Table 1's space sizes follow:
//   3mm   large 74,649,600 | extralarge 228,614,400
//   LU    large 400        | extralarge 576
//   Cholesky large 400     | extralarge 576
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autotvm/autotvm.h"
#include "codegen/artifact_cache.h"
#include "configspace/configspace.h"
#include "runtime/exec_backend.h"
#include "runtime/measure.h"

namespace tvmbo::kernels {

enum class Dataset { kMini, kSmall, kMedium, kLarge, kExtraLarge };

const char* dataset_name(Dataset dataset);
Dataset dataset_from_name(const std::string& name);

/// PolyBench 4.2 extents. 3mm returns {N, L, M, O, P}; lu/cholesky {N};
/// gemm {NI, NJ, NK}; 2mm {NI, NJ, NK, NL}.
std::vector<std::int64_t> polybench_dims(const std::string& kernel,
                                         Dataset dataset);

/// Nominal floating-point work of a kernel instance.
double kernel_flops(const std::string& kernel,
                    const std::vector<std::int64_t>& dims);

/// Workload descriptor (kernel + dataset + dims + flops).
runtime::Workload make_workload(const std::string& kernel, Dataset dataset);
runtime::Workload make_workload(const std::string& kernel,
                                const std::string& size_name,
                                std::vector<std::int64_t> dims);

/// The paper's ytopt parameter space for a kernel instance:
///   3mm: P0..P5 ordinals over divisor sets of {M, N, P, M, P, N}
///        (exactly the sequences listed in §4),
///   lu/cholesky: P0, P1 over divisors(N),
///   gemm: P0, P1 over divisors(NI)/divisors(NJ),
///   2mm: P0..P3 over divisors of the stage extents.
cs::ConfigurationSpace build_space(const std::string& kernel,
                                   const std::vector<std::int64_t>& dims);

/// Optional schedule knobs appended after the tile parameters (Wu et al.
/// and CATBench both put parallelization in the same search space as
/// tiling; the vectorize/unroll/pack tier extends that to the full
/// codegen schedule). Only meaningful for TE-program kernels executed on
/// a non-native backend — the hand-written native kernels are serial.
struct ScheduleKnobs {
  /// Parallel tier: P_par over {0..te_num_parallel_axes} and P_threads.
  bool enabled = false;
  /// Cap for the thread-count candidates; 0 = hardware_concurrency.
  std::int64_t max_threads = 0;
  /// Vectorize tier: P_vec over {0 = none, 1 = innermost,
  /// 2 = second-innermost}, annotated kVectorized (race-proof-gated).
  bool vectorize = false;
  /// Unroll tier: P_unroll over cs::unroll_factors() — structural split +
  /// kUnrolled annotation.
  bool unroll = false;
  /// Array-packing tier: P_pack over {0, 1} (Stage::cache_write).
  bool pack = false;

  /// True when any of the vectorize/unroll/pack knobs widen the space.
  bool widened() const { return vectorize || unroll || pack; }
  /// True when the tile vector carries trailing schedule knobs at all.
  bool extended() const { return enabled || widened(); }
};

/// Source-compatible name from before the vectorize/unroll/pack tier.
using ParallelKnobs = ScheduleKnobs;

/// build_space plus trailing schedule ordinals. When `knobs.enabled`,
/// P_par over {0..te_num_parallel_axes} (0 = serial) and P_threads over
/// thread_counts(knobs.max_threads). When `knobs.widened()`, P_vec,
/// P_unroll, and P_pack follow (each collapsing to the singleton {0}
/// when its flag is off, and P_par/P_threads collapsing to {0}/{1} when
/// only the widened tier is on) so the tile vector is always base,
/// base + 2, or base + 5 entries — matching TeProgramInstance.
cs::ConfigurationSpace build_space(const std::string& kernel,
                                   const std::vector<std::int64_t>& dims,
                                   const ScheduleKnobs& knobs);

/// An AutoTVM task for the same kernel instance: knobs match the ytopt
/// space candidate-for-candidate (as in the paper, where both frameworks
/// tune the same predefined space). `executable` additionally wires a
/// real CPU runnable (needed for CpuDevice; simulated devices don't use
/// it and skipping it avoids allocating the matrices).
autotvm::Task make_task(const std::string& kernel, Dataset dataset,
                        bool executable = false);
autotvm::Task make_task(const std::string& kernel,
                        const std::string& size_name,
                        std::vector<std::int64_t> dims,
                        bool executable = false);

/// Backend-selecting overloads. kNative builds the executable task above
/// (hand-written tiled kernels); the other tiers route every configuration
/// through the TE program path (te_programs.h) — the schedule is lowered
/// and compiled in MeasureInput::prepare so CpuDevice charges real compile
/// time, and `jit_options` picks the kJit compiler/flags/cache directory.
/// Throws CheckError when the kernel has no TE program and backend is not
/// kNative.
autotvm::Task make_task(const std::string& kernel, Dataset dataset,
                        runtime::ExecBackend backend,
                        const codegen::JitOptions& jit_options = {});
autotvm::Task make_task(const std::string& kernel,
                        const std::string& size_name,
                        std::vector<std::int64_t> dims,
                        runtime::ExecBackend backend,
                        const codegen::JitOptions& jit_options = {});

/// Backend task plus trailing schedule knobs matching build_space's
/// P_par/P_threads/P_vec/P_unroll/P_pack candidate-for-candidate
/// ("parallel_axis", "threads", then "vec_axis", "unroll", "pack" when
/// the space is widened). The extended knob values flow straight into
/// the TE instantiate path (TeProgramInstance's extended tile vector).
/// Throws CheckError when any knob is enabled on the native backend.
autotvm::Task make_task(const std::string& kernel, Dataset dataset,
                        runtime::ExecBackend backend,
                        const codegen::JitOptions& jit_options,
                        const ScheduleKnobs& knobs);
autotvm::Task make_task(const std::string& kernel,
                        const std::string& size_name,
                        std::vector<std::int64_t> dims,
                        runtime::ExecBackend backend,
                        const codegen::JitOptions& jit_options,
                        const ScheduleKnobs& knobs);

/// All (kernel, dataset) pairs evaluated in the paper's §5.
struct PaperExperiment {
  std::string kernel;
  Dataset dataset;
  const char* figure_process;  ///< process-over-time figure, "" if none
  const char* figure_minimum;  ///< minimum-runtimes figure, "" if none
  double paper_best_runtime_s;  ///< best runtime the paper reports (0 = n/a)
};
std::vector<PaperExperiment> paper_experiments();

}  // namespace tvmbo::kernels
