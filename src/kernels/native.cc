#include "kernels/native.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tvmbo::kernels {

namespace {
struct View2 {
  double* data;
  std::int64_t cols;
  double& operator()(std::int64_t i, std::int64_t j) {
    return data[i * cols + j];
  }
  double operator()(std::int64_t i, std::int64_t j) const {
    return data[i * cols + j];
  }
};

View2 view(NDArray& a) { return {a.f64().data(), a.shape()[1]}; }
View2 view(const NDArray& a) {
  return {const_cast<double*>(a.f64().data()), a.shape()[1]};
}

std::int64_t clamp_tile(std::int64_t tile, std::int64_t extent) {
  return std::clamp<std::int64_t>(tile, 1, extent);
}
}  // namespace

void matmul_tiled(const NDArray& a, const NDArray& b, NDArray& c,
                  std::int64_t ty, std::int64_t tx) {
  const std::int64_t m = a.shape()[0], k = a.shape()[1];
  const std::int64_t n = b.shape()[1];
  TVMBO_CHECK_EQ(b.shape()[0], k) << "matmul inner-dim mismatch";
  TVMBO_CHECK(c.shape()[0] == m && c.shape()[1] == n)
      << "matmul output shape mismatch";
  ty = clamp_tile(ty, m);
  tx = clamp_tile(tx, n);
  const auto va = view(a);
  const auto vb = view(b);
  auto vc = view(c);
  c.fill(0.0);
  // Loop structure mirrors the lowered schedule:
  //   for yo, xo, k, yi, xi  (split y/x by ty/tx, reduce between).
  for (std::int64_t yo = 0; yo < m; yo += ty) {
    const std::int64_t y_end = std::min(yo + ty, m);
    for (std::int64_t xo = 0; xo < n; xo += tx) {
      const std::int64_t x_end = std::min(xo + tx, n);
      for (std::int64_t p = 0; p < k; ++p) {
        for (std::int64_t i = yo; i < y_end; ++i) {
          const double av = va(i, p);
          for (std::int64_t j = xo; j < x_end; ++j) {
            vc(i, j) += av * vb(p, j);
          }
        }
      }
    }
  }
}

void threemm_tiled(const NDArray& a, const NDArray& b, const NDArray& c,
                   const NDArray& d, NDArray& e, NDArray& f, NDArray& g,
                   const std::int64_t tiles[6]) {
  matmul_tiled(a, b, e, tiles[0], tiles[1]);
  matmul_tiled(c, d, f, tiles[2], tiles[3]);
  matmul_tiled(e, f, g, tiles[4], tiles[5]);
}

void twomm_tiled(const NDArray& a, const NDArray& b, const NDArray& c,
                 NDArray& tmp, NDArray& d, const std::int64_t tiles[4]) {
  matmul_tiled(a, b, tmp, tiles[0], tiles[1]);
  matmul_tiled(tmp, c, d, tiles[2], tiles[3]);
}

void syrk_tiled(const NDArray& a, NDArray& c, std::int64_t ty,
                std::int64_t tx, double alpha, double beta) {
  const std::int64_t n = a.shape()[0], m = a.shape()[1];
  TVMBO_CHECK(c.shape()[0] == n && c.shape()[1] == n)
      << "syrk C must be N x N";
  ty = clamp_tile(ty, n);
  tx = clamp_tile(tx, n);
  const auto va = view(a);
  auto vc = view(c);
  // Scale epilogue first, then accumulate the blocked A*A^T contribution,
  // k innermost per block (mirrors the scheduled reorder).
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j <= i; ++j) vc(i, j) *= beta;
  for (std::int64_t io = 0; io < n; io += ty) {
    const std::int64_t i_end = std::min(io + ty, n);
    for (std::int64_t jo = 0; jo <= i_end - 1; jo += tx) {
      const std::int64_t j_end = std::min(jo + tx, n);
      for (std::int64_t k = 0; k < m; ++k) {
        for (std::int64_t i = io; i < i_end; ++i) {
          const double aik = alpha * va(i, k);
          const std::int64_t j_stop = std::min(j_end, i + 1);
          for (std::int64_t j = jo; j < j_stop; ++j) {
            vc(i, j) += aik * va(j, k);
          }
        }
      }
    }
  }
}

void lu_tiled(NDArray& a, std::int64_t ty, std::int64_t tx) {
  const std::int64_t n = a.shape()[0];
  TVMBO_CHECK_EQ(a.shape()[1], n) << "LU requires a square matrix";
  ty = clamp_tile(ty, n);
  tx = clamp_tile(tx, n);
  auto va = view(a);
  for (std::int64_t k = 0; k < n; ++k) {
    const double pivot = va(k, k);
    TVMBO_CHECK(std::fabs(pivot) > 1e-12)
        << "zero pivot at step " << k << " (LU without pivoting)";
    for (std::int64_t i = k + 1; i < n; ++i) va(i, k) /= pivot;
    // Blocked trailing rank-1 update.
    for (std::int64_t io = k + 1; io < n; io += ty) {
      const std::int64_t i_end = std::min(io + ty, n);
      for (std::int64_t jo = k + 1; jo < n; jo += tx) {
        const std::int64_t j_end = std::min(jo + tx, n);
        for (std::int64_t i = io; i < i_end; ++i) {
          const double lik = va(i, k);
          for (std::int64_t j = jo; j < j_end; ++j) {
            va(i, j) -= lik * va(k, j);
          }
        }
      }
    }
  }
}

void cholesky_tiled(NDArray& a, std::int64_t ty, std::int64_t tx) {
  const std::int64_t n = a.shape()[0];
  TVMBO_CHECK_EQ(a.shape()[1], n) << "Cholesky requires a square matrix";
  ty = clamp_tile(ty, n);
  tx = clamp_tile(tx, n);
  auto va = view(a);
  for (std::int64_t k = 0; k < n; ++k) {
    const double diag = va(k, k);
    TVMBO_CHECK_GT(diag, 0.0)
        << "matrix not positive definite at step " << k;
    const double pivot = std::sqrt(diag);
    va(k, k) = pivot;
    for (std::int64_t i = k + 1; i < n; ++i) va(i, k) /= pivot;
    // Blocked symmetric trailing update (lower triangle only).
    for (std::int64_t io = k + 1; io < n; io += ty) {
      const std::int64_t i_end = std::min(io + ty, n);
      for (std::int64_t jo = k + 1; jo < n; jo += tx) {
        if (jo > io + ty - 1) break;  // tile fully above the diagonal
        const std::int64_t j_end = std::min(jo + tx, n);
        for (std::int64_t i = io; i < i_end; ++i) {
          const double lik = va(i, k);
          const std::int64_t j_stop = std::min(j_end, i + 1);
          for (std::int64_t j = jo; j < j_stop; ++j) {
            va(i, j) -= lik * va(j, k);
          }
        }
      }
    }
  }
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i + 1; j < n; ++j) va(i, j) = 0.0;
}

}  // namespace tvmbo::kernels
