#include "kernels/te_programs.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "analysis/config_screen.h"
#include "common/logging.h"
#include "kernels/reference.h"
#include "kernels/te_kernels.h"
#include "te/compile.h"
#include "te/interp.h"
#include "te/loop_transform.h"
#include "te/lower.h"

namespace tvmbo::kernels {

bool te_backend_supported(const std::string& kernel) {
  return kernel == "3mm" || kernel == "gemm" || kernel == "2mm" ||
         kernel == "syrk" || kernel == "lu" || kernel == "cholesky";
}

std::size_t te_num_tiles(const std::string& kernel) {
  if (kernel == "3mm") return 6;
  if (kernel == "2mm") return 4;
  return 2;
}

std::size_t te_num_parallel_axes(const std::string& kernel) {
  TVMBO_CHECK(te_backend_supported(kernel))
      << "kernel '" << kernel << "' has no TE program";
  // lu/cholesky expose only the trailing-update row loop (io); the
  // compute-DAG kernels expose yo and xo of every scheduled stage.
  if (kernel == "lu" || kernel == "cholesky") return 1;
  return 2;
}

namespace {

// PolyBench-style deterministic init for the 2mm C operand (reference.h
// covers the A/B pair via init_gemm).
void init_2mm_c(runtime::NDArray& c) {
  const std::int64_t nj = c.shape()[0], nl = c.shape()[1];
  for (std::int64_t i = 0; i < nj; ++i) {
    for (std::int64_t j = 0; j < nl; ++j) {
      c.set2(i, j, static_cast<double>((i * (j + 3) + 1) % nl) /
                       static_cast<double>(nl));
    }
  }
}

}  // namespace

std::shared_ptr<TeKernelData> make_te_kernel_data(
    const std::string& kernel, const std::vector<std::int64_t>& dims) {
  TVMBO_CHECK(te_backend_supported(kernel))
      << "kernel '" << kernel << "' has no TE program";
  auto data = std::make_shared<TeKernelData>();
  data->kernel = kernel;
  data->dims = dims;
  if (kernel == "3mm") {
    TVMBO_CHECK_EQ(dims.size(), 5u) << "3mm dims must be {N,L,M,O,P}";
    const std::int64_t n = dims[0], l = dims[1], m = dims[2], o = dims[3],
                       p = dims[4];
    data->inputs.emplace_back(std::vector<std::int64_t>{n, l});
    data->inputs.emplace_back(std::vector<std::int64_t>{l, m});
    data->inputs.emplace_back(std::vector<std::int64_t>{m, o});
    data->inputs.emplace_back(std::vector<std::int64_t>{o, p});
    init_3mm(data->inputs[0], data->inputs[1], data->inputs[2],
             data->inputs[3]);
  } else if (kernel == "gemm") {
    TVMBO_CHECK_EQ(dims.size(), 3u) << "gemm dims must be {NI,NJ,NK}";
    data->inputs.emplace_back(std::vector<std::int64_t>{dims[0], dims[2]});
    data->inputs.emplace_back(std::vector<std::int64_t>{dims[2], dims[1]});
    init_gemm(data->inputs[0], data->inputs[1]);
  } else if (kernel == "2mm") {
    TVMBO_CHECK_EQ(dims.size(), 4u) << "2mm dims must be {NI,NJ,NK,NL}";
    data->inputs.emplace_back(std::vector<std::int64_t>{dims[0], dims[2]});
    data->inputs.emplace_back(std::vector<std::int64_t>{dims[2], dims[1]});
    data->inputs.emplace_back(std::vector<std::int64_t>{dims[1], dims[3]});
    init_gemm(data->inputs[0], data->inputs[1]);
    init_2mm_c(data->inputs[2]);
  } else if (kernel == "syrk") {
    TVMBO_CHECK_EQ(dims.size(), 2u) << "syrk dims must be {N, M}";
    data->inputs.emplace_back(std::vector<std::int64_t>{dims[0], dims[1]});
    data->inputs.emplace_back(std::vector<std::int64_t>{dims[0], dims[0]});
    init_syrk(data->inputs[0], data->inputs[1]);
  } else {  // lu / cholesky
    TVMBO_CHECK_EQ(dims.size(), 1u) << kernel << " dims must be {N}";
    data->inputs.emplace_back(std::vector<std::int64_t>{dims[0], dims[0]});
    if (kernel == "cholesky") {
      init_spd(data->inputs[0]);
    } else {
      init_lu(data->inputs[0]);
    }
  }
  return data;
}

TeLoweredProgram lower_te_program(const std::string& kernel,
                                  const std::vector<std::int64_t>& dims,
                                  std::span<const std::int64_t> tiles) {
  TVMBO_CHECK(te_backend_supported(kernel))
      << "kernel '" << kernel << "' has no TE program";
  const std::size_t want_dims = kernel == "3mm"    ? 5u
                                : kernel == "2mm"  ? 4u
                                : kernel == "gemm" ? 3u
                                : kernel == "syrk" ? 2u
                                                   : 1u;
  TVMBO_CHECK_EQ(dims.size(), want_dims)
      << "wrong dim count for " << kernel;
  TeLoweredProgram lowered;
  const std::size_t base = te_num_tiles(kernel);
  TVMBO_CHECK(tiles.size() == base || tiles.size() == base + 2 ||
              tiles.size() == base + 5)
      << "wrong tile count for " << kernel << ": got " << tiles.size()
      << ", want " << base << ", " << base + 2
      << " (base tiles + [parallel_axis, threads]), or " << base + 5
      << " (base tiles + [parallel_axis, threads, vec_axis, unroll, pack])";

  int par_axis = 0;
  int vec_axis = 0;
  std::int64_t unroll = 0;
  bool pack = false;
  if (tiles.size() >= base + 2) {
    par_axis = static_cast<int>(tiles[base]);
    TVMBO_CHECK(par_axis >= 0 &&
                par_axis <= static_cast<int>(te_num_parallel_axes(kernel)))
        << "parallel_axis " << par_axis << " out of range for " << kernel;
    const std::int64_t threads = tiles[base + 1];
    TVMBO_CHECK_GE(threads, 0)
        << "thread budget must be >= 0 (0 = all cores)";
    lowered.parallel_threads = static_cast<int>(threads);
    if (tiles.size() == base + 5) {
      vec_axis = static_cast<int>(tiles[base + 2]);
      TVMBO_CHECK(vec_axis >= 0 && vec_axis <= 2)
          << "vec_axis must be 0 (none), 1 (innermost), or 2 "
             "(second-innermost); got " << vec_axis;
      unroll = tiles[base + 3];
      TVMBO_CHECK(unroll == 0 || unroll >= 2)
          << "unroll factor must be 0 (off) or >= 2; got " << unroll;
      const std::int64_t pack_flag = tiles[base + 4];
      TVMBO_CHECK(pack_flag == 0 || pack_flag == 1)
          << "pack must be 0 or 1; got " << pack_flag;
      pack = pack_flag == 1;
      lowered.unroll_factor = static_cast<int>(unroll);
    }
    tiles = tiles.first(base);
  }

  if (kernel == "3mm") {
    ThreeMmTensors t = make_3mm(dims[0], dims[1], dims[2], dims[3], dims[4]);
    lowered.stmt = te::lower(schedule_3mm(t, tiles, par_axis, vec_axis,
                                          unroll, pack));
    lowered.params = {t.A, t.B, t.C, t.D, t.G};
  } else if (kernel == "gemm") {
    GemmTensors t = make_gemm(dims[0], dims[1], dims[2]);
    lowered.stmt = te::lower(schedule_gemm(t, tiles[0], tiles[1], par_axis,
                                           vec_axis, unroll, pack));
    lowered.params = {t.A, t.B, t.C};
  } else if (kernel == "2mm") {
    TwoMmTensors t = make_2mm(dims[0], dims[1], dims[2], dims[3]);
    lowered.stmt = te::lower(schedule_2mm(t, tiles, par_axis, vec_axis,
                                          unroll, pack));
    lowered.params = {t.A, t.B, t.C, t.D};
  } else if (kernel == "syrk") {
    SyrkTensors t = make_syrk(dims[0], dims[1]);
    lowered.stmt = te::lower(schedule_syrk(t, tiles[0], tiles[1], par_axis,
                                           vec_axis, unroll, pack));
    lowered.params = {t.A, t.Cin, t.Cout};
  } else {  // lu / cholesky: in-place factorization of a work copy
    const std::int64_t n = dims[0];
    te::Tensor a = te::placeholder({n, n}, "A");
    FactorizationProgram program =
        kernel == "lu" ? build_lu(a, n) : build_cholesky(a, n);
    const std::int64_t ty = std::clamp<std::int64_t>(tiles[0], 1, n);
    const std::int64_t tx = std::clamp<std::int64_t>(tiles[1], 1, n);
    te::Var io, ii, jo, ji;
    te::Stmt stmt =
        te::split_loop(program.stmt, program.update_i, ty, &io, &ii);
    stmt = te::split_loop(stmt, program.update_j, tx, &jo, &ji);
    // Non-exact splits guard the tail, breaking the perfect nesting the
    // interchange needs; the divisor-derived spaces always split exactly.
    const bool interchanged = n % ty == 0 && n % tx == 0;
    if (interchanged) {
      stmt = te::interchange_loops(stmt, ii, jo);
    }
    // vec/unroll targets come from the pre-unroll trailing-update nest:
    // {io, jo, ii, ji} when interchanged, {io, ii, jo, ji} otherwise.
    // vec_axis 1 = innermost (ji), 2 = second-innermost; the unroll
    // split takes the innermost loop unless it is vectorized, then the
    // second-innermost — the two knobs never collide.
    const te::Var second = interchanged ? ii : jo;
    const te::Var vec_target =
        vec_axis == 1 ? ji : vec_axis == 2 ? second : te::Var();
    if (unroll >= 2) {
      te::Var uo, ui;
      stmt = te::split_loop(stmt, vec_axis == 1 ? second : ji, unroll, &uo,
                            &ui);
      stmt = te::annotate_loop(stmt, ui, te::ForKind::kUnrolled);
    }
    // Array packing: snapshot the pivot column A[*, k] into a contiguous
    // scratch hoisted outside the io loop, so the update's A[i2, k] reads
    // stop restriding whole rows. The hoisted Realize lands after the
    // scale loop in the k-step sequence, so the snapshot observes the
    // scaled column; pack_reads proves every redirected read in-window
    // and every A write disjoint from it (the j > k guard).
    if (pack) {
      stmt = te::pack_reads(stmt, a, io, /*wrap_outside=*/true,
                            /*perm=*/{0, 1}, /*invariant_dims=*/{1},
                            "a_col_pack");
    }
    // Vectorize/parallel annotations last, on the final loop structure:
    // annotate_loop demands a race-freedom proof from the affine
    // dependence analyzer and throws if it fails. For io the argument is
    // that distinct io chunks update disjoint rows of the trailing
    // submatrix while the pivot row/column reads at step k are never
    // written inside the update nest.
    if (vec_target != nullptr) {
      stmt = te::annotate_loop(stmt, vec_target, te::ForKind::kVectorized);
    }
    if (par_axis == 1) {
      stmt = te::annotate_loop(stmt, io, te::ForKind::kParallel);
    }
    lowered.stmt = stmt;
    lowered.params = {a};
  }
  return lowered;
}

TeProgramInstance::TeProgramInstance(std::shared_ptr<TeKernelData> data,
                                     std::span<const std::int64_t> tiles)
    : data_(std::move(data)) {
  TVMBO_CHECK(data_ != nullptr) << "null kernel data";
  const std::string& kernel = data_->kernel;
  const std::vector<std::int64_t>& dims = data_->dims;
  TeLoweredProgram lowered = lower_te_program(kernel, dims, tiles);
  stmt_ = lowered.stmt;
  parallel_threads_ = lowered.parallel_threads;
  unroll_factor_ = lowered.unroll_factor;

  auto own = [&](std::vector<std::int64_t> shape) {
    owned_.push_back(std::make_unique<runtime::NDArray>(std::move(shape)));
    return owned_.back().get();
  };

  if (kernel == "lu" || kernel == "cholesky") {
    output_ = own({dims[0], dims[0]});
    pristine_ = &data_->inputs[0];
    bindings_ = {{lowered.params[0], output_}};
    reset();
    return;
  }
  std::vector<std::int64_t> out_shape;
  if (kernel == "3mm") {
    out_shape = {dims[0], dims[4]};
  } else if (kernel == "gemm") {
    out_shape = {dims[0], dims[1]};
  } else if (kernel == "2mm") {
    out_shape = {dims[0], dims[3]};
  } else {  // syrk
    out_shape = {dims[0], dims[0]};
  }
  TVMBO_CHECK_EQ(lowered.params.size(), data_->inputs.size() + 1)
      << "param/input mismatch for " << kernel;
  output_ = own(std::move(out_shape));
  for (std::size_t i = 0; i < data_->inputs.size(); ++i) {
    bindings_.emplace_back(lowered.params[i], &data_->inputs[i]);
  }
  bindings_.emplace_back(lowered.params.back(), output_);
}

void TeProgramInstance::reset() {
  if (pristine_ == nullptr) return;
  // Element-wise copy: compiled programs hold the base pointer, so the
  // work array must be refilled, never reallocated.
  std::span<const double> src = pristine_->f64();
  std::span<double> dst = output_->f64();
  TVMBO_CHECK_EQ(src.size(), dst.size()) << "work/pristine shape mismatch";
  std::copy(src.begin(), src.end(), dst.begin());
}

namespace {

/// Execution state shared between a MeasureInput's prepare and run
/// closures. prepare() fills it; run() executes it.
struct TeExecState {
  std::unique_ptr<TeProgramInstance> instance;
  std::optional<te::CompiledProgram> closure;
  std::optional<codegen::JitProgram> jit;
};

void prepare_state(TeExecState& state,
                   const std::shared_ptr<TeKernelData>& data,
                   const std::vector<std::int64_t>& tiles,
                   runtime::ExecBackend backend,
                   const codegen::JitOptions& jit_options) {
  state.instance = std::make_unique<TeProgramInstance>(data, tiles);
  switch (backend) {
    case runtime::ExecBackend::kInterp:
      break;  // the interpreter walks the IR directly; nothing to compile
    case runtime::ExecBackend::kClosure: {
      te::CompileOptions compile_options;
      compile_options.parallel_threads = state.instance->parallel_threads();
      state.closure = te::CompiledProgram::compile(
          state.instance->stmt(), state.instance->bindings(),
          compile_options);
      break;
    }
    case runtime::ExecBackend::kJit: {
      codegen::JitOptions options = jit_options;
      options.parallel_threads = state.instance->parallel_threads();
      options.unroll_factor = state.instance->unroll_factor();
      state.jit = codegen::JitProgram::compile(
          state.instance->stmt(), state.instance->bindings(), options);
      break;
    }
    case runtime::ExecBackend::kNative:
      TVMBO_CHECK(false) << "native backend has no TE program path";
  }
}

void run_state(TeExecState& state, runtime::ExecBackend backend) {
  TVMBO_CHECK(state.instance != nullptr) << "run before prepare";
  state.instance->reset();
  switch (backend) {
    case runtime::ExecBackend::kInterp: {
      te::Interpreter interp;
      for (const auto& [tensor, array] : state.instance->bindings()) {
        interp.bind(tensor, array);
      }
      interp.run(state.instance->stmt());
      break;
    }
    case runtime::ExecBackend::kClosure:
      state.closure->run();
      break;
    case runtime::ExecBackend::kJit:
      state.jit->run();
      break;
    case runtime::ExecBackend::kNative:
      TVMBO_CHECK(false) << "native backend has no TE program path";
  }
}

}  // namespace

runtime::MeasureInput make_te_measure_input(
    std::shared_ptr<TeKernelData> data, const runtime::Workload& workload,
    const std::vector<std::int64_t>& tiles, runtime::ExecBackend backend,
    const codegen::JitOptions& jit_options) {
  TVMBO_CHECK(backend != runtime::ExecBackend::kNative)
      << "native backend does not use TE measure inputs";
  runtime::MeasureInput input;
  input.workload = workload;
  input.tiles = tiles;
  auto state = std::make_shared<TeExecState>();
  input.prepare = [state, data, tiles, backend, jit_options] {
    prepare_state(*state, data, tiles, backend, jit_options);
  };
  input.run = [state, backend] { run_state(*state, backend); };
  // Static pre-screen: instantiate + lower the config (cheap, no
  // execution) and run the full verifier. Construction itself may throw a
  // CheckError whose message already names the violated rule (e.g.
  // parallel-loop-race from annotate_loop); that surfaces as the
  // violation string too.
  input.static_check = [data = std::move(data), tiles]() -> std::string {
    try {
      TeProgramInstance instance(data, tiles);
      std::vector<te::Tensor> params;
      for (const auto& [tensor, array] : instance.bindings()) {
        params.push_back(tensor);
      }
      return analysis::screen_program(instance.stmt(), params).first_error();
    } catch (const std::exception& e) {
      return e.what();
    }
  };
  return input;
}

runtime::NDArray run_te_backend(const std::shared_ptr<TeKernelData>& data,
                                std::span<const std::int64_t> tiles,
                                runtime::ExecBackend backend,
                                const codegen::JitOptions& jit_options) {
  TeExecState state;
  prepare_state(state, data,
                std::vector<std::int64_t>(tiles.begin(), tiles.end()),
                backend, jit_options);
  run_state(state, backend);
  return state.instance->output();
}

}  // namespace tvmbo::kernels
