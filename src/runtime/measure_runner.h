// MeasureRunner: the batched measurement engine behind every search
// strategy's Step 3–5 loop (compile -> execute -> report).
//
// Strategies propose batches (AutoTVM batches of 8, ytopt's qLCB
// multi-point proposals); the runner executes a whole batch against one
// Device with
//
//  * deterministic result ordering — results come back in submission
//    order no matter which trial finishes first;
//  * per-trial fault isolation — an exception (or timeout) in one trial
//    yields an invalid MeasureResult for that slot instead of poisoning
//    the batch or unwinding the tuning loop;
//  * a configurable retry policy for transiently-failing trials;
//  * an optional JSON-lines trace (trace_log.h) recording proposed /
//    compile / run / retry / result per trial with strategy attribution.
//
// Two batch execution modes:
//
//  * serial (default) — trials run inline in submission order. This is
//    bit-identical to the historical sequential measure loop, which keeps
//    stateful devices (SwingSimDevice's jitter RNG) and therefore the
//    paper-figure CSVs deterministic.
//  * parallel — trials are dispatched onto the shared ThreadPool, capped
//    by Device::max_concurrent_measurements() (a device that is stateful
//    or order-sensitive reports 1 and is automatically driven serially,
//    so SwingSimDevice results are identical either way, while CpuDevice
//    batches really overlap on a multi-core host).
//
// On top of the batch interface the runner exposes a completion-driven
// streaming mode — submit(input) -> ticket, wait_any() -> (ticket,
// result) — with no wave barrier: every measurement slot is refilled the
// moment it frees up, so one straggling trial never idles the other
// slots (the batch path, by contrast, waits for the slowest member of
// each wave). Streaming trials carry the same per-trial fault isolation,
// retry policy, and pre-screen as batches, plus `dispatch` / `complete`
// trace events bracketing each slot occupancy. Submissions must come
// from outside the runner's thread pool (the driver thread); completion
// order is whatever the device delivers, which with a serial runner
// (async_slots() == 1) degenerates to submission order — the fixed-seed
// determinism mode.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "runtime/measure.h"
#include "runtime/trace_log.h"

namespace tvmbo::runtime {

/// When to re-run a failed trial. A retry replaces the failed attempt's
/// result; the last attempt's result is reported either way.
struct RetryPolicy {
  int max_retries = 0;          ///< extra attempts per trial after the first
  bool retry_errors = true;     ///< retry thrown / invalid measurements
  bool retry_timeouts = false;  ///< timeouts are usually persistent
};

struct MeasureRunnerOptions {
  /// Execute batch members concurrently (see the header comment for the
  /// serial-fallback determinism contract).
  bool parallel = false;
  /// Run MeasureInput::static_check before dispatching each trial; a
  /// violation yields an invalid result ("analysis reject: rule: ...",
  /// tuner-visible like a timeout) and an `analysis_reject` trace event
  /// without ever spending a device/worker on the config.
  bool prescreen = false;
  /// Extra cap on in-flight trials; 0 defers to the device/pool bounds.
  std::size_t max_concurrency = 0;
  RetryPolicy retry;
  /// Optional JSON-lines event log (not owned; may be null).
  TraceLog* trace = nullptr;
  /// Strategy attribution stamped on every trace event.
  std::string strategy;
};

class MeasureRunner {
 public:
  /// Identifies one streamed trial from submit() to its wait_any()
  /// completion (also the trial id stamped on its trace events).
  using Ticket = std::size_t;

  /// One completed streamed trial.
  struct Completion {
    Ticket ticket = 0;
    MeasureResult result;
  };

  /// The device (and trace log, when set) must outlive the runner. A null
  /// pool means the process-wide default pool.
  explicit MeasureRunner(Device* device, MeasureRunnerOptions options = {},
                         ThreadPool* pool = nullptr);
  /// Drains any still-running streamed trials (their results are
  /// discarded) before releasing the runner's state.
  ~MeasureRunner();

  /// Measures every input; results[i] always corresponds to inputs[i].
  /// Never throws for per-trial failures: a trial that throws or times
  /// out is reported as an invalid MeasureResult carrying its error.
  std::vector<MeasureResult> measure_batch(
      std::span<const MeasureInput> inputs, const MeasureOption& option);

  /// Single-trial convenience with the same isolation/retry/trace
  /// behaviour as a batch of one.
  MeasureResult measure_one(const MeasureInput& input,
                            const MeasureOption& option);

  /// Streaming mode: enqueues one trial and returns immediately. The
  /// trial starts the moment a slot (async_slots()) frees up — no wave
  /// barrier — and its result is collected via wait_any(). Must be
  /// called from outside the runner's thread pool.
  Ticket submit(MeasureInput input, const MeasureOption& option);

  /// Blocks until any streamed trial completes and returns it (completion
  /// order, not submission order). CheckError when nothing is in flight.
  /// Must be called from outside the runner's thread pool.
  Completion wait_any();

  /// Streamed trials submitted but not yet returned by wait_any().
  std::size_t in_flight() const;

  /// Concurrent streaming slots: min of the device bound, the pool
  /// width, and options().max_concurrency — 1 when the runner is not
  /// parallel (the deterministic serial mode).
  std::size_t async_slots() const;

  /// Re-attributes subsequent trace events (e.g. per-strategy sessions).
  void set_strategy(std::string strategy);

  Device* device() const { return device_; }
  const MeasureRunnerOptions& options() const { return options_; }
  /// Total trials submitted over the runner's lifetime.
  std::size_t trials_submitted() const { return next_trial_; }
  /// Trials rejected by the static pre-screen (never dispatched).
  std::size_t analysis_rejects() const { return analysis_rejects_; }

 private:
  /// One submitted-but-not-yet-dispatched streamed trial.
  struct AsyncJob {
    Ticket ticket = 0;
    MeasureInput input;
    MeasureOption option;
  };

  /// In-flight cap for one batch: min of batch size, device concurrency
  /// bound, pool width, and the configured cap (all where > 0).
  std::size_t concurrency_limit(std::size_t batch) const;
  /// One trial end-to-end: attempts + retries + trace events. Never
  /// throws.
  MeasureResult run_trial(const MeasureInput& input,
                          const MeasureOption& option, std::size_t trial);
  /// One device->measure call with fault isolation. Never throws.
  MeasureResult attempt_once(const MeasureInput& input,
                             const MeasureOption& option);
  /// Slot refill: dispatches queued jobs while slots are free. Caller
  /// holds async_mutex_.
  void dispatch_ready_locked();
  void trace_proposed(const MeasureInput& input, std::size_t trial);
  Json event(const char* name, std::size_t trial) const;

  Device* device_;
  MeasureRunnerOptions options_;
  ThreadPool* pool_;
  std::atomic<std::size_t> next_trial_{0};
  std::atomic<std::size_t> analysis_rejects_{0};

  // Streaming state: queued jobs wait for a slot; completions wait for
  // wait_any(). outstanding_ = queued + running + completed-uncollected.
  mutable std::mutex async_mutex_;
  std::condition_variable async_cv_;
  std::deque<AsyncJob> async_queue_;
  std::deque<Completion> async_completed_;
  std::size_t async_running_ = 0;
  std::size_t async_outstanding_ = 0;
};

}  // namespace tvmbo::runtime
