// Performance database: the record store the paper's Step 5 appends to and
// the final "query the performance database to output the optimization
// specification for the best configuration" reads from.
//
// Records serialize as one JSON object per line, mirroring TVM's tuning-log
// format closely enough that the same tooling habits apply.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "runtime/measure.h"

namespace tvmbo::runtime {

/// One completed evaluation.
struct TrialRecord {
  int eval_index = 0;               ///< 0-based evaluation number
  std::string strategy;             ///< "ytopt", "autotvm-ga", ...
  std::string workload_id;          ///< Workload::id()
  std::vector<std::int64_t> tiles;  ///< the evaluated configuration
  double runtime_s = 0.0;           ///< measured kernel runtime
  double energy_j = 0.0;            ///< measured energy (0 = no meter)
  double compile_s = 0.0;
  double elapsed_s = 0.0;  ///< cumulative autotuning process time at the
                           ///< moment this evaluation finished (x-axis of
                           ///< the paper's process-over-time figures)
  bool valid = true;

  Json to_json() const;
  static TrialRecord from_json(const Json& json);
};

class PerfDatabase {
 public:
  void add(TrialRecord record);

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<TrialRecord>& records() const { return records_; }
  const TrialRecord& record(std::size_t index) const;

  /// Best (lowest valid runtime) record, if any valid record exists.
  std::optional<TrialRecord> best() const;

  /// Best among records of one strategy.
  std::optional<TrialRecord> best_for(const std::string& strategy) const;

  /// All records of one strategy, in insertion order.
  std::vector<TrialRecord> by_strategy(const std::string& strategy) const;

  /// Distinct strategies present, in first-appearance order.
  std::vector<std::string> strategies() const;

  /// Total autotuning process time for a strategy (its last elapsed_s).
  double total_time_for(const std::string& strategy) const;

  /// Serialization: one JSON record per line (TVM tuning-log style).
  std::string to_json_lines() const;
  static PerfDatabase from_json_lines(const std::string& text);

  void save(const std::string& path) const;
  static PerfDatabase load(const std::string& path);

 private:
  std::vector<TrialRecord> records_;
};

}  // namespace tvmbo::runtime
