// Performance database: the record store the paper's Step 5 appends to and
// the final "query the performance database to output the optimization
// specification for the best configuration" reads from.
//
// Records serialize as one JSON object per line, mirroring TVM's tuning-log
// format closely enough that the same tooling habits apply.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/json.h"
#include "runtime/measure.h"

namespace tvmbo::runtime {

/// One completed evaluation.
struct TrialRecord {
  /// Schema version to_json() writes ("v" key). v1 records (everything
  /// before the transfer-learning subsystem) lack the version field and
  /// the backend/nthreads provenance; from_json() accepts them with
  /// defaulted metadata so old databases stay loadable.
  static constexpr int kSchemaVersion = 2;

  int eval_index = 0;               ///< 0-based evaluation number
  std::string strategy;             ///< "ytopt", "autotvm-ga", ...
  std::string workload_id;          ///< Workload::id()
  std::vector<std::int64_t> tiles;  ///< the evaluated configuration
  double runtime_s = 0.0;           ///< measured kernel runtime
  double energy_j = 0.0;            ///< measured energy (0 = no meter)
  double compile_s = 0.0;
  double elapsed_s = 0.0;  ///< cumulative autotuning process time at the
                           ///< moment this evaluation finished (x-axis of
                           ///< the paper's process-over-time figures)
  bool valid = true;
  /// Schema version this record was *loaded* from (kSchemaVersion for
  /// freshly produced records); to_json() always writes kSchemaVersion.
  int schema = kSchemaVersion;
  std::string backend;       ///< producing backend ("sim", "jit", ...; ""
                             ///< on legacy records)
  std::int64_t nthreads = 1; ///< thread budget the measurement ran under

  Json to_json() const;
  static TrialRecord from_json(const Json& json);
};

class PerfDatabase {
 public:
  void add(TrialRecord record);

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<TrialRecord>& records() const { return records_; }
  const TrialRecord& record(std::size_t index) const;

  /// Best (lowest valid runtime) record, if any valid record exists.
  std::optional<TrialRecord> best() const;

  /// Best among records of one strategy.
  std::optional<TrialRecord> best_for(const std::string& strategy) const;

  /// All records of one strategy, in insertion order.
  std::vector<TrialRecord> by_strategy(const std::string& strategy) const;

  /// Distinct strategies present, in first-appearance order.
  std::vector<std::string> strategies() const;

  /// Total autotuning process time for a strategy (its last elapsed_s).
  double total_time_for(const std::string& strategy) const;

  /// Serialization: one JSON record per line (TVM tuning-log style).
  std::string to_json_lines() const;
  static PerfDatabase from_json_lines(const std::string& text);

  void save(const std::string& path) const;
  static PerfDatabase load(const std::string& path);

 private:
  std::vector<TrialRecord> records_;
};

/// Crash/concurrency-safe append-only writer for a shared JSONL perf
/// database: many appenders (threads or processes — e.g. every tenant of a
/// tvmbo_serve daemon) may target the same path simultaneously.
///
/// Safety model:
///   * The file is opened O_APPEND, and append() issues the whole
///     record — JSON plus trailing newline — as a single write(2), so two
///     concurrent appends can interleave only at record granularity,
///     never mid-line (POSIX O_APPEND writes are atomic with respect to
///     the offset update).
///   * If the kernel ever reports a short write (possible near a quota or
///     on exotic filesystems), the remainder is completed under an
///     exclusive flock so no other appender can splice into the torn
///     record.
///   * append_all() holds the flock across the whole batch so a
///     multi-record flush lands contiguously.
/// A process killed between records leaves a valid file; one killed
/// mid-write leaves at most one torn final line, which the tolerant
/// PerfDatabase::from_json_lines loader skips.
class PerfDbAppender {
 public:
  /// Opens (creating if needed) `path` for appending. Fails the process
  /// on open errors (same contract as PerfDatabase::save).
  explicit PerfDbAppender(const std::string& path);
  ~PerfDbAppender();

  PerfDbAppender(const PerfDbAppender&) = delete;
  PerfDbAppender& operator=(const PerfDbAppender&) = delete;
  PerfDbAppender(PerfDbAppender&& other) noexcept;
  PerfDbAppender& operator=(PerfDbAppender&&) = delete;

  /// Appends one record (one atomic write; see class comment).
  void append(const TrialRecord& record);

  /// Appends a batch contiguously under an exclusive file lock.
  void append_all(std::span<const TrialRecord> records);

  const std::string& path() const { return path_; }

 private:
  void write_fully(const std::string& payload);

  std::string path_;
  int fd_ = -1;
};

}  // namespace tvmbo::runtime
