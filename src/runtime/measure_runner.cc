#include "runtime/measure_runner.h"

#include <algorithm>
#include <future>

#include "common/logging.h"

namespace tvmbo::runtime {

namespace {

bool is_timeout(const MeasureResult& result) {
  return result.error.rfind("timeout", 0) == 0;
}

}  // namespace

MeasureRunner::MeasureRunner(Device* device, MeasureRunnerOptions options,
                             ThreadPool* pool)
    : device_(device), options_(std::move(options)),
      pool_(pool != nullptr ? pool : &default_thread_pool()) {
  TVMBO_CHECK(device_ != nullptr) << "measure runner requires a device";
  TVMBO_CHECK_GE(options_.retry.max_retries, 0)
      << "max_retries must be non-negative";
}

MeasureRunner::~MeasureRunner() {
  // A streamed trial still running on the pool captures `this`; wait for
  // every dispatched/queued job to finish before the members go away.
  std::unique_lock<std::mutex> lock(async_mutex_);
  async_cv_.wait(lock, [&] {
    return async_running_ == 0 && async_queue_.empty();
  });
}

void MeasureRunner::set_strategy(std::string strategy) {
  options_.strategy = std::move(strategy);
}

Json MeasureRunner::event(const char* name, std::size_t trial) const {
  Json e = Json::object();
  e.set("event", name);
  e.set("trial", trial);
  if (!options_.strategy.empty()) e.set("strategy", options_.strategy);
  return e;
}

void MeasureRunner::trace_proposed(const MeasureInput& input,
                                   std::size_t trial) {
  Json e = event("proposed", trial);
  e.set("workload", input.workload.id());
  Json tiles = Json::array();
  for (std::int64_t t : input.tiles) tiles.push_back(t);
  e.set("tiles", std::move(tiles));
  options_.trace->record(std::move(e));
}

MeasureResult MeasureRunner::attempt_once(const MeasureInput& input,
                                          const MeasureOption& option) {
  try {
    return device_->measure(input, option);
  } catch (const std::exception& e) {
    MeasureResult result;
    result.valid = false;
    result.error = e.what();
    return result;
  } catch (...) {
    MeasureResult result;
    result.valid = false;
    result.error = "unknown measurement error";
    return result;
  }
}

MeasureResult MeasureRunner::run_trial(const MeasureInput& input,
                                       const MeasureOption& option,
                                       std::size_t trial) {
  MeasureResult result;
  // Static pre-screen: a config the analyzer rejects never reaches the
  // device — the tuner sees an explicit invalid result (like a timeout)
  // after only an analysis pass, not a wasted worker.
  if (options_.prescreen && input.static_check) {
    std::string violation;
    try {
      violation = input.static_check();
    } catch (const std::exception& e) {
      violation = e.what();
    }
    if (!violation.empty()) {
      analysis_rejects_.fetch_add(1);
      result.valid = false;
      result.error = "analysis reject: " + violation;
      if (options_.trace != nullptr) {
        Json reject = event("analysis_reject", trial);
        reject.set("workload", input.workload.id());
        Json tiles = Json::array();
        for (std::int64_t t : input.tiles) tiles.push_back(t);
        reject.set("tiles", std::move(tiles));
        reject.set("rule", violation.substr(0, violation.find(':')));
        reject.set("error", result.error);
        options_.trace->record(std::move(reject));
        Json done = event("result", trial);
        done.set("valid", false);
        done.set("runtime_s", 0.0);
        done.set("compile_s", 0.0);
        done.set("energy_j", 0.0);
        done.set("cost_s", 0.0);
        done.set("error", result.error);
        options_.trace->record(std::move(done));
      }
      return result;
    }
  }
  const int attempts = 1 + options_.retry.max_retries;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    result = attempt_once(input, option);
    if (options_.trace != nullptr) {
      Json compile = event("compile", trial);
      compile.set("attempt", attempt);
      compile.set("compile_s", result.compile_s);
      options_.trace->record(std::move(compile));
      Json run = event("run", trial);
      run.set("attempt", attempt);
      run.set("runtime_s", result.runtime_s);
      run.set("repeat", option.repeat);
      run.set("warmup", option.warmup);
      options_.trace->record(std::move(run));
    }
    if (result.valid) break;
    const bool retryable = is_timeout(result)
                               ? options_.retry.retry_timeouts
                               : options_.retry.retry_errors;
    if (!retryable || attempt + 1 >= attempts) break;
    if (options_.trace != nullptr) {
      Json retry = event("retry", trial);
      retry.set("attempt", attempt);
      retry.set("error", result.error);
      options_.trace->record(std::move(retry));
    }
  }
  if (options_.trace != nullptr) {
    Json done = event("result", trial);
    done.set("valid", result.valid);
    done.set("runtime_s", result.runtime_s);
    done.set("compile_s", result.compile_s);
    done.set("energy_j", result.energy_j);
    done.set("cost_s", result.evaluation_cost_s(option));
    if (!result.error.empty()) done.set("error", result.error);
    options_.trace->record(std::move(done));
  }
  return result;
}

std::size_t MeasureRunner::concurrency_limit(std::size_t batch) const {
  std::size_t limit = batch;
  const std::size_t device_limit = device_->max_concurrent_measurements();
  if (device_limit > 0) limit = std::min(limit, device_limit);
  if (options_.max_concurrency > 0) {
    limit = std::min(limit, options_.max_concurrency);
  }
  limit = std::min(limit, pool_->num_threads());
  return std::max<std::size_t>(1, limit);
}

std::vector<MeasureResult> MeasureRunner::measure_batch(
    std::span<const MeasureInput> inputs, const MeasureOption& option) {
  std::vector<MeasureResult> results(inputs.size());
  if (inputs.empty()) return results;
  const std::size_t base = next_trial_.fetch_add(inputs.size());
  if (options_.trace != nullptr) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      trace_proposed(inputs[i], base + i);
    }
  }
  // Serial path: submission order, inline. Also taken when the device
  // bounds concurrency to one, or when already on a pool worker (a nested
  // dispatch would block a worker on its own queue).
  const std::size_t limit = concurrency_limit(inputs.size());
  if (!options_.parallel || limit <= 1 || inputs.size() == 1 ||
      pool_->in_worker_thread()) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      results[i] = run_trial(inputs[i], option, base + i);
    }
    return results;
  }
  // Parallel path: waves of at most `limit` in-flight trials; each trial
  // writes its own slot, so completion order never reorders results.
  for (std::size_t start = 0; start < inputs.size(); start += limit) {
    const std::size_t end = std::min(start + limit, inputs.size());
    std::vector<std::future<void>> futures;
    futures.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) {
      futures.push_back(pool_->submit([this, &inputs, &option, &results,
                                       base, i] {
        results[i] = run_trial(inputs[i], option, base + i);
      }));
    }
    for (auto& future : futures) future.get();
  }
  return results;
}

MeasureResult MeasureRunner::measure_one(const MeasureInput& input,
                                         const MeasureOption& option) {
  return measure_batch({&input, 1}, option)[0];
}

std::size_t MeasureRunner::async_slots() const {
  if (!options_.parallel) return 1;  // deterministic serial streaming
  std::size_t limit = pool_->num_threads();
  const std::size_t device_limit = device_->max_concurrent_measurements();
  if (device_limit > 0) limit = std::min(limit, device_limit);
  if (options_.max_concurrency > 0) {
    limit = std::min(limit, options_.max_concurrency);
  }
  return std::max<std::size_t>(1, limit);
}

std::size_t MeasureRunner::in_flight() const {
  std::lock_guard<std::mutex> lock(async_mutex_);
  return async_outstanding_;
}

void MeasureRunner::dispatch_ready_locked() {
  const std::size_t slots = async_slots();
  while (async_running_ < slots && !async_queue_.empty()) {
    AsyncJob job = std::move(async_queue_.front());
    async_queue_.pop_front();
    ++async_running_;
    // The pool task owns the job; it reports back under the lock and
    // refills the slot it just freed — this is where the pipeline beats
    // the batch path's wave barrier.
    pool_->submit([this, job = std::move(job)]() mutable {
      if (options_.trace != nullptr) {
        Json dispatch = event("dispatch", job.ticket);
        dispatch.set("workload", job.input.workload.id());
        options_.trace->record(std::move(dispatch));
      }
      MeasureResult result = run_trial(job.input, job.option, job.ticket);
      if (options_.trace != nullptr) {
        Json complete = event("complete", job.ticket);
        complete.set("valid", result.valid);
        if (!result.error.empty()) complete.set("error", result.error);
        options_.trace->record(std::move(complete));
      }
      {
        std::lock_guard<std::mutex> lock(async_mutex_);
        --async_running_;
        async_completed_.push_back({job.ticket, std::move(result)});
        dispatch_ready_locked();
        // Notify under the lock: the destructor may tear the condvar
        // down the moment its predicate holds.
        async_cv_.notify_all();
      }
    });
  }
}

MeasureRunner::Ticket MeasureRunner::submit(MeasureInput input,
                                            const MeasureOption& option) {
  TVMBO_CHECK(!pool_->in_worker_thread())
      << "submit must be driven from outside the runner's thread pool";
  const Ticket ticket = next_trial_.fetch_add(1);
  if (options_.trace != nullptr) trace_proposed(input, ticket);
  {
    std::lock_guard<std::mutex> lock(async_mutex_);
    async_queue_.push_back({ticket, std::move(input), option});
    ++async_outstanding_;
    dispatch_ready_locked();
  }
  return ticket;
}

MeasureRunner::Completion MeasureRunner::wait_any() {
  TVMBO_CHECK(!pool_->in_worker_thread())
      << "wait_any must be driven from outside the runner's thread pool";
  std::unique_lock<std::mutex> lock(async_mutex_);
  TVMBO_CHECK_GT(async_outstanding_, 0u)
      << "wait_any with no streamed trial in flight";
  async_cv_.wait(lock, [&] { return !async_completed_.empty(); });
  Completion completion = std::move(async_completed_.front());
  async_completed_.pop_front();
  --async_outstanding_;
  return completion;
}

}  // namespace tvmbo::runtime
