#include "runtime/swing_sim.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace tvmbo::runtime {

namespace {

// FNV-1a over a string, for workload identity hashing.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

inline std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Deterministic uniform in [0,1) derived from a hash.
inline double hash_uniform(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Deterministic standard normal from a hash (Box-Muller on two derived
// uniforms).
double hash_normal(std::uint64_t h) {
  double u1 = hash_uniform(hash64(h ^ 0x9E3779B97F4A7C15ull));
  const double u2 = hash_uniform(hash64(h ^ 0xD1B54A32D192ED03ull));
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

struct Calibration {
  const char* kernel;
  const char* size_name;
  double scale;
};

// Fit once (tools/calibrate_swing_sim) so the surface minimum over the
// paper's exact parameter space equals the paper's reported best runtime:
//   LU      large 1.659 s | extralarge 13.77 s   (Figs 5, 7)
//   Cholesky large 1.65 s | extralarge 13.99 s   (Figs 9, 11)
//   3mm     extralarge 30.99 s                   (Fig 13)
//   3mm     large: no figure; scaled by the XL ratio applied to Table 1's
//   problem sizes.
// Values updated by the calibration pass recorded in EXPERIMENTS.md.
constexpr Calibration kCalibration[] = {
    {"lu", "large", 6.668},        // -> exhaustive surface min 1.659 s
    {"lu", "extralarge", 7.656},   // -> 13.77 s
    {"cholesky", "large", 6.890},  // -> 1.65 s
    {"cholesky", "extralarge", 7.785},  // -> 13.99 s
    {"3mm", "large", 123.9},       // same hardware scale as extralarge
    {"3mm", "extralarge", 123.9},  // -> sampled surface min 30.99 s
    {"gemm", "large", 123.9},      // extensions share the matmul-chain
    {"gemm", "extralarge", 123.9},  // calibration (not in the paper)
    {"2mm", "large", 123.9},
    {"2mm", "extralarge", 123.9},
    {"syrk", "large", 123.9},
    {"syrk", "extralarge", 123.9},
    {"atax", "large", 123.9},  // matvec extensions share the hardware
    {"bicg", "large", 123.9},  // scale (not in the paper)
    {"mvt", "large", 123.9},
};

}  // namespace

SwingSimDevice::SwingSimDevice(std::uint64_t seed)
    : SwingSimDevice(SwingSimParams{}, seed) {}

SwingSimDevice::SwingSimDevice(const SwingSimParams& params,
                               std::uint64_t seed)
    : params_(params), jitter_rng_(seed) {}

double SwingSimDevice::calibration_scale(const Workload& workload) const {
  for (const auto& entry : kCalibration) {
    if (workload.kernel == entry.kernel &&
        workload.size_name == entry.size_name) {
      return entry.scale;
    }
  }
  return 1.0;
}

std::uint64_t SwingSimDevice::config_hash(
    const Workload& workload, std::span<const std::int64_t> tiles) const {
  std::uint64_t h = fnv1a(workload.kernel);
  h = hash_combine(h, fnv1a(workload.size_name));
  for (std::int64_t d : workload.dims) {
    h = hash_combine(h, static_cast<std::uint64_t>(d));
  }
  for (std::int64_t t : tiles) {
    h = hash_combine(h, static_cast<std::uint64_t>(t));
  }
  return hash_combine(h, params_.surface_seed);
}

double SwingSimDevice::stage_time(std::int64_t rows, std::int64_t cols,
                                  std::int64_t depth, std::int64_t ty,
                                  std::int64_t tx,
                                  double flops_per_element) const {
  if (rows <= 0 || cols <= 0 || depth <= 0) return 0.0;
  ty = std::clamp<std::int64_t>(ty, 1, std::max<std::int64_t>(rows, 1));
  tx = std::clamp<std::int64_t>(tx, 1, std::max<std::int64_t>(cols, 1));

  const double threads = static_cast<double>(ty) * static_cast<double>(tx);
  const std::int64_t blocks_y = ceil_div(rows, ty);
  const std::int64_t blocks_x = ceil_div(cols, tx);
  const double blocks =
      static_cast<double>(blocks_y) * static_cast<double>(blocks_x);
  // Padding waste: partially filled edge tiles still burn full blocks.
  const double padded_elems = static_cast<double>(blocks_y * ty) *
                              static_cast<double>(blocks_x * tx);
  const double flops =
      padded_elems * static_cast<double>(depth) * flops_per_element;

  // --- compute-side efficiency -------------------------------------------
  const double warp = static_cast<double>(params_.warp_size);
  // Blocks smaller than a warp leave lanes idle; saturation near 512.
  double occupancy;
  if (threads < warp) {
    occupancy = 0.30 + 0.50 * threads / warp;
  } else {
    occupancy = std::min(1.0, 0.55 + 0.45 * std::min(threads, 512.0) / 512.0);
  }
  // Oversized logical blocks serialize in waves; latency hiding recovers
  // part of it (sub-linear exponent).
  const double limit = static_cast<double>(params_.max_threads_per_block);
  const double oversub =
      threads > limit ? std::pow(limit / threads, 0.35) : 1.0;
  // Coalescing along the contiguous x axis.
  double coalesce;
  if (tx % params_.warp_size == 0) {
    coalesce = 1.0;
  } else if (tx >= params_.warp_size) {
    coalesce = 0.80;
  } else {
    coalesce = 0.30 + 0.55 * static_cast<double>(tx) / warp;
  }
  // Too few blocks cannot fill the SM array (108 SMs, ~2 blocks each).
  const double fill = std::min(1.0, 0.15 + 0.85 * blocks / 216.0);

  const double efficiency =
      std::max(0.02, occupancy * oversub * coalesce * fill);
  const double flop_time = flops / (params_.peak_gflops * 1e9 * efficiency);

  // --- memory-side time ----------------------------------------------------
  const double w = params_.element_bytes;
  const double depth_chunk = std::min<double>(static_cast<double>(depth), 64);
  const double footprint =
      w * (static_cast<double>(ty) * depth_chunk +
           depth_chunk * static_cast<double>(tx) + threads);
  const double cache_penalty =
      footprint > params_.cache_bytes
          ? 1.0 + 0.45 * std::log2(footprint / params_.cache_bytes)
          : 1.0;
  // Classic tiled-contraction traffic: each operand re-read once per tile
  // in the other dimension, plus the output write.
  const double traffic =
      w * padded_elems *
      (static_cast<double>(depth) * (1.0 / static_cast<double>(tx) +
                                     1.0 / static_cast<double>(ty)) +
       2.0);
  const double mem_time = traffic * cache_penalty /
                          (params_.mem_bandwidth_gbs * 1e9 *
                           (0.5 + 0.5 * coalesce));

  const double raw = std::max(flop_time, mem_time);
  // Roofline-ideal time for this stage shape: perfect efficiency, no
  // padding, each operand streamed once. raw >= ideal by construction
  // (every inefficiency above multiplies on top of these bounds).
  const double elems = static_cast<double>(rows) *
                       static_cast<double>(cols);
  const double flop_ideal = elems * static_cast<double>(depth) *
                            flops_per_element /
                            (params_.peak_gflops * 1e9);
  const double traffic_ideal =
      w * (static_cast<double>(rows) * static_cast<double>(depth) +
           static_cast<double>(depth) * static_cast<double>(cols) +
           2.0 * elems) /
      (params_.mem_bandwidth_gbs * 1e9);
  const double ideal = std::max(flop_ideal, traffic_ideal);
  const double compressed =
      ideal * std::pow(std::max(raw / ideal, 1.0),
                       params_.plateau_exponent);
  return compressed + params_.launch_overhead_us * 1e-6;
}

double SwingSimDevice::lu_time(std::int64_t n, std::int64_t ty,
                               std::int64_t tx) const {
  // LU without pivoting: n-1 sequential elimination steps. Step k scales
  // the pivot column (m elements) then applies a rank-1 update to the
  // m x m trailing submatrix, m = n - 1 - k. Each step is (at least) two
  // kernel launches; the tiles block the update's (i, j) loops.
  double total = 0.0;
  for (std::int64_t k = 0; k + 1 < n; ++k) {
    const std::int64_t m = n - 1 - k;
    // Pivot-column scale: a thin kernel, tiled along y only.
    total += stage_time(m, 1, 1, std::min(ty, m), 1, 1.0);
    // Rank-1 trailing update: A[i][j] -= A[i][k] * A[k][j].
    total += stage_time(m, m, 1, ty, tx, 2.0);
  }
  return total;
}

double SwingSimDevice::cholesky_time(std::int64_t n, std::int64_t ty,
                                     std::int64_t tx) const {
  // Right-looking Cholesky: sqrt + column scale + symmetric rank-1 update
  // of the lower-triangular trailing matrix (half the elements of the LU
  // update, same launch structure).
  double total = 0.0;
  for (std::int64_t k = 0; k + 1 < n; ++k) {
    const std::int64_t m = n - 1 - k;
    total += stage_time(m, 1, 1, std::min(ty, m), 1, 2.0);
    total += stage_time(m, m, 1, ty, tx, 1.0);
  }
  return total;
}

double SwingSimDevice::matmul_chain_time(
    const Workload& workload, std::span<const std::int64_t> tiles) const {
  const auto& dims = workload.dims;
  if (workload.kernel == "gemm") {
    TVMBO_CHECK_EQ(dims.size(), 3u) << "gemm dims must be {M, N, K}";
    TVMBO_CHECK_EQ(tiles.size(), 2u) << "gemm tiles must be {ty, tx}";
    return stage_time(dims[0], dims[1], dims[2], tiles[0], tiles[1], 2.0);
  }
  if (workload.kernel == "2mm") {
    TVMBO_CHECK_EQ(dims.size(), 4u) << "2mm dims must be {NI, NJ, NK, NL}";
    TVMBO_CHECK_EQ(tiles.size(), 4u) << "2mm tiles must be {y0,x0,y1,x1}";
    // tmp = A(NIxNK) * B(NKxNJ); D = tmp(NIxNJ) * C(NJxNL)
    return stage_time(dims[0], dims[1], dims[2], tiles[0], tiles[1], 2.0) +
           stage_time(dims[0], dims[3], dims[1], tiles[2], tiles[3], 2.0);
  }
  if (workload.kernel == "syrk") {
    TVMBO_CHECK_EQ(dims.size(), 2u) << "syrk dims must be {N, M}";
    TVMBO_CHECK_EQ(tiles.size(), 2u) << "syrk tiles must be {ty, tx}";
    // Triangular N x N output with depth M: half the flops of a gemm.
    return stage_time(dims[0], dims[0], dims[1], tiles[0], tiles[1], 1.0);
  }
  if (workload.kernel == "atax" || workload.kernel == "bicg") {
    TVMBO_CHECK_EQ(dims.size(), 2u)
        << workload.kernel << " dims must be 2-D";
    TVMBO_CHECK_EQ(tiles.size(), 2u)
        << workload.kernel << " tiles must be {ti, tj}";
    // Two bandwidth-bound traversals of A, blocked (ti, tj), 2 flops per
    // element each; depth 1 (the tile reuses the x/y vector slices).
    return stage_time(dims[0], dims[1], 1, tiles[0], tiles[1], 2.0) * 2.0;
  }
  if (workload.kernel == "mvt") {
    TVMBO_CHECK_EQ(dims.size(), 1u) << "mvt dims must be {N}";
    TVMBO_CHECK_EQ(tiles.size(), 2u) << "mvt tiles must be {ti, tj}";
    return stage_time(dims[0], dims[0], 1, tiles[0], tiles[1], 2.0) * 2.0;
  }
  TVMBO_CHECK(workload.kernel == "3mm")
      << "unsupported matmul-chain kernel '" << workload.kernel << "'";
  TVMBO_CHECK_EQ(dims.size(), 5u) << "3mm dims must be {N, L, M, O, P}";
  TVMBO_CHECK_EQ(tiles.size(), 6u)
      << "3mm tiles must be {y0,x0,y1,x1,y2,x2}";
  const std::int64_t N = dims[0], L = dims[1], M = dims[2], O = dims[3],
                     P = dims[4];
  // E(N x M) = A * B (depth L); F(M x P) = C * D (depth O);
  // G(N x P) = E * F (depth M).
  return stage_time(N, M, L, tiles[0], tiles[1], 2.0) +
         stage_time(M, P, O, tiles[2], tiles[3], 2.0) +
         stage_time(N, P, M, tiles[4], tiles[5], 2.0);
}

double SwingSimDevice::model_runtime(
    const Workload& workload, std::span<const std::int64_t> tiles) const {
  for (std::int64_t t : tiles) {
    TVMBO_CHECK_GT(t, 0) << "tile factors must be positive";
  }
  double base = 0.0;
  if (workload.kernel == "lu") {
    TVMBO_CHECK_EQ(workload.dims.size(), 1u) << "lu dims must be {N}";
    TVMBO_CHECK_EQ(tiles.size(), 2u) << "lu tiles must be {ty, tx}";
    base = lu_time(workload.dims[0], tiles[0], tiles[1]);
  } else if (workload.kernel == "cholesky") {
    TVMBO_CHECK_EQ(workload.dims.size(), 1u) << "cholesky dims must be {N}";
    TVMBO_CHECK_EQ(tiles.size(), 2u) << "cholesky tiles must be {ty, tx}";
    base = cholesky_time(workload.dims[0], tiles[0], tiles[1]);
  } else {
    base = matmul_chain_time(workload, tiles);
  }
  return base * calibration_scale(workload);
}

double SwingSimDevice::surface_runtime(
    const Workload& workload, std::span<const std::int64_t> tiles) const {
  const double base = model_runtime(workload, tiles);
  const std::uint64_t h = config_hash(workload, tiles);
  const double select = hash_uniform(hash64(h ^ 0xA0A0A0A0A0A0A0A0ull));
  double multiplier;
  if (select < params_.pathological_fraction) {
    // Config-deterministic pathology: register spill / bank conflicts /
    // scheduler artifact; such configs are consistently 1.5x-5.5x slower.
    multiplier = 1.5 + 4.0 * hash_uniform(hash64(h ^ 0x0F0F0F0F0F0F0F0Full));
  } else {
    multiplier = std::exp(params_.noise_sigma * hash_normal(h));
  }
  return base * multiplier;
}

double SwingSimDevice::compile_time(
    const Workload& workload, std::span<const std::int64_t> tiles) const {
  const std::uint64_t h =
      hash64(config_hash(workload, tiles) ^ 0xC0117113ull);
  double flops = std::max(workload.flops, 1.0);
  // TVM build + CUDA codegen: grows weakly with kernel complexity, with
  // config-dependent variation (larger unrolled tiles take longer).
  const double base = 0.9 + 0.22 * std::log10(flops);
  const double spread = 0.85 + 0.30 * hash_uniform(h);
  return base * spread;
}

double SwingSimDevice::power_watts(
    const Workload& workload, std::span<const std::int64_t> tiles) const {
  // Utilization proxy: the ratio of the best runtime the hardware could
  // reach (perfect-efficiency roofline, approximated by the calibrated
  // surface minimum region) to this configuration's runtime. Rather than
  // recomputing an exhaustive minimum, use flops/runtime against the
  // device's peak as achieved efficiency.
  const double runtime = model_runtime(workload, tiles);
  const double achieved =
      std::max(workload.flops, 1.0) / std::max(runtime, 1e-9);
  const double efficiency =
      std::clamp(achieved / (params_.peak_gflops * 1e9), 0.0, 1.0);
  const double idle_watts = 55.0;          // A100 idle board power
  const double dynamic_range_watts = 345.0;  // up to the 400 W TDP
  // Dynamic power grows sub-linearly with utilization (voltage/frequency
  // scaling keeps low-utilization kernels from idling at full power).
  const double h = hash_uniform(
      hash64(config_hash(workload, tiles) ^ 0x9033E77A775ull));
  const double variation = 0.95 + 0.10 * h;
  return (idle_watts +
          dynamic_range_watts * std::pow(efficiency, 0.6)) *
         variation;
}

double SwingSimDevice::surface_energy(
    const Workload& workload, std::span<const std::int64_t> tiles) const {
  return power_watts(workload, tiles) * surface_runtime(workload, tiles);
}

MeasureResult SwingSimDevice::measure(const MeasureInput& input,
                                      const MeasureOption& option) {
  TVMBO_CHECK_GT(option.repeat, 0) << "repeat must be positive";
  MeasureResult result;
  const double surface = surface_runtime(input.workload, input.tiles);
  // Per-measurement jitter averaged over `repeat` runs.
  double total = 0.0;
  for (int i = 0; i < option.repeat; ++i) {
    total += surface * std::exp(params_.jitter_sigma * jitter_rng_.normal());
  }
  result.runtime_s = total / static_cast<double>(option.repeat);
  result.compile_s = compile_time(input.workload, input.tiles);
  result.energy_j =
      power_watts(input.workload, input.tiles) * result.runtime_s;
  if (option.timeout_s > 0.0 && result.runtime_s > option.timeout_s) {
    result.valid = false;
    result.error = "timeout";
  }
  return result;
}

}  // namespace tvmbo::runtime
