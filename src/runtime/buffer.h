// Dense n-dimensional arrays used by the TE interpreter, the native
// kernels, and the numerical validation helpers.
//
// Value-semantic (shared ownership of the storage would invite aliasing
// bugs in the interpreter): copying an NDArray copies its data. Storage is
// 64-byte aligned so the native kernels can assume cacheline-aligned rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"

namespace tvmbo::runtime {

enum class DType {
  kFloat32,
  kFloat64,
};

/// Size in bytes of one element.
std::size_t dtype_bytes(DType dtype);
/// Human-readable name ("float32" / "float64").
std::string dtype_name(DType dtype);

class NDArray {
 public:
  /// Allocates a zero-initialized array.
  NDArray(std::vector<std::int64_t> shape, DType dtype = DType::kFloat64);

  NDArray(const NDArray& other);
  NDArray& operator=(const NDArray& other);
  NDArray(NDArray&&) noexcept = default;
  NDArray& operator=(NDArray&&) noexcept = default;

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::size_t ndim() const { return shape_.size(); }
  DType dtype() const { return dtype_; }
  /// Total number of elements.
  std::int64_t num_elements() const { return num_elements_; }

  /// Raw storage (dtype-erased, 64-byte aligned).
  void* data();
  const void* data() const;

  /// Typed element views. TVMBO_CHECK on dtype mismatch.
  std::span<double> f64();
  std::span<const double> f64() const;
  std::span<float> f32();
  std::span<const float> f32() const;

  /// Row-major flat offset of a multi-index (checked in debug).
  std::int64_t flat_index(std::span<const std::int64_t> indices) const;

  /// Reads element at a multi-index as double (converts from float32).
  double read(std::span<const std::int64_t> indices) const;
  /// Writes element at a multi-index from double.
  void write(std::span<const std::int64_t> indices, double value);

  /// Convenience 2-D accessors used pervasively by the matrix kernels.
  double at2(std::int64_t i, std::int64_t j) const;
  void set2(std::int64_t i, std::int64_t j, double value);

  /// Sets every element to `value`.
  void fill(double value);

  /// Max-absolute-difference against another array of identical shape.
  double max_abs_diff(const NDArray& other) const;

  /// True when shapes, dtypes, and all elements match within `tolerance`.
  bool allclose(const NDArray& other, double tolerance = 1e-9) const;

 private:
  void allocate();

  std::vector<std::int64_t> shape_;
  std::vector<std::int64_t> strides_;  // row-major, in elements
  DType dtype_;
  std::int64_t num_elements_ = 0;
  std::unique_ptr<std::byte[]> storage_;
};

}  // namespace tvmbo::runtime
