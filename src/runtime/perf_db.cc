#include "runtime/perf_db.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace tvmbo::runtime {

Json TrialRecord::to_json() const {
  Json tiles_json = Json::array();
  for (std::int64_t t : tiles) tiles_json.push_back(Json(t));
  Json out = Json::object();
  out.set("v", Json(kSchemaVersion));
  out.set("i", Json(eval_index));
  out.set("strategy", Json(strategy));
  out.set("workload", Json(workload_id));
  out.set("config", std::move(tiles_json));
  out.set("runtime_s", Json(runtime_s));
  out.set("energy_j", Json(energy_j));
  out.set("compile_s", Json(compile_s));
  out.set("elapsed_s", Json(elapsed_s));
  out.set("valid", Json(valid));
  out.set("backend", Json(backend));
  out.set("nthreads", Json(nthreads));
  return out;
}

TrialRecord TrialRecord::from_json(const Json& json) {
  TrialRecord record;
  if (json.contains("v")) {
    record.schema = static_cast<int>(json.at("v").as_int());
    TVMBO_CHECK(record.schema >= 1 && record.schema <= kSchemaVersion)
        << "unsupported perf-db record schema v" << record.schema
        << " (this build reads up to v" << kSchemaVersion << ")";
  } else {
    record.schema = 1;  // legacy record: no version stamp, no metadata
  }
  record.eval_index = static_cast<int>(json.at("i").as_int());
  record.strategy = json.at("strategy").as_string();
  record.workload_id = json.at("workload").as_string();
  for (const Json& t : json.at("config").as_array()) {
    record.tiles.push_back(t.as_int());
  }
  record.runtime_s = json.at("runtime_s").as_double();
  if (json.contains("energy_j")) {
    record.energy_j = json.at("energy_j").as_double();
  }
  record.compile_s = json.at("compile_s").as_double();
  record.elapsed_s = json.at("elapsed_s").as_double();
  record.valid = json.at("valid").as_bool();
  if (json.contains("backend")) {
    record.backend = json.at("backend").as_string();
  }
  if (json.contains("nthreads")) {
    record.nthreads = json.at("nthreads").as_int();
  }
  return record;
}

void PerfDatabase::add(TrialRecord record) {
  records_.push_back(std::move(record));
}

const TrialRecord& PerfDatabase::record(std::size_t index) const {
  TVMBO_CHECK_LT(index, records_.size()) << "record index out of range";
  return records_[index];
}

std::optional<TrialRecord> PerfDatabase::best() const {
  std::optional<TrialRecord> best_record;
  double best_runtime = std::numeric_limits<double>::infinity();
  for (const auto& record : records_) {
    if (record.valid && record.runtime_s < best_runtime) {
      best_runtime = record.runtime_s;
      best_record = record;
    }
  }
  return best_record;
}

std::optional<TrialRecord> PerfDatabase::best_for(
    const std::string& strategy) const {
  std::optional<TrialRecord> best_record;
  double best_runtime = std::numeric_limits<double>::infinity();
  for (const auto& record : records_) {
    if (record.strategy == strategy && record.valid &&
        record.runtime_s < best_runtime) {
      best_runtime = record.runtime_s;
      best_record = record;
    }
  }
  return best_record;
}

std::vector<TrialRecord> PerfDatabase::by_strategy(
    const std::string& strategy) const {
  std::vector<TrialRecord> out;
  for (const auto& record : records_) {
    if (record.strategy == strategy) out.push_back(record);
  }
  return out;
}

std::vector<std::string> PerfDatabase::strategies() const {
  std::vector<std::string> out;
  for (const auto& record : records_) {
    bool seen = false;
    for (const auto& s : out) {
      if (s == record.strategy) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(record.strategy);
  }
  return out;
}

double PerfDatabase::total_time_for(const std::string& strategy) const {
  double last = 0.0;
  for (const auto& record : records_) {
    if (record.strategy == strategy) last = record.elapsed_s;
  }
  return last;
}

std::string PerfDatabase::to_json_lines() const {
  std::string out;
  for (const auto& record : records_) {
    out += record.to_json().dump();
    out.push_back('\n');
  }
  return out;
}

PerfDatabase PerfDatabase::from_json_lines(const std::string& text) {
  // Tolerant line-by-line load: a tuning run killed mid-write (or a
  // corrupted disk) leaves a truncated/garbled record; skipping it with a
  // warning keeps the remaining history usable (e.g. for --warm-start)
  // instead of failing the whole load.
  PerfDatabase db;
  std::size_t line_number = 0;
  std::size_t skipped = 0;
  std::size_t legacy = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ++line_number;
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    try {
      TrialRecord record = TrialRecord::from_json(Json::parse(line));
      if (record.schema < TrialRecord::kSchemaVersion) ++legacy;
      db.add(std::move(record));
    } catch (const std::exception& e) {
      ++skipped;
      TVMBO_LOG(Warning) << "perf db: skipping malformed record at line "
                         << line_number << ": " << e.what();
    }
  }
  if (skipped > 0) {
    TVMBO_LOG(Warning) << "perf db: skipped " << skipped
                       << " malformed record(s), kept " << db.size();
  }
  if (legacy > 0) {
    TVMBO_LOG(Warning) << "perf db: upgraded " << legacy
                       << " legacy record(s) to schema v"
                       << TrialRecord::kSchemaVersion
                       << " (backend/nthreads metadata defaulted)";
  }
  return db;
}

void PerfDatabase::save(const std::string& path) const {
  std::ofstream stream(path, std::ios::trunc);
  TVMBO_CHECK(stream.good()) << "cannot open '" << path << "' for writing";
  stream << to_json_lines();
  TVMBO_CHECK(stream.good()) << "write to '" << path << "' failed";
}

PerfDatabase PerfDatabase::load(const std::string& path) {
  std::ifstream stream(path);
  TVMBO_CHECK(stream.good()) << "cannot open '" << path << "' for reading";
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return from_json_lines(buffer.str());
}

PerfDbAppender::PerfDbAppender(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
  TVMBO_CHECK(fd_ >= 0) << "cannot open '" << path << "' for appending: "
                        << std::strerror(errno);
}

PerfDbAppender::~PerfDbAppender() {
  if (fd_ >= 0) ::close(fd_);
}

PerfDbAppender::PerfDbAppender(PerfDbAppender&& other) noexcept
    : path_(std::move(other.path_)), fd_(other.fd_) {
  other.fd_ = -1;
}

void PerfDbAppender::write_fully(const std::string& payload) {
  const char* data = payload.data();
  std::size_t remaining = payload.size();
  bool locked = false;
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      TVMBO_CHECK(false) << "append to '" << path_
                         << "' failed: " << std::strerror(errno);
    }
    remaining -= static_cast<std::size_t>(n);
    data += n;
    if (remaining > 0 && !locked) {
      // Short write: the record is torn mid-line. Finish it under the
      // exclusive lock so no concurrent appender splices into it.
      while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
      }
      locked = true;
    }
  }
  if (locked) ::flock(fd_, LOCK_UN);
}

void PerfDbAppender::append(const TrialRecord& record) {
  std::string line = record.to_json().dump();
  line.push_back('\n');
  write_fully(line);
}

void PerfDbAppender::append_all(std::span<const TrialRecord> records) {
  if (records.empty()) return;
  std::string payload;
  for (const TrialRecord& record : records) {
    payload += record.to_json().dump();
    payload.push_back('\n');
  }
  while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
  }
  write_fully(payload);
  ::flock(fd_, LOCK_UN);
}

}  // namespace tvmbo::runtime
