#include "runtime/buffer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace tvmbo::runtime {

std::size_t dtype_bytes(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return 4;
    case DType::kFloat64: return 8;
  }
  return 0;
}

std::string dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kFloat32: return "float32";
    case DType::kFloat64: return "float64";
  }
  return "?";
}

NDArray::NDArray(std::vector<std::int64_t> shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype) {
  TVMBO_CHECK(!shape_.empty()) << "NDArray requires at least one dimension";
  num_elements_ = 1;
  for (std::int64_t extent : shape_) {
    TVMBO_CHECK_GT(extent, 0) << "NDArray extents must be positive";
    num_elements_ *= extent;
  }
  strides_.assign(shape_.size(), 1);
  for (std::size_t i = shape_.size() - 1; i > 0; --i) {
    strides_[i - 1] = strides_[i] * shape_[i];
  }
  allocate();
}

namespace {
inline void* align64(std::byte* p) {
  auto addr = reinterpret_cast<std::uintptr_t>(p);
  return reinterpret_cast<void*>((addr + 63) & ~std::uintptr_t{63});
}
}  // namespace

void NDArray::allocate() {
  const std::size_t bytes =
      static_cast<std::size_t>(num_elements_) * dtype_bytes(dtype_);
  // Over-allocate to guarantee a 64-byte aligned base pointer.
  storage_ = std::make_unique<std::byte[]>(bytes + 64);
  std::memset(storage_.get(), 0, bytes + 64);
}

void* NDArray::data() { return align64(storage_.get()); }
const void* NDArray::data() const { return align64(storage_.get()); }

NDArray::NDArray(const NDArray& other)
    : shape_(other.shape_),
      strides_(other.strides_),
      dtype_(other.dtype_),
      num_elements_(other.num_elements_) {
  allocate();
  const std::size_t bytes =
      static_cast<std::size_t>(num_elements_) * dtype_bytes(dtype_);
  std::memcpy(align64(storage_.get()), align64(other.storage_.get()), bytes);
}

NDArray& NDArray::operator=(const NDArray& other) {
  if (this == &other) return *this;
  NDArray copy(other);
  *this = std::move(copy);
  return *this;
}

std::span<double> NDArray::f64() {
  TVMBO_CHECK(dtype_ == DType::kFloat64) << "dtype mismatch: expected f64";
  return {static_cast<double*>(align64(storage_.get())),
          static_cast<std::size_t>(num_elements_)};
}

std::span<const double> NDArray::f64() const {
  TVMBO_CHECK(dtype_ == DType::kFloat64) << "dtype mismatch: expected f64";
  return {static_cast<const double*>(align64(storage_.get())),
          static_cast<std::size_t>(num_elements_)};
}

std::span<float> NDArray::f32() {
  TVMBO_CHECK(dtype_ == DType::kFloat32) << "dtype mismatch: expected f32";
  return {static_cast<float*>(align64(storage_.get())),
          static_cast<std::size_t>(num_elements_)};
}

std::span<const float> NDArray::f32() const {
  TVMBO_CHECK(dtype_ == DType::kFloat32) << "dtype mismatch: expected f32";
  return {static_cast<const float*>(align64(storage_.get())),
          static_cast<std::size_t>(num_elements_)};
}

std::int64_t NDArray::flat_index(std::span<const std::int64_t> indices) const {
  TVMBO_CHECK_EQ(indices.size(), shape_.size())
      << "index rank mismatch on NDArray access";
  std::int64_t flat = 0;
  for (std::size_t d = 0; d < indices.size(); ++d) {
    TVMBO_CHECK(indices[d] >= 0 && indices[d] < shape_[d])
        << "index " << indices[d] << " out of bounds for extent "
        << shape_[d] << " (dim " << d << ")";
    flat += indices[d] * strides_[d];
  }
  return flat;
}

double NDArray::read(std::span<const std::int64_t> indices) const {
  const std::int64_t flat = flat_index(indices);
  if (dtype_ == DType::kFloat64) return f64()[static_cast<std::size_t>(flat)];
  return static_cast<double>(f32()[static_cast<std::size_t>(flat)]);
}

void NDArray::write(std::span<const std::int64_t> indices, double value) {
  const std::int64_t flat = flat_index(indices);
  if (dtype_ == DType::kFloat64) {
    f64()[static_cast<std::size_t>(flat)] = value;
  } else {
    f32()[static_cast<std::size_t>(flat)] = static_cast<float>(value);
  }
}

double NDArray::at2(std::int64_t i, std::int64_t j) const {
  const std::int64_t idx[2] = {i, j};
  return read(idx);
}

void NDArray::set2(std::int64_t i, std::int64_t j, double value) {
  const std::int64_t idx[2] = {i, j};
  write(idx, value);
}

void NDArray::fill(double value) {
  if (dtype_ == DType::kFloat64) {
    auto view = f64();
    std::fill(view.begin(), view.end(), value);
  } else {
    auto view = f32();
    std::fill(view.begin(), view.end(), static_cast<float>(value));
  }
}

double NDArray::max_abs_diff(const NDArray& other) const {
  TVMBO_CHECK(shape_ == other.shape_) << "shape mismatch in max_abs_diff";
  double worst = 0.0;
  for (std::int64_t flat = 0; flat < num_elements_; ++flat) {
    double a, b;
    if (dtype_ == DType::kFloat64) {
      a = f64()[static_cast<std::size_t>(flat)];
    } else {
      a = static_cast<double>(f32()[static_cast<std::size_t>(flat)]);
    }
    if (other.dtype_ == DType::kFloat64) {
      b = other.f64()[static_cast<std::size_t>(flat)];
    } else {
      b = static_cast<double>(other.f32()[static_cast<std::size_t>(flat)]);
    }
    worst = std::max(worst, std::fabs(a - b));
  }
  return worst;
}

bool NDArray::allclose(const NDArray& other, double tolerance) const {
  if (shape_ != other.shape_) return false;
  return max_abs_diff(other) <= tolerance;
}

}  // namespace tvmbo::runtime
