// SwingSimDevice: analytic performance model of one A100 GPU of Argonne's
// Swing cluster, standing in for the hardware the paper measured on.
//
// Why simulate: the paper's evaluation compares *search strategies* on a
// fixed configuration -> runtime surface. What the comparison needs from
// the hardware is (a) a rugged, non-convex surface whose structure comes
// from real architectural effects (block occupancy, coalescing, cache
// footprint, padding waste from non-dividing trailing sizes, kernel-launch
// overhead across LU/Cholesky's sequential steps), (b) measurement noise,
// and (c) realistic magnitudes so that process-time accounting (compile +
// repeats x runtime) reproduces the paper's ordering. The model below
// provides all three, deterministically, so every figure regenerates
// bit-for-bit in seconds.
//
// The per-(kernel, dataset) calibration scales were fit once so that the
// surface minimum over the paper's exact parameter space matches the best
// runtime the paper reports (e.g. LU-large 1.659 s, LU-extralarge 13.77 s,
// Cholesky-extralarge 13.99 s, 3mm-extralarge ~31 s). Shapes — who wins,
// crossovers — are produced by the model, not hand-placed.
//
// Supported workload kernels and their tile-parameter layout:
//   "lu", "cholesky": tiles = {ty, tx}; dims = {N}
//   "gemm":           tiles = {ty, tx}; dims = {M, N, K}
//   "2mm":            tiles = {y0, x0, y1, x1}; dims = {NI, NJ, NK, NL}
//   "3mm":            tiles = {y0, x0, y1, x1, y2, x2};
//                     dims = {N, L, M, O, P}
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/rng.h"
#include "runtime/measure.h"

namespace tvmbo::runtime {

/// Architectural constants of the modeled device. Defaults approximate an
/// A100-40GB driven by unoptimized generated code (the paper's TE kernels
/// reach a few GFLOP/s, far from peak — consistent with its reported
/// seconds-scale runtimes).
struct SwingSimParams {
  double peak_gflops = 190.0;       ///< attainable FP32 rate, ideal config
  double mem_bandwidth_gbs = 95.0;  ///< attainable DRAM bandwidth
  double cache_bytes = 4.0 * 1024 * 1024;  ///< modeled reuse window (L2 slice)
  double launch_overhead_us = 8.0;  ///< per kernel launch
  int warp_size = 32;
  int max_threads_per_block = 1024;
  double element_bytes = 4.0;       ///< float32, as TVM GPU kernels default
  double noise_sigma = 0.045;       ///< lognormal surface noise (per config)
  double jitter_sigma = 0.01;       ///< per-measurement jitter
  double pathological_fraction = 0.03;  ///< configs that behave erratically
  /// Compresses each stage's time toward its roofline-ideal bound:
  /// t = t_ideal * (t_raw / t_ideal)^plateau_exponent. Models the broad
  /// near-optimal plateau the paper's searches exhibit (its 3mm-XL best
  /// configurations differ wildly yet land within 0.4% in runtime): on
  /// latency/bandwidth-bound generated kernels, many tilings saturate the
  /// same bound. 1.0 disables the compression.
  double plateau_exponent = 0.5;
  std::uint64_t surface_seed = 0x5717F6A100ull;  ///< seeds the noise field
};

class SwingSimDevice final : public Device {
 public:
  explicit SwingSimDevice(std::uint64_t seed = 2023);
  SwingSimDevice(const SwingSimParams& params, std::uint64_t seed);

  std::string name() const override { return "swing-sim(a100)"; }

  /// Simulated measurement: never touches input.prepare / input.run.
  MeasureResult measure(const MeasureInput& input,
                        const MeasureOption& option) override;

  /// The deterministic config -> runtime surface (base model + per-config
  /// noise, no per-measurement jitter). Exposed for exhaustive-analysis
  /// tests and the ablation benches.
  double surface_runtime(const Workload& workload,
                         std::span<const std::int64_t> tiles) const;

  /// Base analytic model only (no noise); useful for unit-testing the
  /// architectural effects in isolation.
  double model_runtime(const Workload& workload,
                       std::span<const std::int64_t> tiles) const;

  /// Simulated compile (TVM build) time for a configuration.
  double compile_time(const Workload& workload,
                      std::span<const std::int64_t> tiles) const;

  /// Average board power (watts) while running this configuration.
  /// Modeled as idle power plus a dynamic component that grows with how
  /// well the configuration utilizes the device: fast configurations burn
  /// more watts but usually less energy (they finish much sooner) — the
  /// standard race-to-idle tension ytopt's energy-tuning work targets.
  double power_watts(const Workload& workload,
                     std::span<const std::int64_t> tiles) const;

  /// Energy (joules) of one kernel execution: power * surface runtime.
  double surface_energy(const Workload& workload,
                        std::span<const std::int64_t> tiles) const;

  const SwingSimParams& params() const { return params_; }

 private:
  double stage_time(std::int64_t rows, std::int64_t cols,
                    std::int64_t depth, std::int64_t ty, std::int64_t tx,
                    double flops_per_element) const;
  double lu_time(std::int64_t n, std::int64_t ty, std::int64_t tx) const;
  double cholesky_time(std::int64_t n, std::int64_t ty,
                       std::int64_t tx) const;
  double matmul_chain_time(const Workload& workload,
                           std::span<const std::int64_t> tiles) const;
  double calibration_scale(const Workload& workload) const;
  std::uint64_t config_hash(const Workload& workload,
                            std::span<const std::int64_t> tiles) const;

  SwingSimParams params_;
  mutable Rng jitter_rng_;
};

}  // namespace tvmbo::runtime
