#include "runtime/exec_backend.h"

namespace tvmbo::runtime {

const char* exec_backend_name(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kNative: return "native";
    case ExecBackend::kInterp: return "interp";
    case ExecBackend::kClosure: return "closure";
    case ExecBackend::kJit: return "jit";
  }
  return "?";
}

std::optional<ExecBackend> exec_backend_from_name(const std::string& name) {
  if (name == "native") return ExecBackend::kNative;
  if (name == "interp") return ExecBackend::kInterp;
  if (name == "closure") return ExecBackend::kClosure;
  if (name == "jit") return ExecBackend::kJit;
  return std::nullopt;
}

}  // namespace tvmbo::runtime
