#include "runtime/cpu_device.h"

#include "common/logging.h"
#include "common/timer.h"

namespace tvmbo::runtime {

MeasureResult CpuDevice::measure(const MeasureInput& input,
                                 const MeasureOption& option) {
  TVMBO_CHECK(static_cast<bool>(input.run))
      << "CpuDevice requires a runnable kernel";
  TVMBO_CHECK_GT(option.repeat, 0) << "repeat must be positive";

  MeasureResult result;
  try {
    if (input.prepare) {
      Stopwatch compile_timer;
      input.prepare();
      result.compile_s = compile_timer.elapsed_seconds();
    }
    for (int i = 0; i < option.warmup; ++i) input.run();
    double total = 0.0;
    for (int i = 0; i < option.repeat; ++i) {
      Stopwatch run_timer;
      input.run();
      const double elapsed = run_timer.elapsed_seconds();
      if (option.timeout_s > 0.0 && elapsed > option.timeout_s) {
        result.valid = false;
        result.error = "timeout";
        result.runtime_s = elapsed;
        return result;
      }
      total += elapsed;
    }
    result.runtime_s = total / static_cast<double>(option.repeat);
  } catch (const std::exception& e) {
    result.valid = false;
    result.error = e.what();
  }
  return result;
}

}  // namespace tvmbo::runtime
