#include "runtime/cpu_device.h"

#include "common/logging.h"
#include "common/timer.h"

namespace tvmbo::runtime {

MeasureResult CpuDevice::measure(const MeasureInput& input,
                                 const MeasureOption& option) {
  TVMBO_CHECK(static_cast<bool>(input.run))
      << "CpuDevice requires a runnable kernel";
  TVMBO_CHECK_GT(option.repeat, 0) << "repeat must be positive";

  MeasureResult result;
  try {
    if (input.prepare) {
      Stopwatch compile_timer;
      input.prepare();
      result.compile_s = compile_timer.elapsed_seconds();
    }
    // Warmup runs honor the timeout too: a pathological configuration
    // must not stall the tuning loop before the first timed run.
    for (int i = 0; i < option.warmup; ++i) {
      Stopwatch warmup_timer;
      input.run();
      const double elapsed = warmup_timer.elapsed_seconds();
      if (option.timeout_s > 0.0 && elapsed > option.timeout_s) {
        result.valid = false;
        result.error = "timeout (warmup run " + std::to_string(i + 1) + ")";
        result.runtime_s = elapsed;
        return result;
      }
    }
    double total = 0.0;
    int completed = 0;
    for (int i = 0; i < option.repeat; ++i) {
      Stopwatch run_timer;
      input.run();
      const double elapsed = run_timer.elapsed_seconds();
      if (option.timeout_s > 0.0 && elapsed > option.timeout_s) {
        result.valid = false;
        result.error = "timeout (run " + std::to_string(i + 1) + " of " +
                       std::to_string(option.repeat) + ")";
        // Completed repeats are still the best runtime estimate; only the
        // first timed run falls back to the offending elapsed time.
        result.runtime_s =
            completed > 0 ? total / static_cast<double>(completed) : elapsed;
        return result;
      }
      total += elapsed;
      ++completed;
    }
    result.runtime_s = total / static_cast<double>(option.repeat);
  } catch (const std::exception& e) {
    result.valid = false;
    result.error = e.what();
  }
  return result;
}

}  // namespace tvmbo::runtime
