// Host-CPU measurement device: actually prepares and times the configured
// kernel. Used by the examples and the real-execution tests; the paper's
// figure benches use SwingSimDevice instead (no GPU available here).
#pragma once

#include "runtime/measure.h"

namespace tvmbo::runtime {

class CpuDevice final : public Device {
 public:
  std::string name() const override { return "cpu"; }

  /// Times input.prepare() as the compile phase, then runs input.run()
  /// `option.warmup` untimed + `option.repeat` timed iterations and reports
  /// the mean. If a timed run exceeds option.timeout_s (when > 0) the
  /// result is marked invalid with a "timeout" error, mirroring AutoTVM's
  /// measure-timeout handling.
  MeasureResult measure(const MeasureInput& input,
                        const MeasureOption& option) override;
};

}  // namespace tvmbo::runtime
