// Host-CPU measurement device: actually prepares and times the configured
// kernel. Used by the examples and the real-execution tests; the paper's
// figure benches use SwingSimDevice instead (no GPU available here).
#pragma once

#include "runtime/measure.h"

namespace tvmbo::runtime {

class CpuDevice final : public Device {
 public:
  std::string name() const override { return "cpu"; }

  /// Times input.prepare() as the compile phase, then runs input.run()
  /// `option.warmup` untimed + `option.repeat` timed iterations and reports
  /// the mean. If any run — warmup included — exceeds option.timeout_s
  /// (when > 0) the result is marked invalid with a "timeout ..." error,
  /// mirroring AutoTVM's measure-timeout handling; the runtime reported on
  /// a timeout is the mean of the repeats completed before it (falling
  /// back to the offending run's elapsed time when none completed).
  MeasureResult measure(const MeasureInput& input,
                        const MeasureOption& option) override;

  /// Stateless between calls: measurements may run concurrently (each
  /// MeasureInput owns its buffers). Concurrent timing shares cores, so
  /// per-run noise rises, but batch wall-clock drops on multi-core hosts.
  std::size_t max_concurrent_measurements() const override { return 0; }
};

}  // namespace tvmbo::runtime
