// Structured JSON-lines trace of the measurement engine.
//
// Every MeasureRunner event — proposed / compile / run / retry / result —
// is one JSON object per line, stamped with seconds-since-trace-start and
// the strategy that proposed the trial, so a tuning run can be replayed or
// audited offline (which trial failed, how often it was retried, how the
// batch interleaved). The format mirrors TVM's measure-callback logs and
// CATBench's per-trial provenance records.
//
// The logger is thread-safe: parallel batch members append whole lines
// under a mutex, so concurrent trials never interleave within a line.
#pragma once

#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "common/json.h"
#include "common/timer.h"

namespace tvmbo::runtime {

class TraceLog {
 public:
  /// Appends to `path` (created if absent); throws CheckError when the
  /// file cannot be opened.
  explicit TraceLog(const std::string& path);
  /// Writes to a caller-owned stream (kept alive by the caller).
  explicit TraceLog(std::ostream* out);

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Serializes `event` (an object) on one line, prefixing a "ts" member
  /// with seconds since the logger was constructed.
  void record(Json event);

  std::size_t num_events() const;

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  Stopwatch clock_;
  mutable std::mutex mutex_;
  std::size_t num_events_ = 0;
};

}  // namespace tvmbo::runtime
