// Execution-backend selection for real (CpuDevice) measurement — which of
// the execution tiers runs a configured kernel:
//
//   kNative  — hand-specialized tiled C++ kernels (kernels/native.h);
//              fastest, but only for the fixed kernel menu.
//   kInterp  — the tree-walking loop-IR interpreter (te/interp.h);
//              the semantics oracle, orders of magnitude slower.
//   kClosure — the ahead-of-time closure compiler (te/compile.h);
//              a few times faster than the interpreter.
//   kJit     — C-source codegen + system compiler + dlopen
//              (codegen/jit_program.h); hardware speed for any TE kernel,
//              with a persistent artifact cache amortizing compiles.
//
// The backend is fixed per task (kernels::make_task) and the compile phase
// of each tier is charged to MeasureResult::compile_s through the
// MeasureInput::prepare hook, so process-time figures price compilation
// consistently across backends.
#pragma once

#include <optional>
#include <string>

namespace tvmbo::runtime {

enum class ExecBackend { kNative, kInterp, kClosure, kJit };

/// "native" | "interp" | "closure" | "jit".
const char* exec_backend_name(ExecBackend backend);

/// Inverse of exec_backend_name; nullopt for unknown names.
std::optional<ExecBackend> exec_backend_from_name(const std::string& name);

}  // namespace tvmbo::runtime
