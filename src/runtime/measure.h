// Measurement abstraction shared by every search strategy.
//
// A search strategy never runs kernels directly; it asks a Device to
// measure a (workload, tile-configuration) pair, mirroring the paper's
// Step3-Step5 loop (compile -> execute -> report runtime). Two devices are
// provided:
//
//  * CpuDevice      — actually builds and times the configured native
//                     kernel on the host (cpu_device.h).
//  * SwingSimDevice — analytic model of the Swing A100 node used in the
//                     paper, so the full evaluation regenerates quickly and
//                     deterministically without the cluster (swing_sim.h).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tvmbo::runtime {

/// Static description of a kernel instance being tuned.
struct Workload {
  std::string kernel;           ///< "lu", "cholesky", "3mm", "gemm", ...
  std::string size_name;        ///< PolyBench dataset name: "large", ...
  std::vector<std::int64_t> dims;  ///< problem extents (kernel-specific)
  double flops = 0.0;           ///< nominal floating-point work

  /// Stable identity string, e.g. "lu/large[2000]".
  std::string id() const;
};

/// How to measure: AutoTVM-style repeats vs ytopt's single evaluation.
struct MeasureOption {
  int repeat = 3;          ///< timed runs per evaluation (best-of is not
                           ///< used; the mean is reported, as in AutoTVM)
  int warmup = 0;          ///< untimed warmup runs (CpuDevice only)
  double timeout_s = 0.0;  ///< 0 disables the timeout check
};

/// One configured kernel instance handed to a device.
struct MeasureInput {
  Workload workload;
  std::vector<std::int64_t> tiles;  ///< tile factors, in parameter order

  /// Prepares an executable for this configuration (CpuDevice only; the
  /// simulated device never invokes it). May be empty when there is no
  /// separate compile step.
  std::function<void()> prepare;
  /// Runs the configured kernel once (CpuDevice only).
  std::function<void()> run;
  /// Static pre-screen for this configuration (analysis/config_screen.h):
  /// returns an empty string when the config is statically legal, or a
  /// "rule-id: message" violation. Optional; when set, MeasureRunner
  /// (with prescreen enabled) rejects the trial without dispatching it,
  /// and distd workers re-verify frames before compiling them.
  std::function<std::string()> static_check;
};

/// Outcome of one evaluation.
struct MeasureResult {
  double runtime_s = 0.0;  ///< mean kernel runtime (the paper's y-axis)
  double compile_s = 0.0;  ///< build/prepare time
  double energy_j = 0.0;   ///< energy per execution (0 when the device has
                           ///< no power meter, e.g. CpuDevice)
  bool valid = true;
  std::string error;

  /// Wall-clock charged to the autotuning process for this evaluation:
  /// compile once + every execution the device performed — `warmup`
  /// untimed runs cost the same wall-clock as the `repeat` timed ones, so
  /// they are charged too (omitting them undercharged any strategy
  /// measuring with warmup > 0).
  double evaluation_cost_s(const MeasureOption& option) const {
    return compile_s +
           runtime_s * static_cast<double>(option.warmup + option.repeat);
  }
};

class Device {
 public:
  virtual ~Device() = default;
  virtual std::string name() const = 0;
  virtual MeasureResult measure(const MeasureInput& input,
                                const MeasureOption& option) = 0;

  /// How many measure() calls may safely run concurrently. The default 1
  /// declares the device stateful/order-sensitive (e.g. SwingSimDevice's
  /// sequential jitter RNG): MeasureRunner then drives it strictly in
  /// submission order, keeping results independent of the execution mode.
  /// 0 means unlimited (thread-safe, order-independent).
  virtual std::size_t max_concurrent_measurements() const { return 1; }
};

}  // namespace tvmbo::runtime
