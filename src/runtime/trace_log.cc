#include "runtime/trace_log.h"

#include "common/logging.h"

namespace tvmbo::runtime {

TraceLog::TraceLog(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::app)),
      out_(owned_.get()) {
  TVMBO_CHECK(owned_->good()) << "cannot open trace log " << path;
}

TraceLog::TraceLog(std::ostream* out) : out_(out) {
  TVMBO_CHECK(out_ != nullptr) << "trace log requires a stream";
}

void TraceLog::record(Json event) {
  TVMBO_CHECK(event.is_object()) << "trace events must be JSON objects";
  // The timestamp is read under the same lock that orders the writes:
  // reading it first and locking later let a later-stamped recorder win
  // the lock, producing JSONL lines with non-monotonic "ts" under
  // parallel runners.
  std::lock_guard<std::mutex> lock(mutex_);
  // Build {"ts": ..., ...event} so the timestamp leads every line.
  Json line = Json::object();
  line.set("ts", clock_.elapsed_seconds());
  for (const auto& [key, value] : event.as_object()) {
    line.set(key, value);
  }
  (*out_) << line.dump() << '\n';
  out_->flush();  // per-line: the trace must survive a crashed trial
  ++num_events_;
}

std::size_t TraceLog::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_events_;
}

}  // namespace tvmbo::runtime
