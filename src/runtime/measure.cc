#include "runtime/measure.h"

#include <sstream>

namespace tvmbo::runtime {

std::string Workload::id() const {
  std::ostringstream out;
  out << kernel << "/" << size_name << "[";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out << "x";
    out << dims[i];
  }
  out << "]";
  return out.str();
}

}  // namespace tvmbo::runtime
