// Parameter-space definition, mirroring the Python ConfigSpace package the
// paper uses (§4): ordinal hyperparameters over tile-factor sequences,
// categoricals, uniform integers/floats, plus simple equals-conditions.
//
// A Configuration is a compact vector of per-parameter choices. Discrete
// parameters store an index into their domain; continuous parameters store
// the real value directly. The full space supports:
//   * exact cardinality (the paper's Table 1 column),
//   * mixed-radix flat-index <-> configuration conversion (GridSearch),
//   * uniform sampling,
//   * neighbourhood moves (GA mutation, BO candidate refinement).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace tvmbo::cs {

class ConfigurationSpace;

/// One point of a ConfigurationSpace. `index(i)` for discrete parameters,
/// `real(i)` for continuous ones; inactive conditional parameters keep
/// index 0 / the domain lower bound.
class Configuration {
 public:
  Configuration() = default;
  Configuration(std::vector<std::int64_t> indices,
                std::vector<double> reals)
      : indices_(std::move(indices)), reals_(std::move(reals)) {}

  std::size_t size() const { return indices_.size(); }
  std::int64_t index(std::size_t param) const;
  void set_index(std::size_t param, std::int64_t index);
  double real(std::size_t param) const;
  void set_real(std::size_t param, double value);

  bool operator==(const Configuration& other) const {
    return indices_ == other.indices_ && reals_ == other.reals_;
  }

  /// Stable hash for dedup sets.
  std::uint64_t hash() const;

 private:
  std::vector<std::int64_t> indices_;
  std::vector<double> reals_;
};

enum class ParamKind { kOrdinal, kCategorical, kInteger, kFloat };

class Hyperparameter {
 public:
  Hyperparameter(ParamKind kind, std::string name)
      : kind_(kind), name_(std::move(name)) {}
  virtual ~Hyperparameter() = default;

  ParamKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  /// Number of distinct choices; 0 means continuous.
  virtual std::uint64_t cardinality() const = 0;
  /// Numeric value of the i-th choice (discrete only).
  virtual double value_at(std::uint64_t index) const = 0;
  /// Display string of the i-th choice.
  virtual std::string str_at(std::uint64_t index) const;

 private:
  ParamKind kind_;
  std::string name_;
};

/// CSH.OrdinalHyperparameter: an explicitly ordered numeric sequence (the
/// paper's tile-factor lists).
class OrdinalHyperparameter final : public Hyperparameter {
 public:
  OrdinalHyperparameter(std::string name, std::vector<double> sequence);
  std::uint64_t cardinality() const override { return sequence_.size(); }
  double value_at(std::uint64_t index) const override;
  const std::vector<double>& sequence() const { return sequence_; }
  /// Index of a value; nullopt when absent.
  std::optional<std::uint64_t> index_of(double value) const;

 private:
  std::vector<double> sequence_;
};

/// CSH.CategoricalHyperparameter: unordered string choices. value_at
/// returns the choice index itself (categoricals have no magnitude).
class CategoricalHyperparameter final : public Hyperparameter {
 public:
  CategoricalHyperparameter(std::string name,
                            std::vector<std::string> choices);
  std::uint64_t cardinality() const override { return choices_.size(); }
  double value_at(std::uint64_t index) const override;
  std::string str_at(std::uint64_t index) const override;
  const std::vector<std::string>& choices() const { return choices_; }

 private:
  std::vector<std::string> choices_;
};

/// CSH.UniformIntegerHyperparameter over [lower, upper].
class UniformIntegerHyperparameter final : public Hyperparameter {
 public:
  UniformIntegerHyperparameter(std::string name, std::int64_t lower,
                               std::int64_t upper);
  std::uint64_t cardinality() const override {
    return static_cast<std::uint64_t>(upper_ - lower_ + 1);
  }
  double value_at(std::uint64_t index) const override;
  std::int64_t lower() const { return lower_; }
  std::int64_t upper() const { return upper_; }

 private:
  std::int64_t lower_;
  std::int64_t upper_;
};

/// CSH.UniformFloatHyperparameter over [lower, upper] (continuous).
class UniformFloatHyperparameter final : public Hyperparameter {
 public:
  UniformFloatHyperparameter(std::string name, double lower, double upper);
  std::uint64_t cardinality() const override { return 0; }
  double value_at(std::uint64_t index) const override;
  double lower() const { return lower_; }
  double upper() const { return upper_; }

 private:
  double lower_;
  double upper_;
};

/// child is active iff parent's chosen index equals `parent_index`.
struct EqualsCondition {
  std::size_t child;
  std::size_t parent;
  std::int64_t parent_index;
};

class ConfigurationSpace {
 public:
  /// Adds a hyperparameter; returns its position.
  std::size_t add(std::shared_ptr<Hyperparameter> param);

  /// Declares `child` conditional on `parent == parent_index`. The parent
  /// must have been added before the child.
  void add_condition(const std::string& child, const std::string& parent,
                     std::int64_t parent_index);

  std::size_t num_params() const { return params_.size(); }
  const Hyperparameter& param(std::size_t index) const;
  const Hyperparameter& param(const std::string& name) const;
  std::size_t param_index(const std::string& name) const;

  /// Product of discrete cardinalities (continuous parameters are excluded,
  /// matching how the paper counts its spaces). Checked against overflow.
  std::uint64_t cardinality() const;

  /// True when all parameters are discrete.
  bool fully_discrete() const;

  /// Whether a parameter is active under the conditions.
  bool is_active(std::size_t param, const Configuration& config) const;

  /// Uniform sample (parents drawn before conditional children).
  Configuration sample(Rng& rng) const;

  /// Default configuration: index 0 / lower bound everywhere.
  Configuration default_configuration() const;

  /// Mixed-radix conversions for grid enumeration. The space must be fully
  /// discrete. The first parameter is the most significant digit.
  Configuration from_flat_index(std::uint64_t flat) const;
  std::uint64_t to_flat_index(const Configuration& config) const;

  /// A random neighbour: one active parameter changed — ordinals/integers
  /// move +-1 step (locality), categoricals resample, floats take a
  /// Gaussian step of 10% range.
  Configuration neighbor(const Configuration& config, Rng& rng) const;

  /// Numeric values of all parameters (value_at for discrete, the real for
  /// continuous). For tile spaces this is the tile-size vector.
  std::vector<double> values(const Configuration& config) const;

  /// Integer tile vector (values rounded); the common case in this repo.
  std::vector<std::int64_t> values_int(const Configuration& config) const;

  /// Inverse of values(): reconstructs a configuration from per-parameter
  /// numeric values (used to warm-start searches from saved performance
  /// databases). Throws CheckError when a value is not in a parameter's
  /// domain.
  Configuration from_values(const std::vector<double>& values) const;

  /// Human-readable "P0=400, P1=50" string.
  std::string to_string(const Configuration& config) const;

  const std::vector<EqualsCondition>& conditions() const {
    return conditions_;
  }

 private:
  std::vector<std::shared_ptr<Hyperparameter>> params_;
  std::vector<EqualsCondition> conditions_;
};

}  // namespace tvmbo::cs
