// Divisor-set utilities. The paper's tile-factor sequences are exactly the
// sorted divisor sets of the matrix extents ("we use the common factors of
// each matrix rank to define a set of candidate values for each tunable
// parameter"), which is what makes Table 1's space sizes reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "configspace/configspace.h"

namespace tvmbo::cs {

/// All positive divisors of n, ascending. n must be positive.
std::vector<std::int64_t> divisors(std::int64_t n);

/// Number of positive divisors of n.
std::uint64_t divisor_count(std::int64_t n);

/// An OrdinalHyperparameter whose sequence is divisors(n) — one paper-style
/// tile-factor parameter.
std::shared_ptr<OrdinalHyperparameter> tile_factor_param(
    const std::string& name, std::int64_t extent);

}  // namespace tvmbo::cs
