// Divisor-set utilities. The paper's tile-factor sequences are exactly the
// sorted divisor sets of the matrix extents ("we use the common factors of
// each matrix rank to define a set of candidate values for each tunable
// parameter"), which is what makes Table 1's space sizes reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "configspace/configspace.h"

namespace tvmbo::cs {

/// All positive divisors of n, ascending. n must be positive.
std::vector<std::int64_t> divisors(std::int64_t n);

/// Number of positive divisors of n.
std::uint64_t divisor_count(std::int64_t n);

/// An OrdinalHyperparameter whose sequence is divisors(n) — one paper-style
/// tile-factor parameter.
std::shared_ptr<OrdinalHyperparameter> tile_factor_param(
    const std::string& name, std::int64_t extent);

/// Candidate thread counts for a parallel-loop knob: 1 and every power of
/// two up to max_threads, plus max_threads itself (CATBench-style
/// first-class thread-count parameters). max_threads of 0 resolves to
/// hardware_concurrency (min 1). Ascending, deduplicated.
std::vector<std::int64_t> thread_counts(std::int64_t max_threads);

/// An OrdinalHyperparameter over thread_counts(max_threads).
std::shared_ptr<OrdinalHyperparameter> thread_count_param(
    const std::string& name, std::int64_t max_threads);

/// An OrdinalHyperparameter over {0, 1, ..., num_axes}: which schedule
/// axis to annotate kParallel, 0 meaning fully serial.
std::shared_ptr<OrdinalHyperparameter> parallel_axis_param(
    const std::string& name, std::int64_t num_axes);

/// Candidate structural unroll factors: {0, 2, 4, 8} (0 = no unroll; the
/// schedule splits a data axis by the factor and marks the new inner
/// loop kUnrolled, so the factor reshapes the loop IR on every tier).
std::vector<std::int64_t> unroll_factors();

/// An OrdinalHyperparameter over {0 = none, 1 = innermost,
/// 2 = second-innermost}: which inner data axis to annotate kVectorized.
/// Disabled knobs collapse to the singleton {0} so the tile-vector shape
/// stays uniform across a partially widened space.
std::shared_ptr<OrdinalHyperparameter> vectorize_axis_param(
    const std::string& name, bool enabled);

/// An OrdinalHyperparameter over unroll_factors() ({0} when disabled).
std::shared_ptr<OrdinalHyperparameter> unroll_factor_param(
    const std::string& name, bool enabled);

/// An OrdinalHyperparameter over {0, 1}: array packing off/on ({0} when
/// disabled).
std::shared_ptr<OrdinalHyperparameter> pack_flag_param(
    const std::string& name, bool enabled);

}  // namespace tvmbo::cs
