#include "configspace/divisors.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace tvmbo::cs {

std::vector<std::int64_t> divisors(std::int64_t n) {
  TVMBO_CHECK_GT(n, 0) << "divisors of non-positive value";
  std::vector<std::int64_t> low;
  std::vector<std::int64_t> high;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d != 0) continue;
    low.push_back(d);
    if (d != n / d) high.push_back(n / d);
  }
  low.insert(low.end(), high.rbegin(), high.rend());
  return low;
}

std::uint64_t divisor_count(std::int64_t n) {
  return divisors(n).size();
}

std::shared_ptr<OrdinalHyperparameter> tile_factor_param(
    const std::string& name, std::int64_t extent) {
  std::vector<double> sequence;
  for (std::int64_t d : divisors(extent)) {
    sequence.push_back(static_cast<double>(d));
  }
  return std::make_shared<OrdinalHyperparameter>(name, std::move(sequence));
}

std::vector<std::int64_t> thread_counts(std::int64_t max_threads) {
  TVMBO_CHECK_GE(max_threads, 0) << "negative thread budget";
  if (max_threads == 0) {
    max_threads = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  }
  std::vector<std::int64_t> counts;
  for (std::int64_t t = 1; t <= max_threads; t *= 2) counts.push_back(t);
  if (counts.back() != max_threads) counts.push_back(max_threads);
  return counts;
}

std::shared_ptr<OrdinalHyperparameter> thread_count_param(
    const std::string& name, std::int64_t max_threads) {
  std::vector<double> sequence;
  for (std::int64_t t : thread_counts(max_threads)) {
    sequence.push_back(static_cast<double>(t));
  }
  return std::make_shared<OrdinalHyperparameter>(name, std::move(sequence));
}

std::shared_ptr<OrdinalHyperparameter> parallel_axis_param(
    const std::string& name, std::int64_t num_axes) {
  TVMBO_CHECK_GT(num_axes, 0) << "parallel-axis knob needs >= 1 axis";
  std::vector<double> sequence;
  for (std::int64_t a = 0; a <= num_axes; ++a) {
    sequence.push_back(static_cast<double>(a));
  }
  return std::make_shared<OrdinalHyperparameter>(name, std::move(sequence));
}

std::vector<std::int64_t> unroll_factors() { return {0, 2, 4, 8}; }

std::shared_ptr<OrdinalHyperparameter> vectorize_axis_param(
    const std::string& name, bool enabled) {
  std::vector<double> sequence = enabled ? std::vector<double>{0.0, 1.0, 2.0}
                                         : std::vector<double>{0.0};
  return std::make_shared<OrdinalHyperparameter>(name, std::move(sequence));
}

std::shared_ptr<OrdinalHyperparameter> unroll_factor_param(
    const std::string& name, bool enabled) {
  std::vector<double> sequence{0.0};
  if (enabled) {
    sequence.clear();
    for (std::int64_t f : unroll_factors()) {
      sequence.push_back(static_cast<double>(f));
    }
  }
  return std::make_shared<OrdinalHyperparameter>(name, std::move(sequence));
}

std::shared_ptr<OrdinalHyperparameter> pack_flag_param(
    const std::string& name, bool enabled) {
  std::vector<double> sequence = enabled ? std::vector<double>{0.0, 1.0}
                                         : std::vector<double>{0.0};
  return std::make_shared<OrdinalHyperparameter>(name, std::move(sequence));
}

}  // namespace tvmbo::cs
