#include "configspace/divisors.h"

#include <algorithm>

#include "common/logging.h"

namespace tvmbo::cs {

std::vector<std::int64_t> divisors(std::int64_t n) {
  TVMBO_CHECK_GT(n, 0) << "divisors of non-positive value";
  std::vector<std::int64_t> low;
  std::vector<std::int64_t> high;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d != 0) continue;
    low.push_back(d);
    if (d != n / d) high.push_back(n / d);
  }
  low.insert(low.end(), high.rbegin(), high.rend());
  return low;
}

std::uint64_t divisor_count(std::int64_t n) {
  return divisors(n).size();
}

std::shared_ptr<OrdinalHyperparameter> tile_factor_param(
    const std::string& name, std::int64_t extent) {
  std::vector<double> sequence;
  for (std::int64_t d : divisors(extent)) {
    sequence.push_back(static_cast<double>(d));
  }
  return std::make_shared<OrdinalHyperparameter>(name, std::move(sequence));
}

}  // namespace tvmbo::cs
