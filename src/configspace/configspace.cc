#include "configspace/configspace.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace tvmbo::cs {

std::int64_t Configuration::index(std::size_t param) const {
  TVMBO_CHECK_LT(param, indices_.size()) << "parameter out of range";
  return indices_[param];
}

void Configuration::set_index(std::size_t param, std::int64_t index) {
  TVMBO_CHECK_LT(param, indices_.size()) << "parameter out of range";
  indices_[param] = index;
}

double Configuration::real(std::size_t param) const {
  TVMBO_CHECK_LT(param, reals_.size()) << "parameter out of range";
  return reals_[param];
}

void Configuration::set_real(std::size_t param, double value) {
  TVMBO_CHECK_LT(param, reals_.size()) << "parameter out of range";
  reals_[param] = value;
}

std::uint64_t Configuration::hash() const {
  std::uint64_t h = 0x243F6A8885A308D3ull;
  for (std::int64_t i : indices_) {
    h = hash_combine(h, static_cast<std::uint64_t>(i));
  }
  for (double r : reals_) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(r));
    std::memcpy(&bits, &r, sizeof(bits));
    h = hash_combine(h, bits);
  }
  return h;
}

std::string Hyperparameter::str_at(std::uint64_t index) const {
  const double v = value_at(index);
  if (v == std::floor(v)) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  return format_double(v, 6);
}

OrdinalHyperparameter::OrdinalHyperparameter(std::string name,
                                             std::vector<double> sequence)
    : Hyperparameter(ParamKind::kOrdinal, std::move(name)),
      sequence_(std::move(sequence)) {
  TVMBO_CHECK(!sequence_.empty())
      << "ordinal '" << this->name() << "' requires a non-empty sequence";
}

double OrdinalHyperparameter::value_at(std::uint64_t index) const {
  TVMBO_CHECK_LT(index, sequence_.size())
      << "ordinal index out of range for '" << name() << "'";
  return sequence_[index];
}

std::optional<std::uint64_t> OrdinalHyperparameter::index_of(
    double value) const {
  for (std::uint64_t i = 0; i < sequence_.size(); ++i) {
    if (sequence_[i] == value) return i;
  }
  return std::nullopt;
}

CategoricalHyperparameter::CategoricalHyperparameter(
    std::string name, std::vector<std::string> choices)
    : Hyperparameter(ParamKind::kCategorical, std::move(name)),
      choices_(std::move(choices)) {
  TVMBO_CHECK(!choices_.empty())
      << "categorical '" << this->name() << "' requires choices";
}

double CategoricalHyperparameter::value_at(std::uint64_t index) const {
  TVMBO_CHECK_LT(index, choices_.size())
      << "categorical index out of range for '" << name() << "'";
  return static_cast<double>(index);
}

std::string CategoricalHyperparameter::str_at(std::uint64_t index) const {
  TVMBO_CHECK_LT(index, choices_.size())
      << "categorical index out of range for '" << name() << "'";
  return choices_[index];
}

UniformIntegerHyperparameter::UniformIntegerHyperparameter(
    std::string name, std::int64_t lower, std::int64_t upper)
    : Hyperparameter(ParamKind::kInteger, std::move(name)), lower_(lower),
      upper_(upper) {
  TVMBO_CHECK_LE(lower_, upper_)
      << "integer '" << this->name() << "' has an empty range";
}

double UniformIntegerHyperparameter::value_at(std::uint64_t index) const {
  TVMBO_CHECK_LT(index, cardinality())
      << "integer index out of range for '" << name() << "'";
  return static_cast<double>(lower_ + static_cast<std::int64_t>(index));
}

UniformFloatHyperparameter::UniformFloatHyperparameter(std::string name,
                                                       double lower,
                                                       double upper)
    : Hyperparameter(ParamKind::kFloat, std::move(name)), lower_(lower),
      upper_(upper) {
  TVMBO_CHECK(lower_ < upper_)
      << "float '" << this->name() << "' has an empty range";
}

double UniformFloatHyperparameter::value_at(std::uint64_t) const {
  TVMBO_CHECK(false) << "float '" << name() << "' has no indexed values";
  return 0.0;
}

std::size_t ConfigurationSpace::add(std::shared_ptr<Hyperparameter> param) {
  TVMBO_CHECK(param != nullptr) << "add of null hyperparameter";
  for (const auto& existing : params_) {
    TVMBO_CHECK(existing->name() != param->name())
        << "duplicate hyperparameter '" << param->name() << "'";
  }
  params_.push_back(std::move(param));
  return params_.size() - 1;
}

void ConfigurationSpace::add_condition(const std::string& child,
                                       const std::string& parent,
                                       std::int64_t parent_index) {
  const std::size_t child_pos = param_index(child);
  const std::size_t parent_pos = param_index(parent);
  TVMBO_CHECK_LT(parent_pos, child_pos)
      << "condition parent '" << parent
      << "' must be declared before child '" << child << "'";
  TVMBO_CHECK(params_[parent_pos]->cardinality() > 0)
      << "condition parent must be discrete";
  TVMBO_CHECK(parent_index >= 0 &&
              static_cast<std::uint64_t>(parent_index) <
                  params_[parent_pos]->cardinality())
      << "condition parent index out of range";
  conditions_.push_back({child_pos, parent_pos, parent_index});
}

const Hyperparameter& ConfigurationSpace::param(std::size_t index) const {
  TVMBO_CHECK_LT(index, params_.size()) << "parameter index out of range";
  return *params_[index];
}

const Hyperparameter& ConfigurationSpace::param(
    const std::string& name) const {
  return *params_[param_index(name)];
}

std::size_t ConfigurationSpace::param_index(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i]->name() == name) return i;
  }
  TVMBO_CHECK(false) << "no hyperparameter named '" << name << "'";
  return 0;
}

std::uint64_t ConfigurationSpace::cardinality() const {
  std::uint64_t product = 1;
  for (const auto& param : params_) {
    const std::uint64_t card = param->cardinality();
    if (card == 0) continue;  // continuous
    TVMBO_CHECK(product <= (std::uint64_t{1} << 62) / card)
        << "configuration-space cardinality overflows uint64";
    product *= card;
  }
  return product;
}

bool ConfigurationSpace::fully_discrete() const {
  return std::all_of(params_.begin(), params_.end(), [](const auto& p) {
    return p->cardinality() > 0;
  });
}

bool ConfigurationSpace::is_active(std::size_t param,
                                   const Configuration& config) const {
  for (const EqualsCondition& condition : conditions_) {
    if (condition.child != param) continue;
    // The parent itself may be conditional; recurse.
    if (!is_active(condition.parent, config)) return false;
    if (config.index(condition.parent) != condition.parent_index) {
      return false;
    }
  }
  return true;
}

Configuration ConfigurationSpace::default_configuration() const {
  std::vector<std::int64_t> indices(params_.size(), 0);
  std::vector<double> reals(params_.size(), 0.0);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i]->kind() == ParamKind::kFloat) {
      const auto& f =
          static_cast<const UniformFloatHyperparameter&>(*params_[i]);
      reals[i] = f.lower();
    }
  }
  return Configuration(std::move(indices), std::move(reals));
}

Configuration ConfigurationSpace::sample(Rng& rng) const {
  Configuration config = default_configuration();
  // Parents precede children by construction, so one forward pass works.
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (!is_active(i, config)) continue;
    const std::uint64_t card = params_[i]->cardinality();
    if (card > 0) {
      config.set_index(
          i, rng.uniform_int(static_cast<std::int64_t>(card)));
    } else {
      const auto& f =
          static_cast<const UniformFloatHyperparameter&>(*params_[i]);
      config.set_real(i, rng.uniform(f.lower(), f.upper()));
    }
  }
  return config;
}

Configuration ConfigurationSpace::from_flat_index(std::uint64_t flat) const {
  TVMBO_CHECK(fully_discrete())
      << "flat indexing requires a fully discrete space";
  TVMBO_CHECK_LT(flat, cardinality()) << "flat index out of range";
  Configuration config = default_configuration();
  // Last parameter is the least significant digit.
  for (std::size_t i = params_.size(); i > 0; --i) {
    const std::uint64_t card = params_[i - 1]->cardinality();
    config.set_index(i - 1, static_cast<std::int64_t>(flat % card));
    flat /= card;
  }
  return config;
}

std::uint64_t ConfigurationSpace::to_flat_index(
    const Configuration& config) const {
  TVMBO_CHECK(fully_discrete())
      << "flat indexing requires a fully discrete space";
  TVMBO_CHECK_EQ(config.size(), params_.size())
      << "configuration arity mismatch";
  std::uint64_t flat = 0;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const std::uint64_t card = params_[i]->cardinality();
    const std::int64_t index = config.index(i);
    TVMBO_CHECK(index >= 0 && static_cast<std::uint64_t>(index) < card)
        << "configuration index out of range for parameter "
        << params_[i]->name();
    flat = flat * card + static_cast<std::uint64_t>(index);
  }
  return flat;
}

Configuration ConfigurationSpace::neighbor(const Configuration& config,
                                           Rng& rng) const {
  TVMBO_CHECK_EQ(config.size(), params_.size())
      << "configuration arity mismatch";
  // Pick an active parameter to perturb.
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (is_active(i, config)) active.push_back(i);
  }
  TVMBO_CHECK(!active.empty()) << "no active parameters to perturb";
  Configuration result = config;
  const std::size_t target = active[static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(active.size())))];
  const Hyperparameter& param = *params_[target];
  switch (param.kind()) {
    case ParamKind::kOrdinal:
    case ParamKind::kInteger: {
      const auto card = static_cast<std::int64_t>(param.cardinality());
      if (card == 1) break;
      std::int64_t index = config.index(target);
      // +-1 step with reflection at the ends (ordinal locality).
      std::int64_t step = rng.bernoulli(0.5) ? 1 : -1;
      index += step;
      if (index < 0) index = 1;
      if (index >= card) index = card - 2;
      result.set_index(target, index);
      break;
    }
    case ParamKind::kCategorical: {
      const auto card = static_cast<std::int64_t>(param.cardinality());
      if (card == 1) break;
      std::int64_t index = config.index(target);
      std::int64_t replacement = rng.uniform_int(card - 1);
      if (replacement >= index) ++replacement;  // ensure a real move
      result.set_index(target, replacement);
      break;
    }
    case ParamKind::kFloat: {
      const auto& f = static_cast<const UniformFloatHyperparameter&>(param);
      const double step = 0.1 * (f.upper() - f.lower());
      const double value =
          std::clamp(config.real(target) + rng.normal(0.0, step), f.lower(),
                     f.upper());
      result.set_real(target, value);
      break;
    }
  }
  return result;
}

std::vector<double> ConfigurationSpace::values(
    const Configuration& config) const {
  TVMBO_CHECK_EQ(config.size(), params_.size())
      << "configuration arity mismatch";
  std::vector<double> out(params_.size(), 0.0);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i]->cardinality() > 0) {
      out[i] = params_[i]->value_at(
          static_cast<std::uint64_t>(config.index(i)));
    } else {
      out[i] = config.real(i);
    }
  }
  return out;
}

std::vector<std::int64_t> ConfigurationSpace::values_int(
    const Configuration& config) const {
  std::vector<std::int64_t> out;
  for (double v : values(config)) {
    out.push_back(static_cast<std::int64_t>(std::llround(v)));
  }
  return out;
}

Configuration ConfigurationSpace::from_values(
    const std::vector<double>& values) const {
  TVMBO_CHECK_EQ(values.size(), params_.size())
      << "value arity mismatch in from_values";
  Configuration config = default_configuration();
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Hyperparameter& param = *params_[i];
    switch (param.kind()) {
      case ParamKind::kOrdinal: {
        const auto& ordinal =
            static_cast<const OrdinalHyperparameter&>(param);
        const auto index = ordinal.index_of(values[i]);
        TVMBO_CHECK(index.has_value())
            << "value " << values[i] << " not in the domain of '"
            << param.name() << "'";
        config.set_index(i, static_cast<std::int64_t>(*index));
        break;
      }
      case ParamKind::kCategorical:
      case ParamKind::kInteger: {
        bool found = false;
        for (std::uint64_t index = 0; index < param.cardinality();
             ++index) {
          if (param.value_at(index) == values[i]) {
            config.set_index(i, static_cast<std::int64_t>(index));
            found = true;
            break;
          }
        }
        TVMBO_CHECK(found) << "value " << values[i]
                           << " not in the domain of '" << param.name()
                           << "'";
        break;
      }
      case ParamKind::kFloat: {
        const auto& f =
            static_cast<const UniformFloatHyperparameter&>(param);
        TVMBO_CHECK(values[i] >= f.lower() && values[i] <= f.upper())
            << "value " << values[i] << " outside the range of '"
            << param.name() << "'";
        config.set_real(i, values[i]);
        break;
      }
    }
  }
  return config;
}

std::string ConfigurationSpace::to_string(
    const Configuration& config) const {
  std::ostringstream out;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i > 0) out << ", ";
    out << params_[i]->name() << "=";
    if (params_[i]->cardinality() > 0) {
      out << params_[i]->str_at(static_cast<std::uint64_t>(config.index(i)));
    } else {
      out << format_double(config.real(i), 4);
    }
    if (!is_active(i, config)) out << " (inactive)";
  }
  return out.str();
}

}  // namespace tvmbo::cs
