#include "framework/figures.h"

#include <algorithm>
#include <sstream>

#include "common/stats.h"
#include "common/string_util.h"

namespace tvmbo::framework {

CsvTable process_over_time_table(
    const std::vector<SessionResult>& results) {
  CsvTable table({"strategy", "eval", "elapsed_s", "runtime_s", "valid"});
  for (const SessionResult& result : results) {
    for (const runtime::TrialRecord& record : result.db.records()) {
      table.add_row({result.strategy, std::to_string(record.eval_index),
                     format_double(record.elapsed_s, 3),
                     format_double(record.runtime_s, 4),
                     record.valid ? "1" : "0"});
    }
  }
  return table;
}

CsvTable minimum_runtimes_table(const std::vector<SessionResult>& results) {
  CsvTable table({"strategy", "best_runtime_s", "best_config", "evals",
                  "process_time_s"});
  for (const SessionResult& result : results) {
    std::string best_runtime = "n/a";
    std::string best_config = "n/a";
    if (result.best) {
      best_runtime = format_double(result.best->runtime_s, 4);
      best_config = tiles_to_string(result.best->tiles);
    }
    table.add_row({result.strategy, best_runtime, best_config,
                   std::to_string(result.evaluations),
                   format_double(result.total_time_s, 1)});
  }
  return table;
}

CsvTable best_so_far_table(const std::vector<SessionResult>& results) {
  CsvTable table({"strategy", "eval", "best_so_far_s"});
  for (const SessionResult& result : results) {
    std::vector<double> runtimes;
    for (const runtime::TrialRecord& record : result.db.records()) {
      runtimes.push_back(record.valid
                             ? record.runtime_s
                             : std::numeric_limits<double>::infinity());
    }
    const std::vector<double> best = running_min(runtimes);
    for (std::size_t i = 0; i < best.size(); ++i) {
      table.add_row({result.strategy, std::to_string(i),
                     format_double(best[i], 4)});
    }
  }
  return table;
}

CsvTable ytopt_results_table(const SessionResult& result,
                             const cs::ConfigurationSpace& space) {
  std::vector<std::string> header;
  for (std::size_t p = 0; p < space.num_params(); ++p) {
    header.push_back(space.param(p).name());
  }
  header.push_back("objective");
  header.push_back("elapsed_sec");
  CsvTable table(header);
  for (const runtime::TrialRecord& record : result.db.records()) {
    std::vector<std::string> row;
    for (std::int64_t tile : record.tiles) {
      row.push_back(std::to_string(tile));
    }
    row.push_back(format_double(record.runtime_s, 6));
    row.push_back(format_double(record.elapsed_s, 3));
    table.add_row(std::move(row));
  }
  return table;
}

std::string tiles_to_string(const std::vector<std::int64_t>& tiles) {
  auto pair = [](std::int64_t y, std::int64_t x) {
    return std::to_string(y) + "x" + std::to_string(x);
  };
  if (tiles.size() == 2) return pair(tiles[0], tiles[1]);
  if (tiles.size() % 2 == 0 && !tiles.empty()) {
    std::string out = "(";
    for (std::size_t i = 0; i < tiles.size(); i += 2) {
      if (i > 0) out += ", ";
      out += pair(tiles[i], tiles[i + 1]);
    }
    return out + ")";
  }
  std::string out = "(";
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(tiles[i]);
  }
  return out + ")";
}

std::string render_table(const CsvTable& table) {
  std::vector<std::size_t> widths(table.num_columns());
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    widths[c] = table.header()[c].size();
  }
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      widths[c] = std::max(widths[c], table.row(r)[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "| " << cells[c]
          << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(table.header());
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    emit_row(table.row(r));
  }
  return out.str();
}

std::string render_minimum_summary(
    const std::vector<SessionResult>& results, const std::string& title,
    double paper_best_runtime_s) {
  std::ostringstream out;
  out << "== " << title << " ==\n";
  out << render_table(minimum_runtimes_table(results));
  if (paper_best_runtime_s > 0.0) {
    double ours = std::numeric_limits<double>::infinity();
    for (const SessionResult& result : results) {
      if (result.best) ours = std::min(ours, result.best->runtime_s);
    }
    out << "paper best runtime: " << format_double(paper_best_runtime_s, 3)
        << " s | our best runtime: " << format_double(ours, 3)
        << " s | ratio: " << format_double(ours / paper_best_runtime_s, 3)
        << "\n";
  }
  return out.str();
}

}  // namespace tvmbo::framework
