#include "framework/code_mold.h"

#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace tvmbo::framework {

CodeMold::CodeMold(std::string text, const cs::ConfigurationSpace* space)
    : text_(std::move(text)), space_(space) {
  TVMBO_CHECK(space_ != nullptr) << "code mold requires a space";
  placeholders_ = find_placeholders(text_);
  TVMBO_CHECK(!placeholders_.empty())
      << "code mold contains no #P placeholders";
  for (const std::string& name : placeholders_) {
    // Throws via TVMBO_CHECK if the space has no such parameter.
    space_->param_index(name.substr(1));
  }
}

std::string CodeMold::render(const cs::Configuration& config) const {
  std::map<std::string, std::string> bindings;
  for (const std::string& placeholder : placeholders_) {
    const std::string param_name = placeholder.substr(1);  // drop '#'
    const std::size_t index = space_->param_index(param_name);
    const auto& param = space_->param(index);
    bindings[placeholder] =
        param.cardinality() > 0
            ? param.str_at(static_cast<std::uint64_t>(config.index(index)))
            : format_double(config.real(index), 6);
  }
  return substitute_placeholders(text_, bindings);
}

std::string paper_3mm_mold() {
  return R"(# 3mm code mold (paper section 4); #P0..#P5 are the tunable tile factors
E = te.compute((N, M), lambda i, j: te.sum(A[i, k] * B[k, j], axis=k), name="E")
F = te.compute((M, P), lambda i, j: te.sum(C[i, l] * D[l, j], axis=l), name="F")
G = te.compute((N, P), lambda i, j: te.sum(E[i, m] * F[m, j], axis=m), name="G")
yo, yi = s1[E].split(y, #P0)
xo, xi = s1[E].split(x, #P1)
yo1, yi1 = s2[F].split(y1, #P2)
xo1, xi1 = s2[F].split(x1, #P3)
yo2, yi2 = s3[G].split(y2, #P4)
xo2, xi2 = s3[G].split(x2, #P5)
s1[E].reorder(yo, xo, k, yi, xi)
s2[F].reorder(yo1, xo1, l, yi1, xi1)
s3[G].reorder(yo2, xo2, m, yi2, xi2)
)";
}

}  // namespace tvmbo::framework
