// Figure/table exporters: turn SessionResults into the data series behind
// every figure in the paper's §5, as CSV files and console tables.
#pragma once

#include <string>
#include <vector>

#include "common/csv.h"
#include "framework/session.h"

namespace tvmbo::framework {

/// Process-over-time series (Figs 4, 6, 8, 10, 12): one row per
/// evaluation with columns strategy, eval, elapsed_s (x) and runtime_s (y).
CsvTable process_over_time_table(const std::vector<SessionResult>& results);

/// Minimum-runtime summary (Figs 5, 7, 9, 11, 13): per strategy, the best
/// runtime, the winning configuration ("tensor size"), the number of
/// evaluations completed, and the total autotuning process time.
CsvTable minimum_runtimes_table(const std::vector<SessionResult>& results);

/// Best-so-far trajectory: per evaluation, the running minimum runtime.
CsvTable best_so_far_table(const std::vector<SessionResult>& results);

/// "400x50"-style rendering of a tile vector (the paper's tensor sizes);
/// six-element vectors render as "(y0xX0, y1xX1, y2xX2)".
std::string tiles_to_string(const std::vector<std::int64_t>& tiles);

/// Fixed-width console rendering of a CSV table.
std::string render_table(const CsvTable& table);

/// Writes one strategy's trials in the CSV layout ytopt itself produces
/// (one column per parameter, then objective and elapsed_sec), so
/// existing ytopt post-processing scripts can consume tvmbo output.
CsvTable ytopt_results_table(const SessionResult& result,
                             const cs::ConfigurationSpace& space);

/// Prints the minimum-runtime summary with a paper-reported reference
/// value (0 disables the reference row).
std::string render_minimum_summary(const std::vector<SessionResult>& results,
                                   const std::string& title,
                                   double paper_best_runtime_s);

}  // namespace tvmbo::framework
