// AutotuningSession: the paper's end-to-end autotuning loop (§3).
//
// For each evaluation the session
//   Step1 asks the search strategy for configuration(s),
//   Step2 configures the kernel (code mold -> concrete tiles),
//   Step3 compiles (real for CpuDevice, modeled for SwingSimDevice),
//   Step4 executes and measures the runtime,
//   Step5 records the result in the performance database and feeds the
//         strategy.
//
// It also maintains the "autotuning process time" clock the paper's
// process-over-time figures plot on the x-axis:
//   * AutoTVM tuners measure in batches; batch members compile in parallel
//     (the builder farm), so a batch is charged max(compile) rather than
//     the sum, plus `repeat` timed runs per member and the tuner's own
//     per-batch overhead (e.g. the XGB cost-model refit).
//   * ytopt runs strictly sequentially: every evaluation is charged its
//     full compile, one timed run, and the surrogate refit + acquisition
//     overhead, which grows with the number of observations.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "autotvm/autotvm.h"
#include "runtime/measure.h"
#include "runtime/measure_runner.h"
#include "runtime/perf_db.h"
#include "ytopt/bayes_opt.h"

namespace tvmbo::transfer {
class CostModel;
}

namespace tvmbo::framework {

enum class StrategyKind {
  kYtopt,
  kAutotvmRandom,
  kAutotvmGridSearch,
  kAutotvmGa,
  kAutotvmXgb,
};

const char* strategy_name(StrategyKind kind);

/// Parses a strategy name — the short CLI spellings ("ytopt", "random",
/// "gridsearch", "ga", "xgb") and the full strategy_name() forms
/// ("autotvm-random", …) — or nullopt for anything else.
std::optional<StrategyKind> strategy_from_name(const std::string& name);

/// What the search minimizes. kRuntime is the paper's metric; kEnergy and
/// kEnergyDelay extend the framework toward ytopt's performance+energy
/// tuning (the paper's reference [9]). Non-runtime objectives require a
/// device with a power model (SwingSimDevice).
enum class Objective { kRuntime, kEnergy, kEnergyDelay };

const char* objective_name(Objective objective);

/// All five strategies in the paper's presentation order.
std::vector<StrategyKind> all_strategies();

/// Strategy-specific knobs for make_strategy_tuner() (the subset of
/// SessionOptions the tuner constructors consume).
struct StrategyFactoryOptions {
  /// Reproduce the paper's XGBTuner 56-evaluation artifact (> 0 enables).
  std::size_t xgb_paper_eval_cap = 0;
  ytopt::BoOptions bo;  ///< ytopt settings (kappa, forest, init design)
};

/// Builds the tuner for one strategy with the session's seed-derivation
/// scheme: the per-strategy seed is hash_combine(session_seed, kind + 17),
/// so any driver (AutotuningSession, tvmbo_serve job sessions, custom
/// loops) constructing the same (strategy, session_seed) gets the same
/// proposal stream. `warm_start` seeds the ytopt optimizer with prior
/// trials and `seed_configs` queues transfer-model-ranked configurations
/// as its first proposals (AutoTVM strategies ignore both). The space must
/// outlive the tuner.
std::unique_ptr<tuners::Tuner> make_strategy_tuner(
    StrategyKind kind, const cs::ConfigurationSpace* space,
    std::uint64_t session_seed, const StrategyFactoryOptions& factory = {},
    std::span<const tuners::Trial> warm_start = {},
    std::span<const cs::Configuration> seed_configs = {});

struct SessionOptions {
  std::size_t max_evaluations = 100;  ///< the paper uses 100 everywhere
  double max_time_s = 0.0;            ///< wall-clock budget (0 = unlimited)
  std::size_t batch_size = 8;         ///< AutoTVM measurement batch
  int autotvm_repeat = 3;             ///< AutoTVM timed runs per evaluation
  int ytopt_repeat = 1;               ///< ytopt evaluates the app once
  std::uint64_t seed = 2023;
  /// Reproduce the paper's XGBTuner 56-evaluation artifact (> 0 enables).
  std::size_t xgb_paper_eval_cap = 0;
  /// Charge the modeled framework overheads (Python driver, surrogate
  /// refits, cost-model training) to the process clock. Keep on for the
  /// figure benches; turn off to time only compile+run.
  bool charge_strategy_overhead = true;
  /// Metric the strategies minimize (SessionResult.best is by this too).
  Objective objective = Objective::kRuntime;
  ytopt::BoOptions bo;  ///< ytopt settings (kappa, forest, init design)
  /// Measurement engine (runtime::MeasureRunner). The default — serial,
  /// no retries, no trace — is bit-identical to the historical sequential
  /// measure loop, so SwingSimDevice figure reproductions stay
  /// deterministic. Set `measure.parallel = true` to execute batch
  /// members concurrently on the shared thread pool (per-trial fault
  /// isolation and submission-order results either way), `measure.trace`
  /// to emit the JSON-lines per-trial event log, and `measure.retry` to
  /// re-run transiently failing trials.
  runtime::MeasureRunnerOptions measure;
  /// Completion-driven streaming measurement: the session keeps the
  /// runner's async_slots() trials in flight (submit/wait_any), asking
  /// the strategy for one more configuration the moment a slot frees and
  /// telling each result back in completion order — no batch/wave
  /// barrier. Process time switches from the modeled serial clock to
  /// real wall-clock (overlap makes the serial model meaningless). With
  /// a serial runner (measure.parallel == false) the schedule is strict
  /// ask/measure/tell alternation: the fixed-seed deterministic mode,
  /// trajectory-identical to the batch path at batch size 1.
  bool async = false;
  /// Per-run measurement timeout (MeasureOption::timeout_s; 0 disables).
  /// On CpuDevice this is cooperative — checked between runs — so a
  /// single hung run escapes it; the process runner (distd::ProcDevice)
  /// additionally derives a hard wall-clock deadline from it and
  /// SIGKILLs the worker when a run never returns.
  double measure_timeout_s = 0.0;
  /// ytopt proposal batch size. 1 reproduces the paper's strictly
  /// sequential AMBS loop; > 1 proposes qLCB batches
  /// (BayesianOptimizer::next_batch) so a parallel measurement engine can
  /// evaluate several configurations at once.
  std::size_t ytopt_batch_size = 1;
  /// Transfer learning: prior measurements (e.g. a performance database
  /// saved by an earlier run) seed the ytopt Bayesian optimizer before the
  /// search starts — prior points count toward the initial design, train
  /// the first surrogate, and are never re-proposed. Only records whose
  /// workload_id matches the task and whose tiles lie in the task's space
  /// are used; AutoTVM strategies ignore this. Not owned; must outlive
  /// the session.
  const runtime::PerfDatabase* warm_start = nullptr;
  /// Cross-kernel transfer model (transfer/cost_model.h): when set and
  /// the task's kernel has a TE program, the session samples
  /// `transfer_pool` configurations, ranks them by predicted runtime, and
  /// queues the `transfer_topk` best as ytopt's first proposals
  /// (BayesianOptimizer::seed_proposals) — unlike warm_start, the seeds
  /// are *measured*, so transfer never trusts the model blindly. AutoTVM
  /// strategies ignore it. Not owned; must outlive the session.
  const transfer::CostModel* transfer_model = nullptr;
  std::size_t transfer_topk = 5;
  std::size_t transfer_pool = 256;
  /// Provenance stamped into every TrialRecord (schema v2): the producing
  /// backend name and the thread budget measurements run under.
  std::string record_backend;
  std::int64_t record_nthreads = 1;
};

/// Warm-start accounting for run()/make_strategy: how many prior records
/// became trials vs. were skipped, so a mismatched database is visible
/// instead of silently ignored.
struct WarmStartStats {
  std::size_t seeded = 0;            ///< records converted into trials
  std::size_t skipped_workload = 0;  ///< records for another workload
  std::size_t skipped_space = 0;     ///< tiles outside the task's space
  std::size_t total() const {
    return seeded + skipped_workload + skipped_space;
  }
};

struct SessionResult {
  std::string strategy;
  runtime::PerfDatabase db;
  double total_time_s = 0.0;
  std::optional<runtime::TrialRecord> best;
  std::size_t evaluations = 0;
  /// Configs rejected by the static pre-screener without spending a
  /// worker (only non-zero when options.measure.prescreen is set).
  std::size_t analysis_rejects = 0;
  /// Warm-start accounting for this run (all-zero when
  /// options.warm_start is unset or the strategy ignores it).
  WarmStartStats warm_start;
  /// Transfer-model seeds queued for this run (0 when no model).
  std::size_t transfer_seeds = 0;
};

/// Per-strategy execution traits for run_strategy(): how many configs are
/// measured per round, how often each is timed, whether the batch compiles
/// on a parallel builder, and the modeled framework overhead charged per
/// round (observed history size, batch size) -> seconds.
struct StrategyTraits {
  std::size_t batch_size = 8;
  int repeat = 3;
  bool parallel_build = true;
  std::function<double(std::size_t, std::size_t)> overhead;  ///< may be null
};

class AutotuningSession {
 public:
  /// The task and device must outlive the session.
  AutotuningSession(const autotvm::Task* task, runtime::Device* device,
                    SessionOptions options = {});

  /// Runs one strategy from scratch (fresh tuner, fresh clock).
  SessionResult run(StrategyKind kind);

  /// Runs all five strategies (the paper's full comparison for one
  /// kernel/size). Each strategy gets an independent derived seed.
  std::vector<SessionResult> run_all();

  /// Runs a caller-supplied strategy (e.g. the AutoScheduler-lite
  /// evolutionary search) under the same measurement loop and process-time
  /// accounting as the built-in five.
  SessionResult run_strategy(tuners::Tuner& strategy,
                             const StrategyTraits& traits);

  /// Derives the per-strategy seed used by run(kind) (exposed so custom
  /// comparisons can match the built-ins' reproducibility scheme).
  std::uint64_t strategy_seed(int salt) const;

  const SessionOptions& options() const { return options_; }

 private:
  std::unique_ptr<tuners::Tuner> make_strategy(
      StrategyKind kind, WarmStartStats* warm_stats = nullptr,
      std::size_t* transfer_seeds = nullptr) const;
  /// Converts options_.warm_start records into trials in the task's space
  /// (skipping other workloads and out-of-space tiles), with the metric
  /// chosen by options_.objective. `stats` (optional) receives the
  /// seeded/skipped accounting.
  std::vector<tuners::Trial> warm_start_trials(
      WarmStartStats* stats = nullptr) const;
  double modeled_overhead_s(StrategyKind kind, std::size_t observed,
                            std::size_t batch_members) const;

  const autotvm::Task* task_;
  runtime::Device* device_;
  SessionOptions options_;
};

}  // namespace tvmbo::framework
