// Code molds: the textual parameterization step of the ytopt flow.
//
// The paper turns a TE kernel into a "code mold" by replacing the tunable
// statements with #P0..#Pn placeholders; each evaluation substitutes the
// selected configuration's values to generate a concrete TE program
// (Step 2). This class reproduces that text-level machinery; it is used by
// the examples to show the generated code and by tests to verify the
// substitution rules.
#pragma once

#include <string>
#include <vector>

#include "configspace/configspace.h"

namespace tvmbo::framework {

class CodeMold {
 public:
  /// `text` contains #P<k> markers; each must correspond to the parameter
  /// of the same name in `space`.
  CodeMold(std::string text, const cs::ConfigurationSpace* space);

  /// Placeholder names present in the mold, sorted.
  const std::vector<std::string>& placeholders() const {
    return placeholders_;
  }

  /// Substitutes the configuration's values to produce concrete code.
  std::string render(const cs::Configuration& config) const;

  const std::string& text() const { return text_; }

 private:
  std::string text_;
  const cs::ConfigurationSpace* space_;
  std::vector<std::string> placeholders_;
};

/// The paper's 3mm TE code mold (§4), with the six split statements
/// parameterized; useful for examples/demos.
std::string paper_3mm_mold();

}  // namespace tvmbo::framework
