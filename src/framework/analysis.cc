#include "framework/analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace tvmbo::framework {

StrategySummary summarize(const SessionResult& result) {
  StrategySummary summary;
  summary.strategy = result.strategy;
  summary.evaluations = result.evaluations;
  summary.total_time_s = result.total_time_s;

  std::vector<double> runtimes;
  for (const runtime::TrialRecord& record : result.db.records()) {
    if (!record.valid) continue;
    runtimes.push_back(record.runtime_s);
  }
  summary.valid_evaluations = runtimes.size();
  if (runtimes.empty()) return summary;

  summary.best_runtime_s = min_value(runtimes);
  summary.worst_runtime_s = max_value(runtimes);
  summary.mean_runtime_s = mean(runtimes);
  summary.median_runtime_s = median(runtimes);

  const double threshold = summary.best_runtime_s * 1.05;
  int index = 0;
  for (const runtime::TrialRecord& record : result.db.records()) {
    ++index;
    if (!record.valid) continue;
    if (record.runtime_s <= threshold &&
        summary.evals_to_within_5pct < 0) {
      summary.evals_to_within_5pct = index;
    }
    if (record.runtime_s == summary.best_runtime_s) {
      summary.time_to_best_s = record.elapsed_s;
    }
  }
  return summary;
}

CsvTable summary_table(const std::vector<SessionResult>& results) {
  CsvTable table({"strategy", "evals", "valid", "best_s", "median_s",
                  "mean_s", "worst_s", "evals_to_5pct", "time_to_best_s",
                  "process_time_s"});
  for (const SessionResult& result : results) {
    const StrategySummary s = summarize(result);
    table.add_row({s.strategy, std::to_string(s.evaluations),
                   std::to_string(s.valid_evaluations),
                   format_double(s.best_runtime_s, 4),
                   format_double(s.median_runtime_s, 4),
                   format_double(s.mean_runtime_s, 4),
                   format_double(s.worst_runtime_s, 4),
                   std::to_string(s.evals_to_within_5pct),
                   format_double(s.time_to_best_s, 1),
                   format_double(s.total_time_s, 1)});
  }
  return table;
}

int evaluations_to_reach(const SessionResult& result,
                         double target_runtime_s) {
  int index = 0;
  for (const runtime::TrialRecord& record : result.db.records()) {
    ++index;
    if (record.valid && record.runtime_s <= target_runtime_s) return index;
  }
  return -1;
}

std::string ascii_scatter(const std::vector<SessionResult>& results,
                          int width, int height) {
  TVMBO_CHECK(width >= 20 && height >= 6) << "scatter canvas too small";
  static const char kGlyphs[] = {'g', 'r', 'G', 'x', 'y',
                                 '1', '2', '3', '4', '5'};

  double min_runtime = std::numeric_limits<double>::infinity();
  double max_runtime = 0.0;
  double max_elapsed = 0.0;
  for (const SessionResult& result : results) {
    for (const auto& record : result.db.records()) {
      if (!record.valid || record.runtime_s <= 0.0) continue;
      min_runtime = std::min(min_runtime, record.runtime_s);
      max_runtime = std::max(max_runtime, record.runtime_s);
      max_elapsed = std::max(max_elapsed, record.elapsed_s);
    }
  }
  if (!(max_runtime > 0.0)) return "(no valid evaluations to plot)\n";
  // Log y-scale with a hair of margin.
  const double log_lo = std::log(min_runtime) - 0.01;
  const double log_hi = std::log(max_runtime) + 0.01;

  std::vector<std::string> canvas(
      static_cast<std::size_t>(height),
      std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t s = 0; s < results.size(); ++s) {
    const char glyph = kGlyphs[s % sizeof(kGlyphs)];
    for (const auto& record : results[s].db.records()) {
      if (!record.valid || record.runtime_s <= 0.0) continue;
      const int col = static_cast<int>(
          record.elapsed_s / std::max(max_elapsed, 1e-12) * (width - 1));
      const double frac =
          (std::log(record.runtime_s) - log_lo) / (log_hi - log_lo);
      const int row = (height - 1) -
                      static_cast<int>(frac * (height - 1));
      canvas[static_cast<std::size_t>(std::clamp(row, 0, height - 1))]
            [static_cast<std::size_t>(std::clamp(col, 0, width - 1))] =
                glyph;
    }
  }

  std::ostringstream out;
  out << format_double(max_runtime, 2) << " s (log scale)\n";
  for (const std::string& line : canvas) {
    out << "  |" << line << "\n";
  }
  out << "  +" << std::string(static_cast<std::size_t>(width), '-')
      << "\n   0";
  const std::string end_label =
      format_double(max_elapsed, 0) + " s autotuning process time";
  out << std::string(
             std::max<std::size_t>(
                 1, static_cast<std::size_t>(width) - end_label.size() - 1),
             ' ')
      << end_label << "\n";
  out << "  legend:";
  for (std::size_t s = 0; s < results.size(); ++s) {
    out << " " << kGlyphs[s % sizeof(kGlyphs)] << "="
        << results[s].strategy;
  }
  out << " | bottom = " << format_double(min_runtime, 3) << " s\n";
  return out.str();
}

}  // namespace tvmbo::framework
