#include "framework/session.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "analysis/proof_cache.h"
#include "common/logging.h"
#include "common/timer.h"
#include "kernels/te_programs.h"
#include "transfer/cost_model.h"
#include "tuners/measure_loop.h"

namespace tvmbo::framework {

const char* strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kYtopt: return "ytopt";
    case StrategyKind::kAutotvmRandom: return "autotvm-random";
    case StrategyKind::kAutotvmGridSearch: return "autotvm-gridsearch";
    case StrategyKind::kAutotvmGa: return "autotvm-ga";
    case StrategyKind::kAutotvmXgb: return "autotvm-xgb";
  }
  return "?";
}

const char* objective_name(Objective objective) {
  switch (objective) {
    case Objective::kRuntime: return "runtime";
    case Objective::kEnergy: return "energy";
    case Objective::kEnergyDelay: return "energy-delay";
  }
  return "?";
}

std::optional<StrategyKind> strategy_from_name(const std::string& name) {
  if (name == "ytopt") return StrategyKind::kYtopt;
  if (name == "random" || name == "autotvm-random") {
    return StrategyKind::kAutotvmRandom;
  }
  if (name == "gridsearch" || name == "autotvm-gridsearch") {
    return StrategyKind::kAutotvmGridSearch;
  }
  if (name == "ga" || name == "autotvm-ga") return StrategyKind::kAutotvmGa;
  if (name == "xgb" || name == "autotvm-xgb") {
    return StrategyKind::kAutotvmXgb;
  }
  return std::nullopt;
}

std::vector<StrategyKind> all_strategies() {
  return {StrategyKind::kAutotvmGa, StrategyKind::kAutotvmRandom,
          StrategyKind::kAutotvmGridSearch, StrategyKind::kAutotvmXgb,
          StrategyKind::kYtopt};
}

std::unique_ptr<tuners::Tuner> make_strategy_tuner(
    StrategyKind kind, const cs::ConfigurationSpace* space,
    std::uint64_t session_seed, const StrategyFactoryOptions& factory,
    std::span<const tuners::Trial> warm_start,
    std::span<const cs::Configuration> seed_configs) {
  TVMBO_CHECK(space != nullptr) << "strategy factory requires a space";
  // Derive a per-strategy seed so strategies are independent but the whole
  // experiment is reproducible from the session seed.
  const std::uint64_t seed =
      hash_combine(session_seed, static_cast<std::uint64_t>(kind) + 17);
  switch (kind) {
    case StrategyKind::kYtopt: {
      auto bo =
          std::make_unique<ytopt::BayesianOptimizer>(space, seed, factory.bo);
      if (!warm_start.empty()) {
        bo->warm_start({warm_start.data(), warm_start.size()});
      }
      if (!seed_configs.empty()) {
        bo->seed_proposals(
            {seed_configs.begin(), seed_configs.end()});
      }
      return bo;
    }
    case StrategyKind::kAutotvmRandom:
      return autotvm::create_tuner(autotvm::TunerType::kRandom, space, seed);
    case StrategyKind::kAutotvmGridSearch:
      return autotvm::create_tuner(autotvm::TunerType::kGridSearch, space,
                                   seed);
    case StrategyKind::kAutotvmGa:
      return autotvm::create_tuner(autotvm::TunerType::kGa, space, seed);
    case StrategyKind::kAutotvmXgb: {
      autotvm::TunerFactoryOptions options;
      options.xgb_paper_eval_cap = factory.xgb_paper_eval_cap;
      return autotvm::create_tuner(autotvm::TunerType::kXgb, space, seed,
                                   options);
    }
  }
  TVMBO_CHECK(false) << "unknown strategy";
  return nullptr;
}

AutotuningSession::AutotuningSession(const autotvm::Task* task,
                                     runtime::Device* device,
                                     SessionOptions options)
    : task_(task), device_(device), options_(options) {
  TVMBO_CHECK(task_ != nullptr && device_ != nullptr)
      << "session requires a task and a device";
  TVMBO_CHECK_GT(options_.max_evaluations, 0u)
      << "max_evaluations must be positive";
  TVMBO_CHECK_GT(options_.batch_size, 0u) << "batch_size must be positive";
}

std::unique_ptr<tuners::Tuner> AutotuningSession::make_strategy(
    StrategyKind kind, WarmStartStats* warm_stats,
    std::size_t* transfer_seeds) const {
  StrategyFactoryOptions factory;
  factory.xgb_paper_eval_cap = options_.xgb_paper_eval_cap;
  factory.bo = options_.bo;
  std::vector<tuners::Trial> prior;
  if (kind == StrategyKind::kYtopt && options_.warm_start != nullptr) {
    prior = warm_start_trials(warm_stats);
  }
  std::vector<cs::Configuration> seeds;
  if (kind == StrategyKind::kYtopt && options_.transfer_model != nullptr) {
    const std::string& kernel = task_->workload.kernel;
    if (kernels::te_backend_supported(kernel)) {
      seeds = transfer::rank_seed_configs(
          *options_.transfer_model, task_->config.space(), kernel,
          task_->workload.dims, options_.transfer_topk,
          options_.transfer_pool, hash_combine(options_.seed, 0x7f5u));
    } else {
      TVMBO_LOG(Warning)
          << "transfer model ignored: kernel '" << kernel
          << "' has no TE program to featurize";
    }
  }
  if (transfer_seeds != nullptr) *transfer_seeds = seeds.size();
  return make_strategy_tuner(kind, &task_->config.space(), options_.seed,
                             factory, prior, seeds);
}

std::vector<tuners::Trial> AutotuningSession::warm_start_trials(
    WarmStartStats* stats) const {
  std::vector<tuners::Trial> prior;
  WarmStartStats local;
  if (options_.warm_start == nullptr) {
    if (stats != nullptr) *stats = local;
    return prior;
  }
  const cs::ConfigurationSpace& space = task_->config.space();
  const std::string workload_id = task_->workload.id();
  for (const runtime::TrialRecord& record :
       options_.warm_start->records()) {
    if (record.workload_id != workload_id) {
      ++local.skipped_workload;
      continue;
    }
    std::vector<double> values;
    values.reserve(record.tiles.size());
    for (std::int64_t tile : record.tiles) {
      values.push_back(static_cast<double>(tile));
    }
    cs::Configuration config;
    try {
      config = space.from_values(values);
    } catch (const CheckError&) {
      ++local.skipped_space;  // saved under a different space
      continue;
    }
    double metric = record.runtime_s;
    bool valid = record.valid;
    if (options_.objective == Objective::kEnergy) {
      metric = record.energy_j;
    } else if (options_.objective == Objective::kEnergyDelay) {
      metric = record.energy_j * record.runtime_s;
    }
    if (options_.objective != Objective::kRuntime &&
        record.energy_j <= 0.0) {
      valid = false;
    }
    prior.push_back({config, metric, valid});
    ++local.seeded;
  }
  if (local.skipped_workload + local.skipped_space > 0) {
    TVMBO_LOG(Warning) << "warm start: seeded " << local.seeded << " of "
                       << local.total() << " prior record(s) for "
                       << workload_id << " (skipped "
                       << local.skipped_workload << " other-workload, "
                       << local.skipped_space << " out-of-space)";
  }
  if (stats != nullptr) *stats = local;
  return prior;
}

double AutotuningSession::modeled_overhead_s(
    StrategyKind kind, std::size_t observed,
    std::size_t batch_members) const {
  if (!options_.charge_strategy_overhead) return 0.0;
  const double n = static_cast<double>(observed);
  const double members = static_cast<double>(batch_members);
  switch (kind) {
    case StrategyKind::kYtopt:
      // Surrogate refit grows with observations, plus driver overhead
      // (ytopt regenerates + evaluates the code mold per iteration).
      return 0.9 + 0.012 * n;
    case StrategyKind::kAutotvmRandom:
    case StrategyKind::kAutotvmGridSearch:
      // Trivial proposal; only the per-evaluation measure RPC overhead.
      return 0.05 + 0.15 * members;
    case StrategyKind::kAutotvmGa:
      return 0.25 + 0.15 * members;
    case StrategyKind::kAutotvmXgb:
      // Cost-model (re)training + simulated-annealing proposal per batch.
      return 0.8 + 0.05 * n + 0.15 * members;
  }
  return 0.0;
}

std::uint64_t AutotuningSession::strategy_seed(int salt) const {
  return hash_combine(options_.seed, static_cast<std::uint64_t>(salt) + 17);
}

SessionResult AutotuningSession::run(StrategyKind kind) {
  WarmStartStats warm_stats;
  std::size_t transfer_seeds = 0;
  std::unique_ptr<tuners::Tuner> strategy =
      make_strategy(kind, &warm_stats, &transfer_seeds);
  StrategyTraits traits;
  traits.repeat = kind == StrategyKind::kYtopt ? options_.ytopt_repeat
                                               : options_.autotvm_repeat;
  traits.batch_size = kind == StrategyKind::kYtopt
                          ? std::max<std::size_t>(1, options_.ytopt_batch_size)
                          : options_.batch_size;
  // ytopt's paper configuration (batch 1) compiles strictly sequentially;
  // qLCB batches (> 1) get the parallel builder farm like AutoTVM.
  traits.parallel_build =
      kind != StrategyKind::kYtopt || traits.batch_size > 1;
  traits.overhead = [this, kind](std::size_t observed, std::size_t batch) {
    return modeled_overhead_s(kind, observed, batch);
  };
  SessionResult result = run_strategy(*strategy, traits);
  result.warm_start = warm_stats;
  result.transfer_seeds = transfer_seeds;
  return result;
}

SessionResult AutotuningSession::run_strategy(tuners::Tuner& strategy,
                                              const StrategyTraits& traits) {
  TVMBO_CHECK_GT(traits.batch_size, 0u) << "batch_size must be positive";
  TVMBO_CHECK_GT(traits.repeat, 0) << "repeat must be positive";

  SessionResult result;
  result.strategy = strategy.name();

  runtime::MeasureOption measure;
  measure.repeat = traits.repeat;
  measure.timeout_s = options_.measure_timeout_s;
  const std::size_t batch_size = traits.batch_size;
  const bool parallel_build = traits.parallel_build;

  // All measurement goes through the runner: fault isolation, retries,
  // trace events, and (when enabled) parallel batch execution. The
  // default options reproduce the historical sequential loop exactly.
  runtime::MeasureRunnerOptions runner_options = options_.measure;
  runner_options.strategy = result.strategy;
  runtime::MeasureRunner runner(device_, runner_options);

  double clock = 0.0;
  std::size_t evaluations = 0;
  if (options_.async) {
    // Streaming path: completion-driven submit/wait_any with every slot
    // refilled the moment it frees — no wave barrier. Trials overlap, so
    // the modeled serial process clock does not apply; elapsed_s records
    // real wall-clock completion times instead.
    const Stopwatch wall;
    tuners::AskTellSession ask_tell(strategy, options_.max_evaluations);
    std::unordered_map<runtime::MeasureRunner::Ticket, cs::Configuration>
        in_flight;
    const std::size_t slots = runner.async_slots();
    bool out_of_time = false;
    while (!ask_tell.done()) {
      if (options_.max_time_s > 0.0 &&
          wall.elapsed_seconds() >= options_.max_time_s) {
        out_of_time = true;  // budget spent: drain, don't submit
      }
      while (!out_of_time && in_flight.size() < slots) {
        std::optional<cs::Configuration> next = ask_tell.ask();
        if (!next.has_value()) break;
        const runtime::MeasureRunner::Ticket ticket =
            runner.submit(task_->measure_input(*next), measure);
        in_flight.emplace(ticket, std::move(*next));
      }
      if (in_flight.empty()) break;

      runtime::MeasureRunner::Completion completion = runner.wait_any();
      auto it = in_flight.find(completion.ticket);
      TVMBO_CHECK(it != in_flight.end())
          << "completion for unknown ticket " << completion.ticket;
      const runtime::MeasureResult& measured = completion.result;
      double metric = measured.runtime_s;
      if (options_.objective == Objective::kEnergy) {
        metric = measured.energy_j;
      } else if (options_.objective == Objective::kEnergyDelay) {
        metric = measured.energy_j * measured.runtime_s;
      }
      bool valid = measured.valid;
      if (options_.objective != Objective::kRuntime &&
          measured.energy_j <= 0.0) {
        valid = false;  // device has no power model
      }
      ask_tell.tell(it->second, metric, valid);

      runtime::TrialRecord record;
      record.eval_index = static_cast<int>(evaluations);
      record.strategy = result.strategy;
      record.workload_id = task_->workload.id();
      record.tiles = task_->config.space().values_int(it->second);
      record.runtime_s = measured.runtime_s;
      record.energy_j = measured.energy_j;
      record.compile_s = measured.compile_s;
      record.elapsed_s = wall.elapsed_seconds();
      record.valid = valid;
      record.backend = options_.record_backend;
      record.nthreads = options_.record_nthreads;
      result.db.add(record);
      in_flight.erase(it);
      evaluations += 1;
    }
    clock = wall.elapsed_seconds();
  } else {
    while (evaluations < options_.max_evaluations && strategy.has_next()) {
      if (options_.max_time_s > 0.0 && clock >= options_.max_time_s) break;
      const std::size_t want = std::min(
          batch_size, options_.max_evaluations - evaluations);
      const std::vector<cs::Configuration> batch = strategy.next_batch(want);
      if (batch.empty()) break;

      std::vector<tuners::Trial> trials;
      std::vector<double> compiles;
      trials.reserve(batch.size());
      compiles.reserve(batch.size());
      double batch_compile_sum = 0.0;
      double batch_compile_max = 0.0;
      double batch_run = 0.0;
      std::vector<double> energies;
      std::vector<double> runtimes;
      energies.reserve(batch.size());
      runtimes.reserve(batch.size());
      std::vector<runtime::MeasureInput> inputs;
      inputs.reserve(batch.size());
      for (const cs::Configuration& config : batch) {
        inputs.push_back(task_->measure_input(config));
      }
      const std::vector<runtime::MeasureResult> measured_batch =
          runner.measure_batch(inputs, measure);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const cs::Configuration& config = batch[i];
        const runtime::MeasureResult& measured = measured_batch[i];
        batch_compile_sum += measured.compile_s;
        batch_compile_max = std::max(batch_compile_max, measured.compile_s);
        batch_run +=
            measured.runtime_s * static_cast<double>(measure.repeat);
        compiles.push_back(measured.compile_s);
        energies.push_back(measured.energy_j);
        runtimes.push_back(measured.runtime_s);
        // The strategy minimizes the configured objective; runtime/energy
        // are both recorded regardless.
        double metric = measured.runtime_s;
        if (options_.objective == Objective::kEnergy) {
          metric = measured.energy_j;
        } else if (options_.objective == Objective::kEnergyDelay) {
          metric = measured.energy_j * measured.runtime_s;
        }
        bool valid = measured.valid;
        if (options_.objective != Objective::kRuntime &&
            measured.energy_j <= 0.0) {
          valid = false;  // device has no power model
        }
        trials.push_back({config, metric, valid});
      }
      // Process-time accounting: parallel builder for AutoTVM batches,
      // strictly sequential compile for ytopt.
      clock += parallel_build ? batch_compile_max : batch_compile_sum;
      clock += batch_run;
      if (traits.overhead) {
        clock += traits.overhead(strategy.history().size(), batch.size());
      }

      // Record each trial at the batch completion time, spreading runs
      // across the batch window in measurement order for a faithful
      // per-evaluation timeline.
      double within = clock - batch_run;
      for (std::size_t i = 0; i < trials.size(); ++i) {
        within += runtimes[i] * static_cast<double>(measure.repeat);
        runtime::TrialRecord record;
        record.eval_index = static_cast<int>(evaluations + i);
        record.strategy = result.strategy;
        record.workload_id = task_->workload.id();
        record.tiles = task_->config.space().values_int(trials[i].config);
        record.runtime_s = runtimes[i];
        record.energy_j = energies[i];
        record.compile_s = compiles[i];
        record.elapsed_s = within;
        record.valid = trials[i].valid;
        record.backend = options_.record_backend;
        record.nthreads = options_.record_nthreads;
        result.db.add(record);
      }
      evaluations += trials.size();
      strategy.update(trials);
    }
  }

  result.total_time_s = clock;
  result.evaluations = evaluations;
  result.analysis_rejects = runner.analysis_rejects();
  if (options_.measure.trace != nullptr) {
    // Proof-cache effectiveness for this run: how many race/verify
    // queries the structural cache absorbed vs full prover executions
    // (process-global counters, stamped per strategy for attribution).
    Json e = Json::object();
    e.set("event", "analysis_cache_stats");
    e.set("strategy", result.strategy);
    e.set("stats", analysis::ProofCache::global().stats().to_json());
    options_.measure.trace->record(std::move(e));
  }
  // Best record by the configured objective.
  double best_metric = std::numeric_limits<double>::infinity();
  for (const runtime::TrialRecord& record : result.db.records()) {
    if (!record.valid) continue;
    double metric = record.runtime_s;
    if (options_.objective == Objective::kEnergy) {
      metric = record.energy_j;
    } else if (options_.objective == Objective::kEnergyDelay) {
      metric = record.energy_j * record.runtime_s;
    }
    if (metric < best_metric) {
      best_metric = metric;
      result.best = record;
    }
  }
  return result;
}

std::vector<SessionResult> AutotuningSession::run_all() {
  std::vector<SessionResult> results;
  for (StrategyKind kind : all_strategies()) {
    results.push_back(run(kind));
  }
  return results;
}

}  // namespace tvmbo::framework
