// Analytics over tuning results: per-strategy summary statistics,
// convergence metrics (how fast a strategy reaches the neighbourhood of
// its final best), and ASCII scatter rendering of the paper's
// process-over-time figures for terminal output.
#pragma once

#include <string>
#include <vector>

#include "common/csv.h"
#include "framework/session.h"

namespace tvmbo::framework {

struct StrategySummary {
  std::string strategy;
  std::size_t evaluations = 0;
  std::size_t valid_evaluations = 0;
  double best_runtime_s = 0.0;
  double median_runtime_s = 0.0;
  double mean_runtime_s = 0.0;
  double worst_runtime_s = 0.0;
  double total_time_s = 0.0;
  /// 1-based evaluation index at which the running best first came within
  /// 5% of the strategy's final best (-1 when there is no valid trial).
  int evals_to_within_5pct = -1;
  /// Process-clock time at which the final best was found.
  double time_to_best_s = 0.0;
};

StrategySummary summarize(const SessionResult& result);

/// One row per strategy, ready for reports.
CsvTable summary_table(const std::vector<SessionResult>& results);

/// 1-based evaluation index at which the running best first reached
/// `target_runtime_s` or better; -1 when it never did.
int evaluations_to_reach(const SessionResult& result,
                         double target_runtime_s);

/// Text scatter plot of (elapsed_s, runtime_s) for every strategy, each
/// drawn with its own glyph — a terminal rendition of the paper's
/// process-over-time figures. The y axis is log-scaled (runtimes span
/// orders of magnitude); invalid evaluations are skipped.
std::string ascii_scatter(const std::vector<SessionResult>& results,
                          int width = 72, int height = 18);

}  // namespace tvmbo::framework
