// JIT execution backend for lowered loop IR — the native-speed tier of the
// execution ladder (interpreter -> closure compiler -> JIT -> hand-written
// kernels). compile() emits the statement as C (c_emitter.h), resolves a
// shared object through the content-addressed artifact cache
// (artifact_cache.h; repeated configurations skip the compiler entirely),
// dlopens it (jit_module.h), and binds the caller's buffers — after which
// run() is a single indirect call into optimized machine code.
//
// The interface mirrors te::CompiledProgram: bindings are fixed at compile
// time, Realize intermediates are managed by the generated code, and only
// float64 buffers are supported. The bound arrays must outlive the
// program and must not be reallocated (refill them in place between runs).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "codegen/artifact_cache.h"
#include "codegen/jit_module.h"
#include "runtime/buffer.h"
#include "te/ir.h"

namespace tvmbo::codegen {

class JitProgram {
 public:
  /// Emits, compiles (or cache-resolves), loads, and binds `stmt` against
  /// the given tensor -> array bindings (placeholders and outputs;
  /// intermediates come from Realize regions). Throws CheckError on shape
  /// or dtype mismatch, free tensors, or compiler failure.
  static JitProgram compile(
      const te::Stmt& stmt,
      const std::vector<std::pair<te::Tensor, runtime::NDArray*>>& bindings,
      const JitOptions& options = {});

  /// Executes the kernel against the buffers captured at compile time.
  void run() const;

  /// The emitted C translation unit (for tests and debugging).
  const std::string& source() const { return *source_; }
  /// True when the artifact cache already held the shared object.
  bool cache_hit() const { return cache_hit_; }
  /// Seconds spent in the C compiler (0 on a cache hit).
  double compile_s() const { return compile_s_; }
  /// Path of the shared object backing this program.
  const std::string& artifact_path() const { return module_->path(); }

  /// True when a working C compiler + dlopen toolchain is available (the
  /// result of a one-time probe compile; tests use this to skip).
  static bool toolchain_available(const JitOptions& options = {});

  /// True when the toolchain accepts -fopenmp and the resulting kernel
  /// actually runs multithreaded OpenMP code correctly (one-time probe
  /// compile, like toolchain_available). When false, parallel requests
  /// fall back to serial builds (the pragma alone is ignored without
  /// -fopenmp, so this only loses speed, never correctness).
  static bool openmp_available(const JitOptions& options = {});

  /// True when the toolchain accepts -fopenmp-simd and a `#pragma omp
  /// simd` kernel built with it runs correctly (one-time probe compile,
  /// like openmp_available). -fopenmp-simd activates only the simd
  /// constructs — no OpenMP runtime, no thread pool — so it is the right
  /// flag for vectorized-but-serial builds; a full -fopenmp build
  /// subsumes it. When false, vectorize requests keep the pragma but
  /// drop the flag (ignored pragma -> serial loop, bits unchanged).
  static bool simd_available(const JitOptions& options = {});

 private:
  JitProgram() = default;

  using KernelFn = void (*)(double**);
  std::shared_ptr<JitModule> module_;
  KernelFn fn_ = nullptr;
  std::vector<double*> args_;
  std::shared_ptr<const std::string> source_;
  bool cache_hit_ = false;
  double compile_s_ = 0.0;
};

}  // namespace tvmbo::codegen
