// C-source emission from lowered loop IR — the front half of the JIT
// backend (the analogue of TVM's C codegen target).
//
// emit_c_source() prints a te::Stmt as one standalone, dependency-free C
// translation unit exporting
//
//   void <fn_name>(double** bufs);
//
// where bufs[i] is the storage of params[i] (row-major, float64, shapes
// baked in as constant strides). Realize regions become calloc'd scoped
// buffers, matching the interpreter's fresh-zero allocation semantics.
// Integer expressions (indices, conditions) are emitted as int64_t
// arithmetic with floor division/modulo helpers, value expressions as
// double arithmetic — both mirror te::Interpreter operation for operation,
// so a -ffp-contract=off build of the emitted source is bit-identical to
// the interpreter on the same buffers.
#pragma once

#include <string>
#include <vector>

#include "te/ir.h"

namespace tvmbo::codegen {

/// Emission knobs.
struct EmitOptions {
  /// When set, loops annotated kParallel get a
  /// `#pragma omp parallel for schedule(static)` above them. The pragma
  /// is only meaningful under -fopenmp; without it the compiler ignores
  /// the unknown pragma and the kernel runs serially — same float64 bits
  /// either way, since parallel chunks write disjoint elements. Off by
  /// default so serial emissions stay byte-identical to earlier releases
  /// (stable artifact-cache keys).
  bool parallel = false;
  /// Thread count for the pragma's num_threads() clause; 0 omits the
  /// clause (OpenMP runtime default, i.e. all cores).
  int num_threads = 0;
  /// When set, loops annotated kVectorized get `#pragma omp simd` with an
  /// aligned() clause over the in-scope buffers, and every parameter /
  /// realize pointer is declared restrict. Emission is gated on the same
  /// machine-checked race-freedom proof as the parallel pragma, so a simd
  /// lane can never be licensed across a loop-carried dependence; under
  /// -ffp-contract=off the vectorized loop is still bit-identical to the
  /// serial interpreter. Meaningful under -fopenmp or -fopenmp-simd;
  /// without either the pragma is ignored. Off by default so plain
  /// emissions stay byte-identical (stable artifact-cache keys).
  bool vectorize = false;
  /// When set, residual kUnrolled loops (those the jit pre-pass left
  /// intact because their extent exceeds te::kUnrollMaxExtent) get a
  /// `#pragma GCC unroll <unroll_factor>` hint. Unrolling only rewrites
  /// control flow, so no proof is needed and float64 bits are unchanged.
  bool unroll = false;
  /// Factor for the unroll pragma; values < 2 suppress it.
  int unroll_factor = 0;
};

/// Emits a C translation unit computing `stmt`. `params` lists every
/// externally bound tensor (placeholders and outputs) in bufs[] order;
/// tensors not listed must be enclosed in Realize regions. Throws
/// CheckError on free tensors or non-lowered expressions (Reduce markers).
std::string emit_c_source(const te::Stmt& stmt,
                          const std::vector<te::Tensor>& params,
                          const std::string& fn_name = "tvmbo_kernel",
                          const EmitOptions& options = {});

}  // namespace tvmbo::codegen
