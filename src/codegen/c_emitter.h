// C-source emission from lowered loop IR — the front half of the JIT
// backend (the analogue of TVM's C codegen target).
//
// emit_c_source() prints a te::Stmt as one standalone, dependency-free C
// translation unit exporting
//
//   void <fn_name>(double** bufs);
//
// where bufs[i] is the storage of params[i] (row-major, float64, shapes
// baked in as constant strides). Realize regions become calloc'd scoped
// buffers, matching the interpreter's fresh-zero allocation semantics.
// Integer expressions (indices, conditions) are emitted as int64_t
// arithmetic with floor division/modulo helpers, value expressions as
// double arithmetic — both mirror te::Interpreter operation for operation,
// so a -ffp-contract=off build of the emitted source is bit-identical to
// the interpreter on the same buffers.
#pragma once

#include <string>
#include <vector>

#include "te/ir.h"

namespace tvmbo::codegen {

/// Emits a C translation unit computing `stmt`. `params` lists every
/// externally bound tensor (placeholders and outputs) in bufs[] order;
/// tensors not listed must be enclosed in Realize regions. Throws
/// CheckError on free tensors or non-lowered expressions (Reduce markers).
std::string emit_c_source(const te::Stmt& stmt,
                          const std::vector<te::Tensor>& params,
                          const std::string& fn_name = "tvmbo_kernel");

}  // namespace tvmbo::codegen
