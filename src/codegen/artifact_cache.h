// Content-addressed on-disk cache of JIT-compiled shared objects.
//
// Key = 64-bit FNV-1a hash of (emitted C source, compiler, flags); value =
// <cache_dir>/tvmbo_<hex>.so plus the source (<hex>.c) and the compiler
// log (<hex>.log) for offline inspection. A configuration that was ever
// compiled — in this process, a previous tuning run, or a concurrent one —
// resolves without invoking the compiler, which is what lets repeated
// tuning runs over the same space skip compilation almost entirely.
//
// Thread-safety: MeasureRunner builds batch members in parallel, so
// get-or-compile is safe to call concurrently. Requests for distinct keys
// compile in parallel; requests for the same key are serialized per key so
// the compiler runs once. Cross-process races are resolved by compiling to
// a unique temporary and rename(2)-ing into place (atomic on POSIX).
//
// Invalidation: the key covers everything that determines the artifact
// (source text embeds the schedule, shapes, and strides; compiler + flags
// cover the toolchain), so entries never go stale — a cache directory can
// be deleted wholesale to reclaim space, never selectively.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace tvmbo::codegen {

/// How to build a shared object from emitted C source.
struct JitOptions {
  /// C compiler executable; empty resolves $CC, then "cc".
  std::string compiler;
  /// Flags for a position-independent shared object. -ffp-contract=off
  /// keeps the compiler from fusing a*b+c into FMA, preserving
  /// bit-identical agreement with the interpreter.
  std::string flags = "-O3 -shared -fPIC -ffp-contract=off -std=c11";
  /// Artifact-cache directory; empty resolves $TVMBO_JIT_CACHE, then
  /// <system temp>/tvmbo-jit-cache.
  std::string cache_dir;
  /// Worker budget for kParallel loops: 1 (default) emits them serially,
  /// 0 lets the OpenMP runtime pick (all cores), N >= 2 pins
  /// num_threads(N). Any value other than 1 makes JitProgram emit OpenMP
  /// pragmas and append -fopenmp when the toolchain supports it — both
  /// the pragma text and the extra flag feed the cache key, so parallel
  /// and serial builds of the same kernel never collide.
  int parallel_threads = 1;
  /// Unroll hint for residual kUnrolled loops (those whose extent exceeds
  /// te::kUnrollMaxExtent, which the jit pre-pass leaves intact instead of
  /// straight-lining): values >= 2 emit `#pragma GCC unroll <N>` above
  /// them, 0/1 emit nothing. The pragma text feeds the cache key, so
  /// different hints never collide. Like the parallel/simd pragmas this
  /// is a pure control-flow hint — float64 bits are unchanged.
  int unroll_factor = 0;

  /// Compiler after environment resolution.
  std::string resolved_compiler() const;
  /// Cache directory after environment resolution.
  std::string resolved_cache_dir() const;
};

struct CacheStats {
  std::size_t hits = 0;      ///< resolved without running the compiler
  std::size_t misses = 0;    ///< had to compile
  std::size_t failures = 0;  ///< compiler invocations that failed
  double compile_s = 0.0;    ///< total seconds spent inside the compiler

  std::size_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups());
  }
};

/// A resolved artifact.
struct Artifact {
  std::string so_path;
  bool cache_hit = false;
  double compile_s = 0.0;  ///< 0 on a hit
};

class ArtifactCache {
 public:
  /// Creates/opens the cache rooted at `dir` (created on first use).
  explicit ArtifactCache(std::string dir);

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Returns the shared object for (source, compiler, flags), compiling
  /// when no artifact exists. Throws CheckError when the compiler fails
  /// (with the tail of its log) or the cache directory cannot be created.
  Artifact get_or_compile(const std::string& source,
                          const std::string& compiler,
                          const std::string& flags);

  const std::string& dir() const { return dir_; }
  CacheStats stats() const;
  void reset_stats();

  /// Process-wide cache for `options.resolved_cache_dir()`; instances are
  /// shared per directory so stats aggregate across a whole tuning run.
  static ArtifactCache& shared(const JitOptions& options = {});

 private:
  std::shared_ptr<std::mutex> key_mutex(const std::string& key);

  std::string dir_;
  mutable std::mutex mutex_;
  CacheStats stats_;
  std::unordered_map<std::string, std::shared_ptr<std::mutex>> in_flight_;
};

/// 64-bit FNV-1a content hash (exposed for tests).
std::uint64_t fnv1a64(const std::string& text);

}  // namespace tvmbo::codegen
