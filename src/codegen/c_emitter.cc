#include "codegen/c_emitter.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <unordered_map>

#include "analysis/dependence.h"
#include "common/logging.h"

namespace tvmbo::codegen {

namespace {

using te::BinaryNode;
using te::BinaryOp;
using te::CmpOp;
using te::CompareNode;
using te::Expr;
using te::ExprKind;
using te::ExprNode;
using te::FloatImmNode;
using te::ForNode;
using te::IfThenElseNode;
using te::IntImmNode;
using te::RealizeNode;
using te::SelectNode;
using te::SeqNode;
using te::Stmt;
using te::StmtKind;
using te::StmtNode;
using te::StoreNode;
using te::TensorAccessNode;
using te::TensorNode;
using te::UnaryNode;
using te::UnaryOp;
using te::VarNode;

std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out.push_back('t');
  return out;
}

std::vector<std::int64_t> row_major_strides(
    const std::vector<std::int64_t>& shape) {
  std::vector<std::int64_t> strides(shape.size(), 1);
  for (std::size_t d = shape.size(); d > 1; --d) {
    strides[d - 2] = strides[d - 1] * shape[d - 1];
  }
  return strides;
}

struct Emitter {
  std::ostringstream out;
  EmitOptions options;
  /// Tensor -> (C identifier, row-major strides). Realize entries are
  /// pushed/popped around their region, mirroring the interpreter's
  /// scoping.
  struct Binding {
    const TensorNode* tensor;
    std::string name;
    std::vector<std::int64_t> strides;
  };
  std::vector<Binding> tensors;
  int realize_count = 0;
  /// kParallel loops with a race-freedom proof from the dependence
  /// analyzer (node identity). Only these get the OpenMP pragma; an
  /// unproven parallel loop is silently emitted serial. Populated only
  /// when options.parallel is set, so serial emission never runs the
  /// analyzer and stays byte-identical for cache keys.
  std::set<const ForNode*> proven_parallel;
  /// Same contract for kVectorized loops and `#pragma omp simd`;
  /// populated only when options.vectorize is set.
  std::set<const ForNode*> proven_vectorized;
  /// Per-emission variable numbering. Global VarNode ids differ between
  /// otherwise-identical programs (every instantiation mints fresh Vars),
  /// which would make the emitted source — and therefore the artifact
  /// cache key — unique per instantiation. Numbering in first-use order
  /// keeps the source identical for identical configurations.
  std::unordered_map<const VarNode*, int> var_ids;

  const Binding& binding_of(const TensorNode* tensor) const {
    for (const Binding& b : tensors) {
      if (b.tensor == tensor) return b;
    }
    TVMBO_CHECK(false) << "tensor '" << tensor->name
                       << "' is not a kernel parameter and not inside its "
                          "Realize region";
    static const Binding none{};
    return none;
  }

  void indent(int depth) {
    for (int i = 0; i < depth; ++i) out << "  ";
  }

  std::string var_name(const VarNode* var) {
    const auto [it, inserted] =
        var_ids.emplace(var, static_cast<int>(var_ids.size()));
    std::string name = "v";
    name += std::to_string(it->second);
    name += '_';
    name += sanitize(var->name);
    return name;
  }

  void emit_int(const ExprNode* expr);
  void emit_value(const ExprNode* expr);
  void emit_flat_index(const TensorNode* tensor,
                       const std::vector<Expr>& indices);
  void emit_stmt(const StmtNode* stmt, int depth);
};

void Emitter::emit_int(const ExprNode* expr) {
  switch (expr->kind()) {
    case ExprKind::kIntImm: {
      const std::int64_t v = static_cast<const IntImmNode*>(expr)->value;
      out << "INT64_C(" << v << ")";
      return;
    }
    case ExprKind::kVar:
      out << var_name(static_cast<const VarNode*>(expr));
      return;
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr);
      const char* infix = nullptr;
      const char* call = nullptr;
      switch (node->op) {
        case BinaryOp::kAdd: infix = " + "; break;
        case BinaryOp::kSub: infix = " - "; break;
        case BinaryOp::kMul: infix = " * "; break;
        case BinaryOp::kDiv: infix = " / "; break;
        case BinaryOp::kFloorDiv: call = "tvmbo_fdiv"; break;
        case BinaryOp::kMod: call = "tvmbo_fmod"; break;
        case BinaryOp::kMin: call = "tvmbo_imin"; break;
        case BinaryOp::kMax: call = "tvmbo_imax"; break;
      }
      if (call != nullptr) {
        out << call << "(";
        emit_int(node->a.get());
        out << ", ";
        emit_int(node->b.get());
        out << ")";
      } else {
        out << "(";
        emit_int(node->a.get());
        out << infix;
        emit_int(node->b.get());
        out << ")";
      }
      return;
    }
    case ExprKind::kCompare: {
      const auto* node = static_cast<const CompareNode*>(expr);
      const char* symbol = "?";
      switch (node->op) {
        case CmpOp::kLt: symbol = " < "; break;
        case CmpOp::kLe: symbol = " <= "; break;
        case CmpOp::kGt: symbol = " > "; break;
        case CmpOp::kGe: symbol = " >= "; break;
        case CmpOp::kEq: symbol = " == "; break;
        case CmpOp::kNe: symbol = " != "; break;
      }
      out << "(int64_t)(";
      emit_int(node->a.get());
      out << symbol;
      emit_int(node->b.get());
      out << ")";
      return;
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr);
      out << "((";
      emit_int(node->condition.get());
      out << ") != 0 ? ";
      emit_int(node->true_value.get());
      out << " : ";
      emit_int(node->false_value.get());
      out << ")";
      return;
    }
    default:
      break;
  }
  TVMBO_CHECK(false) << "expression is not integer-emittable";
}

void Emitter::emit_value(const ExprNode* expr) {
  switch (expr->kind()) {
    case ExprKind::kIntImm:
      out << "(double)" << static_cast<const IntImmNode*>(expr)->value;
      return;
    case ExprKind::kFloatImm: {
      const double v = static_cast<const FloatImmNode*>(expr)->value;
      if (std::isinf(v)) {
        out << (v > 0 ? "INFINITY" : "(-INFINITY)");
        return;
      }
      // Hexfloat round-trips the exact bit pattern through the C lexer.
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%a", v);
      out << buffer;
      return;
    }
    case ExprKind::kVar:
      out << "(double)" << var_name(static_cast<const VarNode*>(expr));
      return;
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr);
      const char* infix = nullptr;
      const char* call = nullptr;
      switch (node->op) {
        case BinaryOp::kAdd: infix = " + "; break;
        case BinaryOp::kSub: infix = " - "; break;
        case BinaryOp::kMul: infix = " * "; break;
        case BinaryOp::kDiv: infix = " / "; break;
        case BinaryOp::kFloorDiv: call = "tvmbo_ffdiv"; break;
        case BinaryOp::kMod: call = "tvmbo_ffmod"; break;
        case BinaryOp::kMin: call = "tvmbo_fmin"; break;
        case BinaryOp::kMax: call = "tvmbo_fmax"; break;
      }
      if (call != nullptr) {
        out << call << "(";
        emit_value(node->a.get());
        out << ", ";
        emit_value(node->b.get());
        out << ")";
      } else {
        out << "(";
        emit_value(node->a.get());
        out << infix;
        emit_value(node->b.get());
        out << ")";
      }
      return;
    }
    case ExprKind::kUnary: {
      const auto* node = static_cast<const UnaryNode*>(expr);
      const char* call = "?";
      switch (node->op) {
        case UnaryOp::kNeg: call = "-"; break;
        case UnaryOp::kAbs: call = "fabs"; break;
        case UnaryOp::kSqrt: call = "sqrt"; break;
        case UnaryOp::kExp: call = "exp"; break;
        case UnaryOp::kLog: call = "log"; break;
      }
      out << call << "(";
      emit_value(node->operand.get());
      out << ")";
      return;
    }
    case ExprKind::kCompare:
      out << "(double)";
      emit_int(expr);
      return;
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr);
      out << "((";
      emit_int(node->condition.get());
      out << ") != 0 ? ";
      emit_value(node->true_value.get());
      out << " : ";
      emit_value(node->false_value.get());
      out << ")";
      return;
    }
    case ExprKind::kTensorAccess: {
      const auto* node = static_cast<const TensorAccessNode*>(expr);
      const Binding& b = binding_of(node->tensor.get());
      out << b.name << "[";
      emit_flat_index(node->tensor.get(), node->indices);
      out << "]";
      return;
    }
    case ExprKind::kReduce:
      break;
  }
  TVMBO_CHECK(false) << "expression is not value-emittable (reduce marker "
                        "survived lowering?)";
}

void Emitter::emit_flat_index(const TensorNode* tensor,
                              const std::vector<Expr>& indices) {
  const Binding& b = binding_of(tensor);
  TVMBO_CHECK_EQ(indices.size(), b.strides.size())
      << "access arity mismatch on tensor '" << tensor->name << "'";
  for (std::size_t d = 0; d < indices.size(); ++d) {
    if (d > 0) out << " + ";
    if (b.strides[d] == 1) {
      out << "(";
      emit_int(indices[d].get());
      out << ")";
    } else {
      out << "(";
      emit_int(indices[d].get());
      out << ") * INT64_C(" << b.strides[d] << ")";
    }
  }
}

void Emitter::emit_stmt(const StmtNode* stmt, int depth) {
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt);
      const std::string v = var_name(node->var.get());
      // Every emission still matches the interpreter's iteration order per
      // output element; the annotations add pragmas on top of it, each
      // gated so it cannot change float64 bits. kParallel gets the OpenMP
      // work-sharing pragma when requested, gated on a machine-checked
      // race-freedom proof from the dependence analyzer (proven_parallel):
      // inner loop variables are declared inside the body, so they are
      // thread-private automatically, and the proof guarantees distinct
      // iterations write disjoint elements. kVectorized gets `#pragma omp
      // simd` under the same proof regime (proven_vectorized) — racing
      // lanes are impossible, and -ffp-contract=off keeps each lane's
      // arithmetic bit-exact. Residual kUnrolled loops (the jit pre-pass
      // straight-lines the small ones before emission) get a GCC unroll
      // hint, which only rewrites control flow. Without the matching
      // compile flag every pragma is ignored and the loop runs serially.
      if (options.parallel && node->for_kind == te::ForKind::kParallel &&
          node->extent > 1 && proven_parallel.count(node) != 0) {
        indent(depth);
        out << "#pragma omp parallel for schedule(static)";
        if (options.num_threads > 0) {
          out << " num_threads(" << options.num_threads << ")";
        }
        out << "\n";
      } else if (options.vectorize &&
                 node->for_kind == te::ForKind::kVectorized &&
                 node->extent > 1 && proven_vectorized.count(node) != 0) {
        indent(depth);
        out << "#pragma omp simd";
        if (!tensors.empty()) {
          out << " aligned(";
          for (std::size_t i = 0; i < tensors.size(); ++i) {
            if (i > 0) out << ",";
            out << tensors[i].name;
          }
          out << ":8)";
        }
        out << "\n";
      } else if (options.unroll &&
                 node->for_kind == te::ForKind::kUnrolled &&
                 options.unroll_factor > 1) {
        indent(depth);
        out << "#pragma GCC unroll " << options.unroll_factor << "\n";
      }
      indent(depth);
      out << "for (int64_t " << v << " = 0; " << v << " < INT64_C("
          << node->extent << "); ++" << v << ") {\n";
      emit_stmt(node->body.get(), depth + 1);
      indent(depth);
      out << "}\n";
      return;
    }
    case StmtKind::kStore: {
      const auto* node = static_cast<const StoreNode*>(stmt);
      const Binding& b = binding_of(node->tensor.get());
      indent(depth);
      out << b.name << "[";
      emit_flat_index(node->tensor.get(), node->indices);
      out << "] = ";
      emit_value(node->value.get());
      out << ";\n";
      return;
    }
    case StmtKind::kSeq: {
      for (const Stmt& child : static_cast<const SeqNode*>(stmt)->stmts) {
        emit_stmt(child.get(), depth);
      }
      return;
    }
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt);
      indent(depth);
      out << "if ((";
      emit_int(node->condition.get());
      out << ") != 0) {\n";
      emit_stmt(node->then_case.get(), depth + 1);
      indent(depth);
      out << "}";
      if (node->else_case) {
        out << " else {\n";
        emit_stmt(node->else_case.get(), depth + 1);
        indent(depth);
        out << "}";
      }
      out << "\n";
      return;
    }
    case StmtKind::kRealize: {
      const auto* node = static_cast<const RealizeNode*>(stmt);
      const TensorNode* tensor = node->tensor.get();
      std::int64_t elements = 1;
      for (std::int64_t extent : tensor->shape) elements *= extent;
      std::string name = "r";
      name += std::to_string(realize_count++);
      name += '_';
      name += sanitize(tensor->name);
      indent(depth);
      out << "{  /* realize " << tensor->name << " */\n";
      indent(depth + 1);
      // calloc matches the interpreter's fresh zero-initialized
      // allocation per region entry. The fresh allocation aliases nothing,
      // so the restrict qualifier (simd emission only) is trivially true.
      out << "double* " << (options.vectorize ? "restrict " : "") << name
          << " = (double*)calloc((size_t)" << elements
          << ", sizeof(double));\n";
      indent(depth + 1);
      out << "if (!" << name << ") abort();\n";
      tensors.push_back({tensor, name, row_major_strides(tensor->shape)});
      emit_stmt(node->body.get(), depth + 1);
      tensors.pop_back();
      indent(depth + 1);
      out << "free(" << name << ");\n";
      indent(depth);
      out << "}\n";
      return;
    }
  }
  TVMBO_CHECK(false) << "unemittable statement";
}

}  // namespace

std::string emit_c_source(const te::Stmt& stmt,
                          const std::vector<te::Tensor>& params,
                          const std::string& fn_name,
                          const EmitOptions& options) {
  TVMBO_CHECK(stmt != nullptr) << "emit of null statement";
  Emitter emitter;
  emitter.options = options;
  if (options.parallel) {
    for (const te::ForNode* loop :
         analysis::proven_parallel_loops(stmt)) {
      emitter.proven_parallel.insert(loop);
    }
  }
  if (options.vectorize) {
    for (const te::ForNode* loop :
         analysis::proven_vectorized_loops(stmt)) {
      emitter.proven_vectorized.insert(loop);
    }
  }
  emitter.out << "/* generated by tvmbo::codegen (do not edit) */\n"
              << "#include <math.h>\n"
              << "#include <stdint.h>\n"
              << "#include <stdlib.h>\n\n"
              << "static inline int64_t tvmbo_fdiv(int64_t a, int64_t b) "
                 "{ int64_t q = a / b; if ((a % b != 0) && ((a < 0) != "
                 "(b < 0))) --q; return q; }\n"
              << "static inline int64_t tvmbo_fmod(int64_t a, int64_t b) "
                 "{ return a - tvmbo_fdiv(a, b) * b; }\n"
              << "static inline int64_t tvmbo_imin(int64_t a, int64_t b) "
                 "{ return b < a ? b : a; }\n"
              << "static inline int64_t tvmbo_imax(int64_t a, int64_t b) "
                 "{ return a < b ? b : a; }\n"
              // Mirrors std::min/std::max argument selection exactly
              // (including which zero of a +0/-0 pair survives).
              << "static inline double tvmbo_fmin(double a, double b) "
                 "{ return b < a ? b : a; }\n"
              << "static inline double tvmbo_fmax(double a, double b) "
                 "{ return a < b ? b : a; }\n"
              << "static inline double tvmbo_ffdiv(double a, double b) "
                 "{ return floor(a / b); }\n"
              << "static inline double tvmbo_ffmod(double a, double b) "
                 "{ return a - floor(a / b) * b; }\n\n";
  emitter.out << "void " << fn_name << "(double** bufs) {\n";
  for (std::size_t i = 0; i < params.size(); ++i) {
    TVMBO_CHECK(params[i] != nullptr) << "null parameter tensor";
    const TensorNode* tensor = params[i].get();
    std::string name = "p";
    name += std::to_string(i);
    name += '_';
    name += sanitize(tensor->name);
    // restrict (simd emission only): the measurement contract binds every
    // parameter to a distinct array, so the promise holds.
    emitter.out << "  double* " << (options.vectorize ? "restrict " : "")
                << name << " = bufs[" << i << "];\n";
    emitter.tensors.push_back(
        {tensor, name, row_major_strides(tensor->shape)});
  }
  emitter.out << "\n";
  emitter.emit_stmt(stmt.get(), 1);
  emitter.out << "}\n";
  return emitter.out.str();
}

}  // namespace tvmbo::codegen
