#include "codegen/jit_program.h"

#include <mutex>
#include <unordered_map>

#include "codegen/c_emitter.h"
#include "common/logging.h"

namespace tvmbo::codegen {

namespace {
constexpr const char* kKernelSymbol = "tvmbo_kernel";
}  // namespace

JitProgram JitProgram::compile(
    const te::Stmt& stmt,
    const std::vector<std::pair<te::Tensor, runtime::NDArray*>>& bindings,
    const JitOptions& options) {
  TVMBO_CHECK(stmt != nullptr) << "compile of null statement";

  std::vector<te::Tensor> params;
  std::vector<double*> args;
  params.reserve(bindings.size());
  args.reserve(bindings.size());
  for (const auto& [tensor, array] : bindings) {
    TVMBO_CHECK(tensor != nullptr && array != nullptr)
        << "null binding passed to JIT compile";
    TVMBO_CHECK(array->dtype() == runtime::DType::kFloat64)
        << "JIT programs support float64 buffers only";
    TVMBO_CHECK(tensor->shape == array->shape())
        << "shape mismatch binding tensor '" << tensor->name << "'";
    params.push_back(tensor);
    args.push_back(array->f64().data());
  }

  JitProgram program;
  program.source_ = std::make_shared<const std::string>(
      emit_c_source(stmt, params, kKernelSymbol));
  const Artifact artifact = ArtifactCache::shared(options).get_or_compile(
      *program.source_, options.resolved_compiler(), options.flags);
  program.cache_hit_ = artifact.cache_hit;
  program.compile_s_ = artifact.compile_s;
  program.module_ = JitModule::load(artifact.so_path);
  program.fn_ = reinterpret_cast<KernelFn>(
      program.module_->symbol(kKernelSymbol));
  program.args_ = std::move(args);
  return program;
}

void JitProgram::run() const {
  TVMBO_CHECK(fn_ != nullptr) << "run of empty JIT program";
  // The generated kernel only reads the pointer array; const_cast keeps
  // the emitted double** signature simple.
  fn_(const_cast<double**>(args_.data()));
}

bool JitProgram::toolchain_available(const JitOptions& options) {
  // One probe per (compiler, flags, cache dir): build and load a trivial
  // kernel through the full emit -> cc -> dlopen -> dlsym pipeline.
  static std::mutex mutex;
  static std::unordered_map<std::string, bool>* probed =
      new std::unordered_map<std::string, bool>();
  const std::string key = options.resolved_compiler() + "\x1f" +
                          options.flags + "\x1f" +
                          options.resolved_cache_dir();
  std::lock_guard<std::mutex> lock(mutex);
  if (auto it = probed->find(key); it != probed->end()) return it->second;
  bool ok = false;
  try {
    const te::Tensor out = te::placeholder({1}, "probe");
    const te::Var i = te::make_var("i");
    const te::Stmt stmt = te::make_for(
        i, 1, te::ForKind::kSerial,
        te::make_store(out, {i}, te::make_float(1.0)));
    runtime::NDArray buffer({1});
    JitProgram probe = JitProgram::compile(stmt, {{out, &buffer}}, options);
    probe.run();
    ok = buffer.f64()[0] == 1.0;
  } catch (const std::exception&) {
    ok = false;
  }
  (*probed)[key] = ok;
  return ok;
}

}  // namespace tvmbo::codegen
