#include "codegen/jit_program.h"

#include <mutex>
#include <unordered_map>

#include "codegen/c_emitter.h"
#include "common/logging.h"
#include "te/transform.h"

namespace tvmbo::codegen {

namespace {
constexpr const char* kKernelSymbol = "tvmbo_kernel";
}  // namespace

JitProgram JitProgram::compile(
    const te::Stmt& stmt,
    const std::vector<std::pair<te::Tensor, runtime::NDArray*>>& bindings,
    const JitOptions& options) {
  TVMBO_CHECK(stmt != nullptr) << "compile of null statement";

  std::vector<te::Tensor> params;
  std::vector<double*> args;
  params.reserve(bindings.size());
  args.reserve(bindings.size());
  for (const auto& [tensor, array] : bindings) {
    TVMBO_CHECK(tensor != nullptr && array != nullptr)
        << "null binding passed to JIT compile";
    TVMBO_CHECK(array->dtype() == runtime::DType::kFloat64)
        << "JIT programs support float64 buffers only";
    TVMBO_CHECK(tensor->shape == array->shape())
        << "shape mismatch binding tensor '" << tensor->name << "'";
    params.push_back(tensor);
    args.push_back(array->f64().data());
  }

  // Structural unroll pre-pass: kUnrolled loops within the shared
  // te::kUnrollMaxExtent limit are straight-lined before emission, exactly
  // like the interpreter-side pass pipeline would expand them — same
  // bodies in the same order, so float64 bits are unchanged. Larger
  // kUnrolled loops survive and pick up a `#pragma GCC unroll` hint below.
  // Un-annotated programs skip the pass entirely and emit byte-identical
  // source (stable cache keys).
  te::Stmt working = stmt;
  if (te::has_loop_kind(stmt, te::ForKind::kUnrolled)) {
    working = te::unroll_loops(stmt);
  }

  // Parallel builds: emit OpenMP pragmas on kParallel loops and add
  // -fopenmp when the toolchain supports it. The pragma goes in even
  // without -fopenmp (the compiler ignores it -> serial fallback), so the
  // source text alone already separates parallel from serial cache keys.
  // The same contract covers kVectorized (`#pragma omp simd` +
  // -fopenmp-simd; a full -fopenmp build subsumes the flag) and residual
  // kUnrolled loops (`#pragma GCC unroll`, no flag needed).
  EmitOptions emit_options;
  std::string flags = options.flags;
  bool openmp = false;
  if (options.parallel_threads != 1 && te::has_parallel_loop(working)) {
    emit_options.parallel = true;
    emit_options.num_threads =
        options.parallel_threads > 0 ? options.parallel_threads : 0;
    openmp = openmp_available(options);
    if (openmp) flags += " -fopenmp";
  }
  if (te::has_loop_kind(working, te::ForKind::kVectorized)) {
    emit_options.vectorize = true;
    if (!openmp && simd_available(options)) flags += " -fopenmp-simd";
  }
  if (te::has_loop_kind(working, te::ForKind::kUnrolled)) {
    emit_options.unroll = true;
    emit_options.unroll_factor = options.unroll_factor;
  }

  JitProgram program;
  program.source_ = std::make_shared<const std::string>(
      emit_c_source(working, params, kKernelSymbol, emit_options));
  const Artifact artifact = ArtifactCache::shared(options).get_or_compile(
      *program.source_, options.resolved_compiler(), flags);
  program.cache_hit_ = artifact.cache_hit;
  program.compile_s_ = artifact.compile_s;
  // OpenMP kernels stay pinned: unmapping them can tear the OpenMP
  // runtime out from under its parked worker threads (see JitModule::load).
  program.module_ = JitModule::load(artifact.so_path, /*pin=*/openmp);
  program.fn_ = reinterpret_cast<KernelFn>(
      program.module_->symbol(kKernelSymbol));
  program.args_ = std::move(args);
  return program;
}

void JitProgram::run() const {
  TVMBO_CHECK(fn_ != nullptr) << "run of empty JIT program";
  // The generated kernel only reads the pointer array; const_cast keeps
  // the emitted double** signature simple.
  fn_(const_cast<double**>(args_.data()));
}

bool JitProgram::toolchain_available(const JitOptions& options) {
  // One probe per (compiler, flags, cache dir): build and load a trivial
  // kernel through the full emit -> cc -> dlopen -> dlsym pipeline.
  static std::mutex mutex;
  static std::unordered_map<std::string, bool>* probed =
      new std::unordered_map<std::string, bool>();
  const std::string key = options.resolved_compiler() + "\x1f" +
                          options.flags + "\x1f" +
                          options.resolved_cache_dir();
  std::lock_guard<std::mutex> lock(mutex);
  if (auto it = probed->find(key); it != probed->end()) return it->second;
  bool ok = false;
  try {
    const te::Tensor out = te::placeholder({1}, "probe");
    const te::Var i = te::make_var("i");
    const te::Stmt stmt = te::make_for(
        i, 1, te::ForKind::kSerial,
        te::make_store(out, {i}, te::make_float(1.0)));
    runtime::NDArray buffer({1});
    JitProgram probe = JitProgram::compile(stmt, {{out, &buffer}}, options);
    probe.run();
    ok = buffer.f64()[0] == 1.0;
  } catch (const std::exception&) {
    ok = false;
  }
  (*probed)[key] = ok;
  return ok;
}

bool JitProgram::openmp_available(const JitOptions& options) {
  // One probe per (compiler, flags, cache dir): compile and run a real
  // OpenMP reduction, verifying both -fopenmp acceptance and a working
  // runtime (libgomp/libomp), not just flag parsing.
  static std::mutex mutex;
  static std::unordered_map<std::string, bool>* probed =
      new std::unordered_map<std::string, bool>();
  const std::string key = options.resolved_compiler() + "\x1f" +
                          options.flags + "\x1f" +
                          options.resolved_cache_dir();
  std::lock_guard<std::mutex> lock(mutex);
  if (auto it = probed->find(key); it != probed->end()) return it->second;
  bool ok = false;
  try {
    // Hand-written probe source (not emit_c_source) so the probe does not
    // recurse through compile(), which consults this function.
    const std::string source =
        "void tvmbo_kernel(double** bufs) {\n"
        "  double acc = 0.0;\n"
        "  #pragma omp parallel for reduction(+:acc) schedule(static)\n"
        "  for (int i = 0; i < 64; ++i) acc += 1.0;\n"
        "  bufs[0][0] = acc;\n"
        "}\n";
    const Artifact artifact = ArtifactCache::shared(options).get_or_compile(
        source, options.resolved_compiler(), options.flags + " -fopenmp");
    std::shared_ptr<JitModule> module =
        JitModule::load(artifact.so_path, /*pin=*/true);
    auto fn =
        reinterpret_cast<KernelFn>(module->symbol(kKernelSymbol));
    double value = 0.0;
    double* buf = &value;
    fn(&buf);
    ok = value == 64.0;
  } catch (const std::exception&) {
    ok = false;
  }
  (*probed)[key] = ok;
  return ok;
}

bool JitProgram::simd_available(const JitOptions& options) {
  // One probe per (compiler, flags, cache dir): compile a `#pragma omp
  // simd` reduction with -fopenmp-simd and verify the result, proving the
  // flag is accepted and the pragma does not miscompile.
  static std::mutex mutex;
  static std::unordered_map<std::string, bool>* probed =
      new std::unordered_map<std::string, bool>();
  const std::string key = options.resolved_compiler() + "\x1f" +
                          options.flags + "\x1f" +
                          options.resolved_cache_dir();
  std::lock_guard<std::mutex> lock(mutex);
  if (auto it = probed->find(key); it != probed->end()) return it->second;
  bool ok = false;
  try {
    // Hand-written probe source (not emit_c_source) so the probe does not
    // recurse through compile(), which consults this function.
    const std::string source =
        "void tvmbo_kernel(double** bufs) {\n"
        "  double acc = 0.0;\n"
        "  #pragma omp simd reduction(+:acc)\n"
        "  for (int i = 0; i < 64; ++i) acc += 1.0;\n"
        "  bufs[0][0] = acc;\n"
        "}\n";
    const Artifact artifact = ArtifactCache::shared(options).get_or_compile(
        source, options.resolved_compiler(),
        options.flags + " -fopenmp-simd");
    std::shared_ptr<JitModule> module =
        JitModule::load(artifact.so_path, /*pin=*/false);
    auto fn =
        reinterpret_cast<KernelFn>(module->symbol(kKernelSymbol));
    double value = 0.0;
    double* buf = &value;
    fn(&buf);
    ok = value == 64.0;
  } catch (const std::exception&) {
    ok = false;
  }
  (*probed)[key] = ok;
  return ok;
}

}  // namespace tvmbo::codegen
