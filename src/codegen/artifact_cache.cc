#include "codegen/artifact_cache.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/timer.h"

namespace tvmbo::codegen {

namespace fs = std::filesystem;

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string JitOptions::resolved_compiler() const {
  if (!compiler.empty()) return compiler;
  if (const char* env = std::getenv("CC"); env != nullptr && *env != '\0') {
    return env;
  }
  return "cc";
}

std::string JitOptions::resolved_cache_dir() const {
  if (!cache_dir.empty()) return cache_dir;
  if (const char* env = std::getenv("TVMBO_JIT_CACHE");
      env != nullptr && *env != '\0') {
    return env;
  }
  return (fs::temp_directory_path() / "tvmbo-jit-cache").string();
}

namespace {

std::string hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  TVMBO_CHECK(out.good()) << "cannot write " << path.string();
  out << content;
}

std::string read_tail(const fs::path& path, std::size_t max_bytes = 2000) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return "";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  if (text.size() > max_bytes) {
    text = "..." + text.substr(text.size() - max_bytes);
  }
  return text;
}

}  // namespace

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {
  TVMBO_CHECK(!dir_.empty()) << "artifact cache requires a directory";
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ArtifactCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = CacheStats{};
}

std::shared_ptr<std::mutex> ArtifactCache::key_mutex(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<std::mutex>& slot = in_flight_[key];
  if (slot == nullptr) slot = std::make_shared<std::mutex>();
  return slot;
}

Artifact ArtifactCache::get_or_compile(const std::string& source,
                                       const std::string& compiler,
                                       const std::string& flags) {
  const std::string key =
      hex16(fnv1a64(source + "\x1f" + compiler + "\x1f" + flags));
  const fs::path base = fs::path(dir_) / ("tvmbo_" + key);
  const fs::path so_path = base.string() + ".so";

  // Serialize per key so concurrent batch members that landed on the same
  // configuration compile it once; distinct keys proceed in parallel.
  const std::shared_ptr<std::mutex> guard = key_mutex(key);
  std::lock_guard<std::mutex> key_lock(*guard);

  std::error_code ec;
  if (fs::exists(so_path, ec)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return {so_path.string(), true, 0.0};
  }

  fs::create_directories(dir_, ec);
  TVMBO_CHECK(!ec) << "cannot create artifact cache directory " << dir_
                   << ": " << ec.message();

  const fs::path c_path = base.string() + ".c";
  const fs::path log_path = base.string() + ".log";
  write_file(c_path, source);

  // Compile to a process-unique temporary and rename into place, so a
  // concurrent process racing on the same key never observes a partial
  // shared object.
  static std::atomic<std::uint64_t> counter{0};
  const fs::path tmp_path =
      base.string() + ".tmp." +
      std::to_string(static_cast<std::uint64_t>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1)) + ".so";
  const std::string command = compiler + " " + flags + " -o \"" +
                              tmp_path.string() + "\" \"" + c_path.string() +
                              "\" -lm > \"" + log_path.string() + "\" 2>&1";
  Stopwatch timer;
  const int rc = std::system(command.c_str());
  const double elapsed = timer.elapsed_seconds();
  if (rc != 0) {
    fs::remove(tmp_path, ec);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.failures;
    }
    TVMBO_CHECK(false) << "JIT compile failed (exit " << rc << "): '"
                       << compiler << " " << flags << "' on "
                       << c_path.string() << "\n"
                       << read_tail(log_path);
  }
  fs::rename(tmp_path, so_path, ec);
  if (ec) {
    // A concurrent process won the rename race; its artifact is
    // equivalent (same key, same source).
    fs::remove(tmp_path, ec);
    TVMBO_CHECK(fs::exists(so_path))
        << "rename into artifact cache failed: " << so_path.string();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  stats_.compile_s += elapsed;
  return {so_path.string(), false, elapsed};
}

ArtifactCache& ArtifactCache::shared(const JitOptions& options) {
  static std::mutex registry_mutex;
  static std::unordered_map<std::string, std::unique_ptr<ArtifactCache>>*
      registry = new std::unordered_map<std::string,
                                        std::unique_ptr<ArtifactCache>>();
  const std::string dir = options.resolved_cache_dir();
  std::lock_guard<std::mutex> lock(registry_mutex);
  std::unique_ptr<ArtifactCache>& slot = (*registry)[dir];
  if (slot == nullptr) slot = std::make_unique<ArtifactCache>(dir);
  return *slot;
}

}  // namespace tvmbo::codegen
