#include "codegen/jit_module.h"

#include <dlfcn.h>

#include "common/logging.h"

namespace tvmbo::codegen {

JitModule::JitModule(void* handle, std::string path)
    : handle_(handle), path_(std::move(path)) {}

std::shared_ptr<JitModule> JitModule::load(const std::string& path,
                                           bool pin) {
  int flags = RTLD_NOW | RTLD_LOCAL;
  if (pin) flags |= RTLD_NODELETE;
  void* handle = ::dlopen(path.c_str(), flags);
  if (handle == nullptr) {
    const char* error = ::dlerror();
    TVMBO_CHECK(false) << "dlopen(" << path
                       << ") failed: " << (error ? error : "unknown error");
  }
  return std::shared_ptr<JitModule>(new JitModule(handle, path));
}

JitModule::~JitModule() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

void* JitModule::symbol(const std::string& name) const {
  ::dlerror();  // clear any stale error
  void* address = ::dlsym(handle_, name.c_str());
  if (address == nullptr) {
    const char* error = ::dlerror();
    TVMBO_CHECK(false) << "dlsym(" << name << ") failed in " << path_ << ": "
                       << (error ? error : "symbol is null");
  }
  return address;
}

}  // namespace tvmbo::codegen
