// RAII wrapper around a dlopen'd shared object produced by the artifact
// cache. Modules are shared_ptr-held so every JitProgram built from the
// same artifact keeps the object mapped for as long as any of them runs.
#pragma once

#include <memory>
#include <string>

namespace tvmbo::codegen {

class JitModule {
 public:
  /// Loads `path` (RTLD_NOW | RTLD_LOCAL). Throws CheckError when the
  /// object cannot be loaded. `pin` adds RTLD_NODELETE, keeping the
  /// object (and, crucially, its dependencies) mapped after the last
  /// dlclose — required for OpenMP kernels: unloading the kernel can drop
  /// the last reference to the OpenMP runtime and unmap it under its own
  /// parked worker threads (not every libgomp build is protected by the
  /// static-TLS no-unload rule).
  static std::shared_ptr<JitModule> load(const std::string& path,
                                         bool pin = false);

  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;
  ~JitModule();

  /// Resolves an exported symbol; throws CheckError when absent.
  void* symbol(const std::string& name) const;

  const std::string& path() const { return path_; }

 private:
  JitModule(void* handle, std::string path);

  void* handle_;
  std::string path_;
};

}  // namespace tvmbo::codegen
