#include "te/tensor.h"

#include <algorithm>
#include <limits>

namespace tvmbo::te {

IterVar make_iter(const std::string& name, std::int64_t extent,
                  IterKind kind) {
  TVMBO_CHECK_GT(extent, 0) << "iter var '" << name
                            << "' requires positive extent";
  auto node = std::make_shared<IterVarNode>();
  node->var = make_var(name);
  node->extent = extent;
  node->kind = kind;
  return node;
}

IterVar reduce_axis(std::int64_t extent, const std::string& name) {
  return make_iter(name, extent, IterKind::kReduce);
}

std::vector<Tensor> TensorNode::inputs() const {
  if (!is_compute()) return {};
  return collect_tensors(body);
}

double TensorNode::reduce_identity() const {
  switch (reduce_kind) {
    case ReduceKind::kSum: return 0.0;
    case ReduceKind::kMax: return -std::numeric_limits<double>::infinity();
    case ReduceKind::kMin: return std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

Tensor placeholder(std::vector<std::int64_t> shape,
                   const std::string& name) {
  TVMBO_CHECK(!shape.empty()) << "placeholder requires at least one dim";
  for (std::int64_t extent : shape) {
    TVMBO_CHECK_GT(extent, 0) << "placeholder extents must be positive";
  }
  auto node = std::make_shared<TensorNode>();
  node->tensor_kind = TensorKind::kPlaceholder;
  node->name = name;
  node->shape = std::move(shape);
  return node;
}

Tensor compute(std::vector<std::int64_t> shape, const std::string& name,
               const std::function<Expr(const std::vector<Var>&)>& fcompute,
               std::vector<IterVar> reduce_axes) {
  TVMBO_CHECK(!shape.empty()) << "compute requires at least one dim";
  auto node = std::make_shared<TensorNode>();
  node->tensor_kind = TensorKind::kCompute;
  node->name = name;
  node->shape = shape;
  std::vector<Var> vars;
  for (std::size_t d = 0; d < shape.size(); ++d) {
    TVMBO_CHECK_GT(shape[d], 0) << "compute extents must be positive";
    IterVar axis = make_iter(name + "_i" + std::to_string(d), shape[d],
                             IterKind::kData);
    vars.push_back(axis->var);
    node->axis.push_back(std::move(axis));
  }
  Expr body = fcompute(vars);
  TVMBO_CHECK(body != nullptr) << "compute body is null";

  if (body->kind() == ExprKind::kReduce) {
    const auto* reduce = static_cast<const ReduceNode*>(body.get());
    TVMBO_CHECK(!reduce_axes.empty())
        << "compute '" << name
        << "' has a reduction body but no reduce_axes were declared";
    // The reduce marker must reference exactly the declared axes.
    TVMBO_CHECK_EQ(reduce->axes.size(), reduce_axes.size())
        << "reduction axis count mismatch in compute '" << name << "'";
    for (const Var& axis_var : reduce->axes) {
      const bool declared = std::any_of(
          reduce_axes.begin(), reduce_axes.end(),
          [&](const IterVar& iv) { return iv->var.get() == axis_var.get(); });
      TVMBO_CHECK(declared) << "reduction axis '" << axis_var->name
                            << "' was not declared in compute '" << name
                            << "'";
    }
    node->is_reduction = true;
    node->reduce_kind = reduce->reduce_kind;
    node->body = reduce->source;
    node->reduce_axes = std::move(reduce_axes);
  } else {
    TVMBO_CHECK(reduce_axes.empty())
        << "compute '" << name
        << "' declared reduce_axes but its body has no reduction";
    node->body = std::move(body);
  }
  return node;
}

namespace {
void topo_visit(const Tensor& tensor, std::vector<Tensor>& order,
                std::vector<const TensorNode*>& visited) {
  if (std::find(visited.begin(), visited.end(), tensor.get()) !=
      visited.end()) {
    return;
  }
  visited.push_back(tensor.get());
  for (const Tensor& input : tensor->inputs()) {
    topo_visit(input, order, visited);
  }
  order.push_back(tensor);
}
}  // namespace

std::vector<Tensor> topo_sort(const std::vector<Tensor>& outputs) {
  std::vector<Tensor> order;
  std::vector<const TensorNode*> visited;
  for (const Tensor& output : outputs) {
    TVMBO_CHECK(output != nullptr) << "null output tensor";
    topo_visit(output, order, visited);
  }
  return order;
}

}  // namespace tvmbo::te
