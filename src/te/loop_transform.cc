#include "te/loop_transform.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/affine.h"
#include "analysis/dependence.h"
#include "te/printer.h"
#include "te/transform.h"

namespace tvmbo::te {

namespace {

// Generic bottom-up rewriter: applies `fn` to every For node; `fn` returns
// nullptr to keep the (already child-rewritten) node unchanged.
template <typename Fn>
Stmt rewrite(const Stmt& stmt, const Fn& fn) {
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt.get());
      Stmt body = rewrite(node->body, fn);
      Stmt rebuilt =
          body.get() == node->body.get()
              ? stmt
              : make_for(node->var, node->extent, node->for_kind, body);
      Stmt replaced = fn(static_cast<const ForNode*>(rebuilt.get()));
      return replaced ? replaced : rebuilt;
    }
    case StmtKind::kSeq: {
      const auto* node = static_cast<const SeqNode*>(stmt.get());
      std::vector<Stmt> stmts;
      stmts.reserve(node->stmts.size());
      bool changed = false;
      for (const Stmt& child : node->stmts) {
        Stmt rewritten = rewrite(child, fn);
        changed = changed || rewritten.get() != child.get();
        stmts.push_back(std::move(rewritten));
      }
      return changed ? make_seq(std::move(stmts)) : stmt;
    }
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      Stmt then_case = rewrite(node->then_case, fn);
      Stmt else_case =
          node->else_case ? rewrite(node->else_case, fn) : nullptr;
      if (then_case.get() == node->then_case.get() &&
          else_case.get() == node->else_case.get()) {
        return stmt;
      }
      return std::make_shared<IfThenElseNode>(node->condition, then_case,
                                              else_case);
    }
    case StmtKind::kRealize: {
      const auto* node = static_cast<const RealizeNode*>(stmt.get());
      Stmt body = rewrite(node->body, fn);
      return body.get() == node->body.get()
                 ? stmt
                 : make_realize(node->tensor, body);
    }
    case StmtKind::kStore:
      return stmt;
  }
  return stmt;
}

}  // namespace

const ForNode* find_loop(const Stmt& stmt, const Var& var) {
  const ForNode* found = nullptr;
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt.get());
      if (node->var.get() == var.get()) return node;
      return find_loop(node->body, var);
    }
    case StmtKind::kSeq:
      for (const Stmt& child :
           static_cast<const SeqNode*>(stmt.get())->stmts) {
        found = find_loop(child, var);
        if (found) return found;
      }
      return nullptr;
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      found = find_loop(node->then_case, var);
      if (found) return found;
      return node->else_case ? find_loop(node->else_case, var) : nullptr;
    }
    case StmtKind::kRealize:
      return find_loop(static_cast<const RealizeNode*>(stmt.get())->body,
                       var);
    case StmtKind::kStore:
      return nullptr;
  }
  return nullptr;
}

Stmt split_loop(const Stmt& stmt, const Var& var, std::int64_t factor,
                Var* outer, Var* inner) {
  TVMBO_CHECK(stmt != nullptr && var != nullptr) << "split of null input";
  TVMBO_CHECK_GT(factor, 0) << "split factor must be positive";
  TVMBO_CHECK(find_loop(stmt, var) != nullptr)
      << "no loop over '" << var->name << "' to split";

  Var outer_var = make_var(var->name + ".outer");
  Var inner_var = make_var(var->name + ".inner");
  if (outer) *outer = outer_var;
  if (inner) *inner = inner_var;

  Stmt result = rewrite(stmt, [&](const ForNode* node) -> Stmt {
    if (node->var.get() != var.get()) return nullptr;
    const std::int64_t extent = node->extent;
    const std::int64_t outer_extent = (extent + factor - 1) / factor;
    const std::int64_t inner_extent = std::min(factor, extent);
    Expr reconstructed =
        Expr(outer_var) * make_int(factor) + Expr(inner_var);
    Stmt body = substitute_stmt(node->body, {{var, reconstructed}});
    if (extent % factor != 0) {
      body = make_if(lt(reconstructed, make_int(extent)), std::move(body));
    }
    return make_for(
        outer_var, outer_extent, node->for_kind,
        make_for(inner_var, inner_extent, ForKind::kSerial,
                 std::move(body)));
  });
  return result;
}

Stmt interchange_loops(const Stmt& stmt, const Var& outer_var,
                       const Var& inner_var) {
  TVMBO_CHECK(stmt != nullptr) << "interchange of null statement";
  bool applied = false;
  Stmt result = rewrite(stmt, [&](const ForNode* node) -> Stmt {
    if (node->var.get() != outer_var.get()) return nullptr;
    // Walk through guard Ifs between the two loops. Such guards cannot
    // reference the inner loop's variable (it is not yet in scope), so
    // hoisting the inner loop above them is always sound; the guards stay
    // attached to the outer loop's body.
    std::vector<Expr> guards;
    const StmtNode* cursor = node->body.get();
    while (cursor->kind() == StmtKind::kIfThenElse) {
      const auto* guard = static_cast<const IfThenElseNode*>(cursor);
      TVMBO_CHECK(guard->else_case == nullptr)
          << "interchange cannot cross an if/else";
      guards.push_back(guard->condition);
      cursor = guard->then_case.get();
    }
    TVMBO_CHECK(cursor->kind() == StmtKind::kFor)
        << "interchange requires perfect nesting: the body of '"
        << outer_var->name << "' is not a single (guarded) loop";
    const auto* inner = static_cast<const ForNode*>(cursor);
    TVMBO_CHECK(inner->var.get() == inner_var.get())
        << "loop '" << inner_var->name << "' is not directly inside '"
        << outer_var->name << "'";
    applied = true;
    Stmt body = inner->body;
    for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
      body = make_if(*it, std::move(body));
    }
    return make_for(inner->var, inner->extent, inner->for_kind,
                    make_for(node->var, node->extent, node->for_kind,
                             std::move(body)));
  });
  TVMBO_CHECK(applied) << "no loop over '" << outer_var->name
                       << "' found for interchange";
  return result;
}

namespace {

/// Scope surrounding the pack region: loop bindings and guard constraints
/// on the path from the root down to the at-loop, plus Var handles for
/// rebuilding index expressions from affine forms.
struct PackContext {
  analysis::VarRanges ambient;
  std::vector<analysis::AffineForm> constraints;
  std::map<const VarNode*, Var> handles;
};

bool collect_pack_context(const Stmt& stmt, const VarNode* at,
                          bool include_at, PackContext& ctx) {
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt.get());
      if (node->var.get() == at) {
        if (include_at) {
          ctx.ambient.bind(node->var.get(), node->extent);
          ctx.handles[node->var.get()] = node->var;
        }
        return true;
      }
      ctx.ambient.bind(node->var.get(), node->extent);
      ctx.handles[node->var.get()] = node->var;
      if (collect_pack_context(node->body, at, include_at, ctx)) return true;
      ctx.ambient.pop();
      return false;
    }
    case StmtKind::kSeq:
      for (const Stmt& child :
           static_cast<const SeqNode*>(stmt.get())->stmts) {
        if (collect_pack_context(child, at, include_at, ctx)) return true;
      }
      return false;
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      const std::size_t before = ctx.constraints.size();
      analysis::collect_constraints(node->condition, ctx.constraints);
      if (collect_pack_context(node->then_case, at, include_at, ctx)) {
        return true;
      }
      ctx.constraints.resize(before);
      if (node->else_case) {
        analysis::collect_negated_constraints(node->condition,
                                              ctx.constraints);
        if (collect_pack_context(node->else_case, at, include_at, ctx)) {
          return true;
        }
        ctx.constraints.resize(before);
      }
      return false;
    }
    case StmtKind::kRealize:
      return collect_pack_context(
          static_cast<const RealizeNode*>(stmt.get())->body, at, include_at,
          ctx);
    case StmtKind::kStore:
      return false;
  }
  return false;
}

/// One read of the pack source inside the region, with the path
/// constraints in force at the read site.
struct SourceRead {
  const ExprNode* node = nullptr;
  std::vector<analysis::AffineForm> dims;
  std::vector<analysis::AffineForm> constraints;
};

struct SourceWrite {
  std::vector<analysis::AffineForm> dims;
  std::vector<analysis::AffineForm> constraints;
  std::string text;  ///< pretty-printed, for failure messages
};

/// Collects every read/write of the source tensor inside the region, the
/// region's loop bindings (vars are globally unique, so collect-all works
/// without scoping), and per-access path constraints, seeded with the
/// ambient constraints so guards outside the region still apply.
struct PackScan {
  const TensorNode* source = nullptr;
  std::vector<analysis::AffineForm> constraints;
  std::vector<SourceRead> reads;
  std::vector<SourceWrite> writes;
  std::vector<std::pair<const VarNode*, std::int64_t>> loops;
  std::map<const VarNode*, Var>* handles = nullptr;

  void scan_expr(const Expr& expr) {
    if (!expr) return;
    switch (expr->kind()) {
      case ExprKind::kTensorAccess: {
        const auto* node =
            static_cast<const TensorAccessNode*>(expr.get());
        if (node->tensor.get() == source) {
          SourceRead read;
          read.node = node;
          for (const Expr& index : node->indices) {
            read.dims.push_back(analysis::analyze_affine(index.get()));
          }
          read.constraints = constraints;
          reads.push_back(std::move(read));
        }
        for (const Expr& index : node->indices) scan_expr(index);
        return;
      }
      case ExprKind::kBinary: {
        const auto* node = static_cast<const BinaryNode*>(expr.get());
        scan_expr(node->a);
        scan_expr(node->b);
        return;
      }
      case ExprKind::kUnary:
        scan_expr(static_cast<const UnaryNode*>(expr.get())->operand);
        return;
      case ExprKind::kCompare: {
        const auto* node = static_cast<const CompareNode*>(expr.get());
        scan_expr(node->a);
        scan_expr(node->b);
        return;
      }
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr.get());
        scan_expr(node->condition);
        scan_expr(node->true_value);
        scan_expr(node->false_value);
        return;
      }
      case ExprKind::kReduce:
        scan_expr(static_cast<const ReduceNode*>(expr.get())->source);
        return;
      default:
        return;
    }
  }

  void scan_stmt(const Stmt& stmt) {
    if (!stmt) return;
    switch (stmt->kind()) {
      case StmtKind::kFor: {
        const auto* node = static_cast<const ForNode*>(stmt.get());
        loops.emplace_back(node->var.get(), node->extent);
        (*handles)[node->var.get()] = node->var;
        scan_stmt(node->body);
        return;
      }
      case StmtKind::kStore: {
        const auto* node = static_cast<const StoreNode*>(stmt.get());
        if (node->tensor.get() == source) {
          SourceWrite write;
          for (const Expr& index : node->indices) {
            write.dims.push_back(analysis::analyze_affine(index.get()));
          }
          write.constraints = constraints;
          std::ostringstream os;
          os << "write " << node->tensor->name << "[";
          for (std::size_t i = 0; i < node->indices.size(); ++i) {
            if (i > 0) os << ", ";
            os << to_string(node->indices[i]);
          }
          os << "]";
          write.text = os.str();
          writes.push_back(std::move(write));
        }
        for (const Expr& index : node->indices) scan_expr(index);
        scan_expr(node->value);
        return;
      }
      case StmtKind::kSeq:
        for (const Stmt& child :
             static_cast<const SeqNode*>(stmt.get())->stmts) {
          scan_stmt(child);
        }
        return;
      case StmtKind::kIfThenElse: {
        const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
        scan_expr(node->condition);
        const std::size_t before = constraints.size();
        analysis::collect_constraints(node->condition, constraints);
        scan_stmt(node->then_case);
        constraints.resize(before);
        if (node->else_case) {
          analysis::collect_negated_constraints(node->condition,
                                                constraints);
          scan_stmt(node->else_case);
          constraints.resize(before);
        }
        return;
      }
      case StmtKind::kRealize:
        scan_stmt(static_cast<const RealizeNode*>(stmt.get())->body);
        return;
    }
  }
};

/// One dimension of the packed window: origin form, constant width, and
/// whether the dimension survives into the scratch shape (width > 1).
struct WindowDim {
  analysis::AffineForm lo;
  std::int64_t width = 1;
  bool kept = false;
};

Expr form_to_expr(const analysis::AffineForm& form,
                  const std::map<const VarNode*, Var>& handles) {
  Expr result = nullptr;
  for (const auto& [var, coefficient] : form.terms) {
    if (coefficient == 0) continue;
    auto it = handles.find(var);
    TVMBO_CHECK(it != handles.end())
        << "pack: no loop handle for var '" << var->name << "'";
    Expr term = coefficient == 1
                    ? Expr(it->second)
                    : make_int(coefficient) * Expr(it->second);
    result = result ? result + term : term;
  }
  if (!result) return make_int(form.constant);
  if (form.constant != 0) result = result + make_int(form.constant);
  return result;
}

Expr replace_reads_expr(const Expr& expr,
                        const std::map<const ExprNode*, Expr>& repl) {
  if (!expr) return expr;
  auto hit = repl.find(expr.get());
  if (hit != repl.end()) return hit->second;
  switch (expr->kind()) {
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr.get());
      Expr a = replace_reads_expr(node->a, repl);
      Expr b = replace_reads_expr(node->b, repl);
      if (a.get() == node->a.get() && b.get() == node->b.get()) return expr;
      return std::make_shared<BinaryNode>(node->op, std::move(a),
                                          std::move(b));
    }
    case ExprKind::kUnary: {
      const auto* node = static_cast<const UnaryNode*>(expr.get());
      Expr operand = replace_reads_expr(node->operand, repl);
      if (operand.get() == node->operand.get()) return expr;
      return std::make_shared<UnaryNode>(node->op, std::move(operand));
    }
    case ExprKind::kCompare: {
      const auto* node = static_cast<const CompareNode*>(expr.get());
      Expr a = replace_reads_expr(node->a, repl);
      Expr b = replace_reads_expr(node->b, repl);
      if (a.get() == node->a.get() && b.get() == node->b.get()) return expr;
      return std::make_shared<CompareNode>(node->op, std::move(a),
                                           std::move(b));
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr.get());
      Expr condition = replace_reads_expr(node->condition, repl);
      Expr true_value = replace_reads_expr(node->true_value, repl);
      Expr false_value = replace_reads_expr(node->false_value, repl);
      if (condition.get() == node->condition.get() &&
          true_value.get() == node->true_value.get() &&
          false_value.get() == node->false_value.get()) {
        return expr;
      }
      return std::make_shared<SelectNode>(std::move(condition),
                                          std::move(true_value),
                                          std::move(false_value));
    }
    case ExprKind::kTensorAccess: {
      const auto* node = static_cast<const TensorAccessNode*>(expr.get());
      std::vector<Expr> indices;
      indices.reserve(node->indices.size());
      bool changed = false;
      for (const Expr& index : node->indices) {
        Expr rewritten = replace_reads_expr(index, repl);
        changed = changed || rewritten.get() != index.get();
        indices.push_back(std::move(rewritten));
      }
      if (!changed) return expr;
      return std::make_shared<TensorAccessNode>(node->tensor,
                                                std::move(indices));
    }
    default:
      return expr;
  }
}

Stmt replace_reads_stmt(const Stmt& stmt,
                        const std::map<const ExprNode*, Expr>& repl) {
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt.get());
      Stmt body = replace_reads_stmt(node->body, repl);
      if (body.get() == node->body.get()) return stmt;
      return make_for(node->var, node->extent, node->for_kind,
                      std::move(body));
    }
    case StmtKind::kStore: {
      const auto* node = static_cast<const StoreNode*>(stmt.get());
      std::vector<Expr> indices;
      indices.reserve(node->indices.size());
      bool changed = false;
      for (const Expr& index : node->indices) {
        Expr rewritten = replace_reads_expr(index, repl);
        changed = changed || rewritten.get() != index.get();
        indices.push_back(std::move(rewritten));
      }
      Expr value = replace_reads_expr(node->value, repl);
      changed = changed || value.get() != node->value.get();
      if (!changed) return stmt;
      return make_store(node->tensor, std::move(indices), std::move(value));
    }
    case StmtKind::kSeq: {
      const auto* node = static_cast<const SeqNode*>(stmt.get());
      std::vector<Stmt> stmts;
      stmts.reserve(node->stmts.size());
      bool changed = false;
      for (const Stmt& child : node->stmts) {
        Stmt rewritten = replace_reads_stmt(child, repl);
        changed = changed || rewritten.get() != child.get();
        stmts.push_back(std::move(rewritten));
      }
      return changed ? make_seq(std::move(stmts)) : stmt;
    }
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      Expr condition = replace_reads_expr(node->condition, repl);
      Stmt then_case = replace_reads_stmt(node->then_case, repl);
      Stmt else_case =
          node->else_case ? replace_reads_stmt(node->else_case, repl)
                          : nullptr;
      if (condition.get() == node->condition.get() &&
          then_case.get() == node->then_case.get() &&
          else_case.get() == node->else_case.get()) {
        return stmt;
      }
      return std::make_shared<IfThenElseNode>(std::move(condition),
                                              std::move(then_case),
                                              std::move(else_case));
    }
    case StmtKind::kRealize: {
      const auto* node = static_cast<const RealizeNode*>(stmt.get());
      Stmt body = replace_reads_stmt(node->body, repl);
      if (body.get() == node->body.get()) return stmt;
      return make_realize(node->tensor, std::move(body));
    }
  }
  return stmt;
}

}  // namespace

Stmt pack_reads(const Stmt& root, const Tensor& source, const Var& at_var,
                bool wrap_outside, const std::vector<std::size_t>& perm,
                const std::vector<std::size_t>& invariant_dims,
                const std::string& scratch_name) {
  TVMBO_CHECK(root != nullptr && source != nullptr && at_var != nullptr)
      << "pack of null input";
  const ForNode* at = find_loop(root, at_var);
  TVMBO_CHECK(at != nullptr)
      << "no loop over '" << at_var->name << "' to pack at";
  const std::size_t rank = source->shape.size();
  TVMBO_CHECK_EQ(perm.size(), rank)
      << "pack perm rank mismatch for tensor '" << source->name << "'";
  std::vector<bool> seen(rank, false);
  for (std::size_t d : perm) {
    TVMBO_CHECK(d < rank && !seen[d])
        << "pack perm is not a permutation of the dims of '" << source->name
        << "'";
    seen[d] = true;
  }
  for (std::size_t d : invariant_dims) {
    TVMBO_CHECK(d < rank) << "pack invariant dim " << d
                          << " out of range for '" << source->name << "'";
  }

  PackContext ctx;
  TVMBO_CHECK(collect_pack_context(root, at_var.get(),
                                   /*include_at=*/!wrap_outside, ctx))
      << "pack context walk lost loop '" << at_var->name << "'";

  // The region the scratch covers: the at-loop's body (fresh window per
  // iteration) or the whole loop (one hoisted window).
  const Stmt region =
      wrap_outside ? make_for(at->var, at->extent, at->for_kind, at->body)
                   : at->body;

  PackScan scan;
  scan.source = source.get();
  scan.constraints = ctx.constraints;
  scan.handles = &ctx.handles;
  scan.scan_stmt(region);
  TVMBO_CHECK(!scan.reads.empty())
      << "pack-no-reads: tensor '" << source->name
      << "' is never read under loop '" << at_var->name << "'";

  analysis::VarRanges nest_ranges = ctx.ambient;
  std::set<const VarNode*> inner;
  for (const auto& [var, extent] : scan.loops) {
    nest_ranges.bind(var, extent);
    inner.insert(var);
  }

  // A read can use the scratch only when every index is affine and the
  // pinned dimensions do not move inside the region.
  auto is_candidate = [&](const SourceRead& read) {
    for (const analysis::AffineForm& form : read.dims) {
      if (!form.affine) return false;
    }
    for (std::size_t d : invariant_dims) {
      for (const auto& [var, coefficient] : read.dims[d].terms) {
        if (coefficient != 0 && inner.count(var)) return false;
      }
    }
    return true;
  };
  const SourceRead* seed = nullptr;
  for (const SourceRead& read : scan.reads) {
    if (is_candidate(read)) {
      seed = &read;
      break;
    }
  }
  TVMBO_CHECK(seed != nullptr)
      << "pack-no-reads: no affine, window-invariant read of '"
      << source->name << "' under loop '" << at_var->name << "'";

  // Window inference from the seed read: the region-invariant part of
  // each index is the origin, the inner-loop span the width. A window
  // covering the whole dimension collapses to origin 0 (no guard needed,
  // and hoisted packs of a full operand land here).
  std::vector<WindowDim> window(rank);
  for (std::size_t d = 0; d < rank; ++d) {
    WindowDim w;
    w.lo.constant = seed->dims[d].constant;
    std::int64_t span = 0;
    for (const auto& [var, coefficient] : seed->dims[d].terms) {
      if (coefficient == 0) continue;
      if (inner.count(var)) {
        const std::int64_t* extent = nest_ranges.extent_of(var);
        TVMBO_CHECK(extent != nullptr)
            << "pack: unbound region var '" << var->name << "'";
        const std::int64_t magnitude =
            coefficient < 0 ? -coefficient : coefficient;
        span += magnitude * (*extent - 1);
        if (coefficient < 0) w.lo.constant += coefficient * (*extent - 1);
      } else {
        w.lo.add_term(var, coefficient);
      }
    }
    w.width = 1 + span;
    if (w.width >= source->shape[d]) {
      w.lo = analysis::AffineForm{};
      w.width = source->shape[d];
    }
    w.kept = w.width > 1;
    window[d] = w;
  }

  // Accept a candidate read iff its offset from the origin provably stays
  // inside [0, width) on kept dims and is exactly 0 on dropped ones.
  struct AcceptedRead {
    const SourceRead* read = nullptr;
    std::vector<analysis::AffineForm> deltas;
  };
  std::vector<AcceptedRead> accepted;
  for (const SourceRead& read : scan.reads) {
    if (!is_candidate(read)) continue;
    AcceptedRead entry;
    entry.read = &read;
    bool ok = true;
    for (std::size_t d = 0; d < rank && ok; ++d) {
      analysis::AffineForm delta =
          analysis::affine_sub(read.dims[d], window[d].lo);
      // [0, width) covers both cases: a dropped (width-1) dim demands a
      // provably zero offset, a kept one a provably in-window offset.
      const analysis::Interval range = analysis::constrained_range(
          delta, nest_ranges, read.constraints);
      ok = range.bounded() && *range.lo >= 0 && *range.hi < window[d].width;
      entry.deltas.push_back(std::move(delta));
    }
    if (ok) accepted.push_back(std::move(entry));
  }
  TVMBO_CHECK(!accepted.empty())
      << "pack-no-reads: no read of '" << source->name
      << "' provably stays inside the packed window under loop '"
      << at_var->name << "'";

  // Every write to the source inside the region must land outside the
  // window on at least one dimension, or a redirected read could observe
  // a stale copy.
  for (const SourceWrite& write : scan.writes) {
    bool disjoint = false;
    for (std::size_t d = 0; d < rank && !disjoint; ++d) {
      if (!write.dims[d].affine) continue;
      const analysis::AffineForm gap =
          analysis::affine_sub(write.dims[d], window[d].lo);
      const analysis::Interval range = analysis::constrained_range(
          gap, nest_ranges, write.constraints);
      disjoint = (range.hi.has_value() && *range.hi <= -1) ||
                 (range.lo.has_value() && *range.lo >= window[d].width);
    }
    TVMBO_CHECK(disjoint)
        << "pack-aliases-write: " << write.text
        << " can land inside the packed window of '" << source->name
        << "', so redirected reads could observe a stale copy";
  }

  // Scratch layout: the kept dims in `perm` order ({1, 0} transposes a
  // matrix pack). A fully collapsed window degenerates to one element.
  std::vector<std::size_t> scratch_dims;
  for (std::size_t d : perm) {
    if (window[d].kept) scratch_dims.push_back(d);
  }
  std::vector<std::int64_t> scratch_shape;
  for (std::size_t d : scratch_dims) {
    scratch_shape.push_back(window[d].width);
  }
  if (scratch_shape.empty()) scratch_shape.push_back(1);
  const Tensor scratch = placeholder(scratch_shape, scratch_name);

  // Copy nest: scratch[p...] = source[lo + p ...], bounds-guarded on any
  // dimension whose window is not provably in range under the ambient
  // scope alone (split tails make the guard fold away when exact).
  std::map<std::size_t, Var> copy_vars;
  for (std::size_t d : scratch_dims) {
    copy_vars[d] = make_var(scratch_name + "_p" + std::to_string(d));
  }
  std::vector<Expr> src_indices(rank);
  for (std::size_t d = 0; d < rank; ++d) {
    Expr index = form_to_expr(window[d].lo, ctx.handles);
    if (window[d].kept) index = index + Expr(copy_vars[d]);
    src_indices[d] = index;
  }
  std::vector<Expr> dst_indices;
  for (std::size_t d : scratch_dims) {
    dst_indices.push_back(Expr(copy_vars[d]));
  }
  if (dst_indices.empty()) dst_indices.push_back(make_int(0));
  Stmt copy =
      make_store(scratch, dst_indices, access(source, src_indices));
  for (std::size_t d = rank; d-- > 0;) {
    const analysis::Interval range = analysis::constrained_range(
        window[d].lo, ctx.ambient, ctx.constraints);
    const bool lo_safe = range.lo.has_value() && *range.lo >= 0;
    const bool hi_safe = range.hi.has_value() &&
                         *range.hi + window[d].width <= source->shape[d];
    if (!hi_safe) {
      copy = make_if(lt(src_indices[d], make_int(source->shape[d])), copy);
    }
    if (!lo_safe) copy = make_if(ge(src_indices[d], make_int(0)), copy);
  }
  for (auto it = scratch_dims.rbegin(); it != scratch_dims.rend(); ++it) {
    copy = make_for(copy_vars[*it], window[*it].width, ForKind::kSerial,
                    copy);
  }

  // Redirect the accepted reads to the scratch, then splice Realize +
  // copy + rewritten region back over the at-loop.
  std::map<const ExprNode*, Expr> repl;
  for (const AcceptedRead& entry : accepted) {
    std::vector<Expr> indices;
    for (std::size_t d : scratch_dims) {
      indices.push_back(form_to_expr(entry.deltas[d], ctx.handles));
    }
    if (indices.empty()) indices.push_back(make_int(0));
    repl[entry.read->node] = access(scratch, std::move(indices));
  }
  Stmt packed_region = replace_reads_stmt(region, repl);
  Stmt packed =
      make_realize(scratch, make_seq({std::move(copy), packed_region}));
  const Stmt replacement =
      wrap_outside
          ? packed
          : make_for(at->var, at->extent, at->for_kind, std::move(packed));

  return rewrite(root, [&](const ForNode* node) -> Stmt {
    if (node->var.get() != at_var.get()) return nullptr;
    return replacement;
  });
}

Stmt annotate_loop(const Stmt& stmt, const Var& var, ForKind kind) {
  TVMBO_CHECK(stmt != nullptr && var != nullptr)
      << "annotate of null input";
  bool applied = false;
  Stmt result = rewrite(stmt, [&](const ForNode* node) -> Stmt {
    if (node->var.get() != var.get()) return nullptr;
    applied = true;
    if (node->for_kind == kind) return nullptr;
    return make_for(node->var, node->extent, kind, node->body);
  });
  TVMBO_CHECK(applied) << "no loop over '" << var->name << "' to annotate";
  if (analysis::kind_requires_race_proof(kind)) {
    analysis::require_race_free(result, var, "annotate_loop");
  }
  return result;
}

}  // namespace tvmbo::te
