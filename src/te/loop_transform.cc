#include "te/loop_transform.h"

#include <algorithm>

#include "analysis/dependence.h"
#include "te/transform.h"

namespace tvmbo::te {

namespace {

// Generic bottom-up rewriter: applies `fn` to every For node; `fn` returns
// nullptr to keep the (already child-rewritten) node unchanged.
template <typename Fn>
Stmt rewrite(const Stmt& stmt, const Fn& fn) {
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt.get());
      Stmt body = rewrite(node->body, fn);
      Stmt rebuilt =
          body.get() == node->body.get()
              ? stmt
              : make_for(node->var, node->extent, node->for_kind, body);
      Stmt replaced = fn(static_cast<const ForNode*>(rebuilt.get()));
      return replaced ? replaced : rebuilt;
    }
    case StmtKind::kSeq: {
      const auto* node = static_cast<const SeqNode*>(stmt.get());
      std::vector<Stmt> stmts;
      stmts.reserve(node->stmts.size());
      bool changed = false;
      for (const Stmt& child : node->stmts) {
        Stmt rewritten = rewrite(child, fn);
        changed = changed || rewritten.get() != child.get();
        stmts.push_back(std::move(rewritten));
      }
      return changed ? make_seq(std::move(stmts)) : stmt;
    }
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      Stmt then_case = rewrite(node->then_case, fn);
      Stmt else_case =
          node->else_case ? rewrite(node->else_case, fn) : nullptr;
      if (then_case.get() == node->then_case.get() &&
          else_case.get() == node->else_case.get()) {
        return stmt;
      }
      return std::make_shared<IfThenElseNode>(node->condition, then_case,
                                              else_case);
    }
    case StmtKind::kRealize: {
      const auto* node = static_cast<const RealizeNode*>(stmt.get());
      Stmt body = rewrite(node->body, fn);
      return body.get() == node->body.get()
                 ? stmt
                 : make_realize(node->tensor, body);
    }
    case StmtKind::kStore:
      return stmt;
  }
  return stmt;
}

}  // namespace

const ForNode* find_loop(const Stmt& stmt, const Var& var) {
  const ForNode* found = nullptr;
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt.get());
      if (node->var.get() == var.get()) return node;
      return find_loop(node->body, var);
    }
    case StmtKind::kSeq:
      for (const Stmt& child :
           static_cast<const SeqNode*>(stmt.get())->stmts) {
        found = find_loop(child, var);
        if (found) return found;
      }
      return nullptr;
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      found = find_loop(node->then_case, var);
      if (found) return found;
      return node->else_case ? find_loop(node->else_case, var) : nullptr;
    }
    case StmtKind::kRealize:
      return find_loop(static_cast<const RealizeNode*>(stmt.get())->body,
                       var);
    case StmtKind::kStore:
      return nullptr;
  }
  return nullptr;
}

Stmt split_loop(const Stmt& stmt, const Var& var, std::int64_t factor,
                Var* outer, Var* inner) {
  TVMBO_CHECK(stmt != nullptr && var != nullptr) << "split of null input";
  TVMBO_CHECK_GT(factor, 0) << "split factor must be positive";
  TVMBO_CHECK(find_loop(stmt, var) != nullptr)
      << "no loop over '" << var->name << "' to split";

  Var outer_var = make_var(var->name + ".outer");
  Var inner_var = make_var(var->name + ".inner");
  if (outer) *outer = outer_var;
  if (inner) *inner = inner_var;

  Stmt result = rewrite(stmt, [&](const ForNode* node) -> Stmt {
    if (node->var.get() != var.get()) return nullptr;
    const std::int64_t extent = node->extent;
    const std::int64_t outer_extent = (extent + factor - 1) / factor;
    const std::int64_t inner_extent = std::min(factor, extent);
    Expr reconstructed =
        Expr(outer_var) * make_int(factor) + Expr(inner_var);
    Stmt body = substitute_stmt(node->body, {{var, reconstructed}});
    if (extent % factor != 0) {
      body = make_if(lt(reconstructed, make_int(extent)), std::move(body));
    }
    return make_for(
        outer_var, outer_extent, node->for_kind,
        make_for(inner_var, inner_extent, ForKind::kSerial,
                 std::move(body)));
  });
  return result;
}

Stmt interchange_loops(const Stmt& stmt, const Var& outer_var,
                       const Var& inner_var) {
  TVMBO_CHECK(stmt != nullptr) << "interchange of null statement";
  bool applied = false;
  Stmt result = rewrite(stmt, [&](const ForNode* node) -> Stmt {
    if (node->var.get() != outer_var.get()) return nullptr;
    // Walk through guard Ifs between the two loops. Such guards cannot
    // reference the inner loop's variable (it is not yet in scope), so
    // hoisting the inner loop above them is always sound; the guards stay
    // attached to the outer loop's body.
    std::vector<Expr> guards;
    const StmtNode* cursor = node->body.get();
    while (cursor->kind() == StmtKind::kIfThenElse) {
      const auto* guard = static_cast<const IfThenElseNode*>(cursor);
      TVMBO_CHECK(guard->else_case == nullptr)
          << "interchange cannot cross an if/else";
      guards.push_back(guard->condition);
      cursor = guard->then_case.get();
    }
    TVMBO_CHECK(cursor->kind() == StmtKind::kFor)
        << "interchange requires perfect nesting: the body of '"
        << outer_var->name << "' is not a single (guarded) loop";
    const auto* inner = static_cast<const ForNode*>(cursor);
    TVMBO_CHECK(inner->var.get() == inner_var.get())
        << "loop '" << inner_var->name << "' is not directly inside '"
        << outer_var->name << "'";
    applied = true;
    Stmt body = inner->body;
    for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
      body = make_if(*it, std::move(body));
    }
    return make_for(inner->var, inner->extent, inner->for_kind,
                    make_for(node->var, node->extent, node->for_kind,
                             std::move(body)));
  });
  TVMBO_CHECK(applied) << "no loop over '" << outer_var->name
                       << "' found for interchange";
  return result;
}

Stmt annotate_loop(const Stmt& stmt, const Var& var, ForKind kind) {
  TVMBO_CHECK(stmt != nullptr && var != nullptr)
      << "annotate of null input";
  bool applied = false;
  Stmt result = rewrite(stmt, [&](const ForNode* node) -> Stmt {
    if (node->var.get() != var.get()) return nullptr;
    applied = true;
    if (node->for_kind == kind) return nullptr;
    return make_for(node->var, node->extent, kind, node->body);
  });
  TVMBO_CHECK(applied) << "no loop over '" << var->name << "' to annotate";
  if (analysis::kind_requires_race_proof(kind)) {
    analysis::require_race_free(result, var, "annotate_loop");
  }
  return result;
}

}  // namespace tvmbo::te
