#include "te/interp.h"

#include <algorithm>
#include <cmath>

namespace tvmbo::te {

void Interpreter::bind(const Tensor& tensor, runtime::NDArray* array) {
  TVMBO_CHECK(tensor != nullptr && array != nullptr)
      << "bind of null tensor or array";
  TVMBO_CHECK(tensor->shape == array->shape())
      << "shape mismatch binding tensor '" << tensor->name << "'";
  for (auto& [existing, buffer] : buffers_) {
    if (existing == tensor.get()) {
      buffer = array;
      return;
    }
  }
  buffers_.emplace_back(tensor.get(), array);
}

runtime::NDArray* Interpreter::buffer_for(const TensorNode* tensor) {
  for (const auto& [existing, buffer] : buffers_) {
    if (existing == tensor) return buffer;
  }
  TVMBO_CHECK(false) << "tensor '" << tensor->name
                     << "' is not bound (placeholder/output missing, or "
                        "intermediate outside its Realize region)";
  return nullptr;
}

std::int64_t* Interpreter::var_slot(const VarNode* var) {
  // Innermost binding wins (loop vars are unique, but scan back to front
  // keeps semantics obvious).
  for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
    if (it->var == var) return &it->value;
  }
  TVMBO_CHECK(false) << "unbound variable '" << var->name << "'";
  return nullptr;
}

std::int64_t Interpreter::eval_i(const ExprNode* expr) {
  switch (expr->kind()) {
    case ExprKind::kIntImm:
      return static_cast<const IntImmNode*>(expr)->value;
    case ExprKind::kVar:
      return *var_slot(static_cast<const VarNode*>(expr));
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr);
      const std::int64_t a = eval_i(node->a.get());
      const std::int64_t b = eval_i(node->b.get());
      switch (node->op) {
        case BinaryOp::kAdd: return a + b;
        case BinaryOp::kSub: return a - b;
        case BinaryOp::kMul: return a * b;
        case BinaryOp::kDiv:
          TVMBO_CHECK_NE(b, 0) << "division by zero";
          return a / b;
        case BinaryOp::kFloorDiv: {
          TVMBO_CHECK_NE(b, 0) << "floor_div by zero";
          std::int64_t q = a / b;
          if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
          return q;
        }
        case BinaryOp::kMod: {
          TVMBO_CHECK_NE(b, 0) << "mod by zero";
          std::int64_t q = a / b;
          if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
          return a - q * b;
        }
        case BinaryOp::kMin: return std::min(a, b);
        case BinaryOp::kMax: return std::max(a, b);
      }
      return 0;
    }
    case ExprKind::kCompare: {
      const auto* node = static_cast<const CompareNode*>(expr);
      const std::int64_t a = eval_i(node->a.get());
      const std::int64_t b = eval_i(node->b.get());
      switch (node->op) {
        case CmpOp::kLt: return a < b;
        case CmpOp::kLe: return a <= b;
        case CmpOp::kGt: return a > b;
        case CmpOp::kGe: return a >= b;
        case CmpOp::kEq: return a == b;
        case CmpOp::kNe: return a != b;
      }
      return 0;
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr);
      return eval_i(node->condition.get()) != 0
                 ? eval_i(node->true_value.get())
                 : eval_i(node->false_value.get());
    }
    default:
      TVMBO_CHECK(false) << "expression is not integer-valued";
      return 0;
  }
}

double Interpreter::eval_f(const ExprNode* expr) {
  switch (expr->kind()) {
    case ExprKind::kIntImm:
      return static_cast<double>(
          static_cast<const IntImmNode*>(expr)->value);
    case ExprKind::kFloatImm:
      return static_cast<const FloatImmNode*>(expr)->value;
    case ExprKind::kVar:
      return static_cast<double>(
          *var_slot(static_cast<const VarNode*>(expr)));
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr);
      const double a = eval_f(node->a.get());
      const double b = eval_f(node->b.get());
      switch (node->op) {
        case BinaryOp::kAdd: return a + b;
        case BinaryOp::kSub: return a - b;
        case BinaryOp::kMul: return a * b;
        case BinaryOp::kDiv: return a / b;
        case BinaryOp::kFloorDiv: return std::floor(a / b);
        case BinaryOp::kMod: return a - std::floor(a / b) * b;
        case BinaryOp::kMin: return std::min(a, b);
        case BinaryOp::kMax: return std::max(a, b);
      }
      return 0.0;
    }
    case ExprKind::kUnary: {
      const auto* node = static_cast<const UnaryNode*>(expr);
      const double x = eval_f(node->operand.get());
      switch (node->op) {
        case UnaryOp::kNeg: return -x;
        case UnaryOp::kAbs: return std::fabs(x);
        case UnaryOp::kSqrt: return std::sqrt(x);
        case UnaryOp::kExp: return std::exp(x);
        case UnaryOp::kLog: return std::log(x);
      }
      return 0.0;
    }
    case ExprKind::kCompare:
      return static_cast<double>(eval_i(expr));
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr);
      return eval_i(node->condition.get()) != 0
                 ? eval_f(node->true_value.get())
                 : eval_f(node->false_value.get());
    }
    case ExprKind::kTensorAccess: {
      const auto* node = static_cast<const TensorAccessNode*>(expr);
      runtime::NDArray* buffer = buffer_for(node->tensor.get());
      std::vector<std::int64_t> indices;
      indices.reserve(node->indices.size());
      for (const Expr& index : node->indices) {
        indices.push_back(eval_i(index.get()));
      }
      return buffer->read(indices);
    }
    case ExprKind::kReduce:
      TVMBO_CHECK(false) << "reduce marker survived lowering";
      return 0.0;
  }
  return 0.0;
}

void Interpreter::exec(const StmtNode* stmt) {
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt);
      env_.push_back({node->var.get(), 0});
      const std::size_t slot = env_.size() - 1;
      for (std::int64_t i = 0; i < node->extent; ++i) {
        env_[slot].value = i;
        exec(node->body.get());
      }
      env_.pop_back();
      return;
    }
    case StmtKind::kStore: {
      const auto* node = static_cast<const StoreNode*>(stmt);
      runtime::NDArray* buffer = buffer_for(node->tensor.get());
      std::vector<std::int64_t> indices;
      indices.reserve(node->indices.size());
      for (const Expr& index : node->indices) {
        indices.push_back(eval_i(index.get()));
      }
      buffer->write(indices, eval_f(node->value.get()));
      ++store_count_;
      return;
    }
    case StmtKind::kSeq: {
      for (const Stmt& child : static_cast<const SeqNode*>(stmt)->stmts) {
        exec(child.get());
      }
      return;
    }
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt);
      if (eval_i(node->condition.get()) != 0) {
        exec(node->then_case.get());
      } else if (node->else_case) {
        exec(node->else_case.get());
      }
      return;
    }
    case StmtKind::kRealize: {
      const auto* node = static_cast<const RealizeNode*>(stmt);
      // Allocate fresh storage for the intermediate, scoped to the region.
      auto array = std::make_unique<runtime::NDArray>(node->tensor->shape);
      buffers_.emplace_back(node->tensor.get(), array.get());
      realized_.push_back(std::move(array));
      exec(node->body.get());
      buffers_.pop_back();
      realized_.pop_back();
      return;
    }
  }
}

void Interpreter::run(const Stmt& stmt) {
  TVMBO_CHECK(stmt != nullptr) << "run of null statement";
  store_count_ = 0;
  exec(stmt.get());
}

Stmt run_schedule(
    const Schedule& schedule,
    const std::vector<std::pair<Tensor, runtime::NDArray*>>& bindings) {
  Stmt program = lower(schedule);
  Interpreter interp;
  for (const auto& [tensor, array] : bindings) {
    interp.bind(tensor, array);
  }
  interp.run(program);
  return program;
}

}  // namespace tvmbo::te
