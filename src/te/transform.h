// Loop-IR transformation and analysis passes — the slice of TVM's TIR
// pass pipeline this reproduction needs:
//
//   substitute_stmt   variable substitution through whole programs
//   simplify          constant folding, If-folding, extent-1 loop inlining,
//                     nested-Seq flattening
//   unroll_loops      expands ForKind::kUnrolled loops into straight-line
//                     sequences (what the schedule's unroll() means)
//   validate          structural verifier: every variable is bound by an
//                     enclosing loop, every tensor access matches rank,
//                     Realize regions cover intermediate uses
//   estimate_ops      static operation counts (loads/stores/flops) from
//                     loop extents — the cheap cost signal a compiler-side
//                     cost model starts from
#pragma once

#include <cstdint>
#include <vector>

#include "te/ir.h"

namespace tvmbo::te {

/// Substitutes variables in every expression of the statement tree.
Stmt substitute_stmt(const Stmt& stmt,
                     const std::vector<std::pair<Var, Expr>>& replacements);

/// Simplification pass. Applied transformations:
///  * expressions are rebuilt through the folding constructors,
///  * `if` with a constant condition folds to a branch (or vanishes),
///  * loops of extent 1 are inlined with their var replaced by 0,
///  * single-statement and nested sequences are flattened.
Stmt simplify(const Stmt& stmt);

/// Largest kUnrolled extent that unroll_loops expands by default. Shared
/// between the interpreter-side pass pipeline and the jit tier's pre-pass
/// (codegen/jit_program.cc) so "how much gets straight-lined" is decided
/// in exactly one place for every execution path.
inline constexpr std::int64_t kUnrollMaxExtent = 64;

/// Expands every kUnrolled loop with constant extent <= `max_extent` into
/// a Seq of bodies (larger unrolled loops are left intact, like TVM's
/// auto_max_step guard).
Stmt unroll_loops(const Stmt& stmt, std::int64_t max_extent = kUnrollMaxExtent);

/// Structural verification; throws CheckError with a diagnostic on the
/// first violation. Returns the number of statements visited.
std::size_t validate(const Stmt& stmt);

/// Static operation counts, multiplying through loop extents. Guards are
/// counted as if always taken (upper bound).
struct OpCounts {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t arithmetic = 0;  ///< binary/unary float ops
  std::uint64_t loop_iterations = 0;
};
OpCounts estimate_ops(const Stmt& stmt);

}  // namespace tvmbo::te
