// Pretty-printer for TE expressions and lowered loop IR, in a Python-like
// syntax resembling TVM's script printer. Used by examples ("show me the
// lowered code"), error messages, and golden structural tests.
#pragma once

#include <string>

#include "te/ir.h"

namespace tvmbo::te {

std::string to_string(const Expr& expr);
std::string to_string(const Stmt& stmt);

}  // namespace tvmbo::te
