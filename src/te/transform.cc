#include "te/transform.h"

#include <algorithm>

namespace tvmbo::te {

namespace {

// Rebuilds an expression through the folding constructors so constants
// introduced by substitution collapse.
Expr refold(const Expr& expr) {
  switch (expr->kind()) {
    case ExprKind::kIntImm:
    case ExprKind::kFloatImm:
    case ExprKind::kVar:
      return expr;
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr.get());
      return binary(node->op, refold(node->a), refold(node->b));
    }
    case ExprKind::kUnary: {
      const auto* node = static_cast<const UnaryNode*>(expr.get());
      return unary(node->op, refold(node->operand));
    }
    case ExprKind::kCompare: {
      const auto* node = static_cast<const CompareNode*>(expr.get());
      return compare(node->op, refold(node->a), refold(node->b));
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr.get());
      return select(refold(node->condition), refold(node->true_value),
                    refold(node->false_value));
    }
    case ExprKind::kTensorAccess: {
      const auto* node = static_cast<const TensorAccessNode*>(expr.get());
      std::vector<Expr> indices;
      indices.reserve(node->indices.size());
      for (const Expr& index : node->indices) {
        indices.push_back(refold(index));
      }
      return access(node->tensor, std::move(indices));
    }
    case ExprKind::kReduce:
      TVMBO_CHECK(false) << "reduce marker in lowered program";
  }
  return expr;
}

}  // namespace

Stmt substitute_stmt(
    const Stmt& stmt,
    const std::vector<std::pair<Var, Expr>>& replacements) {
  TVMBO_CHECK(stmt != nullptr) << "substitute on null statement";
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt.get());
      Stmt body = substitute_stmt(node->body, replacements);
      if (body.get() == node->body.get()) return stmt;
      return make_for(node->var, node->extent, node->for_kind,
                      std::move(body));
    }
    case StmtKind::kStore: {
      const auto* node = static_cast<const StoreNode*>(stmt.get());
      std::vector<Expr> indices;
      indices.reserve(node->indices.size());
      for (const Expr& index : node->indices) {
        indices.push_back(substitute(index, replacements));
      }
      return make_store(node->tensor, std::move(indices),
                        substitute(node->value, replacements));
    }
    case StmtKind::kSeq: {
      const auto* node = static_cast<const SeqNode*>(stmt.get());
      std::vector<Stmt> stmts;
      stmts.reserve(node->stmts.size());
      for (const Stmt& child : node->stmts) {
        stmts.push_back(substitute_stmt(child, replacements));
      }
      return make_seq(std::move(stmts));
    }
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      Stmt then_case = substitute_stmt(node->then_case, replacements);
      Stmt else_case = node->else_case
                           ? substitute_stmt(node->else_case, replacements)
                           : nullptr;
      return std::make_shared<IfThenElseNode>(
          substitute(node->condition, replacements), std::move(then_case),
          std::move(else_case));
    }
    case StmtKind::kRealize: {
      const auto* node = static_cast<const RealizeNode*>(stmt.get());
      return make_realize(node->tensor,
                          substitute_stmt(node->body, replacements));
    }
  }
  return stmt;
}

Stmt simplify(const Stmt& stmt) {
  TVMBO_CHECK(stmt != nullptr) << "simplify of null statement";
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt.get());
      if (node->extent == 1) {
        // Inline the single iteration: var := 0.
        Stmt body = substitute_stmt(node->body, {{node->var, make_int(0)}});
        return simplify(body);
      }
      return make_for(node->var, node->extent, node->for_kind,
                      simplify(node->body));
    }
    case StmtKind::kStore: {
      const auto* node = static_cast<const StoreNode*>(stmt.get());
      std::vector<Expr> indices;
      indices.reserve(node->indices.size());
      for (const Expr& index : node->indices) {
        indices.push_back(refold(index));
      }
      return make_store(node->tensor, std::move(indices),
                        refold(node->value));
    }
    case StmtKind::kSeq: {
      const auto* node = static_cast<const SeqNode*>(stmt.get());
      std::vector<Stmt> stmts;
      for (const Stmt& child : node->stmts) {
        Stmt simplified = simplify(child);
        if (simplified == nullptr) continue;  // folded away
        if (simplified->kind() == StmtKind::kSeq) {
          // Flatten nested sequences.
          for (const Stmt& inner :
               static_cast<const SeqNode*>(simplified.get())->stmts) {
            stmts.push_back(inner);
          }
        } else {
          stmts.push_back(std::move(simplified));
        }
      }
      if (stmts.empty()) return nullptr;
      return make_seq(std::move(stmts));
    }
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      const Expr condition = refold(node->condition);
      Stmt then_case = simplify(node->then_case);
      Stmt else_case =
          node->else_case ? simplify(node->else_case) : nullptr;
      // Constant conditions fold; a vanished branch folds too.
      if (condition->kind() == ExprKind::kIntImm) {
        const auto* imm = static_cast<const IntImmNode*>(condition.get());
        return imm->value != 0 ? then_case : else_case;
      }
      if (then_case == nullptr && else_case == nullptr) return nullptr;
      if (then_case == nullptr) {
        // Invert by swapping: keep structure simple — emit `if (!c)` via
        // select-style comparison flip is overkill; keep an empty-then If.
        then_case = else_case;
        else_case = nullptr;
        return std::make_shared<IfThenElseNode>(
            eq(condition, make_int(0)), std::move(then_case), nullptr);
      }
      return std::make_shared<IfThenElseNode>(
          condition, std::move(then_case), std::move(else_case));
    }
    case StmtKind::kRealize: {
      const auto* node = static_cast<const RealizeNode*>(stmt.get());
      Stmt body = simplify(node->body);
      if (body == nullptr) return nullptr;
      return make_realize(node->tensor, std::move(body));
    }
  }
  return stmt;
}

Stmt unroll_loops(const Stmt& stmt, std::int64_t max_extent) {
  TVMBO_CHECK(stmt != nullptr) << "unroll of null statement";
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt.get());
      Stmt body = unroll_loops(node->body, max_extent);
      if (node->for_kind == ForKind::kUnrolled &&
          node->extent <= max_extent) {
        std::vector<Stmt> iterations;
        iterations.reserve(static_cast<std::size_t>(node->extent));
        for (std::int64_t i = 0; i < node->extent; ++i) {
          iterations.push_back(
              substitute_stmt(body, {{node->var, make_int(i)}}));
        }
        return make_seq(std::move(iterations));
      }
      return make_for(node->var, node->extent, node->for_kind,
                      std::move(body));
    }
    case StmtKind::kSeq: {
      const auto* node = static_cast<const SeqNode*>(stmt.get());
      std::vector<Stmt> stmts;
      stmts.reserve(node->stmts.size());
      for (const Stmt& child : node->stmts) {
        stmts.push_back(unroll_loops(child, max_extent));
      }
      return make_seq(std::move(stmts));
    }
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      return std::make_shared<IfThenElseNode>(
          node->condition, unroll_loops(node->then_case, max_extent),
          node->else_case ? unroll_loops(node->else_case, max_extent)
                          : nullptr);
    }
    case StmtKind::kRealize: {
      const auto* node = static_cast<const RealizeNode*>(stmt.get());
      return make_realize(node->tensor,
                          unroll_loops(node->body, max_extent));
    }
    case StmtKind::kStore:
      return stmt;
  }
  return stmt;
}

namespace {

struct Validator {
  std::vector<const VarNode*> bound_vars;
  std::vector<const TensorNode*> realized;
  std::size_t visited = 0;

  void check_expr(const ExprNode* expr) {
    switch (expr->kind()) {
      case ExprKind::kIntImm:
      case ExprKind::kFloatImm:
        return;
      case ExprKind::kVar: {
        const auto* var = static_cast<const VarNode*>(expr);
        TVMBO_CHECK(std::find(bound_vars.begin(), bound_vars.end(), var) !=
                    bound_vars.end())
            << "validate: variable '" << var->name
            << "' used outside any enclosing loop";
        return;
      }
      case ExprKind::kBinary: {
        const auto* node = static_cast<const BinaryNode*>(expr);
        check_expr(node->a.get());
        check_expr(node->b.get());
        return;
      }
      case ExprKind::kUnary:
        check_expr(static_cast<const UnaryNode*>(expr)->operand.get());
        return;
      case ExprKind::kCompare: {
        const auto* node = static_cast<const CompareNode*>(expr);
        check_expr(node->a.get());
        check_expr(node->b.get());
        return;
      }
      case ExprKind::kSelect: {
        const auto* node = static_cast<const SelectNode*>(expr);
        check_expr(node->condition.get());
        check_expr(node->true_value.get());
        check_expr(node->false_value.get());
        return;
      }
      case ExprKind::kTensorAccess: {
        const auto* node = static_cast<const TensorAccessNode*>(expr);
        TVMBO_CHECK_EQ(node->indices.size(), node->tensor->shape.size())
            << "validate: access rank mismatch on tensor '"
            << node->tensor->name << "'";
        for (const Expr& index : node->indices) check_expr(index.get());
        return;
      }
      case ExprKind::kReduce:
        TVMBO_CHECK(false)
            << "validate: reduce marker in lowered program";
    }
  }

  void check_stmt(const StmtNode* stmt) {
    ++visited;
    switch (stmt->kind()) {
      case StmtKind::kFor: {
        const auto* node = static_cast<const ForNode*>(stmt);
        TVMBO_CHECK(std::find(bound_vars.begin(), bound_vars.end(),
                              node->var.get()) == bound_vars.end())
            << "validate: loop variable '" << node->var->name
            << "' shadows an enclosing binding";
        bound_vars.push_back(node->var.get());
        check_stmt(node->body.get());
        bound_vars.pop_back();
        return;
      }
      case StmtKind::kStore: {
        const auto* node = static_cast<const StoreNode*>(stmt);
        TVMBO_CHECK_EQ(node->indices.size(), node->tensor->shape.size())
            << "validate: store rank mismatch on tensor '"
            << node->tensor->name << "'";
        for (const Expr& index : node->indices) check_expr(index.get());
        check_expr(node->value.get());
        return;
      }
      case StmtKind::kSeq: {
        for (const Stmt& child :
             static_cast<const SeqNode*>(stmt)->stmts) {
          check_stmt(child.get());
        }
        return;
      }
      case StmtKind::kIfThenElse: {
        const auto* node = static_cast<const IfThenElseNode*>(stmt);
        check_expr(node->condition.get());
        check_stmt(node->then_case.get());
        if (node->else_case) check_stmt(node->else_case.get());
        return;
      }
      case StmtKind::kRealize: {
        const auto* node = static_cast<const RealizeNode*>(stmt);
        realized.push_back(node->tensor.get());
        check_stmt(node->body.get());
        realized.pop_back();
        return;
      }
    }
  }
};

}  // namespace

std::size_t validate(const Stmt& stmt) {
  TVMBO_CHECK(stmt != nullptr) << "validate of null statement";
  Validator validator;
  validator.check_stmt(stmt.get());
  return validator.visited;
}

namespace {

void count_expr(const ExprNode* expr, std::uint64_t weight,
                OpCounts& counts) {
  switch (expr->kind()) {
    case ExprKind::kIntImm:
    case ExprKind::kFloatImm:
    case ExprKind::kVar:
      return;
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr);
      counts.arithmetic += weight;
      count_expr(node->a.get(), weight, counts);
      count_expr(node->b.get(), weight, counts);
      return;
    }
    case ExprKind::kUnary:
      counts.arithmetic += weight;
      count_expr(static_cast<const UnaryNode*>(expr)->operand.get(), weight,
                 counts);
      return;
    case ExprKind::kCompare: {
      const auto* node = static_cast<const CompareNode*>(expr);
      counts.arithmetic += weight;
      count_expr(node->a.get(), weight, counts);
      count_expr(node->b.get(), weight, counts);
      return;
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr);
      count_expr(node->condition.get(), weight, counts);
      count_expr(node->true_value.get(), weight, counts);
      count_expr(node->false_value.get(), weight, counts);
      return;
    }
    case ExprKind::kTensorAccess: {
      const auto* node = static_cast<const TensorAccessNode*>(expr);
      counts.loads += weight;
      for (const Expr& index : node->indices) {
        count_expr(index.get(), weight, counts);
      }
      return;
    }
    case ExprKind::kReduce:
      return;
  }
}

void count_stmt(const StmtNode* stmt, std::uint64_t weight,
                OpCounts& counts) {
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt);
      const std::uint64_t inner =
          weight * static_cast<std::uint64_t>(node->extent);
      counts.loop_iterations += inner;
      count_stmt(node->body.get(), inner, counts);
      return;
    }
    case StmtKind::kStore: {
      const auto* node = static_cast<const StoreNode*>(stmt);
      counts.stores += weight;
      for (const Expr& index : node->indices) {
        count_expr(index.get(), weight, counts);
      }
      count_expr(node->value.get(), weight, counts);
      return;
    }
    case StmtKind::kSeq:
      for (const Stmt& child : static_cast<const SeqNode*>(stmt)->stmts) {
        count_stmt(child.get(), weight, counts);
      }
      return;
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt);
      count_expr(node->condition.get(), weight, counts);
      count_stmt(node->then_case.get(), weight, counts);
      if (node->else_case) count_stmt(node->else_case.get(), weight, counts);
      return;
    }
    case StmtKind::kRealize:
      count_stmt(static_cast<const RealizeNode*>(stmt)->body.get(), weight,
                 counts);
      return;
  }
}

}  // namespace

OpCounts estimate_ops(const Stmt& stmt) {
  TVMBO_CHECK(stmt != nullptr) << "estimate_ops of null statement";
  OpCounts counts;
  count_stmt(stmt.get(), 1, counts);
  return counts;
}

}  // namespace tvmbo::te
