// Schedule primitives applied directly to lowered loop IR — the TIR-level
// counterparts of split and reorder.
//
// The TE schedule API covers compute DAGs; LU and Cholesky, however, are
// built straight in the loop IR (kernels/te_kernels.h) because of their
// loop-carried k dependence. These transforms tile such programs after
// the fact:
//
//   Stmt lu = build_lu_program(a, n);
//   Var io, ii, jo, ji;
//   lu = split_loop(lu, i2, ty, &io, &ii);     // i2 -> io, ii
//   lu = split_loop(lu, j, tx, &jo, &ji);      // j  -> jo, ji
//   lu = interchange_loops(lu, ii, jo);        // {io, jo, ii, ji}
//
// Every transform is semantics-preserving by construction: split guards
// the tail when the factor doesn't divide, and interchange refuses
// non-perfectly-nested pairs. Legality with respect to data dependences is
// the caller's responsibility (as with TVM schedule primitives).
#pragma once

#include "te/ir.h"

namespace tvmbo::te {

/// Splits the loop over `var` by `factor`:
///   for var in extent -> for outer in ceil(extent/factor):
///                          for inner in min(factor, extent):
/// with var := outer*factor + inner substituted in the body, guarded when
/// factor does not divide the extent. The new loop variables are returned
/// through `outer` / `inner` (when non-null). Throws CheckError when no
/// loop over `var` exists.
Stmt split_loop(const Stmt& stmt, const Var& var, std::int64_t factor,
                Var* outer = nullptr, Var* inner = nullptr);

/// Interchanges two loops where `inner_var`'s loop is the *direct* body of
/// `outer_var`'s loop (perfect nesting). Throws CheckError otherwise.
Stmt interchange_loops(const Stmt& stmt, const Var& outer_var,
                       const Var& inner_var);

/// Finds the loop over `var`; nullptr when absent (search helper).
const ForNode* find_loop(const Stmt& stmt, const Var& var);

/// Re-annotates the loop over `var` with `kind` (e.g. kParallel for the
/// loop-IR-built LU/Cholesky programs, which never pass through
/// Schedule/lower and so cannot use Stage::parallel). Annotations that
/// assert concurrent execution (kParallel, kVectorized) are gated on a
/// machine-checked race-freedom proof (analysis/dependence.h); the call
/// throws CheckError with rule `parallel-loop-race` when the proof fails.
/// Also throws when no loop over `var` exists.
Stmt annotate_loop(const Stmt& stmt, const Var& var, ForKind kind);

}  // namespace tvmbo::te
