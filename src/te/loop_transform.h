// Schedule primitives applied directly to lowered loop IR — the TIR-level
// counterparts of split and reorder.
//
// The TE schedule API covers compute DAGs; LU and Cholesky, however, are
// built straight in the loop IR (kernels/te_kernels.h) because of their
// loop-carried k dependence. These transforms tile such programs after
// the fact:
//
//   Stmt lu = build_lu_program(a, n);
//   Var io, ii, jo, ji;
//   lu = split_loop(lu, i2, ty, &io, &ii);     // i2 -> io, ii
//   lu = split_loop(lu, j, tx, &jo, &ji);      // j  -> jo, ji
//   lu = interchange_loops(lu, ii, jo);        // {io, jo, ii, ji}
//
// Every transform is semantics-preserving by construction: split guards
// the tail when the factor doesn't divide, and interchange refuses
// non-perfectly-nested pairs. Legality with respect to data dependences is
// the caller's responsibility (as with TVM schedule primitives).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "te/ir.h"

namespace tvmbo::te {

/// Splits the loop over `var` by `factor`:
///   for var in extent -> for outer in ceil(extent/factor):
///                          for inner in min(factor, extent):
/// with var := outer*factor + inner substituted in the body, guarded when
/// factor does not divide the extent. The new loop variables are returned
/// through `outer` / `inner` (when non-null). Throws CheckError when no
/// loop over `var` exists.
Stmt split_loop(const Stmt& stmt, const Var& var, std::int64_t factor,
                Var* outer = nullptr, Var* inner = nullptr);

/// Interchanges two loops where `inner_var`'s loop is the *direct* body of
/// `outer_var`'s loop (perfect nesting). Throws CheckError otherwise.
Stmt interchange_loops(const Stmt& stmt, const Var& outer_var,
                       const Var& inner_var);

/// Finds the loop over `var`; nullptr when absent (search helper).
const ForNode* find_loop(const Stmt& stmt, const Var& var);

/// Re-annotates the loop over `var` with `kind` (e.g. kParallel for the
/// loop-IR-built LU/Cholesky programs, which never pass through
/// Schedule/lower and so cannot use Stage::parallel). Annotations that
/// assert concurrent execution (kParallel, kVectorized) are gated on a
/// machine-checked race-freedom proof (analysis/dependence.h); the call
/// throws CheckError with rule `parallel-loop-race` when the proof fails.
/// Also throws when no loop over `var` exists.
Stmt annotate_loop(const Stmt& stmt, const Var& var, ForKind kind);

/// Array packing: snapshots the window of `source` read under the loop
/// over `at_var` into a contiguous Realize'd scratch buffer and redirects
/// every provably in-window read to it, so strided inner-loop traversals
/// become stride-1. The transform is machine-checked end to end:
///
///  * the window per tensor dimension is inferred from the first affine
///    read (its loop-invariant part is the window origin, the inner-loop
///    span its width, clamped to the full extent when it covers it);
///  * a read is redirected only when the affine engine proves, under the
///    read's own path constraints (split tail guards, triangular guards),
///    that its offset from the origin stays inside [0, width) — everything
///    else keeps reading `source` directly (conservative, still correct);
///  * every write to `source` inside the region must be proven to land
///    outside the window (rule `pack-aliases-write` otherwise), so no
///    redirected read can observe a stale copy;
///  * the copy nest bounds-guards any source index it cannot prove in
///    range, and the scratch is zero-filled by Realize on every entry, so
///    all three execution tiers stay bit-identical.
///
/// Placement: with `wrap_outside` false the Realize + copy wrap the
/// *body* of the at-loop (a fresh window per iteration); with true they
/// replace the whole loop (one hoisted window) — required when the
/// at-loop executes concurrently, since a Realize inside a kParallel/
/// kVectorized loop is rejected by the race prover. `perm` permutes the
/// tensor's dimensions in the scratch layout (e.g. {1, 0} transposes);
/// width-1 dimensions are dropped from the scratch shape. Dimensions in
/// `invariant_dims` must be loop-invariant across the region for a read
/// to qualify (how LU/Cholesky pin the pack to the pivot column k).
/// Throws CheckError `pack-no-reads` when no read qualifies.
Stmt pack_reads(const Stmt& root, const Tensor& source, const Var& at_var,
                bool wrap_outside, const std::vector<std::size_t>& perm,
                const std::vector<std::size_t>& invariant_dims,
                const std::string& scratch_name);

}  // namespace tvmbo::te
