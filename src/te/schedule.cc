#include "te/schedule.h"

#include <algorithm>
#include <array>

namespace tvmbo::te {

Stage::Stage(Tensor tensor) : tensor_(std::move(tensor)) {
  TVMBO_CHECK(tensor_->is_compute())
      << "only compute tensors have schedulable stages";
  // Initial leaf order: data axes outermost, then reduction axes —
  // matching TVM's default nest for create_schedule.
  leaves_ = tensor_->axis;
  leaves_.insert(leaves_.end(), tensor_->reduce_axes.begin(),
                 tensor_->reduce_axes.end());
}

std::size_t Stage::leaf_position(const IterVar& iter) const {
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    if (leaves_[i].get() == iter.get()) return i;
  }
  TVMBO_CHECK(false) << "iter var '" << (iter ? iter->var->name : "<null>")
                     << "' is not a current leaf of stage '"
                     << tensor_->name << "'";
  return 0;
}

std::pair<IterVar, IterVar> Stage::split(const IterVar& parent,
                                         std::int64_t factor) {
  TVMBO_CHECK_GT(factor, 0) << "split factor must be positive";
  const std::size_t pos = leaf_position(parent);
  const std::int64_t extent = parent->extent;
  const std::int64_t outer_extent = (extent + factor - 1) / factor;

  SplitRelation rel;
  rel.parent = parent;
  rel.factor = factor;
  rel.exact = (extent % factor == 0);
  rel.outer = make_iter(parent->var->name + ".outer", outer_extent,
                        parent->kind);
  rel.inner = make_iter(parent->var->name + ".inner",
                        std::min(factor, extent), parent->kind);
  // Replace the parent leaf with (outer, inner) in place.
  leaves_[pos] = rel.outer;
  leaves_.insert(leaves_.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                 rel.inner);
  splits_.push_back(rel);
  return {rel.outer, rel.inner};
}

IterVar Stage::fuse(const IterVar& outer, const IterVar& inner) {
  const std::size_t pos_outer = leaf_position(outer);
  const std::size_t pos_inner = leaf_position(inner);
  TVMBO_CHECK_EQ(pos_inner, pos_outer + 1)
      << "fuse requires adjacent leaves (outer immediately before inner)";
  TVMBO_CHECK(outer->kind == inner->kind)
      << "cannot fuse a data axis with a reduction axis";

  FuseRelation rel;
  rel.outer = outer;
  rel.inner = inner;
  rel.fused = make_iter(outer->var->name + "." + inner->var->name +
                            ".fused",
                        outer->extent * inner->extent, outer->kind);
  leaves_[pos_outer] = rel.fused;
  leaves_.erase(leaves_.begin() + static_cast<std::ptrdiff_t>(pos_inner));
  fuses_.push_back(rel);
  return rel.fused;
}

void Stage::reorder(const std::vector<IterVar>& order) {
  TVMBO_CHECK(!order.empty()) << "reorder with empty order";
  // Gather the current positions of the named leaves.
  std::vector<std::size_t> positions;
  positions.reserve(order.size());
  for (const IterVar& iter : order) {
    const std::size_t pos = leaf_position(iter);
    TVMBO_CHECK(std::find(positions.begin(), positions.end(), pos) ==
                positions.end())
        << "duplicate iter var in reorder";
    positions.push_back(pos);
  }
  std::vector<std::size_t> sorted = positions;
  std::sort(sorted.begin(), sorted.end());
  // Place the i-th named var at the i-th smallest of the occupied slots.
  std::vector<IterVar> new_leaves = leaves_;
  for (std::size_t i = 0; i < order.size(); ++i) {
    new_leaves[sorted[i]] = order[i];
  }
  leaves_ = std::move(new_leaves);
}

std::array<IterVar, 4> Stage::tile(const IterVar& y, const IterVar& x,
                                   std::int64_t y_factor,
                                   std::int64_t x_factor) {
  auto [yo, yi] = split(y, y_factor);
  auto [xo, xi] = split(x, x_factor);
  reorder({yo, xo, yi, xi});
  return {yo, xo, yi, xi};
}

void Stage::compute_inline() {
  TVMBO_CHECK(!tensor_->is_reduction)
      << "cannot inline reduction stage '" << tensor_->name << "'";
  inlined_ = true;
}

void Stage::compute_at(const Stage& consumer, const IterVar& leaf) {
  TVMBO_CHECK(!inlined_) << "stage is already inlined";
  TVMBO_CHECK(&consumer != this) << "cannot attach a stage to itself";
  // The leaf must currently be a leaf of the consumer.
  bool found = false;
  for (const IterVar& candidate : consumer.leaf_iter_vars()) {
    if (candidate.get() == leaf.get()) {
      found = true;
      break;
    }
  }
  TVMBO_CHECK(found) << "iter var '" << (leaf ? leaf->var->name : "<null>")
                     << "' is not a leaf of stage '"
                     << consumer.tensor()->name << "'";
  attach_stage_ = &consumer;
  attach_leaf_ = leaf;
}

void Stage::unroll(const IterVar& iter) {
  leaf_position(iter);  // validity check
  annotations_.emplace_back(iter, ForKind::kUnrolled);
}

void Stage::vectorize(const IterVar& iter) {
  // Any leaf may be vectorized (not just the innermost): legality is not
  // positional but semantic, and lowering demands a machine-checked
  // race-freedom proof for every kVectorized loop.
  leaf_position(iter);  // validity check
  annotations_.emplace_back(iter, ForKind::kVectorized);
}

void Stage::parallel(const IterVar& iter) {
  leaf_position(iter);
  annotations_.emplace_back(iter, ForKind::kParallel);
}

void Stage::cache_write(const Tensor& source) {
  TVMBO_CHECK(source != nullptr) << "cache_write of null tensor";
  TVMBO_CHECK(source.get() != tensor_.get())
      << "stage '" << tensor_->name << "' cannot pack itself";
  bool is_input = false;
  for (const Tensor& input : tensor_->inputs()) {
    if (input.get() == source.get()) {
      is_input = true;
      break;
    }
  }
  TVMBO_CHECK(is_input) << "tensor '" << source->name
                        << "' is not an input of stage '" << tensor_->name
                        << "'";
  for (const Tensor& existing : pack_sources_) {
    TVMBO_CHECK(existing.get() != source.get())
        << "tensor '" << source->name << "' is already packed by stage '"
        << tensor_->name << "'";
  }
  pack_sources_.push_back(source);
}

ForKind Stage::annotation(const IterVar& iter) const {
  for (const auto& [annotated, kind] : annotations_) {
    if (annotated.get() == iter.get()) return kind;
  }
  return ForKind::kSerial;
}

bool Stage::needs_guard() const {
  return std::any_of(splits_.begin(), splits_.end(),
                     [](const SplitRelation& rel) { return !rel.exact; });
}

Schedule::Schedule(std::vector<Tensor> outputs)
    : outputs_(std::move(outputs)) {
  TVMBO_CHECK(!outputs_.empty()) << "schedule requires at least one output";
  tensors_ = topo_sort(outputs_);
  for (const Tensor& tensor : tensors_) {
    if (tensor->is_compute()) {
      stages_.push_back(std::make_unique<Stage>(tensor));
    }
  }
}

Stage& Schedule::operator[](const Tensor& tensor) {
  for (const auto& stage : stages_) {
    if (stage->tensor().get() == tensor.get()) return *stage;
  }
  TVMBO_CHECK(false) << "tensor '" << (tensor ? tensor->name : "<null>")
                     << "' has no stage in this schedule";
  return *stages_[0];
}

const Stage& Schedule::operator[](const Tensor& tensor) const {
  return const_cast<Schedule&>(*this)[tensor];
}

}  // namespace tvmbo::te
