// Tensors and compute operations of the TE language.
//
// Two flavours, as in TVM:
//   placeholder(shape, name)           — an input bound at execution time
//   compute(shape, name, fcompute)     — defined by an expression of its
//                                        data axes (and optional reduction
//                                        axes created with reduce_axis()).
//
// Example (the paper's 3mm, §4):
//   auto A = placeholder({N, L}, "A");
//   auto B = placeholder({L, M}, "B");
//   auto k = reduce_axis(L, "k");
//   auto E = compute({N, M}, "E", [&](const std::vector<Var>& i) {
//     return sum(access(A, {i[0], k->var}) * access(B, {k->var, i[1]}),
//                {k->var});
//   }, {k});
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "te/expr.h"

namespace tvmbo::te {

enum class IterKind { kData, kReduce };

/// One iteration axis: a variable plus its (static) extent.
struct IterVarNode {
  Var var;
  std::int64_t extent = 0;
  IterKind kind = IterKind::kData;
};
using IterVar = std::shared_ptr<IterVarNode>;

IterVar make_iter(const std::string& name, std::int64_t extent,
                  IterKind kind);

/// Creates a reduction axis of the given extent (te.reduce_axis).
IterVar reduce_axis(std::int64_t extent, const std::string& name);

enum class TensorKind { kPlaceholder, kCompute };

class TensorNode {
 public:
  TensorKind tensor_kind;
  std::string name;
  std::vector<std::int64_t> shape;

  // Compute-only fields:
  std::vector<IterVar> axis;         ///< data axes, one per shape dim
  std::vector<IterVar> reduce_axes;  ///< reduction axes referenced by body
  Expr body;                         ///< value expression (reduce unwrapped)
  ReduceKind reduce_kind = ReduceKind::kSum;
  bool is_reduction = false;

  bool is_placeholder() const {
    return tensor_kind == TensorKind::kPlaceholder;
  }
  bool is_compute() const { return tensor_kind == TensorKind::kCompute; }

  /// Tensors this compute reads (empty for placeholders).
  std::vector<Tensor> inputs() const;

  /// Identity element of the reduction (0 for sum, -inf/+inf for max/min).
  double reduce_identity() const;
};

/// Declares an input tensor.
Tensor placeholder(std::vector<std::int64_t> shape, const std::string& name);

/// Declares a computed tensor. `fcompute` receives one Var per output
/// dimension and returns the value expression; a reduction body must be a
/// single sum()/max_reduce()/min_reduce() whose axes exactly match the vars
/// of `reduce_axes`.
Tensor compute(std::vector<std::int64_t> shape, const std::string& name,
               const std::function<Expr(const std::vector<Var>&)>& fcompute,
               std::vector<IterVar> reduce_axes = {});

/// Topological order of the compute DAG ending at `outputs` (inputs first).
std::vector<Tensor> topo_sort(const std::vector<Tensor>& outputs);

}  // namespace tvmbo::te
