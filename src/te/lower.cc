#include "te/lower.h"

#include <algorithm>

#include "analysis/affine.h"
#include "analysis/dependence.h"
#include "te/loop_transform.h"
#include "te/printer.h"

namespace tvmbo::te {

namespace {

using analysis::AffineForm;
using analysis::analyze_affine;

// Maps every original axis var of the stage to an expression over the
// final leaf vars, and builds the guard condition for non-exact splits.
struct AxisReconstruction {
  std::vector<std::pair<Var, Expr>> substitution;  // original var -> expr
  Expr guard;  // null when no guard needed
};

AxisReconstruction reconstruct_axes(const Stage& stage) {
  // Start from the leaves: each leaf var maps to itself.
  std::vector<std::pair<const IterVarNode*, Expr>> values;
  for (const IterVar& leaf : stage.leaf_iter_vars()) {
    values.emplace_back(leaf.get(), leaf->var);
  }
  auto lookup = [&values](const IterVar& iter) -> Expr {
    for (const auto& [node, expr] : values) {
      if (node == iter.get()) return expr;
    }
    return nullptr;
  };

  // Relations were appended in creation order; children are created after
  // their parents, so one reverse pass resolves everything. Splits and
  // fuses interleave in program order; replay both lists by walking a
  // merged reverse timeline (split and fuse vectors are individually
  // ordered; a var consumed by a later relation is produced by an earlier
  // one, so repeatedly sweeping until a fixpoint is simplest and cheap).
  AxisReconstruction result;
  Expr guard;  // conjunction of tail conditions

  bool progress = true;
  std::vector<const SplitRelation*> pending_splits;
  for (const SplitRelation& rel : stage.split_relations()) {
    pending_splits.push_back(&rel);
  }
  std::vector<const FuseRelation*> pending_fuses;
  for (const FuseRelation& rel : stage.fuse_relations()) {
    pending_fuses.push_back(&rel);
  }
  while (progress && (!pending_splits.empty() || !pending_fuses.empty())) {
    progress = false;
    for (auto it = pending_splits.begin(); it != pending_splits.end();) {
      const SplitRelation& rel = **it;
      Expr outer = lookup(rel.outer);
      Expr inner = lookup(rel.inner);
      if (outer && inner) {
        Expr parent_value = outer * make_int(rel.factor) + inner;
        if (!rel.exact) {
          Expr in_bounds = lt(parent_value, make_int(rel.parent->extent));
          guard = guard ? logical_and(guard, in_bounds) : in_bounds;
        }
        values.emplace_back(rel.parent.get(), std::move(parent_value));
        it = pending_splits.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
    for (auto it = pending_fuses.begin(); it != pending_fuses.end();) {
      const FuseRelation& rel = **it;
      Expr fused = lookup(rel.fused);
      if (fused) {
        values.emplace_back(
            rel.outer.get(),
            floor_div(fused, make_int(rel.inner->extent)));
        values.emplace_back(
            rel.inner.get(),
            floor_mod(fused, make_int(rel.inner->extent)));
        it = pending_fuses.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  TVMBO_CHECK(pending_splits.empty() && pending_fuses.empty())
      << "unresolvable split/fuse relations in stage '"
      << stage.tensor()->name << "'";

  for (const IterVar& axis : stage.op_axis()) {
    Expr expr = lookup(axis);
    TVMBO_CHECK(expr != nullptr)
        << "data axis '" << axis->var->name << "' not reconstructible";
    result.substitution.emplace_back(axis->var, std::move(expr));
  }
  for (const IterVar& axis : stage.op_reduce_axis()) {
    Expr expr = lookup(axis);
    TVMBO_CHECK(expr != nullptr)
        << "reduce axis '" << axis->var->name << "' not reconstructible";
    result.substitution.emplace_back(axis->var, std::move(expr));
  }
  result.guard = std::move(guard);
  return result;
}

// Replaces reads of inlined tensors with their bodies, the producer's
// axis vars substituted by the access indices. Applied to fixpoint so
// chains of inlined stages collapse.
Expr inline_reads(const Expr& expr, const Schedule& schedule) {
  switch (expr->kind()) {
    case ExprKind::kIntImm:
    case ExprKind::kFloatImm:
    case ExprKind::kVar:
      return expr;
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr.get());
      return binary(node->op, inline_reads(node->a, schedule),
                    inline_reads(node->b, schedule));
    }
    case ExprKind::kUnary: {
      const auto* node = static_cast<const UnaryNode*>(expr.get());
      return unary(node->op, inline_reads(node->operand, schedule));
    }
    case ExprKind::kCompare: {
      const auto* node = static_cast<const CompareNode*>(expr.get());
      return compare(node->op, inline_reads(node->a, schedule),
                     inline_reads(node->b, schedule));
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr.get());
      return select(inline_reads(node->condition, schedule),
                    inline_reads(node->true_value, schedule),
                    inline_reads(node->false_value, schedule));
    }
    case ExprKind::kTensorAccess: {
      const auto* node = static_cast<const TensorAccessNode*>(expr.get());
      std::vector<Expr> indices;
      indices.reserve(node->indices.size());
      for (const Expr& index : node->indices) {
        indices.push_back(inline_reads(index, schedule));
      }
      const Tensor& tensor = node->tensor;
      if (tensor->is_compute() && schedule[tensor].inlined()) {
        std::vector<std::pair<Var, Expr>> bindings;
        bindings.reserve(tensor->axis.size());
        for (std::size_t d = 0; d < tensor->axis.size(); ++d) {
          bindings.emplace_back(tensor->axis[d]->var, indices[d]);
        }
        // The producer's body may itself read inlined tensors.
        return inline_reads(substitute(tensor->body, bindings), schedule);
      }
      return access(tensor, std::move(indices));
    }
    case ExprKind::kReduce: {
      const auto* node = static_cast<const ReduceNode*>(expr.get());
      return std::make_shared<ReduceNode>(
          node->reduce_kind, inline_reads(node->source, schedule),
          node->axes);
    }
  }
  return expr;
}

// --- compute_at region inference --------------------------------------------
// (Affine index decomposition now lives in analysis/affine.h, shared with
// the verifier and the dependence analyzer.)

Expr combine(ReduceKind kind, Expr current, Expr update) {
  switch (kind) {
    case ReduceKind::kSum:
      return std::move(current) + std::move(update);
    case ReduceKind::kMax:
      return max_expr(std::move(current), std::move(update));
    case ReduceKind::kMin:
      return min_expr(std::move(current), std::move(update));
  }
  return current;
}

/// The region of one producer dimension needed by one consumer access,
/// with loops outside the attachment point symbolic.
struct DimRegion {
  Expr lo;                 ///< symbolic lower bound (in outer vars)
  std::int64_t width = 0;  ///< static upper bound on (hi - lo + 1)
  bool full = false;       ///< fall back to [0, extent)
};

DimRegion infer_dim_region(
    const Expr& index,
    const std::vector<std::pair<const VarNode*, std::int64_t>>& inner_vars,
    const std::vector<std::pair<const VarNode*, Var>>& var_handles) {
  DimRegion region;
  const AffineForm form = analyze_affine(index.get());
  if (!form.affine) {
    region.full = true;
    return region;
  }
  // Outer vars stay symbolic in lo; inner vars contribute their span to
  // the width and their extreme to lo.
  Expr lo = make_int(form.constant);
  std::int64_t width = 1;
  for (const auto& [var, coeff] : form.terms) {
    std::int64_t inner_extent = -1;
    for (const auto& [inner, extent] : inner_vars) {
      if (inner == var) {
        inner_extent = extent;
        break;
      }
    }
    if (inner_extent < 0) {
      // Outer (symbolic) variable: rebuild from its owning handle.
      Var handle;
      for (const auto& [raw, owning] : var_handles) {
        if (raw == var) {
          handle = owning;
          break;
        }
      }
      if (handle == nullptr) {
        region.full = true;  // variable we cannot re-own: widen
        return region;
      }
      lo = lo + Expr(handle) * make_int(coeff);
    } else {
      // Inner variable spanning [0, extent-1].
      if (coeff >= 0) {
        width += coeff * (inner_extent - 1);
      } else {
        lo = lo + make_int(coeff * (inner_extent - 1));
        width += -coeff * (inner_extent - 1);
      }
    }
  }
  region.lo = std::move(lo);
  region.width = width;
  return region;
}

// Collects all accesses to `target` in an expression.
void collect_accesses(const ExprNode* expr, const TensorNode* target,
                      std::vector<const TensorAccessNode*>& out) {
  switch (expr->kind()) {
    case ExprKind::kIntImm:
    case ExprKind::kFloatImm:
    case ExprKind::kVar:
      return;
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr);
      collect_accesses(node->a.get(), target, out);
      collect_accesses(node->b.get(), target, out);
      return;
    }
    case ExprKind::kUnary:
      collect_accesses(static_cast<const UnaryNode*>(expr)->operand.get(),
                       target, out);
      return;
    case ExprKind::kCompare: {
      const auto* node = static_cast<const CompareNode*>(expr);
      collect_accesses(node->a.get(), target, out);
      collect_accesses(node->b.get(), target, out);
      return;
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr);
      collect_accesses(node->condition.get(), target, out);
      collect_accesses(node->true_value.get(), target, out);
      collect_accesses(node->false_value.get(), target, out);
      return;
    }
    case ExprKind::kTensorAccess: {
      const auto* node = static_cast<const TensorAccessNode*>(expr);
      if (node->tensor.get() == target) out.push_back(node);
      for (const Expr& index : node->indices) {
        collect_accesses(index.get(), target, out);
      }
      return;
    }
    case ExprKind::kReduce:
      collect_accesses(static_cast<const ReduceNode*>(expr)->source.get(),
                       target, out);
      return;
  }
}

/// Emits the attached producer's computation over the inferred region.
/// `consumer_value` is the consumer's already-substituted body; loops
/// strictly deeper than the attachment point are listed in `inner_vars`
/// with their extents.
Stmt emit_attached_producer(
    const Schedule& schedule, const Tensor& producer,
    const Expr& consumer_value,
    const std::vector<std::pair<const VarNode*, std::int64_t>>& inner_vars,
    const std::vector<std::pair<const VarNode*, Var>>& var_handles) {
  std::vector<const TensorAccessNode*> accesses;
  collect_accesses(consumer_value.get(), producer.get(), accesses);
  TVMBO_CHECK(!accesses.empty())
      << "compute_at: consumer does not read tensor '" << producer->name
      << "'";

  const std::size_t rank = producer->shape.size();
  std::vector<DimRegion> regions(rank);
  for (std::size_t d = 0; d < rank; ++d) {
    regions[d] =
        infer_dim_region(accesses[0]->indices[d], inner_vars, var_handles);
    // Multiple distinct access sites: widen conservatively to full.
    for (std::size_t a = 1; a < accesses.size(); ++a) {
      // Cheap structural identity check via printer-free pointer compare
      // is too strict; conservatively widen unless it is the same node.
      if (accesses[a]->indices[d].get() != accesses[0]->indices[d].get()) {
        regions[d].full = true;
      }
    }
    if (regions[d].full || regions[d].width >= producer->shape[d]) {
      regions[d].full = true;
      regions[d].lo = make_int(0);
      regions[d].width = producer->shape[d];
    }
  }

  // Fresh region loop vars; producer axis var := lo_d + p_d.
  std::vector<Var> region_vars;
  std::vector<std::pair<Var, Expr>> axis_binding;
  Expr guard;  // within-extent guard for non-full regions
  for (std::size_t d = 0; d < rank; ++d) {
    Var p = make_var(producer->name + "_r" + std::to_string(d));
    region_vars.push_back(p);
    Expr axis_value = regions[d].lo + Expr(p);
    if (!regions[d].full) {
      Expr in_bounds = logical_and(
          ge(axis_value, make_int(0)),
          lt(axis_value, make_int(producer->shape[d])));
      guard = guard ? logical_and(guard, in_bounds) : in_bounds;
    }
    axis_binding.emplace_back(producer->axis[d]->var,
                              std::move(axis_value));
  }

  std::vector<Expr> store_indices;
  for (const auto& [axis_var, value] : axis_binding) {
    store_indices.push_back(value);
  }

  auto wrap_region_loops = [&](Stmt body) {
    for (std::size_t d = rank; d > 0; --d) {
      body = make_for(region_vars[d - 1], regions[d - 1].width,
                      ForKind::kSerial, std::move(body));
    }
    return body;
  };

  const Expr producer_body =
      substitute(inline_reads(producer->body, schedule), axis_binding);
  if (!producer->is_reduction) {
    Stmt store = make_store(producer, store_indices, producer_body);
    if (guard) store = make_if(guard, std::move(store));
    return wrap_region_loops(std::move(store));
  }
  // Reduction producer: init the region, then run the full reduce loops.
  Stmt init = make_store(producer, store_indices,
                         make_float(producer->reduce_identity()));
  Stmt update = make_store(
      producer, store_indices,
      combine(producer->reduce_kind, access(producer, store_indices),
              producer_body));
  for (std::size_t r = producer->reduce_axes.size(); r > 0; --r) {
    const IterVar& axis = producer->reduce_axes[r - 1];
    update = make_for(axis->var, axis->extent, ForKind::kSerial,
                      std::move(update));
  }
  Stmt both = make_seq({std::move(init), std::move(update)});
  if (guard) both = make_if(guard, std::move(both));
  return wrap_region_loops(std::move(both));
}

Stmt wrap_loops(const Stage& stage, Stmt body,
                const std::vector<std::pair<const IterVarNode*, Stmt>>&
                    attachments = {}) {
  const auto& leaves = stage.leaf_iter_vars();
  // Concurrent-annotation legality (parallel reduction axes, compute_at
  // producers racing on a shared buffer, ...) is no longer asserted here
  // with hand-written rules: lower_stage() runs the affine dependence
  // analyzer over the finished nest and demands a race-freedom proof for
  // every kParallel/kVectorized loop.
  for (std::size_t i = leaves.size(); i > 0; --i) {
    const IterVar& leaf = leaves[i - 1];
    for (const auto& [attach_leaf, producer_stmt] : attachments) {
      if (attach_leaf == leaf.get()) {
        body = make_seq({producer_stmt, std::move(body)});
      }
    }
    body = make_for(leaf->var, leaf->extent, stage.annotation(leaf),
                    std::move(body));
  }
  return body;
}

}  // namespace

Stmt lower_stage(const Schedule& schedule, const Stage& stage,
                 bool is_output, const LowerOptions& options) {
  const Tensor& tensor = stage.tensor();
  AxisReconstruction axes = reconstruct_axes(stage);

  // Output element indices, in terms of leaf vars.
  std::vector<Expr> store_indices;
  store_indices.reserve(stage.op_axis().size());
  for (const IterVar& axis : stage.op_axis()) {
    store_indices.push_back(
        substitute(axis->var, axes.substitution));
  }
  Expr value = substitute(inline_reads(tensor->body, schedule),
                          axes.substitution);

  // Producers attached to this stage with compute_at: emit their
  // region-restricted computation just inside the attachment loop.
  std::vector<std::pair<const IterVarNode*, Stmt>> attachments;
  {
    const auto& leaves = stage.leaf_iter_vars();
    std::vector<std::pair<const VarNode*, Var>> var_handles;
    for (const IterVar& leaf : leaves) {
      var_handles.emplace_back(leaf->var.get(), leaf->var);
    }
    for (const Tensor& candidate : schedule.tensors()) {
      if (!candidate->is_compute()) continue;
      const Stage& producer_stage = schedule[candidate];
      if (!producer_stage.attached() ||
          producer_stage.attach_stage() != &stage) {
        continue;
      }
      // Loops strictly deeper than the attachment leaf are "inner".
      std::size_t attach_pos = leaves.size();
      for (std::size_t i = 0; i < leaves.size(); ++i) {
        if (leaves[i].get() == producer_stage.attach_leaf().get()) {
          attach_pos = i;
          break;
        }
      }
      TVMBO_CHECK_LT(attach_pos, leaves.size())
          << "compute_at leaf of '" << candidate->name
          << "' is no longer a leaf of '" << tensor->name
          << "' (reorder/split it before attaching)";
      std::vector<std::pair<const VarNode*, std::int64_t>> inner_vars;
      for (std::size_t i = attach_pos + 1; i < leaves.size(); ++i) {
        inner_vars.emplace_back(leaves[i]->var.get(), leaves[i]->extent);
      }
      attachments.emplace_back(
          producer_stage.attach_leaf().get(),
          emit_attached_producer(schedule, candidate, value, inner_vars,
                                 var_handles));
    }
  }

  Stmt result;
  if (!tensor->is_reduction) {
    Stmt store = make_store(tensor, store_indices, std::move(value));
    if (axes.guard) store = make_if(axes.guard, std::move(store));
    result = wrap_loops(stage, std::move(store), attachments);
  } else {
    // Init nest over the *original* data axes (unaffected by scheduling,
    // as TVM initializes the full output domain).
    Stmt init = make_store(
        tensor,
        [&] {
          std::vector<Expr> idx;
          for (const IterVar& axis : stage.op_axis()) {
            idx.push_back(axis->var);
          }
          return idx;
        }(),
        make_float(tensor->reduce_identity()));
    for (std::size_t i = stage.op_axis().size(); i > 0; --i) {
      const IterVar& axis = stage.op_axis()[i - 1];
      init = make_for(axis->var, axis->extent, ForKind::kSerial,
                      std::move(init));
    }

    Expr current = access(tensor, store_indices);
    Stmt update = make_store(
        tensor, store_indices,
        combine(tensor->reduce_kind, std::move(current), std::move(value)));
    if (axes.guard) update = make_if(axes.guard, std::move(update));
    result = make_seq(
        {std::move(init), wrap_loops(stage, std::move(update), attachments)});
  }

  // Array packing requested via Stage::cache_write: snapshot each packed
  // source's read window into a contiguous scratch at the outermost leaf,
  // with a transposed layout (reversed dim order) so the innermost data
  // axis traverses it stride-1. The scratch sits inside the leaf when it
  // is serial and is hoisted outside it when the leaf executes
  // concurrently, so the Realize never lands inside a kParallel/
  // kVectorized loop (which the prover below would reject). For reduction
  // stages the leaf var occurs only in the update nest, which is exactly
  // where the pack belongs — the init nest runs over the original axes.
  if (!stage.pack_sources().empty()) {
    const auto& leaves = stage.leaf_iter_vars();
    TVMBO_CHECK(!leaves.empty())
        << "cache_write on loopless stage '" << tensor->name << "'";
    const IterVar& outermost = leaves.front();
    const bool wrap_outside =
        analysis::kind_requires_race_proof(stage.annotation(outermost));
    for (const Tensor& source : stage.pack_sources()) {
      std::vector<std::size_t> perm(source->shape.size());
      for (std::size_t d = 0; d < perm.size(); ++d) {
        perm[d] = perm.size() - 1 - d;
      }
      result = pack_reads(result, source, outermost->var, wrap_outside,
                          perm, /*invariant_dims=*/{},
                          tensor->name + "_" + source->name + "_pack");
    }
  }

  // Machine-checked legality: every loop whose annotation asserts
  // concurrent execution must carry a race-freedom proof. This subsumes
  // the old hand-written asserts (reduction axes, compute_at placement)
  // and is *exact* where those were conservative — e.g. a producer
  // attached inside a parallel loop is accepted when its per-iteration
  // regions provably do not overlap.
  for (const analysis::LoopProof& proof :
       analysis::analyze_parallel_loops(result)) {
    TVMBO_CHECK(proof.proven)
        << "parallel-loop-race: stage '" << tensor->name << "': "
        << proof.detail << "\n"
        << [&] {
             std::string ir = to_string(result);
             constexpr std::size_t kMax = 400;
             return ir.size() <= kMax ? ir : ir.substr(0, kMax) + "...";
           }();
  }

  return result;
}

Stmt lower(const Schedule& schedule, const LowerOptions& options) {
  std::vector<Stmt> stmts;
  std::vector<Tensor> intermediates;
  for (const Tensor& tensor : schedule.tensors()) {
    if (!tensor->is_compute()) continue;
    const bool is_output = std::any_of(
        schedule.outputs().begin(), schedule.outputs().end(),
        [&](const Tensor& out) { return out.get() == tensor.get(); });
    if (schedule[tensor].inlined()) {
      TVMBO_CHECK(!is_output)
          << "cannot inline schedule output '" << tensor->name << "'";
      continue;  // substituted into consumers; no loops, no buffer
    }
    if (schedule[tensor].attached()) {
      TVMBO_CHECK(!is_output)
          << "cannot compute_at schedule output '" << tensor->name << "'";
      // Emitted inside the consumer's nest; the Realize below still
      // allocates its (full) buffer. Verify the single-consumer rule.
      int consumers = 0;
      for (const Tensor& other : schedule.tensors()) {
        if (!other->is_compute()) continue;
        for (const Tensor& input : other->inputs()) {
          if (input.get() == tensor.get()) ++consumers;
        }
      }
      TVMBO_CHECK_EQ(consumers, 1)
          << "compute_at stage '" << tensor->name
          << "' must have exactly one consumer";
      intermediates.push_back(tensor);
      continue;
    }
    if (!is_output) intermediates.push_back(tensor);
    stmts.push_back(lower_stage(schedule, schedule[tensor], is_output,
                                options));
  }
  TVMBO_CHECK(!stmts.empty()) << "schedule has no compute stages";
  Stmt result = make_seq(std::move(stmts));
  // Realize regions must cover both the producing stage and every consumer
  // stage, so intermediates wrap the whole program.
  if (options.emit_realize) {
    for (auto it = intermediates.rbegin(); it != intermediates.rend(); ++it) {
      result = make_realize(*it, std::move(result));
    }
  }
  return result;
}

}  // namespace tvmbo::te
