// Loop-level statement IR — the analogue of TVM's TIR that schedules are
// lowered into and that the interpreter executes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "te/expr.h"
#include "te/tensor.h"

namespace tvmbo::te {

enum class StmtKind {
  kFor,
  kStore,
  kSeq,
  kIfThenElse,
  kRealize,
};

class StmtNode;
using Stmt = std::shared_ptr<const StmtNode>;

class StmtNode {
 public:
  explicit StmtNode(StmtKind kind) : kind_(kind) {}
  virtual ~StmtNode() = default;
  StmtKind kind() const { return kind_; }

 private:
  StmtKind kind_;
};

/// Loop annotation carried from schedule primitives. The interpreter runs
/// all kinds serially; the printer shows them, and tests assert they
/// survive lowering.
///
/// Race-freedom contract: kParallel and kVectorized assert that distinct
/// iterations may execute concurrently, so te::lower and te::annotate_loop
/// demand a machine-checked proof from the affine dependence analyzer
/// (analysis/dependence.h) that no two iterations touch the same tensor
/// element with a write — a parallel/vectorized reduction axis is rejected
/// with rule `parallel-loop-race`. kSerial and kUnrolled preserve the
/// sequential iteration order (unrolling only rewrites control flow), so
/// they carry no proof obligation and remain legal on reduction axes.
///
/// Execution: kParallel dispatches on the thread pool (closure tier) or
/// as `#pragma omp parallel for` (jit tier). kVectorized runs serially on
/// the interpreter/closure tiers and becomes `#pragma omp simd` with
/// restrict-qualified, alignment-annotated pointers in emitted C — only on
/// loops the prover certified, so the pragma can never license a racy
/// lane. kUnrolled runs serially on the interpreter/closure tiers; the
/// jit tier expands it into straight-line code via
/// te::unroll_loops(stmt, te::kUnrollMaxExtent) before emission (loops
/// beyond the shared limit keep a `#pragma GCC unroll` hint instead).
/// Every choice preserves the serial iteration order per output element,
/// so float64 results stay bit-identical across all three tiers.
enum class ForKind { kSerial, kParallel, kUnrolled, kVectorized };

class ForNode final : public StmtNode {
 public:
  ForNode(Var var, std::int64_t extent, ForKind for_kind, Stmt body)
      : StmtNode(StmtKind::kFor), var(std::move(var)), extent(extent),
        for_kind(for_kind), body(std::move(body)) {}
  Var var;
  std::int64_t extent;
  ForKind for_kind;
  Stmt body;
};

/// tensor[indices...] = value, or a reduction update when `reduce_update`
/// is set (value then reads the same element).
class StoreNode final : public StmtNode {
 public:
  StoreNode(Tensor tensor, std::vector<Expr> indices, Expr value)
      : StmtNode(StmtKind::kStore), tensor(std::move(tensor)),
        indices(std::move(indices)), value(std::move(value)) {}
  Tensor tensor;
  std::vector<Expr> indices;
  Expr value;
};

class SeqNode final : public StmtNode {
 public:
  explicit SeqNode(std::vector<Stmt> stmts)
      : StmtNode(StmtKind::kSeq), stmts(std::move(stmts)) {}
  std::vector<Stmt> stmts;
};

class IfThenElseNode final : public StmtNode {
 public:
  IfThenElseNode(Expr condition, Stmt then_case, Stmt else_case = nullptr)
      : StmtNode(StmtKind::kIfThenElse), condition(std::move(condition)),
        then_case(std::move(then_case)), else_case(std::move(else_case)) {}
  Expr condition;
  Stmt then_case;
  Stmt else_case;  ///< may be null
};

/// Marks the region where an intermediate tensor's buffer is live; the
/// interpreter allocates it on entry.
class RealizeNode final : public StmtNode {
 public:
  RealizeNode(Tensor tensor, Stmt body)
      : StmtNode(StmtKind::kRealize), tensor(std::move(tensor)),
        body(std::move(body)) {}
  Tensor tensor;
  Stmt body;
};

Stmt make_for(Var var, std::int64_t extent, ForKind kind, Stmt body);
Stmt make_store(Tensor tensor, std::vector<Expr> indices, Expr value);
Stmt make_seq(std::vector<Stmt> stmts);
Stmt make_if(Expr condition, Stmt then_case, Stmt else_case = nullptr);
Stmt make_realize(Tensor tensor, Stmt body);

/// Counts nodes of a given kind (used by structural tests).
std::size_t count_stmts(const Stmt& stmt, StmtKind kind);

/// Depth of the deepest loop nest.
std::size_t loop_depth(const Stmt& stmt);

/// True when any loop in the statement carries the kParallel annotation
/// (used by the backends to decide whether a multithreaded build is
/// worthwhile at all).
bool has_parallel_loop(const Stmt& stmt);

/// True when any loop in the statement carries the given annotation; the
/// jit tier uses this to gate simd/unroll emission (and the extra compile
/// flags they need) on annotation presence, so un-annotated programs emit
/// byte-identical source and keep their artifact-cache keys stable.
bool has_loop_kind(const Stmt& stmt, ForKind kind);

/// Loop variables in outermost-to-innermost order along the leftmost path
/// of nested loops (ignores Seq branching after the first divergence).
std::vector<Var> leftmost_loop_vars(const Stmt& stmt);

}  // namespace tvmbo::te
