// Lowering: Schedule -> loop IR (the analogue of tvm.lower).
//
// For every compute stage, in topological order:
//   * rebuilds each original axis variable as an expression of the stage's
//     final leaf variables by walking the split/fuse relations backwards,
//   * emits the leaf loop nest with schedule annotations,
//   * emits `T[i...] = body` stores (reductions get an init nest over the
//     data axes followed by the update nest over all leaves),
//   * guards the store when a non-exact split could push an index past its
//     extent,
//   * wraps intermediate (non-output) tensors in Realize regions.
#pragma once

#include "te/ir.h"
#include "te/schedule.h"

namespace tvmbo::te {

struct LowerOptions {
  /// Emit Realize regions for intermediates (the interpreter needs them).
  bool emit_realize = true;
};

Stmt lower(const Schedule& schedule, const LowerOptions& options = {});

/// Lowers a single stage (exposed for tests). Inlined producers in the
/// schedule are substituted into the stage's body.
Stmt lower_stage(const Schedule& schedule, const Stage& stage,
                 bool is_output, const LowerOptions& options = {});

}  // namespace tvmbo::te
