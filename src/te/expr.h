// Expression IR of the tensor-expression (TE) language.
//
// Mirrors the slice of Apache TVM's `tir::PrimExpr` that TE kernels need:
// integer/float immediates, loop variables, arithmetic, min/max, compares,
// select, and reads of tensor elements. Expressions are immutable DAG nodes
// held by shared_ptr; all helper constructors fold constants eagerly.
//
// A `sum(expr, {k...})` expression may appear only as the top-level body of
// a compute definition (exactly like te.sum in TVM); tensor.h consumes it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"

namespace tvmbo::te {

class TensorNode;
using Tensor = std::shared_ptr<const TensorNode>;

enum class ExprKind {
  kIntImm,
  kFloatImm,
  kVar,
  kBinary,
  kUnary,
  kCompare,
  kSelect,
  kTensorAccess,
  kReduce,
};

class ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

class ExprNode {
 public:
  explicit ExprNode(ExprKind kind) : kind_(kind) {}
  virtual ~ExprNode() = default;
  ExprKind kind() const { return kind_; }

 private:
  ExprKind kind_;
};

class IntImmNode final : public ExprNode {
 public:
  explicit IntImmNode(std::int64_t value)
      : ExprNode(ExprKind::kIntImm), value(value) {}
  std::int64_t value;
};

class FloatImmNode final : public ExprNode {
 public:
  explicit FloatImmNode(double value)
      : ExprNode(ExprKind::kFloatImm), value(value) {}
  double value;
};

/// A named integer variable (loop index). Identity is the node address;
/// `id` provides a stable ordering for printing and maps.
class VarNode final : public ExprNode {
 public:
  explicit VarNode(std::string name);
  std::string name;
  std::uint64_t id;
};
using Var = std::shared_ptr<const VarNode>;

enum class BinaryOp { kAdd, kSub, kMul, kDiv, kFloorDiv, kMod, kMin, kMax };

class BinaryNode final : public ExprNode {
 public:
  BinaryNode(BinaryOp op, Expr a, Expr b)
      : ExprNode(ExprKind::kBinary), op(op), a(std::move(a)),
        b(std::move(b)) {}
  BinaryOp op;
  Expr a;
  Expr b;
};

enum class UnaryOp { kNeg, kAbs, kSqrt, kExp, kLog };

class UnaryNode final : public ExprNode {
 public:
  UnaryNode(UnaryOp op, Expr operand)
      : ExprNode(ExprKind::kUnary), op(op), operand(std::move(operand)) {}
  UnaryOp op;
  Expr operand;
};

enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

class CompareNode final : public ExprNode {
 public:
  CompareNode(CmpOp op, Expr a, Expr b)
      : ExprNode(ExprKind::kCompare), op(op), a(std::move(a)),
        b(std::move(b)) {}
  CmpOp op;
  Expr a;
  Expr b;
};

class SelectNode final : public ExprNode {
 public:
  SelectNode(Expr condition, Expr true_value, Expr false_value)
      : ExprNode(ExprKind::kSelect), condition(std::move(condition)),
        true_value(std::move(true_value)),
        false_value(std::move(false_value)) {}
  Expr condition;
  Expr true_value;
  Expr false_value;
};

class TensorAccessNode final : public ExprNode {
 public:
  TensorAccessNode(Tensor tensor, std::vector<Expr> indices)
      : ExprNode(ExprKind::kTensorAccess), tensor(std::move(tensor)),
        indices(std::move(indices)) {}
  Tensor tensor;
  std::vector<Expr> indices;
};

enum class ReduceKind { kSum, kMax, kMin };

/// Reduction marker produced by sum()/max_reduce()/min_reduce(). Only valid
/// as the outermost node of a compute body.
class ReduceNode final : public ExprNode {
 public:
  ReduceNode(ReduceKind kind, Expr source, std::vector<Var> axes)
      : ExprNode(ExprKind::kReduce), reduce_kind(kind),
        source(std::move(source)), axes(std::move(axes)) {}
  ReduceKind reduce_kind;
  Expr source;
  std::vector<Var> axes;
};

// --- constructors (with constant folding) ----------------------------------

Expr make_int(std::int64_t value);
Expr make_float(double value);
Var make_var(const std::string& name);
Expr binary(BinaryOp op, Expr a, Expr b);
Expr unary(UnaryOp op, Expr operand);
Expr neg(Expr operand);
Expr abs_expr(Expr operand);
Expr sqrt_expr(Expr operand);
Expr exp_expr(Expr operand);
Expr log_expr(Expr operand);
Expr compare(CmpOp op, Expr a, Expr b);
Expr select(Expr condition, Expr true_value, Expr false_value);
Expr access(Tensor tensor, std::vector<Expr> indices);

Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
Expr operator/(Expr a, Expr b);
Expr floor_div(Expr a, Expr b);
Expr floor_mod(Expr a, Expr b);
Expr min_expr(Expr a, Expr b);
Expr max_expr(Expr a, Expr b);
Expr lt(Expr a, Expr b);
Expr le(Expr a, Expr b);
Expr gt(Expr a, Expr b);
Expr ge(Expr a, Expr b);
Expr eq(Expr a, Expr b);
Expr ne(Expr a, Expr b);
Expr logical_and(Expr a, Expr b);  // lowered as select(a, b, 0)

/// te.sum(source, axes) — reduction over the given reduce axes.
Expr sum(Expr source, std::vector<Var> axes);
Expr max_reduce(Expr source, std::vector<Var> axes);
Expr min_reduce(Expr source, std::vector<Var> axes);

/// True if the expression is an IntImm with the given value.
bool is_const_int(const Expr& expr, std::int64_t value);

/// Structural substitution of variables (used by lowering).
Expr substitute(const Expr& expr,
                const std::vector<std::pair<Var, Expr>>& replacements);

/// Collects tensors read by the expression (transitively through Select
/// etc., not through tensor bodies).
std::vector<Tensor> collect_tensors(const Expr& expr);

}  // namespace tvmbo::te
