#include "te/printer.h"

#include <sstream>

#include "common/string_util.h"

namespace tvmbo::te {

namespace {

const char* binary_symbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return " + ";
    case BinaryOp::kSub: return " - ";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kFloorDiv: return "//";
    case BinaryOp::kMod: return " % ";
    case BinaryOp::kMin: return nullptr;  // functional form
    case BinaryOp::kMax: return nullptr;
  }
  return "?";
}

const char* compare_symbol(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return " < ";
    case CmpOp::kLe: return " <= ";
    case CmpOp::kGt: return " > ";
    case CmpOp::kGe: return " >= ";
    case CmpOp::kEq: return " == ";
    case CmpOp::kNe: return " != ";
  }
  return "?";
}

void print_expr(const ExprNode* expr, std::ostringstream& out) {
  switch (expr->kind()) {
    case ExprKind::kIntImm:
      out << static_cast<const IntImmNode*>(expr)->value;
      return;
    case ExprKind::kFloatImm: {
      const double v = static_cast<const FloatImmNode*>(expr)->value;
      out << format_double(v, v == static_cast<std::int64_t>(v) ? 1 : 6);
      return;
    }
    case ExprKind::kVar:
      out << static_cast<const VarNode*>(expr)->name;
      return;
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr);
      const char* symbol = binary_symbol(node->op);
      if (symbol == nullptr) {
        out << (node->op == BinaryOp::kMin ? "min(" : "max(");
        print_expr(node->a.get(), out);
        out << ", ";
        print_expr(node->b.get(), out);
        out << ")";
        return;
      }
      out << "(";
      print_expr(node->a.get(), out);
      out << symbol;
      print_expr(node->b.get(), out);
      out << ")";
      return;
    }
    case ExprKind::kUnary: {
      const auto* node = static_cast<const UnaryNode*>(expr);
      switch (node->op) {
        case UnaryOp::kNeg: out << "neg("; break;
        case UnaryOp::kAbs: out << "abs("; break;
        case UnaryOp::kSqrt: out << "sqrt("; break;
        case UnaryOp::kExp: out << "exp("; break;
        case UnaryOp::kLog: out << "log("; break;
      }
      print_expr(node->operand.get(), out);
      out << ")";
      return;
    }
    case ExprKind::kCompare: {
      const auto* node = static_cast<const CompareNode*>(expr);
      out << "(";
      print_expr(node->a.get(), out);
      out << compare_symbol(node->op);
      print_expr(node->b.get(), out);
      out << ")";
      return;
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr);
      out << "select(";
      print_expr(node->condition.get(), out);
      out << ", ";
      print_expr(node->true_value.get(), out);
      out << ", ";
      print_expr(node->false_value.get(), out);
      out << ")";
      return;
    }
    case ExprKind::kTensorAccess: {
      const auto* node = static_cast<const TensorAccessNode*>(expr);
      out << node->tensor->name << "[";
      for (std::size_t i = 0; i < node->indices.size(); ++i) {
        if (i > 0) out << ", ";
        print_expr(node->indices[i].get(), out);
      }
      out << "]";
      return;
    }
    case ExprKind::kReduce: {
      const auto* node = static_cast<const ReduceNode*>(expr);
      switch (node->reduce_kind) {
        case ReduceKind::kSum: out << "sum("; break;
        case ReduceKind::kMax: out << "max("; break;
        case ReduceKind::kMin: out << "min("; break;
      }
      print_expr(node->source.get(), out);
      out << ", axis=[";
      for (std::size_t i = 0; i < node->axes.size(); ++i) {
        if (i > 0) out << ", ";
        out << node->axes[i]->name;
      }
      out << "])";
      return;
    }
  }
}

void indent_to(std::ostringstream& out, int depth) {
  for (int i = 0; i < depth; ++i) out << "  ";
}

void print_stmt(const StmtNode* stmt, std::ostringstream& out, int depth) {
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt);
      indent_to(out, depth);
      switch (node->for_kind) {
        case ForKind::kSerial: out << "for "; break;
        case ForKind::kParallel: out << "parallel "; break;
        case ForKind::kUnrolled: out << "unroll "; break;
        case ForKind::kVectorized: out << "vectorize "; break;
      }
      out << node->var->name << " in range(" << node->extent << "):\n";
      print_stmt(node->body.get(), out, depth + 1);
      return;
    }
    case StmtKind::kStore: {
      const auto* node = static_cast<const StoreNode*>(stmt);
      indent_to(out, depth);
      out << node->tensor->name << "[";
      for (std::size_t i = 0; i < node->indices.size(); ++i) {
        if (i > 0) out << ", ";
        print_expr(node->indices[i].get(), out);
      }
      out << "] = ";
      print_expr(node->value.get(), out);
      out << "\n";
      return;
    }
    case StmtKind::kSeq: {
      for (const Stmt& child : static_cast<const SeqNode*>(stmt)->stmts) {
        print_stmt(child.get(), out, depth);
      }
      return;
    }
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt);
      indent_to(out, depth);
      out << "if ";
      print_expr(node->condition.get(), out);
      out << ":\n";
      print_stmt(node->then_case.get(), out, depth + 1);
      if (node->else_case) {
        indent_to(out, depth);
        out << "else:\n";
        print_stmt(node->else_case.get(), out, depth + 1);
      }
      return;
    }
    case StmtKind::kRealize: {
      const auto* node = static_cast<const RealizeNode*>(stmt);
      indent_to(out, depth);
      out << "realize " << node->tensor->name << "(";
      for (std::size_t i = 0; i < node->tensor->shape.size(); ++i) {
        if (i > 0) out << ", ";
        out << node->tensor->shape[i];
      }
      out << "):\n";
      print_stmt(node->body.get(), out, depth + 1);
      return;
    }
  }
}

}  // namespace

std::string to_string(const Expr& expr) {
  TVMBO_CHECK(expr != nullptr) << "print of null expression";
  std::ostringstream out;
  print_expr(expr.get(), out);
  return out.str();
}

std::string to_string(const Stmt& stmt) {
  TVMBO_CHECK(stmt != nullptr) << "print of null statement";
  std::ostringstream out;
  print_stmt(stmt.get(), out, 0);
  return out.str();
}

}  // namespace tvmbo::te
