#include "te/expr.h"

#include <atomic>
#include <cmath>

namespace tvmbo::te {

namespace {
std::atomic<std::uint64_t> g_next_var_id{1};

const IntImmNode* as_int(const Expr& expr) {
  return expr->kind() == ExprKind::kIntImm
             ? static_cast<const IntImmNode*>(expr.get())
             : nullptr;
}

const FloatImmNode* as_float(const Expr& expr) {
  return expr->kind() == ExprKind::kFloatImm
             ? static_cast<const FloatImmNode*>(expr.get())
             : nullptr;
}

std::int64_t floordiv_i(std::int64_t a, std::int64_t b) {
  TVMBO_CHECK_NE(b, 0) << "floor_div by zero";
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t floormod_i(std::int64_t a, std::int64_t b) {
  return a - floordiv_i(a, b) * b;
}

}  // namespace

VarNode::VarNode(std::string name)
    : ExprNode(ExprKind::kVar), name(std::move(name)),
      id(g_next_var_id.fetch_add(1)) {}

Expr make_int(std::int64_t value) {
  return std::make_shared<IntImmNode>(value);
}

Expr make_float(double value) {
  return std::make_shared<FloatImmNode>(value);
}

Var make_var(const std::string& name) {
  return std::make_shared<VarNode>(name);
}

Expr binary(BinaryOp op, Expr a, Expr b) {
  TVMBO_CHECK(a && b) << "binary on null expression";
  TVMBO_CHECK(a->kind() != ExprKind::kReduce &&
              b->kind() != ExprKind::kReduce)
      << "reduction markers may only appear at the top of a compute body";
  // Constant folding.
  const auto* ia = as_int(a);
  const auto* ib = as_int(b);
  if (ia && ib) {
    const std::int64_t x = ia->value, y = ib->value;
    switch (op) {
      case BinaryOp::kAdd: return make_int(x + y);
      case BinaryOp::kSub: return make_int(x - y);
      case BinaryOp::kMul: return make_int(x * y);
      case BinaryOp::kDiv:
        TVMBO_CHECK_NE(y, 0) << "integer division by zero";
        return make_int(x / y);
      case BinaryOp::kFloorDiv: return make_int(floordiv_i(x, y));
      case BinaryOp::kMod: return make_int(floormod_i(x, y));
      case BinaryOp::kMin: return make_int(std::min(x, y));
      case BinaryOp::kMax: return make_int(std::max(x, y));
    }
  }
  const auto* fa = as_float(a);
  const auto* fb = as_float(b);
  if ((fa || ia) && (fb || ib)) {
    const double x = fa ? fa->value : static_cast<double>(ia->value);
    const double y = fb ? fb->value : static_cast<double>(ib->value);
    switch (op) {
      case BinaryOp::kAdd: return make_float(x + y);
      case BinaryOp::kSub: return make_float(x - y);
      case BinaryOp::kMul: return make_float(x * y);
      case BinaryOp::kDiv: return make_float(x / y);
      case BinaryOp::kMin: return make_float(std::min(x, y));
      case BinaryOp::kMax: return make_float(std::max(x, y));
      default: break;  // floor_div/mod stay symbolic on floats
    }
  }
  // Algebraic identities that keep lowered loop bodies tidy.
  if (ia) {
    if (ia->value == 0 && op == BinaryOp::kAdd) return b;
    if (ia->value == 0 && op == BinaryOp::kMul) return make_int(0);
    if (ia->value == 1 && op == BinaryOp::kMul) return b;
  }
  if (ib) {
    if (ib->value == 0 &&
        (op == BinaryOp::kAdd || op == BinaryOp::kSub)) {
      return a;
    }
    if (ib->value == 0 && op == BinaryOp::kMul) return make_int(0);
    if (ib->value == 1 &&
        (op == BinaryOp::kMul || op == BinaryOp::kDiv ||
         op == BinaryOp::kFloorDiv)) {
      return a;
    }
  }
  return std::make_shared<BinaryNode>(op, std::move(a), std::move(b));
}

Expr unary(UnaryOp op, Expr operand) {
  TVMBO_CHECK(operand != nullptr) << "unary on null expression";
  TVMBO_CHECK(operand->kind() != ExprKind::kReduce)
      << "reduction markers may only appear at the top of a compute body";
  const auto* fo = as_float(operand);
  const auto* io = as_int(operand);
  if (fo || io) {
    const double x = fo ? fo->value : static_cast<double>(io->value);
    switch (op) {
      case UnaryOp::kNeg: return make_float(-x);
      case UnaryOp::kAbs: return make_float(std::fabs(x));
      case UnaryOp::kSqrt: return make_float(std::sqrt(x));
      case UnaryOp::kExp: return make_float(std::exp(x));
      case UnaryOp::kLog: return make_float(std::log(x));
    }
  }
  return std::make_shared<UnaryNode>(op, std::move(operand));
}

Expr neg(Expr operand) { return unary(UnaryOp::kNeg, std::move(operand)); }
Expr abs_expr(Expr operand) {
  return unary(UnaryOp::kAbs, std::move(operand));
}
Expr sqrt_expr(Expr operand) {
  return unary(UnaryOp::kSqrt, std::move(operand));
}
Expr exp_expr(Expr operand) {
  return unary(UnaryOp::kExp, std::move(operand));
}
Expr log_expr(Expr operand) {
  return unary(UnaryOp::kLog, std::move(operand));
}

Expr compare(CmpOp op, Expr a, Expr b) {
  TVMBO_CHECK(a && b) << "compare on null expression";
  const auto* ia = as_int(a);
  const auto* ib = as_int(b);
  if (ia && ib) {
    const std::int64_t x = ia->value, y = ib->value;
    bool result = false;
    switch (op) {
      case CmpOp::kLt: result = x < y; break;
      case CmpOp::kLe: result = x <= y; break;
      case CmpOp::kGt: result = x > y; break;
      case CmpOp::kGe: result = x >= y; break;
      case CmpOp::kEq: result = x == y; break;
      case CmpOp::kNe: result = x != y; break;
    }
    return make_int(result ? 1 : 0);
  }
  return std::make_shared<CompareNode>(op, std::move(a), std::move(b));
}

Expr select(Expr condition, Expr true_value, Expr false_value) {
  if (const auto* c = as_int(condition)) {
    return c->value != 0 ? true_value : false_value;
  }
  return std::make_shared<SelectNode>(
      std::move(condition), std::move(true_value), std::move(false_value));
}

Expr access(Tensor tensor, std::vector<Expr> indices) {
  TVMBO_CHECK(tensor != nullptr) << "access of null tensor";
  return std::make_shared<TensorAccessNode>(std::move(tensor),
                                            std::move(indices));
}

Expr operator+(Expr a, Expr b) {
  return binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
Expr operator-(Expr a, Expr b) {
  return binary(BinaryOp::kSub, std::move(a), std::move(b));
}
Expr operator*(Expr a, Expr b) {
  return binary(BinaryOp::kMul, std::move(a), std::move(b));
}
Expr operator/(Expr a, Expr b) {
  return binary(BinaryOp::kDiv, std::move(a), std::move(b));
}
Expr floor_div(Expr a, Expr b) {
  return binary(BinaryOp::kFloorDiv, std::move(a), std::move(b));
}
Expr floor_mod(Expr a, Expr b) {
  return binary(BinaryOp::kMod, std::move(a), std::move(b));
}
Expr min_expr(Expr a, Expr b) {
  return binary(BinaryOp::kMin, std::move(a), std::move(b));
}
Expr max_expr(Expr a, Expr b) {
  return binary(BinaryOp::kMax, std::move(a), std::move(b));
}
Expr lt(Expr a, Expr b) { return compare(CmpOp::kLt, std::move(a), std::move(b)); }
Expr le(Expr a, Expr b) { return compare(CmpOp::kLe, std::move(a), std::move(b)); }
Expr gt(Expr a, Expr b) { return compare(CmpOp::kGt, std::move(a), std::move(b)); }
Expr ge(Expr a, Expr b) { return compare(CmpOp::kGe, std::move(a), std::move(b)); }
Expr eq(Expr a, Expr b) { return compare(CmpOp::kEq, std::move(a), std::move(b)); }
Expr ne(Expr a, Expr b) { return compare(CmpOp::kNe, std::move(a), std::move(b)); }

Expr logical_and(Expr a, Expr b) {
  return select(std::move(a), std::move(b), make_int(0));
}

namespace {
Expr make_reduce(ReduceKind kind, Expr source, std::vector<Var> axes) {
  TVMBO_CHECK(source != nullptr) << "reduction of null expression";
  TVMBO_CHECK(!axes.empty()) << "reduction requires at least one axis";
  TVMBO_CHECK(source->kind() != ExprKind::kReduce)
      << "nested reductions are not supported";
  return std::make_shared<ReduceNode>(kind, std::move(source),
                                      std::move(axes));
}
}  // namespace

Expr sum(Expr source, std::vector<Var> axes) {
  return make_reduce(ReduceKind::kSum, std::move(source), std::move(axes));
}
Expr max_reduce(Expr source, std::vector<Var> axes) {
  return make_reduce(ReduceKind::kMax, std::move(source), std::move(axes));
}
Expr min_reduce(Expr source, std::vector<Var> axes) {
  return make_reduce(ReduceKind::kMin, std::move(source), std::move(axes));
}

bool is_const_int(const Expr& expr, std::int64_t value) {
  const auto* node = as_int(expr);
  return node != nullptr && node->value == value;
}

Expr substitute(const Expr& expr,
                const std::vector<std::pair<Var, Expr>>& replacements) {
  TVMBO_CHECK(expr != nullptr) << "substitute on null expression";
  switch (expr->kind()) {
    case ExprKind::kIntImm:
    case ExprKind::kFloatImm:
      return expr;
    case ExprKind::kVar: {
      for (const auto& [var, replacement] : replacements) {
        if (var.get() == expr.get()) return replacement;
      }
      return expr;
    }
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr.get());
      Expr a = substitute(node->a, replacements);
      Expr b = substitute(node->b, replacements);
      if (a.get() == node->a.get() && b.get() == node->b.get()) return expr;
      return binary(node->op, std::move(a), std::move(b));
    }
    case ExprKind::kUnary: {
      const auto* node = static_cast<const UnaryNode*>(expr.get());
      Expr operand = substitute(node->operand, replacements);
      if (operand.get() == node->operand.get()) return expr;
      return unary(node->op, std::move(operand));
    }
    case ExprKind::kCompare: {
      const auto* node = static_cast<const CompareNode*>(expr.get());
      Expr a = substitute(node->a, replacements);
      Expr b = substitute(node->b, replacements);
      if (a.get() == node->a.get() && b.get() == node->b.get()) return expr;
      return compare(node->op, std::move(a), std::move(b));
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr.get());
      Expr c = substitute(node->condition, replacements);
      Expr t = substitute(node->true_value, replacements);
      Expr f = substitute(node->false_value, replacements);
      return select(std::move(c), std::move(t), std::move(f));
    }
    case ExprKind::kTensorAccess: {
      const auto* node = static_cast<const TensorAccessNode*>(expr.get());
      std::vector<Expr> indices;
      indices.reserve(node->indices.size());
      bool changed = false;
      for (const Expr& index : node->indices) {
        Expr replaced = substitute(index, replacements);
        changed = changed || replaced.get() != index.get();
        indices.push_back(std::move(replaced));
      }
      if (!changed) return expr;
      return access(node->tensor, std::move(indices));
    }
    case ExprKind::kReduce: {
      const auto* node = static_cast<const ReduceNode*>(expr.get());
      Expr source = substitute(node->source, replacements);
      return std::make_shared<ReduceNode>(node->reduce_kind,
                                          std::move(source), node->axes);
    }
  }
  return expr;
}

namespace {
void collect_tensors_into(const Expr& expr, std::vector<Tensor>& out) {
  switch (expr->kind()) {
    case ExprKind::kIntImm:
    case ExprKind::kFloatImm:
    case ExprKind::kVar:
      return;
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr.get());
      collect_tensors_into(node->a, out);
      collect_tensors_into(node->b, out);
      return;
    }
    case ExprKind::kUnary:
      collect_tensors_into(
          static_cast<const UnaryNode*>(expr.get())->operand, out);
      return;
    case ExprKind::kCompare: {
      const auto* node = static_cast<const CompareNode*>(expr.get());
      collect_tensors_into(node->a, out);
      collect_tensors_into(node->b, out);
      return;
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr.get());
      collect_tensors_into(node->condition, out);
      collect_tensors_into(node->true_value, out);
      collect_tensors_into(node->false_value, out);
      return;
    }
    case ExprKind::kTensorAccess: {
      const auto* node = static_cast<const TensorAccessNode*>(expr.get());
      bool seen = false;
      for (const Tensor& t : out) {
        if (t.get() == node->tensor.get()) {
          seen = true;
          break;
        }
      }
      if (!seen) out.push_back(node->tensor);
      for (const Expr& index : node->indices) {
        collect_tensors_into(index, out);
      }
      return;
    }
    case ExprKind::kReduce: {
      const auto* node = static_cast<const ReduceNode*>(expr.get());
      collect_tensors_into(node->source, out);
      return;
    }
  }
}
}  // namespace

std::vector<Tensor> collect_tensors(const Expr& expr) {
  std::vector<Tensor> out;
  collect_tensors_into(expr, out);
  return out;
}

}  // namespace tvmbo::te
