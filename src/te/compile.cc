#include "te/compile.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace tvmbo::te {

namespace {

using Regs = std::int64_t*;
using FExpr = std::function<double(Regs)>;
using FIndex = std::function<std::int64_t(Regs)>;
using FStmt = std::function<void(Regs)>;

/// Compile-time context: register allocation and buffer resolution.
struct Compiler {
  /// Size of the run-time register file (set before compile_stmt); chunks
  /// of a parallel loop copy it so each worker sees the outer indices.
  std::size_t scratch_slots = 1;
  /// Worker budget for kParallel loops (CompileOptions::parallel_threads).
  int parallel_threads = 1;
  std::vector<const VarNode*> registers;
  std::vector<std::pair<const TensorNode*, double*>> buffers;
  std::vector<std::pair<const TensorNode*, std::vector<std::int64_t>>>
      strides;
  std::vector<std::shared_ptr<runtime::NDArray>> owned;

  std::size_t slot_of(const VarNode* var) const {
    for (std::size_t i = 0; i < registers.size(); ++i) {
      if (registers[i] == var) return i;
    }
    TVMBO_CHECK(false) << "unbound variable '" << var->name
                       << "' at compile time";
    return 0;
  }

  std::size_t bind_var(const VarNode* var) {
    registers.push_back(var);
    return registers.size() - 1;
  }

  void bind_buffer(const TensorNode* tensor, runtime::NDArray* array) {
    TVMBO_CHECK(array->dtype() == runtime::DType::kFloat64)
        << "compiled programs support float64 buffers only";
    TVMBO_CHECK(tensor->shape == array->shape())
        << "shape mismatch binding tensor '" << tensor->name << "'";
    buffers.emplace_back(tensor, array->f64().data());
    std::vector<std::int64_t> s(tensor->shape.size(), 1);
    for (std::size_t d = tensor->shape.size() - 1; d > 0; --d) {
      s[d - 1] = s[d] * tensor->shape[d];
    }
    strides.emplace_back(tensor, std::move(s));
  }

  double* base_of(const TensorNode* tensor) const {
    for (const auto& [t, base] : buffers) {
      if (t == tensor) return base;
    }
    TVMBO_CHECK(false) << "tensor '" << tensor->name
                       << "' not bound at compile time";
    return nullptr;
  }

  const std::vector<std::int64_t>& strides_of(
      const TensorNode* tensor) const {
    for (const auto& [t, s] : strides) {
      if (t == tensor) return s;
    }
    TVMBO_CHECK(false) << "tensor '" << tensor->name
                       << "' not bound at compile time";
    static const std::vector<std::int64_t> empty;
    return empty;
  }

  FIndex compile_flat_index(const TensorAccessNode* node);
  FIndex compile_index(const ExprNode* expr);
  FExpr compile_value(const ExprNode* expr);
  FStmt compile_stmt(const StmtNode* stmt);
};

FIndex Compiler::compile_index(const ExprNode* expr) {
  switch (expr->kind()) {
    case ExprKind::kIntImm: {
      const std::int64_t value =
          static_cast<const IntImmNode*>(expr)->value;
      return [value](Regs) { return value; };
    }
    case ExprKind::kVar: {
      const std::size_t slot = slot_of(static_cast<const VarNode*>(expr));
      return [slot](Regs regs) { return regs[slot]; };
    }
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr);
      FIndex a = compile_index(node->a.get());
      FIndex b = compile_index(node->b.get());
      switch (node->op) {
        case BinaryOp::kAdd:
          return [a, b](Regs r) { return a(r) + b(r); };
        case BinaryOp::kSub:
          return [a, b](Regs r) { return a(r) - b(r); };
        case BinaryOp::kMul:
          return [a, b](Regs r) { return a(r) * b(r); };
        case BinaryOp::kDiv:
          return [a, b](Regs r) { return a(r) / b(r); };
        case BinaryOp::kFloorDiv:
          return [a, b](Regs r) {
            const std::int64_t x = a(r), y = b(r);
            std::int64_t q = x / y;
            if ((x % y != 0) && ((x < 0) != (y < 0))) --q;
            return q;
          };
        case BinaryOp::kMod:
          return [a, b](Regs r) {
            const std::int64_t x = a(r), y = b(r);
            std::int64_t q = x / y;
            if ((x % y != 0) && ((x < 0) != (y < 0))) --q;
            return x - q * y;
          };
        case BinaryOp::kMin:
          return [a, b](Regs r) { return std::min(a(r), b(r)); };
        case BinaryOp::kMax:
          return [a, b](Regs r) { return std::max(a(r), b(r)); };
      }
      break;
    }
    case ExprKind::kCompare: {
      const auto* node = static_cast<const CompareNode*>(expr);
      FIndex a = compile_index(node->a.get());
      FIndex b = compile_index(node->b.get());
      switch (node->op) {
        case CmpOp::kLt:
          return [a, b](Regs r) -> std::int64_t { return a(r) < b(r); };
        case CmpOp::kLe:
          return [a, b](Regs r) -> std::int64_t { return a(r) <= b(r); };
        case CmpOp::kGt:
          return [a, b](Regs r) -> std::int64_t { return a(r) > b(r); };
        case CmpOp::kGe:
          return [a, b](Regs r) -> std::int64_t { return a(r) >= b(r); };
        case CmpOp::kEq:
          return [a, b](Regs r) -> std::int64_t { return a(r) == b(r); };
        case CmpOp::kNe:
          return [a, b](Regs r) -> std::int64_t { return a(r) != b(r); };
      }
      break;
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr);
      FIndex c = compile_index(node->condition.get());
      FIndex t = compile_index(node->true_value.get());
      FIndex f = compile_index(node->false_value.get());
      return [c, t, f](Regs r) { return c(r) != 0 ? t(r) : f(r); };
    }
    default:
      break;
  }
  TVMBO_CHECK(false) << "expression is not integer-compilable";
  return {};
}

FIndex Compiler::compile_flat_index(const TensorAccessNode* node) {
  const auto& s = strides_of(node->tensor.get());
  std::vector<FIndex> dims;
  dims.reserve(node->indices.size());
  for (const Expr& index : node->indices) {
    dims.push_back(compile_index(index.get()));
  }
  std::vector<std::int64_t> stride_copy = s;
  return [dims, stride_copy](Regs r) {
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      flat += dims[d](r) * stride_copy[d];
    }
    return flat;
  };
}

FExpr Compiler::compile_value(const ExprNode* expr) {
  switch (expr->kind()) {
    case ExprKind::kIntImm: {
      const double value = static_cast<double>(
          static_cast<const IntImmNode*>(expr)->value);
      return [value](Regs) { return value; };
    }
    case ExprKind::kFloatImm: {
      const double value = static_cast<const FloatImmNode*>(expr)->value;
      return [value](Regs) { return value; };
    }
    case ExprKind::kVar: {
      const std::size_t slot = slot_of(static_cast<const VarNode*>(expr));
      return [slot](Regs r) { return static_cast<double>(r[slot]); };
    }
    case ExprKind::kBinary: {
      const auto* node = static_cast<const BinaryNode*>(expr);
      FExpr a = compile_value(node->a.get());
      FExpr b = compile_value(node->b.get());
      switch (node->op) {
        case BinaryOp::kAdd:
          return [a, b](Regs r) { return a(r) + b(r); };
        case BinaryOp::kSub:
          return [a, b](Regs r) { return a(r) - b(r); };
        case BinaryOp::kMul:
          return [a, b](Regs r) { return a(r) * b(r); };
        case BinaryOp::kDiv:
          return [a, b](Regs r) { return a(r) / b(r); };
        case BinaryOp::kFloorDiv:
          return [a, b](Regs r) { return std::floor(a(r) / b(r)); };
        case BinaryOp::kMod:
          return [a, b](Regs r) {
            const double x = a(r), y = b(r);
            return x - std::floor(x / y) * y;
          };
        case BinaryOp::kMin:
          return [a, b](Regs r) { return std::min(a(r), b(r)); };
        case BinaryOp::kMax:
          return [a, b](Regs r) { return std::max(a(r), b(r)); };
      }
      break;
    }
    case ExprKind::kUnary: {
      const auto* node = static_cast<const UnaryNode*>(expr);
      FExpr x = compile_value(node->operand.get());
      switch (node->op) {
        case UnaryOp::kNeg: return [x](Regs r) { return -x(r); };
        case UnaryOp::kAbs:
          return [x](Regs r) { return std::fabs(x(r)); };
        case UnaryOp::kSqrt:
          return [x](Regs r) { return std::sqrt(x(r)); };
        case UnaryOp::kExp:
          return [x](Regs r) { return std::exp(x(r)); };
        case UnaryOp::kLog:
          return [x](Regs r) { return std::log(x(r)); };
      }
      break;
    }
    case ExprKind::kCompare: {
      FIndex c = compile_index(expr);
      return [c](Regs r) { return static_cast<double>(c(r)); };
    }
    case ExprKind::kSelect: {
      const auto* node = static_cast<const SelectNode*>(expr);
      FIndex c = compile_index(node->condition.get());
      FExpr t = compile_value(node->true_value.get());
      FExpr f = compile_value(node->false_value.get());
      return [c, t, f](Regs r) { return c(r) != 0 ? t(r) : f(r); };
    }
    case ExprKind::kTensorAccess: {
      const auto* node = static_cast<const TensorAccessNode*>(expr);
      double* base = base_of(node->tensor.get());
      FIndex flat = compile_flat_index(node);
      return [base, flat](Regs r) { return base[flat(r)]; };
    }
    case ExprKind::kReduce:
      break;
  }
  TVMBO_CHECK(false) << "expression is not value-compilable";
  return {};
}

FStmt Compiler::compile_stmt(const StmtNode* stmt) {
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt);
      const std::size_t slot = bind_var(node->var.get());
      FStmt body = compile_stmt(node->body.get());
      registers.pop_back();
      const std::int64_t extent = node->extent;
      if (node->for_kind == ForKind::kParallel && parallel_threads != 1 &&
          extent > 1) {
        const std::size_t slots = scratch_slots;
        const int threads = parallel_threads;
        return [slot, extent, body, slots, threads](Regs r) {
          ThreadPool& pool = default_thread_pool();
          const std::size_t max_chunks =
              threads == 0 ? pool.num_threads()
                           : static_cast<std::size_t>(threads);
          pool.parallel_for_chunks(
              static_cast<std::size_t>(extent), max_chunks,
              [&](std::size_t begin, std::size_t end) {
                // Private register-file copy per chunk: outer loop indices
                // stay visible, inner loop slots never race. (Nested
                // dispatch from a worker runs inline via the pool.)
                std::vector<std::int64_t> local(r, r + slots);
                for (std::size_t i = begin; i < end; ++i) {
                  local[slot] = static_cast<std::int64_t>(i);
                  body(local.data());
                }
              });
        };
      }
      return [slot, extent, body](Regs r) {
        for (std::int64_t i = 0; i < extent; ++i) {
          r[slot] = i;
          body(r);
        }
      };
    }
    case StmtKind::kStore: {
      const auto* node = static_cast<const StoreNode*>(stmt);
      double* base = base_of(node->tensor.get());
      // Reuse the access-compilation path for the destination.
      TensorAccessNode destination(node->tensor, node->indices);
      FIndex flat = compile_flat_index(&destination);
      FExpr value = compile_value(node->value.get());
      return [base, flat, value](Regs r) { base[flat(r)] = value(r); };
    }
    case StmtKind::kSeq: {
      const auto* node = static_cast<const SeqNode*>(stmt);
      std::vector<FStmt> children;
      children.reserve(node->stmts.size());
      for (const Stmt& child : node->stmts) {
        children.push_back(compile_stmt(child.get()));
      }
      return [children](Regs r) {
        for (const FStmt& child : children) child(r);
      };
    }
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt);
      FIndex condition = compile_index(node->condition.get());
      FStmt then_case = compile_stmt(node->then_case.get());
      if (node->else_case) {
        FStmt else_case = compile_stmt(node->else_case.get());
        return [condition, then_case, else_case](Regs r) {
          if (condition(r) != 0) {
            then_case(r);
          } else {
            else_case(r);
          }
        };
      }
      return [condition, then_case](Regs r) {
        if (condition(r) != 0) then_case(r);
      };
    }
    case StmtKind::kRealize: {
      const auto* node = static_cast<const RealizeNode*>(stmt);
      // Intermediates get a compile-time-allocated buffer the program
      // owns; re-zero it on entry each run (the init nest normally
      // overwrites it anyway, but fresh state matches the interpreter).
      auto buffer = std::make_shared<runtime::NDArray>(node->tensor->shape);
      owned.push_back(buffer);
      bind_buffer(node->tensor.get(), buffer.get());
      FStmt body = compile_stmt(node->body.get());
      buffers.pop_back();
      strides.pop_back();
      runtime::NDArray* raw = buffer.get();
      return [raw, body](Regs r) {
        raw->fill(0.0);
        body(r);
      };
    }
  }
  TVMBO_CHECK(false) << "uncompilable statement";
  return {};
}

}  // namespace

CompiledProgram CompiledProgram::compile(
    const Stmt& stmt,
    const std::vector<std::pair<Tensor, runtime::NDArray*>>& bindings,
    const CompileOptions& options) {
  TVMBO_CHECK(stmt != nullptr) << "compile of null statement";
  Compiler compiler;
  for (const auto& [tensor, array] : bindings) {
    TVMBO_CHECK(tensor != nullptr && array != nullptr)
        << "null binding passed to compile";
    compiler.bind_buffer(tensor.get(), array);
  }
  CompiledProgram program;
  // Register count upper bound: loop depth; measure via a pre-pass.
  program.num_registers_ = loop_depth(stmt);
  compiler.scratch_slots = std::max<std::size_t>(1, program.num_registers_);
  compiler.parallel_threads = options.parallel_threads;
  FStmt body = compiler.compile_stmt(stmt.get());
  program.owned_ = std::move(compiler.owned);
  const std::size_t registers = std::max<std::size_t>(
      1, program.num_registers_);
  program.entry_ = [body, registers](std::int64_t* scratch) {
    (void)registers;
    body(scratch);
  };
  return program;
}

void CompiledProgram::run() const {
  TVMBO_CHECK(static_cast<bool>(entry_)) << "run of empty program";
  std::vector<std::int64_t> scratch(std::max<std::size_t>(
      1, num_registers_));
  entry_(scratch.data());
}

}  // namespace tvmbo::te
