// Closure compilation backend for lowered loop IR — the middle ground
// between the tree-walking interpreter (semantics oracle, slow) and the
// hand-specialized native kernels (fast, fixed shape).
//
// compile() resolves everything resolvable ahead of time:
//   * every loop variable gets a fixed register slot (no environment
//     scans at run time),
//   * every tensor access is reduced to base pointer + precomputed
//     strides (buffers must be bound at compile time; Realize regions
//     allocate owned buffers),
//   * every expression/statement becomes one std::function node — no kind
//     dispatch per visit.
//
// The compiled program is reusable: run() executes against the buffers
// captured at compile time. Only float64 buffers are supported.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "runtime/buffer.h"
#include "te/ir.h"

namespace tvmbo::te {

/// Knobs for the closure compiler.
struct CompileOptions {
  /// Worker budget for kParallel loops: 1 (default) compiles them as
  /// plain serial loops, 0 uses every default_thread_pool() worker, and
  /// N >= 2 caps the dispatch at N static chunks. Parallel chunks write
  /// disjoint output elements (lowering rejects anything else), so
  /// float64 results are bit-identical to the serial interpreter at any
  /// setting.
  int parallel_threads = 1;
};

class CompiledProgram {
 public:
  /// Compiles `stmt` against the given tensor -> array bindings
  /// (placeholders and outputs; intermediates come from Realize regions).
  static CompiledProgram compile(
      const Stmt& stmt,
      const std::vector<std::pair<Tensor, runtime::NDArray*>>& bindings,
      const CompileOptions& options = {});

  /// Executes the program.
  void run() const;

  /// Number of registers (loop variables) the program uses.
  std::size_t num_registers() const { return num_registers_; }

 private:
  CompiledProgram() = default;

  std::function<void(std::int64_t*)> entry_;
  std::size_t num_registers_ = 0;
  /// Buffers owned by the program (Realize-allocated intermediates).
  std::vector<std::shared_ptr<runtime::NDArray>> owned_;
};

}  // namespace tvmbo::te
