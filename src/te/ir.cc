#include "te/ir.h"

#include <algorithm>

namespace tvmbo::te {

Stmt make_for(Var var, std::int64_t extent, ForKind kind, Stmt body) {
  TVMBO_CHECK(var != nullptr) << "for with null var";
  TVMBO_CHECK_GT(extent, 0) << "for extent must be positive";
  TVMBO_CHECK(body != nullptr) << "for with null body";
  return std::make_shared<ForNode>(std::move(var), extent, kind,
                                   std::move(body));
}

Stmt make_store(Tensor tensor, std::vector<Expr> indices, Expr value) {
  TVMBO_CHECK(tensor != nullptr) << "store to null tensor";
  TVMBO_CHECK_EQ(indices.size(), tensor->shape.size())
      << "store index rank mismatch for tensor '" << tensor->name << "'";
  TVMBO_CHECK(value != nullptr) << "store of null value";
  return std::make_shared<StoreNode>(std::move(tensor), std::move(indices),
                                     std::move(value));
}

Stmt make_seq(std::vector<Stmt> stmts) {
  TVMBO_CHECK(!stmts.empty()) << "empty statement sequence";
  for (const Stmt& stmt : stmts) {
    TVMBO_CHECK(stmt != nullptr) << "null statement in sequence";
  }
  if (stmts.size() == 1) return stmts[0];
  return std::make_shared<SeqNode>(std::move(stmts));
}

Stmt make_if(Expr condition, Stmt then_case, Stmt else_case) {
  TVMBO_CHECK(condition != nullptr && then_case != nullptr)
      << "if with null condition or body";
  // Fold statically known guards.
  if (condition->kind() == ExprKind::kIntImm) {
    const auto* imm = static_cast<const IntImmNode*>(condition.get());
    if (imm->value != 0) return then_case;
    return else_case;  // may be null; caller handles
  }
  return std::make_shared<IfThenElseNode>(
      std::move(condition), std::move(then_case), std::move(else_case));
}

Stmt make_realize(Tensor tensor, Stmt body) {
  TVMBO_CHECK(tensor != nullptr && body != nullptr)
      << "realize with null tensor or body";
  return std::make_shared<RealizeNode>(std::move(tensor), std::move(body));
}

std::size_t count_stmts(const Stmt& stmt, StmtKind kind) {
  if (stmt == nullptr) return 0;
  std::size_t count = stmt->kind() == kind ? 1 : 0;
  switch (stmt->kind()) {
    case StmtKind::kFor:
      count += count_stmts(
          static_cast<const ForNode*>(stmt.get())->body, kind);
      break;
    case StmtKind::kSeq:
      for (const Stmt& child :
           static_cast<const SeqNode*>(stmt.get())->stmts) {
        count += count_stmts(child, kind);
      }
      break;
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      count += count_stmts(node->then_case, kind);
      count += count_stmts(node->else_case, kind);
      break;
    }
    case StmtKind::kRealize:
      count += count_stmts(
          static_cast<const RealizeNode*>(stmt.get())->body, kind);
      break;
    case StmtKind::kStore:
      break;
  }
  return count;
}

std::size_t loop_depth(const Stmt& stmt) {
  if (stmt == nullptr) return 0;
  switch (stmt->kind()) {
    case StmtKind::kFor:
      return 1 + loop_depth(static_cast<const ForNode*>(stmt.get())->body);
    case StmtKind::kSeq: {
      std::size_t depth = 0;
      for (const Stmt& child :
           static_cast<const SeqNode*>(stmt.get())->stmts) {
        depth = std::max(depth, loop_depth(child));
      }
      return depth;
    }
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      return std::max(loop_depth(node->then_case),
                      loop_depth(node->else_case));
    }
    case StmtKind::kRealize:
      return loop_depth(static_cast<const RealizeNode*>(stmt.get())->body);
    case StmtKind::kStore:
      return 0;
  }
  return 0;
}

bool has_parallel_loop(const Stmt& stmt) {
  return has_loop_kind(stmt, ForKind::kParallel);
}

bool has_loop_kind(const Stmt& stmt, ForKind kind) {
  if (stmt == nullptr) return false;
  switch (stmt->kind()) {
    case StmtKind::kFor: {
      const auto* node = static_cast<const ForNode*>(stmt.get());
      return node->for_kind == kind || has_loop_kind(node->body, kind);
    }
    case StmtKind::kSeq:
      for (const Stmt& child :
           static_cast<const SeqNode*>(stmt.get())->stmts) {
        if (has_loop_kind(child, kind)) return true;
      }
      return false;
    case StmtKind::kIfThenElse: {
      const auto* node = static_cast<const IfThenElseNode*>(stmt.get());
      return has_loop_kind(node->then_case, kind) ||
             has_loop_kind(node->else_case, kind);
    }
    case StmtKind::kRealize:
      return has_loop_kind(
          static_cast<const RealizeNode*>(stmt.get())->body, kind);
    case StmtKind::kStore:
      return false;
  }
  return false;
}

std::vector<Var> leftmost_loop_vars(const Stmt& stmt) {
  std::vector<Var> vars;
  const StmtNode* cursor = stmt.get();
  while (cursor != nullptr) {
    switch (cursor->kind()) {
      case StmtKind::kFor: {
        const auto* node = static_cast<const ForNode*>(cursor);
        vars.push_back(node->var);
        cursor = node->body.get();
        break;
      }
      case StmtKind::kSeq: {
        const auto* node = static_cast<const SeqNode*>(cursor);
        cursor = node->stmts.empty() ? nullptr : node->stmts[0].get();
        break;
      }
      case StmtKind::kIfThenElse: {
        cursor = static_cast<const IfThenElseNode*>(cursor)->then_case.get();
        break;
      }
      case StmtKind::kRealize: {
        cursor = static_cast<const RealizeNode*>(cursor)->body.get();
        break;
      }
      case StmtKind::kStore:
        cursor = nullptr;
        break;
    }
  }
  return vars;
}

}  // namespace tvmbo::te
