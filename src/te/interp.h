// Reference interpreter for lowered loop IR.
//
// Executes a Stmt against NDArray buffers. Placeholders and schedule
// outputs must be bound by the caller; Realize regions allocate
// intermediates automatically. All loop kinds run serially — annotations
// are performance hints for native backends, and running them serially is
// exactly what makes the interpreter a semantics oracle: a schedule is
// correct iff its lowered program produces the same values as the
// unscheduled one.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/buffer.h"
#include "te/ir.h"
#include "te/lower.h"

namespace tvmbo::te {

class Interpreter {
 public:
  /// Binds a tensor to caller-owned storage. The array shape must match
  /// the tensor shape.
  void bind(const Tensor& tensor, runtime::NDArray* array);

  /// Executes the statement.
  void run(const Stmt& stmt);

  /// Number of Store executions in the last run (used by tests to verify
  /// guard behaviour on non-exact splits).
  std::uint64_t store_count() const { return store_count_; }

 private:
  void exec(const StmtNode* stmt);
  double eval_f(const ExprNode* expr);
  std::int64_t eval_i(const ExprNode* expr);
  runtime::NDArray* buffer_for(const TensorNode* tensor);
  std::int64_t* var_slot(const VarNode* var);

  struct VarBinding {
    const VarNode* var;
    std::int64_t value;
  };
  std::vector<VarBinding> env_;
  std::vector<std::pair<const TensorNode*, runtime::NDArray*>> buffers_;
  std::vector<std::unique_ptr<runtime::NDArray>> realized_;
  std::uint64_t store_count_ = 0;
};

/// Convenience: lowers the schedule and runs it with the given bindings
/// (pairs of tensor, array). Returns the lowered program for inspection.
Stmt run_schedule(
    const Schedule& schedule,
    const std::vector<std::pair<Tensor, runtime::NDArray*>>& bindings);

}  // namespace tvmbo::te
