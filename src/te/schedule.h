// Schedules: loop-level transformation plans for compute tensors.
//
// Mirrors the TVM schedule primitives the paper's kernels use —
// create_schedule, split, reorder, fuse, plus unroll/vectorize/parallel
// annotations. A Stage owns the evolving list of leaf iteration variables
// for one compute op; lower.h turns the final state into loop IR.
//
//   Schedule sched({G});
//   Stage& sg = sched[G];
//   auto [yo, yi] = sg.split(sg.op_axis()[0], ty);
//   auto [xo, xi] = sg.split(sg.op_axis()[1], tx);
//   sg.reorder({yo, xo, sg.op_reduce_axis()[0], yi, xi});
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "te/ir.h"
#include "te/tensor.h"

namespace tvmbo::te {

/// parent -> outer*factor + inner. `exact` records whether factor divides
/// the parent extent (if not, lowering emits a bounds guard).
struct SplitRelation {
  IterVar parent;
  IterVar outer;
  IterVar inner;
  std::int64_t factor = 0;
  bool exact = true;
};

/// (outer, inner) -> fused; outer = fused / inner.extent,
/// inner = fused % inner.extent.
struct FuseRelation {
  IterVar outer;
  IterVar inner;
  IterVar fused;
};

class Stage {
 public:
  explicit Stage(Tensor tensor);

  const Tensor& tensor() const { return tensor_; }

  /// Original data axes of the compute op (s[C].op.axis).
  const std::vector<IterVar>& op_axis() const { return tensor_->axis; }
  /// Original reduction axes (s[C].op.reduce_axis).
  const std::vector<IterVar>& op_reduce_axis() const {
    return tensor_->reduce_axes;
  }

  /// Current loop order, outermost first.
  const std::vector<IterVar>& leaf_iter_vars() const { return leaves_; }

  /// Splits `parent` by `factor`, returning {outer, inner}. The parent must
  /// currently be a leaf. Non-dividing factors are allowed; lowering then
  /// guards the tail (TVM does the same).
  std::pair<IterVar, IterVar> split(const IterVar& parent,
                                    std::int64_t factor);

  /// Fuses two adjacent leaves (outer immediately before inner) into one.
  IterVar fuse(const IterVar& outer, const IterVar& inner);

  /// Places the given leaves in the given order at their current positions
  /// (exact TVM semantics: other leaves do not move).
  void reorder(const std::vector<IterVar>& order);

  /// 2-D convenience: split both axes and reorder to
  /// {y_outer, x_outer, y_inner, x_inner} (TVM's s[C].tile).
  std::array<IterVar, 4> tile(const IterVar& y, const IterVar& x,
                              std::int64_t y_factor, std::int64_t x_factor);

  /// Marks this stage for inlining: its body is substituted into every
  /// consumer at lowering time and no loops/buffer are emitted for it
  /// (TVM's compute_inline). Only non-reduction computes can be inlined,
  /// and an inlined stage must not be a schedule output.
  void compute_inline();
  bool inlined() const { return inlined_; }

  /// Moves this stage's computation inside `consumer`'s loop nest, right
  /// after the loop over `leaf` (TVM's compute_at). At lowering time the
  /// region of this tensor the consumer needs under the fixed outer loops
  /// is inferred by symbolic interval analysis and only that region is
  /// (re)computed per outer iteration. The stage must feed exactly one
  /// consumer and must not be a schedule output.
  void compute_at(const Stage& consumer, const IterVar& leaf);
  bool attached() const { return attach_stage_ != nullptr; }
  const Stage* attach_stage() const { return attach_stage_; }
  const IterVar& attach_leaf() const { return attach_leaf_; }

  void unroll(const IterVar& iter);
  void vectorize(const IterVar& iter);
  void parallel(const IterVar& iter);

  /// Array packing (the cache_write idiom): at lowering time the window of
  /// `source` this stage reads under its outermost leaf is snapshotted
  /// into a contiguous Realize'd scratch buffer and the provably in-window
  /// reads are redirected to it, turning strided inner-loop traversals
  /// into stride-1 (te::pack_reads does the proof-carrying rewrite). The
  /// scratch sits inside the outermost leaf when it is serial and is
  /// hoisted outside it when that leaf executes concurrently, so the
  /// Realize never lands inside a kParallel/kVectorized loop. `source`
  /// must be an input of this stage's compute.
  void cache_write(const Tensor& source);
  const std::vector<Tensor>& pack_sources() const { return pack_sources_; }

  /// Annotation for a leaf (kSerial when none set).
  ForKind annotation(const IterVar& iter) const;

  const std::vector<SplitRelation>& split_relations() const {
    return splits_;
  }
  const std::vector<FuseRelation>& fuse_relations() const { return fuses_; }

  /// True when any split along the derivation of any original axis is
  /// non-exact, i.e. lowering must emit a guard.
  bool needs_guard() const;

 private:
  std::size_t leaf_position(const IterVar& iter) const;

  Tensor tensor_;
  std::vector<IterVar> leaves_;
  std::vector<SplitRelation> splits_;
  std::vector<FuseRelation> fuses_;
  std::vector<std::pair<IterVar, ForKind>> annotations_;
  std::vector<Tensor> pack_sources_;
  bool inlined_ = false;
  const Stage* attach_stage_ = nullptr;
  IterVar attach_leaf_;
};

/// A schedule for the DAG that produces `outputs` (te.create_schedule).
/// Holds one Stage per compute tensor, in topological order.
class Schedule {
 public:
  explicit Schedule(std::vector<Tensor> outputs);

  const std::vector<Tensor>& outputs() const { return outputs_; }
  /// All tensors in topo order (placeholders included).
  const std::vector<Tensor>& tensors() const { return tensors_; }

  /// Stage lookup (s[C]); the tensor must be a compute in this DAG.
  Stage& operator[](const Tensor& tensor);
  const Stage& operator[](const Tensor& tensor) const;

 private:
  std::vector<Tensor> outputs_;
  std::vector<Tensor> tensors_;
  std::vector<std::unique_ptr<Stage>> stages_;
};

}  // namespace tvmbo::te
