#include "autoscheduler/sketch.h"

#include "common/logging.h"
#include "configspace/divisors.h"

namespace tvmbo::autoscheduler {

SketchGenerator::SketchGenerator(std::vector<te::Tensor> outputs)
    : outputs_(std::move(outputs)) {
  TVMBO_CHECK(!outputs_.empty()) << "sketch generation requires outputs";
  std::size_t stage_index = 0;
  for (const te::Tensor& tensor : te::topo_sort(outputs_)) {
    if (!tensor->is_compute()) continue;
    TVMBO_CHECK(tensor->is_reduction && tensor->axis.size() == 2)
        << "sketch generation currently covers 2-D reduction stages; "
           "stage '"
        << tensor->name << "' is not one";
    StageSketch sketch;
    sketch.tensor = tensor;
    // Analysis step: candidate tile factors are the divisors of the axis
    // extents — read straight off the computation definition.
    sketch.y_param = space_.add(cs::tile_factor_param(
        "S" + std::to_string(stage_index) + "_y",
        tensor->axis[0]->extent));
    sketch.x_param = space_.add(cs::tile_factor_param(
        "S" + std::to_string(stage_index) + "_x",
        tensor->axis[1]->extent));
    stages_.push_back(std::move(sketch));
    ++stage_index;
  }
  TVMBO_CHECK(!stages_.empty()) << "DAG has no schedulable compute stages";
}

te::Schedule SketchGenerator::apply(const cs::Configuration& config) const {
  te::Schedule sched(outputs_);
  const std::vector<std::int64_t> values = space_.values_int(config);
  for (const StageSketch& sketch : stages_) {
    te::Stage& stage = sched[sketch.tensor];
    const auto& axis = stage.op_axis();
    auto [yo, yi] = stage.split(axis[0], values[sketch.y_param]);
    auto [xo, xi] = stage.split(axis[1], values[sketch.x_param]);
    std::vector<te::IterVar> order{yo, xo};
    for (const te::IterVar& reduce : stage.op_reduce_axis()) {
      order.push_back(reduce);
    }
    order.push_back(yi);
    order.push_back(xi);
    stage.reorder(order);
  }
  return sched;
}

std::vector<std::int64_t> SketchGenerator::tiles(
    const cs::Configuration& config) const {
  const std::vector<std::int64_t> values = space_.values_int(config);
  std::vector<std::int64_t> out;
  out.reserve(2 * stages_.size());
  for (const StageSketch& sketch : stages_) {
    out.push_back(values[sketch.y_param]);
    out.push_back(values[sketch.x_param]);
  }
  return out;
}

}  // namespace tvmbo::autoscheduler
