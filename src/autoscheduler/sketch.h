// AutoScheduler-lite: the second tuning path in TVM's framework (paper
// Fig. 1). Where AutoTVM "relies on predefined tunable parameters",
// AutoScheduler "automatically generates the search space by analyzing
// the computation definition".
//
// SketchGenerator performs that analysis for TE compute DAGs: every
// reduction stage contributes a tile-sketch over its two data axes, with
// candidate factors derived from the axis extents (their divisor sets) —
// no hand-written knob lists. The resulting space plugs into the same
// search strategies and measurement loop as everything else.
//
// Scope note (documented in DESIGN.md): sketches cover matmul-chain DAGs
// (gemm/2mm/3mm); LU/Cholesky are loop-level programs without a TE DAG to
// analyze, exactly why the paper pins its comparison on AutoTVM.
#pragma once

#include <cstdint>
#include <vector>

#include "configspace/configspace.h"
#include "te/schedule.h"

namespace tvmbo::autoscheduler {

class SketchGenerator {
 public:
  /// Analyzes the DAG that produces `outputs`. Every compute stage with
  /// two data axes and at least one reduction axis becomes a tile sketch.
  explicit SketchGenerator(std::vector<te::Tensor> outputs);

  struct StageSketch {
    te::Tensor tensor;
    std::size_t y_param;  ///< parameter index of the y tile factor
    std::size_t x_param;  ///< parameter index of the x tile factor
  };

  const std::vector<StageSketch>& stages() const { return stages_; }

  /// The automatically generated space (owned by the generator).
  const cs::ConfigurationSpace& space() const { return space_; }

  /// Instantiates a schedule: per stage, split (y, x) by the configured
  /// factors and reorder to {yo, xo, reduce..., yi, xi}.
  te::Schedule apply(const cs::Configuration& config) const;

  /// Tile vector in stage order {y0, x0, y1, x1, ...} — the canonical
  /// layout the measurement devices understand.
  std::vector<std::int64_t> tiles(const cs::Configuration& config) const;

 private:
  std::vector<te::Tensor> outputs_;
  std::vector<StageSketch> stages_;
  cs::ConfigurationSpace space_;
};

}  // namespace tvmbo::autoscheduler
