#include "autoscheduler/evolutionary.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tvmbo::autoscheduler {

EvolutionarySearch::EvolutionarySearch(const cs::ConfigurationSpace* space,
                                       std::uint64_t seed,
                                       EvoOptions options)
    : Tuner(space, seed), options_(options), encoder_(space),
      model_(options.gbt) {
  TVMBO_CHECK_GE(options_.population, 2u)
      << "evolution pool needs at least two members";
  TVMBO_CHECK(options_.random_fraction >= 0.0 &&
              options_.random_fraction <= 1.0)
      << "random_fraction must be in [0, 1]";
}

void EvolutionarySearch::train_model() {
  surrogate::Dataset data;
  for (const tuners::Trial& trial : history_) {
    if (!trial.valid || trial.runtime_s <= 0.0) continue;
    data.add(encoder_.encode(trial.config), std::log(trial.runtime_s));
  }
  if (data.size() < 2) return;
  model_.fit(data, rng_);
  trained_on_ = history_.size();
}

cs::Configuration EvolutionarySearch::mutate(
    const cs::Configuration& config) {
  // Geometric number of neighbourhood hops (mean options_.mutation_hops).
  cs::Configuration mutated = space_->neighbor(config, rng_);
  const double p_continue =
      1.0 - 1.0 / std::max(options_.mutation_hops_mean, 1.0);
  while (rng_.bernoulli(p_continue)) {
    mutated = space_->neighbor(mutated, rng_);
  }
  return mutated;
}

std::vector<cs::Configuration> EvolutionarySearch::propose_random(
    std::size_t n) {
  std::vector<cs::Configuration> batch;
  std::size_t rejects = 0;
  while (batch.size() < n && rejects < 64 * (n + 1)) {
    cs::Configuration config = space_->sample(rng_);
    if (mark_visited(config)) {
      batch.push_back(std::move(config));
    } else {
      ++rejects;
    }
  }
  return batch;
}

std::vector<cs::Configuration> EvolutionarySearch::next_batch(
    std::size_t n) {
  std::size_t measured = 0;
  for (const tuners::Trial& trial : history_) {
    if (trial.valid) ++measured;
  }
  if (measured < options_.warmup) return propose_random(n);
  if (history_.size() > trained_on_ || !model_.fitted()) train_model();
  if (!model_.fitted()) return propose_random(n);

  auto score = [&](const cs::Configuration& config) {
    return model_.predict(encoder_.encode(config));
  };

  // Seed the pool: measured elite + random immigrants.
  struct Member {
    cs::Configuration config;
    double score;
  };
  std::vector<const tuners::Trial*> elite;
  for (const tuners::Trial& trial : history_) {
    if (trial.valid) elite.push_back(&trial);
  }
  std::sort(elite.begin(), elite.end(),
            [](const tuners::Trial* a, const tuners::Trial* b) {
              return a->runtime_s < b->runtime_s;
            });
  std::vector<Member> pool;
  pool.reserve(options_.population);
  for (std::size_t i = 0;
       i < std::min(options_.elite_seeds, elite.size()); ++i) {
    pool.push_back({elite[i]->config, score(elite[i]->config)});
  }
  while (pool.size() < options_.population) {
    cs::Configuration config = space_->sample(rng_);
    const double s = score(config);
    pool.push_back({std::move(config), s});
  }

  // Track the best distinct unvisited candidates across all generations.
  std::vector<Member> best_seen;
  auto offer = [&](const Member& member) {
    if (is_visited(member.config)) return;
    for (const Member& existing : best_seen) {
      if (existing.config == member.config) return;
    }
    best_seen.push_back(member);
  };
  for (const Member& member : pool) offer(member);

  for (std::size_t generation = 0; generation < options_.generations;
       ++generation) {
    // Evolve: each member mutates; better-predicted offspring replace
    // their parent (hill climbing on the model), plus random immigrants.
    for (Member& member : pool) {
      if (rng_.uniform() < options_.random_fraction) {
        member.config = space_->sample(rng_);
        member.score = score(member.config);
        offer(member);
        continue;
      }
      cs::Configuration child = mutate(member.config);
      const double child_score = score(child);
      if (child_score <= member.score) {
        member.config = std::move(child);
        member.score = child_score;
      }
      offer(member);
    }
  }

  std::sort(best_seen.begin(), best_seen.end(),
            [](const Member& a, const Member& b) {
              return a.score < b.score;
            });
  std::vector<cs::Configuration> batch;
  for (const Member& member : best_seen) {
    if (batch.size() >= n) break;
    cs::Configuration config = member.config;
    if (mark_visited(config)) batch.push_back(std::move(config));
  }
  // Top up with random picks if evolution could not mint enough.
  auto tail = propose_random(n - batch.size());
  for (auto& config : tail) batch.push_back(std::move(config));
  return batch;
}

}  // namespace tvmbo::autoscheduler
