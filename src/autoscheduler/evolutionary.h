// Ansor-style evolutionary search: a learned cost model (gradient-boosted
// trees) scores candidates; each round evolves the measured elite through
// repeated neighbourhood mutation, keeping the best-predicted unvisited
// candidates for measurement. Complements GATuner (no model, roulette
// crossover) and XgbTuner (model + simulated annealing).
#pragma once

#include "surrogate/dataset.h"
#include "surrogate/gbt.h"
#include "tuners/tuner.h"

namespace tvmbo::autoscheduler {

struct EvoOptions {
  std::size_t warmup = 12;           ///< random measurements before the model
  std::size_t population = 48;       ///< evolution pool per round
  std::size_t generations = 8;       ///< mutation rounds per proposal
  std::size_t elite_seeds = 8;       ///< top measured configs seeding the pool
  double mutation_hops_mean = 1.6;   ///< geometric number of neighbour moves
  double random_fraction = 0.10;     ///< fresh random members per generation
  surrogate::GbtOptions gbt{};
};

class EvolutionarySearch final : public tuners::Tuner {
 public:
  EvolutionarySearch(const cs::ConfigurationSpace* space,
                     std::uint64_t seed, EvoOptions options = {});

  std::string name() const override { return "autoscheduler-evo"; }
  std::vector<cs::Configuration> next_batch(std::size_t n) override;

  bool model_ready() const { return model_.fitted(); }

 private:
  void train_model();
  cs::Configuration mutate(const cs::Configuration& config);
  std::vector<cs::Configuration> propose_random(std::size_t n);

  EvoOptions options_;
  surrogate::FeatureEncoder encoder_;
  surrogate::GradientBoostedTrees model_;
  std::size_t trained_on_ = 0;
};

}  // namespace tvmbo::autoscheduler
