#include "autotvm/autotvm.h"

#include "common/logging.h"
#include "tuners/ga_tuner.h"
#include "tuners/grid_tuner.h"
#include "tuners/random_tuner.h"
#include "tuners/xgb_tuner.h"

namespace tvmbo::autotvm {

void ConfigEntity::define_knob(const std::string& name,
                               std::vector<std::int64_t> candidates) {
  TVMBO_CHECK(!bound_) << "cannot define knobs after binding";
  TVMBO_CHECK(!candidates.empty())
      << "knob '" << name << "' requires candidates";
  std::vector<double> sequence;
  sequence.reserve(candidates.size());
  for (std::int64_t candidate : candidates) {
    sequence.push_back(static_cast<double>(candidate));
  }
  space_.add(std::make_shared<cs::OrdinalHyperparameter>(
      name, std::move(sequence)));
}

void ConfigEntity::bind(const cs::Configuration& config) {
  TVMBO_CHECK_EQ(config.size(), space_.num_params())
      << "configuration arity mismatch binding knobs";
  current_ = config;
  bound_ = true;
}

std::int64_t ConfigEntity::val(const std::string& knob) const {
  TVMBO_CHECK(bound_) << "knob '" << knob << "' read before binding";
  const std::size_t index = space_.param_index(knob);
  return static_cast<std::int64_t>(space_.param(index).value_at(
      static_cast<std::uint64_t>(current_.index(index))));
}

std::vector<std::int64_t> ConfigEntity::values() const {
  TVMBO_CHECK(bound_) << "knob values read before binding";
  return space_.values_int(current_);
}

runtime::MeasureInput Task::measure_input(
    const cs::Configuration& cfg) const {
  const std::vector<std::int64_t> knobs = config.space().values_int(cfg);
  if (instantiate) return instantiate(knobs);
  runtime::MeasureInput input;
  input.workload = workload;
  input.tiles = knobs;
  return input;
}

const char* tuner_type_name(TunerType type) {
  switch (type) {
    case TunerType::kRandom: return "autotvm-random";
    case TunerType::kGridSearch: return "autotvm-gridsearch";
    case TunerType::kGa: return "autotvm-ga";
    case TunerType::kXgb: return "autotvm-xgb";
  }
  return "?";
}

std::unique_ptr<tuners::Tuner> create_tuner(
    TunerType type, const cs::ConfigurationSpace* space, std::uint64_t seed,
    const TunerFactoryOptions& options) {
  switch (type) {
    case TunerType::kRandom:
      return std::make_unique<tuners::RandomTuner>(space, seed);
    case TunerType::kGridSearch:
      return std::make_unique<tuners::GridSearchTuner>(space, seed);
    case TunerType::kGa:
      return std::make_unique<tuners::GaTuner>(space, seed);
    case TunerType::kXgb: {
      tuners::XgbOptions xgb;
      xgb.paper_eval_cap = options.xgb_paper_eval_cap;
      return std::make_unique<tuners::XgbTuner>(space, seed, xgb);
    }
  }
  TVMBO_CHECK(false) << "unknown tuner type";
  return nullptr;
}

}  // namespace tvmbo::autotvm
