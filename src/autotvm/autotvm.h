// AutoTVM-compatible tuning API: define_knob config entities, tuning
// tasks, and tuner construction — mirroring the way the paper's AutoTVM
// variant parameterizes kernels:
//
//   cfg = autotvm.get_config()
//   cfg.define_knob("tile_y", [1, 2, 4, ...])
//   ...
//   yo, yi = s[E].split(y, cfg["tile_y"].val)
//
// Here: a ConfigEntity collects knob definitions into a
// cs::ConfigurationSpace; binding a Configuration makes knob values
// readable by name while the schedule callback runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "configspace/configspace.h"
#include "runtime/measure.h"
#include "tuners/tuner.h"

namespace tvmbo::autotvm {

class ConfigEntity {
 public:
  /// Declares a tunable knob with explicit integer candidates
  /// (cfg.define_knob). Knob order defines parameter order.
  void define_knob(const std::string& name,
                   std::vector<std::int64_t> candidates);

  std::size_t num_knobs() const { return space_.num_params(); }
  const cs::ConfigurationSpace& space() const { return space_; }

  /// Binds a concrete configuration so val() works (cfg["..."].val).
  void bind(const cs::Configuration& config);
  bool bound() const { return bound_; }

  /// Value of a knob in the bound configuration.
  std::int64_t val(const std::string& knob) const;
  /// All knob values in declaration order.
  std::vector<std::int64_t> values() const;

 private:
  cs::ConfigurationSpace space_;
  cs::Configuration current_;
  bool bound_ = false;
};

/// A tuning task: a workload plus a callback that instantiates a
/// measurable kernel from bound knob values (the analogue of an
/// @autotvm.template schedule function).
struct Task {
  std::string name;
  runtime::Workload workload;
  ConfigEntity config;
  /// Builds the runnable for a knob-value vector. May be empty when only
  /// simulated devices are used (they measure from workload + tiles).
  std::function<runtime::MeasureInput(const std::vector<std::int64_t>&)>
      instantiate;

  /// Measure input for a configuration: uses `instantiate` when present,
  /// otherwise fills workload + tiles only (enough for SwingSimDevice).
  runtime::MeasureInput measure_input(const cs::Configuration& cfg) const;
};

enum class TunerType { kRandom, kGridSearch, kGa, kXgb };

const char* tuner_type_name(TunerType type);

struct TunerFactoryOptions {
  /// Reproduces the paper's XGBTuner 56-evaluation artifact when > 0.
  std::size_t xgb_paper_eval_cap = 0;
};

/// Creates one of AutoTVM's four tuners over the task's knob space.
std::unique_ptr<tuners::Tuner> create_tuner(
    TunerType type, const cs::ConfigurationSpace* space, std::uint64_t seed,
    const TunerFactoryOptions& options = {});

}  // namespace tvmbo::autotvm
