#include "serve/server.h"

#include <utility>

#include "common/logging.h"
#include "distd/protocol.h"

namespace tvmbo::serve {

namespace {

using distd::FrameStatus;

/// Write side of one submit connection, shared between the connection
/// thread (reads, lifetime) and the scheduler's event sink (writes).
/// The sink outlives the connection — the job registry keeps it — so
/// every touch of the socket goes through `mutex` and checks `closed`.
struct ConnState {
  std::mutex mutex;
  distd::Socket socket;
  bool closed = false;
  bool terminal = false;  ///< a job_complete/job_cancel frame was sent
};

/// Sends one frame unless the connection is already gone.
void send_locked(const std::shared_ptr<ConnState>& state, const Json& frame) {
  std::lock_guard<std::mutex> lock(state->mutex);
  if (state->closed) return;
  if (distd::write_frame(state->socket.fd(), frame) != FrameStatus::kOk) {
    state->closed = true;
  }
}

}  // namespace

ServeServer::ServeServer(Scheduler* scheduler, ServerOptions options)
    : scheduler_(scheduler), options_(std::move(options)) {
  TVMBO_CHECK(scheduler_ != nullptr) << "server requires a scheduler";
  if (options_.transport == "tcp") {
    listener_ = distd::ListenSocket::tcp_loopback(options_.tcp_port);
  } else {
    TVMBO_CHECK_EQ(options_.transport, "unix")
        << "unknown transport (want unix|tcp): " << options_.transport;
    TVMBO_CHECK(!options_.socket_path.empty())
        << "unix transport requires a socket path";
    listener_ = distd::ListenSocket::unix_domain(options_.socket_path);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ServeServer::~ServeServer() { shutdown(); }

void ServeServer::shutdown() {
  stop_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) thread.join();
}

void ServeServer::accept_loop() {
  while (!stop_.load()) {
    std::optional<distd::Socket> conn;
    try {
      conn = listener_.accept(options_.poll_ms);
    } catch (const std::exception& e) {
      TVMBO_LOG(Warning) << "serve accept failed: " << e.what();
      continue;
    }
    if (!conn.has_value()) continue;
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back(
        [this, socket = std::move(*conn)]() mutable {
          serve_connection(std::move(socket));
        });
  }
}

void ServeServer::serve_connection(distd::Socket socket) {
  // One request frame per connection; submits then hold the connection
  // open as the job's event stream.
  Json request;
  FrameStatus status = FrameStatus::kTimeout;
  while (!stop_.load()) {
    status = distd::read_frame(socket.fd(), &request, options_.poll_ms,
                               kServeMaxFrameBytes);
    if (status != FrameStatus::kTimeout) break;
  }
  if (status == FrameStatus::kTooLarge || status == FrameStatus::kMalformed) {
    // Typed rejection, then close: the stream position is undefined.
    distd::write_frame(
        socket.fd(),
        error_frame(distd::frame_status_name(status),
                    "rejected client frame"));
    return;
  }
  if (status != FrameStatus::kOk) return;  // EOF/error/shutdown race

  const std::string type = distd::frame_type(request);
  if (type == "job_submit") {
    handle_submit(socket, request);
    return;
  }
  if (type == "job_list") {
    Json jobs = Json::array();
    for (const JobStatus& job : scheduler_->list()) {
      jobs.push_back(job.to_json());
    }
    Json reply = Json::object();
    reply.set("type", "list_reply");
    reply.set("jobs", std::move(jobs));
    distd::write_frame(socket.fd(), reply);
    return;
  }
  if (type == "job_status" || type == "job_cancel") {
    std::uint64_t job = 0;
    try {
      job = static_cast<std::uint64_t>(request.at("job").as_int());
    } catch (const std::exception& e) {
      distd::write_frame(socket.fd(), error_frame("bad_request", e.what()));
      return;
    }
    if (type == "job_status") {
      const std::optional<JobStatus> status_opt = scheduler_->status(job);
      if (!status_opt.has_value()) {
        distd::write_frame(socket.fd(),
                           error_frame("unknown_job",
                                       "no job " + std::to_string(job)));
        return;
      }
      Json reply = status_opt->to_json();
      reply.set("type", "status_reply");
      distd::write_frame(socket.fd(), reply);
      return;
    }
    if (!scheduler_->cancel(job, "client request")) {
      distd::write_frame(
          socket.fd(),
          error_frame("unknown_job",
                      "no cancellable job " + std::to_string(job)));
      return;
    }
    Json reply = Json::object();
    reply.set("type", "cancel_reply");
    reply.set("job", job);
    distd::write_frame(socket.fd(), reply);
    return;
  }
  if (type == "config_lookup") {
    Json reply;
    try {
      reply = scheduler_->lookup(LookupSpec::from_json(request));
    } catch (const std::exception& e) {
      reply = error_frame("bad_request", e.what());
    }
    distd::write_frame(socket.fd(), reply);
    return;
  }
  distd::write_frame(socket.fd(),
                     error_frame("bad_request",
                                 "unknown request type '" + type + "'"));
}

void ServeServer::handle_submit(distd::Socket& socket, const Json& request) {
  JobSpec spec;
  try {
    spec = JobSpec::from_json(request);
  } catch (const std::exception& e) {
    distd::write_frame(socket.fd(), error_frame("bad_request", e.what()));
    return;
  }

  auto state = std::make_shared<ConnState>();
  state->socket = std::move(socket);
  Scheduler::EventSink sink = [state](const Json& frame) {
    send_locked(state, frame);
    if (frame.contains("event") &&
        is_terminal_event(frame.at("event").as_string())) {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->terminal = true;
    }
  };

  // Hold the write lock across submit + accept so the scheduler's first
  // event (the sink locks the same mutex) cannot outrun job_accept.
  Scheduler::SubmitResult result;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    result = scheduler_->submit(spec, sink);
    const Json& reply = result.ok()
                            ? job_accept_frame(result.job)
                            : error_frame(result.error_code, result.message);
    if (distd::write_frame(state->socket.fd(), reply) != FrameStatus::kOk) {
      state->closed = true;
    }
  }
  if (!result.ok()) return;

  // The connection is now the event stream. Keep reading so we notice a
  // vanished client (EOF cancels the job — an abandoned tenant must not
  // keep burning shared workers) and accept in-band job_cancel frames.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (state->terminal || state->closed) break;
    }
    if (stop_.load()) {
      // Server shutdown without a drain: the scheduler (or its owner)
      // is responsible for the job; just stop serving the stream.
      scheduler_->cancel(result.job, "server shutdown");
      break;
    }
    Json frame;
    const FrameStatus status =
        distd::read_frame(state->socket.fd(), &frame, options_.poll_ms,
                          kServeMaxFrameBytes);
    if (status == FrameStatus::kTimeout) continue;
    if (status == FrameStatus::kOk) {
      if (distd::frame_type(frame) == "job_cancel") {
        scheduler_->cancel(result.job, "client request");
      }
      continue;
    }
    // EOF, error, or a framing violation mid-stream: the client is gone
    // or hostile either way.
    scheduler_->cancel(result.job, "client disconnected");
    break;
  }
  std::lock_guard<std::mutex> lock(state->mutex);
  state->closed = true;
  state->socket.close();
}

}  // namespace tvmbo::serve
