// ServeServer: the socket front of the tuning service. Accepts client
// connections on a unix/tcp endpoint, parses one request frame per
// connection (job_submit / job_status / job_cancel / job_list), and for
// submits turns the connection into the job's event stream.
//
// Hostile-client posture: client frames are capped at
// kServeMaxFrameBytes (an oversized length prefix is rejected before any
// allocation), and framing violations get a typed error frame before the
// close — after a bad frame the stream cannot be re-synchronized, so the
// connection always dies with it. A submit connection that disappears
// (EOF) before its job finishes cancels the job: an abandoned tenant
// must not keep burning shared workers.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "distd/socket.h"
#include "serve/scheduler.h"

namespace tvmbo::serve {

struct ServerOptions {
  /// "unix" (socket_path required) or "tcp" (loopback, tcp_port; 0 =
  /// ephemeral, reflected in endpoint()).
  std::string transport = "unix";
  std::string socket_path;
  int tcp_port = 0;
  /// Poll granularity for connection reads (bounds shutdown latency).
  int poll_ms = 200;
};

class ServeServer {
 public:
  /// Binds the listener and starts the accept loop. The scheduler is not
  /// owned and must outlive the server.
  ServeServer(Scheduler* scheduler, ServerOptions options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// The string clients pass to Socket::connect.
  const std::string& endpoint() const { return listener_.endpoint(); }

  /// Stops accepting, wakes every connection, joins all threads. Does
  /// NOT drain the scheduler — callers drain first so in-flight jobs
  /// emit their terminal events while connections still exist.
  void shutdown();

 private:
  void accept_loop();
  void serve_connection(distd::Socket socket);
  void handle_submit(distd::Socket& socket, const Json& request);

  Scheduler* scheduler_;
  ServerOptions options_;
  distd::ListenSocket listener_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace tvmbo::serve
