#include "serve/protocol.h"

#include "common/logging.h"

namespace tvmbo::serve {

Json JobSpec::to_json() const {
  Json out = Json::object();
  out.set("type", "job_submit");
  out.set("tenant", tenant);
  out.set("kernel", kernel);
  out.set("size", size);
  out.set("strategy", strategy);
  out.set("budget", static_cast<std::int64_t>(budget));
  out.set("nthreads", nthreads);
  out.set("seed", seed);
  out.set("priority", priority);
  out.set("backend", backend);
  out.set("repeat", repeat);
  out.set("timeout_s", timeout_s);
  return out;
}

JobSpec JobSpec::from_json(const Json& json) {
  JobSpec spec;
  // kernel and budget are mandatory; everything else keeps its default.
  spec.kernel = json.at("kernel").as_string();
  TVMBO_CHECK(!spec.kernel.empty()) << "kernel must not be empty";
  const std::int64_t budget = json.at("budget").as_int();
  TVMBO_CHECK_GT(budget, 0) << "job budget must be positive";
  spec.budget = static_cast<std::size_t>(budget);
  if (json.contains("tenant")) spec.tenant = json.at("tenant").as_string();
  TVMBO_CHECK(!spec.tenant.empty()) << "tenant must not be empty";
  if (json.contains("size")) spec.size = json.at("size").as_string();
  if (json.contains("strategy")) {
    spec.strategy = json.at("strategy").as_string();
  }
  if (json.contains("nthreads")) spec.nthreads = json.at("nthreads").as_int();
  TVMBO_CHECK_GE(spec.nthreads, 0) << "nthreads must be >= 0";
  if (json.contains("seed")) {
    spec.seed = static_cast<std::uint64_t>(json.at("seed").as_int());
  }
  if (json.contains("priority")) {
    spec.priority = static_cast<int>(json.at("priority").as_int());
    TVMBO_CHECK_GE(spec.priority, 0) << "priority must be >= 0";
  }
  if (json.contains("backend")) {
    spec.backend = json.at("backend").as_string();
  }
  if (json.contains("repeat")) {
    spec.repeat = static_cast<int>(json.at("repeat").as_int());
    TVMBO_CHECK_GT(spec.repeat, 0) << "repeat must be positive";
  }
  if (json.contains("timeout_s")) {
    spec.timeout_s = json.at("timeout_s").as_double();
    TVMBO_CHECK_GE(spec.timeout_s, 0.0) << "timeout_s must be >= 0";
  }
  return spec;
}

Json LookupSpec::to_json() const {
  Json out = Json::object();
  out.set("type", "config_lookup");
  out.set("kernel", kernel);
  out.set("size", size);
  out.set("nthreads", nthreads);
  out.set("topk", topk);
  return out;
}

LookupSpec LookupSpec::from_json(const Json& json) {
  LookupSpec spec;
  spec.kernel = json.at("kernel").as_string();
  TVMBO_CHECK(!spec.kernel.empty()) << "kernel must not be empty";
  if (json.contains("size")) spec.size = json.at("size").as_string();
  if (json.contains("nthreads")) spec.nthreads = json.at("nthreads").as_int();
  TVMBO_CHECK_GE(spec.nthreads, 0) << "nthreads must be >= 0";
  if (json.contains("topk")) spec.topk = json.at("topk").as_int();
  TVMBO_CHECK_GT(spec.topk, 0) << "topk must be positive";
  return spec;
}

Json error_frame(const std::string& code, const std::string& message) {
  Json out = Json::object();
  out.set("type", "error");
  out.set("code", code);
  out.set("message", message);
  return out;
}

Json job_accept_frame(std::uint64_t job) {
  Json out = Json::object();
  out.set("type", "job_accept");
  out.set("job", job);
  return out;
}

Json job_status_frame(std::uint64_t job) {
  Json out = Json::object();
  out.set("type", "job_status");
  out.set("job", job);
  return out;
}

Json job_cancel_frame(std::uint64_t job) {
  Json out = Json::object();
  out.set("type", "job_cancel");
  out.set("job", job);
  return out;
}

Json job_list_frame() {
  Json out = Json::object();
  out.set("type", "job_list");
  return out;
}

Json event_frame(const std::string& event, std::uint64_t job) {
  Json out = Json::object();
  out.set("type", "event");
  out.set("event", event);
  out.set("job", job);
  return out;
}

bool is_terminal_event(const std::string& event) {
  return event == "job_complete" || event == "job_cancel";
}

}  // namespace tvmbo::serve
