#include "serve/client.h"

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "distd/protocol.h"

namespace tvmbo::serve {

namespace {
using distd::FrameStatus;
}  // namespace

ServeClient::ServeClient(const std::string& endpoint,
                         double connect_timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(connect_timeout_s));
  for (;;) {
    try {
      socket_ = distd::Socket::connect(endpoint);
      return;
    } catch (const CheckError&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

ServeClient::SubmitOutcome ServeClient::submit(const JobSpec& spec) {
  SubmitOutcome out;
  TVMBO_CHECK(distd::write_frame(socket_.fd(), spec.to_json()) ==
              FrameStatus::kOk)
      << "failed to send job_submit";
  Json reply;
  const FrameStatus status =
      distd::read_frame(socket_.fd(), &reply, /*timeout_ms=*/30000);
  TVMBO_CHECK(status == FrameStatus::kOk)
      << "no submit reply (" << distd::frame_status_name(status) << ")";
  const std::string type = distd::frame_type(reply);
  if (type == "error") {
    out.error_code = reply.at("code").as_string();
    out.message = reply.at("message").as_string();
    return out;
  }
  TVMBO_CHECK_EQ(type, "job_accept") << "unexpected submit reply";
  out.job = static_cast<std::uint64_t>(reply.at("job").as_int());
  return out;
}

std::optional<Json> ServeClient::next_event(int timeout_ms) {
  Json frame;
  const FrameStatus status =
      distd::read_frame(socket_.fd(), &frame, timeout_ms);
  if (status == FrameStatus::kTimeout) return std::nullopt;
  TVMBO_CHECK(status == FrameStatus::kOk)
      << "event stream broke (" << distd::frame_status_name(status) << ")";
  return frame;
}

Json ServeClient::request(const Json& frame, int timeout_ms) {
  TVMBO_CHECK(distd::write_frame(socket_.fd(), frame) == FrameStatus::kOk)
      << "failed to send request";
  Json reply;
  const FrameStatus status =
      distd::read_frame(socket_.fd(), &reply, timeout_ms);
  TVMBO_CHECK(status == FrameStatus::kOk)
      << "no reply (" << distd::frame_status_name(status) << ")";
  return reply;
}

std::optional<Json> job_status(const std::string& endpoint,
                               std::uint64_t job) {
  ServeClient client(endpoint);
  const Json reply = client.request(job_status_frame(job));
  if (distd::frame_type(reply) != "status_reply") return std::nullopt;
  return reply;
}

bool job_cancel(const std::string& endpoint, std::uint64_t job) {
  ServeClient client(endpoint);
  const Json reply = client.request(job_cancel_frame(job));
  return distd::frame_type(reply) == "cancel_reply";
}

Json job_list(const std::string& endpoint) {
  ServeClient client(endpoint);
  return client.request(job_list_frame());
}

Json config_lookup(const std::string& endpoint, const LookupSpec& spec) {
  ServeClient client(endpoint);
  return client.request(spec.to_json());
}

}  // namespace tvmbo::serve
