// ServeClient: client-side library for the tuning service, used by the
// tvmbo_client CLI and the serve test suites. One instance wraps one
// connection; submit() turns it into the job's event stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "distd/socket.h"
#include "serve/protocol.h"

namespace tvmbo::serve {

class ServeClient {
 public:
  /// Connects to the daemon ("unix:<path>" | "tcp:<ip>:<port>"),
  /// retrying for up to `connect_timeout_s` (the daemon may still be
  /// binding its socket). Throws CheckError when the window elapses.
  explicit ServeClient(const std::string& endpoint,
                       double connect_timeout_s = 5.0);

  struct SubmitOutcome {
    std::uint64_t job = 0;
    std::string error_code;  ///< empty on acceptance
    std::string message;
    bool ok() const { return error_code.empty(); }
  };

  /// Submits a job; on acceptance this connection streams its events.
  SubmitOutcome submit(const JobSpec& spec);

  /// Next event frame of a submitted job (nullopt on timeout; throws
  /// CheckError when the server goes away mid-stream). `timeout_ms` -1
  /// waits forever.
  std::optional<Json> next_event(int timeout_ms);

  /// One-shot request/reply on this connection (job_status / job_cancel
  /// / job_list frames). Throws CheckError on transport failure.
  Json request(const Json& frame, int timeout_ms = 10000);

  int fd() const { return socket_.fd(); }

 private:
  distd::Socket socket_;
};

/// Convenience one-shots (each opens its own connection).
std::optional<Json> job_status(const std::string& endpoint,
                               std::uint64_t job);
bool job_cancel(const std::string& endpoint, std::uint64_t job);
Json job_list(const std::string& endpoint);
/// Instant-config query: lookup_reply or error frame, verbatim.
Json config_lookup(const std::string& endpoint, const LookupSpec& spec);

}  // namespace tvmbo::serve
