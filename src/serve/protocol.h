// Wire protocol of the tuning service (tvmbo_serve <-> tvmbo_client),
// riding on distd's length-prefixed JSON framing (distd/protocol.h).
//
// Every request is one frame; the reply depends on the type:
//   job_submit  -> job_accept {job} followed by a stream of event frames
//                  on the same connection, ending with a terminal event
//                  (job_complete or job_cancel) — or a typed error frame.
//   job_status  -> status_reply {job, state, completed, ...} | error
//   job_cancel  -> cancel_reply {job, state} | error
//   job_list    -> list_reply {jobs: [...]}
//   config_lookup -> lookup_reply {source, workload, nthreads,
//                  configs: [{tiles, runtime_s}], ...} | error — the
//                  instant-config path: answered from the daemon's
//                  in-memory cache / transfer cost model without
//                  dispatching any measurement.
//
// Typed error frames ({type: "error", code, message}) answer hostile or
// over-quota input instead of dropping the connection silently; after a
// framing-level violation (frame_too_large / malformed_frame) the stream
// cannot be re-synchronized, so the server sends the error frame and
// closes. Error codes: bad_request, quota_exceeded, queue_full,
// unknown_job, draining, frame_too_large, malformed_frame.
//
// Event frames ({type: "event", event, job, ...}) mirror the daemon's
// trace events for the one job the connection submitted: job_start,
// job_trial (per evaluation: tiles, runtime_s, valid, best so far),
// job_complete, job_cancel.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.h"

namespace tvmbo::serve {

/// Frame-size limit the server enforces on client connections. Requests
/// are small (a job spec, a job id); anything near distd's 16 MiB
/// transport ceiling is hostile.
inline constexpr std::uint32_t kServeMaxFrameBytes = 1u << 20;

/// One tuning job as submitted by a client: which kernel instance to
/// tune, with what strategy, and under which tenant/priority.
struct JobSpec {
  std::string tenant = "default";
  std::string kernel;            ///< polybench kernel (or "fault.*")
  std::string size = "large";    ///< dataset name
  std::string strategy = "ytopt";
  std::size_t budget = 100;      ///< max evaluations
  std::int64_t nthreads = 1;     ///< != 1 appends parallel knobs
  std::uint64_t seed = 2023;     ///< session seed (strategy seeds derive)
  int priority = 1;              ///< lane: 0 highest, larger = later
  std::string backend = "native";
  int repeat = 1;                ///< timed runs per evaluation
  double timeout_s = 0.0;        ///< per-run timeout (0 = none)

  Json to_json() const;  ///< a complete job_submit frame
  static JobSpec from_json(const Json& json);  ///< throws on bad fields
};

/// A read-only instant-config query: "what tiles should kernel/size run
/// with under this thread budget?". Unlike JobSpec it never spends a
/// worker slot — the daemon answers from its exact-result cache or the
/// loaded transfer cost model.
struct LookupSpec {
  std::string kernel;          ///< polybench kernel
  std::string size = "large";  ///< dataset name
  std::int64_t nthreads = 1;   ///< thread budget the answer targets
  std::int64_t topk = 1;       ///< candidates wanted from a model answer

  Json to_json() const;  ///< a complete config_lookup frame
  static LookupSpec from_json(const Json& json);  ///< throws on bad fields
};

Json error_frame(const std::string& code, const std::string& message);
Json job_accept_frame(std::uint64_t job);
Json job_status_frame(std::uint64_t job);
Json job_cancel_frame(std::uint64_t job);
Json job_list_frame();

/// {type: "event", event: <name>, job: <id>} — callers add the rest.
Json event_frame(const std::string& event, std::uint64_t job);

/// True for the two event names that end a job's stream.
bool is_terminal_event(const std::string& event);

}  // namespace tvmbo::serve
