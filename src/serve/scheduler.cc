#include "serve/scheduler.h"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "configspace/configspace.h"
#include "distd/fault_kernels.h"
#include "kernels/polybench.h"
#include "runtime/exec_backend.h"
#include "transfer/model_store.h"
#include "tuners/measure_loop.h"

namespace tvmbo::serve {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

Json JobStatus::to_json() const {
  Json out = Json::object();
  out.set("job", id);
  out.set("tenant", tenant);
  out.set("workload", workload);
  out.set("strategy", strategy);
  out.set("state", job_state_name(state));
  out.set("priority", priority);
  out.set("budget", static_cast<std::int64_t>(budget));
  out.set("completed", static_cast<std::int64_t>(completed));
  out.set("in_flight", static_cast<std::int64_t>(in_flight));
  out.set("slot_seconds", slot_seconds);
  out.set("best_runtime_s", best_runtime_s);
  return out;
}

/// One live job: the kernel's space, the strategy tuner seeded exactly
/// like a solo AutotuningSession would seed it, and the AskTellSession
/// the scheduler ticks. The space is heap-pinned (the tuner keeps a
/// pointer into it).
struct Scheduler::Job {
  std::uint64_t id = 0;
  JobSpec spec;
  runtime::Workload workload;
  runtime::ExecBackend backend = runtime::ExecBackend::kNative;
  std::unique_ptr<cs::ConfigurationSpace> space;
  std::unique_ptr<tuners::Tuner> tuner;
  std::unique_ptr<tuners::AskTellSession> session;
  EventSink sink;

  JobState state = JobState::kQueued;
  std::size_t completed = 0;
  std::size_t in_flight = 0;
  double slot_seconds = 0.0;
  double best_runtime_s = std::numeric_limits<double>::infinity();
  std::vector<std::int64_t> best_tiles;
  /// Leases of this job's in-flight dispatches (kill targets on cancel).
  std::map<std::uint64_t, distd::WorkerPool::Lease> leases;

  bool terminal() const {
    return state == JobState::kDone || state == JobState::kCancelled;
  }
  /// Runnable = the fill loop may ask() it for another configuration.
  bool runnable() const { return !terminal() && session->can_ask(); }

  JobStatus status() const {
    JobStatus out;
    out.id = id;
    out.tenant = spec.tenant;
    out.workload = workload.id();
    out.strategy = spec.strategy;
    out.state = state;
    out.priority = spec.priority;
    out.budget = spec.budget;
    out.completed = completed;
    out.in_flight = in_flight;
    out.slot_seconds = slot_seconds;
    out.best_runtime_s =
        best_runtime_s == std::numeric_limits<double>::infinity()
            ? 0.0
            : best_runtime_s;
    return out;
  }
};

struct Scheduler::Completion {
  std::uint64_t dispatch = 0;
  std::uint64_t job = 0;
  cs::Configuration config;
  runtime::MeasureResult result;
  double elapsed_s = 0.0;
};

struct Scheduler::PendingEvent {
  EventSink sink;
  Json frame;
};

namespace {

/// Space for a "fault.*" kernel (crash/cancel testing behind the same
/// serve path): P0's single candidate is benign or armed, so the whole
/// job deterministically does (or does not) fault; P1 is a dummy knob
/// that gives the strategies several distinct configurations to propose
/// (tuners never re-propose, so a one-point space would cap every fault
/// job at a single trial).
std::unique_ptr<cs::ConfigurationSpace> build_fault_space(bool armed) {
  auto space = std::make_unique<cs::ConfigurationSpace>();
  space->add(std::make_shared<cs::OrdinalHyperparameter>(
      "P0", std::vector<double>{
                static_cast<double>(armed ? distd::kFaultTrigger : 1)}));
  space->add(std::make_shared<cs::OrdinalHyperparameter>(
      "P1", std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8}));
  return space;
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions options)
    : options_(std::move(options)), lookup_(options_.lookup) {
  // Pin the shared artifact cache before any job or worker exists: all
  // tenants' jit trials must agree on one content-addressed directory.
  options_.jit.cache_dir = options_.jit.resolved_cache_dir();
  options_.pool.trace = options_.trace;
  pool_ = std::make_unique<distd::WorkerPool>(options_.pool);
  if (!options_.perf_db_path.empty()) {
    // Warm the instant-lookup cache from what earlier daemon runs (or a
    // prior tvmbo_tune) measured, before appending to the same file.
    if (std::filesystem::exists(options_.perf_db_path)) {
      const runtime::PerfDatabase prior =
          runtime::PerfDatabase::load(options_.perf_db_path);
      const std::size_t cached = lookup_.load_database(prior);
      TVMBO_LOG(Info) << "serve: lookup cache warmed with " << cached
                      << " record(s) from " << options_.perf_db_path;
    }
    perf_db_ =
        std::make_unique<runtime::PerfDbAppender>(options_.perf_db_path);
  }
  if (!options_.transfer_model_path.empty()) {
    auto model = std::make_shared<transfer::CostModel>(
        transfer::load_model(options_.transfer_model_path));
    TVMBO_CHECK(model->fitted())
        << "transfer model has too few samples to serve: "
        << options_.transfer_model_path;
    lookup_.set_model(std::move(model));
    TVMBO_LOG(Info) << "serve: transfer model loaded from "
                    << options_.transfer_model_path;
  }
  scheduler_thread_ = std::thread([this] { run(); });
}

Scheduler::~Scheduler() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  scheduler_thread_.join();
  // drain() guarantees no dispatch thread is left, but be defensive.
  for (auto& [id, thread] : dispatch_threads_) {
    if (thread.joinable()) thread.join();
  }
}

void Scheduler::trace(Json event) const {
  if (options_.trace != nullptr) options_.trace->record(std::move(event));
}

Scheduler::SubmitResult Scheduler::submit(const JobSpec& spec,
                                          EventSink sink) {
  SubmitResult out;
  auto reject = [&](const std::string& code, const std::string& message) {
    out.error_code = code;
    out.message = message;
    Json event = Json::object();
    event.set("event", "job_reject");
    event.set("tenant", spec.tenant);
    event.set("code", code);
    trace(std::move(event));
    return out;
  };

  // Build everything fallible *outside* the lock; admission is the only
  // part that needs the registry.
  auto job = std::make_unique<Job>();
  job->spec = spec;
  job->sink = std::move(sink);
  try {
    const std::optional<framework::StrategyKind> kind =
        framework::strategy_from_name(spec.strategy);
    TVMBO_CHECK(kind.has_value()) << "unknown strategy: " << spec.strategy;
    const std::optional<runtime::ExecBackend> backend =
        runtime::exec_backend_from_name(spec.backend);
    TVMBO_CHECK(backend.has_value()) << "unknown backend: " << spec.backend;
    job->backend = *backend;
    if (distd::is_fault_kernel(spec.kernel)) {
      job->workload = distd::make_fault_workload(spec.kernel);
      job->space = build_fault_space(spec.nthreads != 1);
    } else {
      const kernels::Dataset dataset =
          kernels::dataset_from_name(spec.size);
      job->workload = kernels::make_workload(spec.kernel, dataset);
      kernels::ParallelKnobs knobs;
      knobs.enabled = spec.nthreads != 1;
      knobs.max_threads = spec.nthreads;
      if (knobs.enabled) {
        TVMBO_CHECK(job->backend != runtime::ExecBackend::kNative)
            << "parallel tuning (nthreads != 1) requires a TE backend";
      }
      job->space = std::make_unique<cs::ConfigurationSpace>(
          kernels::build_space(spec.kernel, job->workload.dims, knobs));
    }
    if (options_.max_budget > 0 && spec.budget > options_.max_budget) {
      return reject("bad_request",
                    "budget exceeds the server cap of " +
                        std::to_string(options_.max_budget));
    }
    job->tuner = framework::make_strategy_tuner(*kind, job->space.get(),
                                                spec.seed,
                                                options_.strategy);
    job->session = std::make_unique<tuners::AskTellSession>(*job->tuner,
                                                            spec.budget);
  } catch (const std::exception& e) {
    return reject("bad_request", e.what());
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || stop_) {
      return reject("draining", "server is draining; try again later");
    }
    std::size_t active = 0;
    std::size_t tenant_active = 0;
    for (const auto& [id, other] : jobs_) {
      if (other->terminal()) continue;
      ++active;
      if (other->spec.tenant == spec.tenant) ++tenant_active;
    }
    if (options_.max_active_jobs > 0 && active >= options_.max_active_jobs) {
      return reject("queue_full",
                    "server at its active-job cap of " +
                        std::to_string(options_.max_active_jobs));
    }
    if (options_.max_jobs_per_tenant > 0 &&
        tenant_active >= options_.max_jobs_per_tenant) {
      return reject("quota_exceeded",
                    "tenant '" + spec.tenant + "' at its quota of " +
                        std::to_string(options_.max_jobs_per_tenant) +
                        " active job(s)");
    }
    job->id = next_job_id_++;
    out.job = job->id;
    Json event = Json::object();
    event.set("event", "job_admit");
    event.set("job", job->id);
    event.set("tenant", spec.tenant);
    event.set("workload", job->workload.id());
    event.set("strategy", spec.strategy);
    event.set("budget", static_cast<std::int64_t>(spec.budget));
    event.set("priority", spec.priority);
    trace(std::move(event));
    jobs_.emplace(job->id, std::move(job));
  }
  cv_.notify_all();  // wake the fill loop
  return out;
}

bool Scheduler::cancel(std::uint64_t job_id, const std::string& reason) {
  std::vector<PendingEvent> events;
  std::vector<distd::WorkerPool::Lease> to_kill;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end() || it->second->terminal()) return false;
    Job& job = *it->second;
    finish_cancel_locked(job, reason, events);
    for (const auto& [dispatch, lease] : job.leases) {
      to_kill.push_back(lease);
    }
  }
  // SIGKILL outside the lock: each dispatch thread comes back with the
  // crash verdict, its completion is abandoned, and the respawned slot
  // goes back to the pool for the other tenants.
  for (const distd::WorkerPool::Lease& lease : to_kill) {
    pool_->kill_leased(lease);
  }
  emit(events);
  cv_.notify_all();
  return true;
}

void Scheduler::finish_cancel_locked(Job& job, const std::string& reason,
                                     std::vector<PendingEvent>& events) {
  job.state = JobState::kCancelled;
  Json event = Json::object();
  event.set("event", "job_cancel");
  event.set("job", job.id);
  event.set("tenant", job.spec.tenant);
  event.set("reason", reason);
  event.set("completed", static_cast<std::int64_t>(job.completed));
  trace(event);
  if (job.sink) {
    Json frame = event_frame("job_cancel", job.id);
    frame.set("reason", reason);
    frame.set("completed", static_cast<std::int64_t>(job.completed));
    events.push_back({job.sink, std::move(frame)});
  }
}

std::optional<JobStatus> Scheduler::status(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second->status();
}

std::vector<JobStatus> Scheduler::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job->status());
  return out;
}

void Scheduler::drain() {
  std::vector<PendingEvent> events;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining_) {
      // Second drainer (e.g. the destructor after an explicit drain):
      // just wait for quiescence.
      cv_.wait(lock, [&] {
        return dispatch_threads_.empty() && completions_.empty();
      });
      return;
    }
    draining_ = true;
    Json event = Json::object();
    event.set("event", "serve_drain");
    trace(std::move(event));
    // In-flight trials deliver normally (the scheduler thread keeps
    // telling results while we wait); nothing new is proposed because
    // fill_slots_locked checks draining_.
    cv_.wait(lock, [&] {
      return dispatch_threads_.empty() && completions_.empty();
    });
    for (auto& [id, job] : jobs_) {
      if (!job->terminal()) finish_cancel_locked(*job, "drain", events);
    }
  }
  emit(events);
  cv_.notify_all();
}

Json Scheduler::lookup(const LookupSpec& spec) const {
  const Stopwatch watch;
  const transfer::LookupAnswer answer = lookup_.lookup(
      spec.kernel, spec.size, spec.nthreads,
      static_cast<std::size_t>(spec.topk));
  const double latency_us = watch.elapsed_seconds() * 1e6;
  {
    Json event = Json::object();
    event.set("event", "config_lookup");
    event.set("kernel", spec.kernel);
    event.set("size", spec.size);
    event.set("nthreads", spec.nthreads);
    event.set("source", answer.error.empty() ? answer.source : "error");
    event.set("latency_us", latency_us);
    trace(std::move(event));
  }
  if (!answer.error.empty()) {
    return error_frame("bad_request", answer.error);
  }
  Json reply = Json::object();
  reply.set("type", "lookup_reply");
  reply.set("source", answer.source);
  reply.set("workload", answer.workload_id);
  reply.set("nthreads", answer.nthreads);
  reply.set("cache_records",
            static_cast<std::int64_t>(answer.cache_records));
  Json configs = Json::array();
  for (const transfer::LookupAnswer::Candidate& candidate : answer.configs) {
    Json entry = Json::object();
    Json tiles = Json::array();
    for (std::int64_t t : candidate.tiles) tiles.push_back(t);
    entry.set("tiles", std::move(tiles));
    entry.set("runtime_s", candidate.runtime_s);
    configs.push_back(std::move(entry));
  }
  reply.set("configs", std::move(configs));
  reply.set("latency_us", latency_us);
  return reply;
}

Scheduler::Job* Scheduler::pick_job_locked() {
  // Deficit fair share within the best (lowest-numbered) non-empty
  // priority lane: the runnable job that has consumed the least worker
  // slot-time goes first; in-flight count then id break ties so a fresh
  // tie alternates instead of pinning to one job.
  Job* pick = nullptr;
  for (auto& [id, job] : jobs_) {
    if (!job->runnable()) continue;
    if (pick == nullptr) {
      pick = job.get();
      continue;
    }
    if (job->spec.priority != pick->spec.priority) {
      if (job->spec.priority < pick->spec.priority) pick = job.get();
      continue;
    }
    if (job->slot_seconds != pick->slot_seconds) {
      if (job->slot_seconds < pick->slot_seconds) pick = job.get();
      continue;
    }
    if (job->in_flight < pick->in_flight) pick = job.get();
  }
  return pick;
}

void Scheduler::fill_slots_locked(std::vector<PendingEvent>& events) {
  if (draining_ || stop_) return;
  for (;;) {
    Job* job = pick_job_locked();
    if (job == nullptr) break;
    std::optional<distd::WorkerPool::Lease> lease = pool_->try_acquire();
    if (!lease.has_value()) break;  // every slot busy: wait for completions

    std::optional<cs::Configuration> config = job->session->ask();
    if (!config.has_value()) {
      // Space exhausted between pick and ask: give the slot back and
      // repick (the job is no longer runnable).
      pool_->release(std::move(*lease));
      continue;
    }

    if (job->state == JobState::kQueued) {
      job->state = JobState::kRunning;
      Json event = Json::object();
      event.set("event", "job_start");
      event.set("job", job->id);
      event.set("tenant", job->spec.tenant);
      trace(std::move(event));
      if (job->sink) {
        events.push_back({job->sink, event_frame("job_start", job->id)});
      }
    }

    distd::MeasureRequest request;
    request.workload = job->workload;
    request.tiles = job->space->values_int(*config);
    request.backend = job->backend;
    request.jit = options_.jit;
    request.option.repeat = job->spec.repeat;
    request.option.timeout_s = job->spec.timeout_s;
    request.seed = job->spec.seed;

    const std::uint64_t dispatch = next_dispatch_id_++;
    job->in_flight += 1;
    job->leases.emplace(dispatch, *lease);
    {
      Json event = Json::object();
      event.set("event", "job_dispatch");
      event.set("job", job->id);
      event.set("dispatch", dispatch);
      event.set("worker", lease->worker_id);
      trace(std::move(event));
    }
    const std::uint64_t job_id = job->id;
    dispatch_threads_.emplace(
        dispatch,
        std::thread([this, dispatch, job_id, lease = std::move(*lease),
                     request = std::move(request),
                     config = std::move(*config)]() mutable {
          const Stopwatch watch;
          runtime::MeasureResult result =
              pool_->measure_leased(lease, std::move(request));
          const double elapsed = watch.elapsed_seconds();
          pool_->release(std::move(lease));
          {
            std::lock_guard<std::mutex> lock(mutex_);
            completions_.push_back({dispatch, job_id, std::move(config),
                                    std::move(result), elapsed});
          }
          cv_.notify_all();
        }));
  }
}

void Scheduler::handle_completion_locked(Completion completion,
                                         std::vector<PendingEvent>& events) {
  // Reap the dispatch thread (it has already posted this completion, so
  // the join is immediate).
  auto thread_it = dispatch_threads_.find(completion.dispatch);
  if (thread_it != dispatch_threads_.end()) {
    thread_it->second.join();
    dispatch_threads_.erase(thread_it);
  }
  auto it = jobs_.find(completion.job);
  TVMBO_CHECK(it != jobs_.end())
      << "completion for unknown job " << completion.job;
  Job& job = *it->second;
  job.in_flight -= 1;
  job.slot_seconds += completion.elapsed_s;
  job.leases.erase(completion.dispatch);

  if (job.state == JobState::kCancelled) {
    // The trial raced the cancel (often SIGKILLed mid-run): drop it
    // without feeding the tuner — the session just balances its books.
    job.session->abandon();
    return;
  }

  const runtime::MeasureResult& measured = completion.result;
  job.session->tell(completion.config, measured.runtime_s, measured.valid);
  const std::size_t eval_index = job.completed;
  job.completed += 1;
  const std::vector<std::int64_t> tiles =
      job.space->values_int(completion.config);
  if (measured.valid && measured.runtime_s < job.best_runtime_s) {
    job.best_runtime_s = measured.runtime_s;
    job.best_tiles = tiles;
  }

  runtime::TrialRecord record;
  record.eval_index = static_cast<int>(eval_index);
  record.strategy = job.spec.tenant + "/" + std::to_string(job.id) + "/" +
                    job.spec.strategy;
  record.workload_id = job.workload.id();
  record.tiles = tiles;
  record.runtime_s = measured.runtime_s;
  record.compile_s = measured.compile_s;
  record.energy_j = measured.energy_j;
  record.elapsed_s = job.slot_seconds;
  record.valid = measured.valid;
  record.backend = job.spec.backend;
  record.nthreads = job.spec.nthreads;
  if (perf_db_ != nullptr) perf_db_->append(record);
  // Even without a perf-db file the live result enters the instant-lookup
  // cache, so config_lookup answers improve while the daemon tunes.
  lookup_.observe(record);

  {
    Json event = Json::object();
    event.set("event", "job_trial");
    event.set("job", job.id);
    event.set("i", static_cast<std::int64_t>(eval_index));
    event.set("runtime_s", measured.runtime_s);
    event.set("valid", measured.valid);
    trace(std::move(event));
  }
  if (job.sink) {
    Json frame = event_frame("job_trial", job.id);
    frame.set("i", static_cast<std::int64_t>(eval_index));
    Json tiles_json = Json::array();
    for (std::int64_t t : tiles) tiles_json.push_back(t);
    frame.set("tiles", std::move(tiles_json));
    frame.set("runtime_s", measured.runtime_s);
    frame.set("valid", measured.valid);
    if (!measured.error.empty()) frame.set("error", measured.error);
    frame.set("best_runtime_s",
              job.best_runtime_s == std::numeric_limits<double>::infinity()
                  ? 0.0
                  : job.best_runtime_s);
    events.push_back({job.sink, std::move(frame)});
  }

  if (job.session->done()) {
    job.state = JobState::kDone;
    Json event = Json::object();
    event.set("event", "job_complete");
    event.set("job", job.id);
    event.set("tenant", job.spec.tenant);
    event.set("completed", static_cast<std::int64_t>(job.completed));
    event.set("slot_seconds", job.slot_seconds);
    trace(std::move(event));
    if (job.sink) {
      Json frame = event_frame("job_complete", job.id);
      frame.set("completed", static_cast<std::int64_t>(job.completed));
      frame.set("best_runtime_s",
                job.best_runtime_s == std::numeric_limits<double>::infinity()
                    ? 0.0
                    : job.best_runtime_s);
      Json best = Json::array();
      for (std::int64_t t : job.best_tiles) best.push_back(t);
      frame.set("best_tiles", std::move(best));
      events.push_back({job.sink, std::move(frame)});
    }
  }
}

void Scheduler::emit(std::vector<PendingEvent>& events) {
  for (PendingEvent& event : events) {
    if (event.sink) event.sink(event.frame);
  }
  events.clear();
}

void Scheduler::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<PendingEvent> events;
  for (;;) {
    while (!completions_.empty()) {
      Completion completion = std::move(completions_.front());
      completions_.pop_front();
      handle_completion_locked(std::move(completion), events);
    }
    fill_slots_locked(events);
    if (!events.empty()) {
      lock.unlock();
      emit(events);
      cv_.notify_all();  // drain() waits on completion bookkeeping
      lock.lock();
      continue;  // events may have taken time; re-check completions
    }
    if (stop_ && completions_.empty() && dispatch_threads_.empty()) break;
    cv_.notify_all();
    cv_.wait(lock);
  }
}

}  // namespace tvmbo::serve
