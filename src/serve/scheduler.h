// Multi-tenant tuning scheduler: multiplexes every active job's
// streaming BO loop onto one shared elastic WorkerPool.
//
// Each job is an AskTellSession (tuners/measure_loop.h) — the same
// propose/tell machine run_measure_loop_async drives — plus the
// kernel's configuration space and a strategy tuner built by
// framework::make_strategy_tuner with the session's seed-derivation
// scheme. The scheduler thread ticks all sessions from the outside:
//
//   completions -> tell/abandon, record, emit events
//   fill        -> while a worker slot is free, pick the runnable job
//                  (highest-priority lane, then lowest consumed
//                  slot-seconds — deficit fair share), ask() it for one
//                  configuration, and dispatch the trial on a leased
//                  slot in its own thread
//
// Because the proposal stream of a session depends only on (space, seed,
// tell history), a single job on a one-worker daemon reproduces the
// `--runner proc --async` trajectory bit-identically: both drive strict
// ask/measure/tell alternation through the same AskTellSession.
//
// Admission control: a global active-job cap and a per-tenant cap, both
// answered with typed errors (queue_full / quota_exceeded) rather than
// queueing unboundedly. Cancellation SIGKILLs the job's in-flight
// workers via WorkerPool::kill_leased — the dispatch threads get the
// crash verdict, the slots respawn and go to other tenants, and no
// wait_any-style ticket is ever stranded. drain() (SIGTERM) stops
// admission and proposals, delivers in-flight results, then cancels
// whatever is unfinished.
//
// All completed trials of all tenants append to one global JSONL perf
// database through PerfDbAppender (crash/concurrency-safe appends), and
// every jit-backend trial compiles into one shared content-addressed
// artifact cache (the cache dir is pinned at scheduler construction).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "codegen/artifact_cache.h"
#include "distd/worker_pool.h"
#include "framework/session.h"
#include "runtime/perf_db.h"
#include "runtime/trace_log.h"
#include "serve/protocol.h"
#include "transfer/lookup.h"

namespace tvmbo::serve {

struct SchedulerOptions {
  distd::WorkerPoolOptions pool;  ///< the shared fleet (elastic: resize())
  /// Compiler/flags/artifact cache shared by every jit-backend job across
  /// tenants; cache_dir is resolved once at construction.
  codegen::JitOptions jit;
  /// Global cap on jobs that are queued or running (0 = unlimited).
  std::size_t max_active_jobs = 16;
  /// Per-tenant cap on jobs that are queued or running (0 = unlimited).
  std::size_t max_jobs_per_tenant = 4;
  /// Per-job evaluation-budget ceiling (0 = unlimited).
  std::size_t max_budget = 10000;
  /// Strategy knobs (xgb cap, BO options) shared by all jobs.
  framework::StrategyFactoryOptions strategy;
  /// Path of the global cross-tenant JSONL perf database ("" disables).
  /// Existing records are also loaded into the instant-lookup cache at
  /// construction, so a restarted daemon answers config_lookup queries
  /// for everything earlier runs measured.
  std::string perf_db_path;
  /// Saved cross-kernel transfer model (transfer/model_store.h) backing
  /// config_lookup's model fallback ("" = cache-only answers).
  std::string transfer_model_path;
  /// Instant-lookup knobs (top-k cap, model candidate pool, seed).
  transfer::LookupOptions lookup;
  /// Lifecycle/trial event log (not owned; may be null; must outlive the
  /// scheduler).
  runtime::TraceLog* trace = nullptr;
};

enum class JobState { kQueued, kRunning, kDone, kCancelled };
const char* job_state_name(JobState state);

/// Snapshot of one job for status/list replies.
struct JobStatus {
  std::uint64_t id = 0;
  std::string tenant;
  std::string workload;
  std::string strategy;
  JobState state = JobState::kQueued;
  int priority = 1;
  std::size_t budget = 0;
  std::size_t completed = 0;
  std::size_t in_flight = 0;
  double slot_seconds = 0.0;  ///< worker time consumed (fair-share meter)
  double best_runtime_s = 0.0;  ///< 0 until a valid trial lands

  Json to_json() const;
};

class Scheduler {
 public:
  /// Per-job event callback. Invoked from the scheduler thread with the
  /// scheduler mutex released — a sink may block on a slow client socket
  /// without stalling dispatch bookkeeping (though it delays event
  /// delivery for other jobs; the server keeps per-connection writes
  /// short). Null sinks are fine (fire-and-forget jobs).
  using EventSink = std::function<void(const Json&)>;

  struct SubmitResult {
    std::uint64_t job = 0;
    std::string error_code;  ///< empty on success
    std::string message;
    bool ok() const { return error_code.empty(); }
  };

  /// Spawns the worker fleet and the scheduler thread eagerly.
  explicit Scheduler(SchedulerOptions options);
  /// Drains (if not already drained) and stops everything.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admission-checks and enqueues one job. On success the job is live
  /// and `sink` starts receiving its event frames.
  SubmitResult submit(const JobSpec& spec, EventSink sink);

  /// Cancels a queued/running job: stops proposing, SIGKILLs its
  /// in-flight workers, emits the job_cancel event. False when the job
  /// is unknown or already terminal.
  bool cancel(std::uint64_t job, const std::string& reason);

  std::optional<JobStatus> status(std::uint64_t job) const;
  std::vector<JobStatus> list() const;

  /// Graceful shutdown: rejects new submissions, proposes nothing new,
  /// waits for every in-flight trial to deliver, then cancels unfinished
  /// jobs (reason "drain"). Idempotent; blocks until quiescent.
  void drain();

  /// Answers a config_lookup request without touching the scheduler
  /// mutex or the worker fleet: exact cache hit first (best measured
  /// tiles for the workload + thread budget), transfer-model top-k
  /// fallback otherwise. Returns a complete lookup_reply (or error)
  /// frame; `latency_us` in the reply times the answer itself.
  Json lookup(const LookupSpec& spec) const;

  /// Measured results in the instant-lookup cache (diagnostics/tests).
  std::size_t lookup_cache_size() const { return lookup_.cache_size(); }

  distd::WorkerPool& pool() { return *pool_; }

 private:
  struct Job;
  struct Completion;
  struct PendingEvent;

  void run();  ///< scheduler thread main
  void fill_slots_locked(std::vector<PendingEvent>& events);
  void handle_completion_locked(Completion completion,
                                std::vector<PendingEvent>& events);
  Job* pick_job_locked();
  void finish_cancel_locked(Job& job, const std::string& reason,
                            std::vector<PendingEvent>& events);
  void emit(std::vector<PendingEvent>& events);
  void trace(Json event) const;

  SchedulerOptions options_;
  std::unique_ptr<distd::WorkerPool> pool_;
  std::unique_ptr<runtime::PerfDbAppender> perf_db_;
  /// Instant-config answerer: internally synchronized (own mutex), fed by
  /// handle_completion_locked, queried by lookup() without mutex_.
  transfer::ConfigLookup lookup_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::deque<Completion> completions_;
  std::map<std::uint64_t, std::thread> dispatch_threads_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t next_dispatch_id_ = 1;
  bool draining_ = false;
  bool stop_ = false;
  std::thread scheduler_thread_;
};

}  // namespace tvmbo::serve
