// Worker-side half of the distd measurement protocol: connect back to the
// pool, announce (hello), then serve measure requests until a shutdown
// frame or EOF. Used by tools/tvmbo_worker.cc; exposed as a library so
// tests can exercise the request handling in-process.
#pragma once

#include <string>

#include "distd/protocol.h"

namespace tvmbo::distd {

struct WorkerConfig {
  std::string endpoint;    ///< "unix:<path>" or "tcp:<ipv4>:<port>"
  int worker_id = 0;       ///< pool slot index, echoed in hello/heartbeats
  int heartbeat_ms = 1000; ///< liveness interval while measuring (0 = off)
};

/// Rebuilds and measures one serialized trial with a local CpuDevice.
/// Never throws: any reconstruction/measurement failure becomes an
/// invalid reply carrying the error string. Tasks are cached across calls
/// keyed by everything but the tiles, so repeated trials of one tuning
/// run reuse the initialized kernel data.
MeasureReply handle_measure_request(const MeasureRequest& request);

/// Runs the serve loop to completion. Returns the process exit code:
/// 0 on a clean shutdown (shutdown frame or orderly EOF), nonzero on
/// connect/protocol failure.
int serve_worker(const WorkerConfig& config);

}  // namespace tvmbo::distd
