#include "distd/fault_kernels.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace tvmbo::distd {

namespace {

/// Benign path: a short, optimizer-proof busy loop so healthy
/// configurations report a real (tiny) runtime.
void benign_work() {
  volatile double sink = 0.0;
  for (int i = 0; i < 20000; ++i) sink = sink + 1.0 / (1.0 + i);
}

}  // namespace

bool is_fault_kernel(const std::string& kernel) {
  return starts_with(kernel, "fault.");
}

runtime::Workload make_fault_workload(const std::string& kernel) {
  runtime::Workload workload;
  workload.kernel = kernel;
  workload.size_name = "test";
  workload.dims = {1};
  return workload;
}

runtime::MeasureInput make_fault_input(const runtime::Workload& workload,
                                       std::vector<std::int64_t> tiles) {
  TVMBO_CHECK(is_fault_kernel(workload.kernel))
      << "not a fault kernel: " << workload.kernel;
  TVMBO_CHECK(!tiles.empty()) << "fault kernels need at least one tile";
  const std::string mode = workload.kernel.substr(6);
  TVMBO_CHECK(mode == "segv" || mode == "abort" || mode == "spin" ||
              mode == "exit")
      << "unknown fault kernel: " << workload.kernel;

  runtime::MeasureInput input;
  input.workload = workload;
  input.tiles = tiles;
  const bool armed = tiles[0] == kFaultTrigger;
  input.run = [mode, armed] {
    if (!armed) {
      benign_work();
      return;
    }
    if (mode == "segv") {
      // A genuine null store, opaque enough that no compiler folds it
      // away: the process dies by SIGSEGV (the worker runs with
      // sanitizer signal interception disabled so the signal stays raw).
      volatile double* null_ptr = nullptr;
      *null_ptr = 1.0;
    } else if (mode == "abort") {
      std::abort();
    } else if (mode == "spin") {
      // A single run that never returns: invisible to CpuDevice's
      // between-runs cooperative timeout; only a hard external kill
      // preempts it.
      volatile std::uint64_t spins = 0;
      for (;;) spins = spins + 1;
    } else if (mode == "exit") {
      std::_Exit(3);
    }
  };
  // An armed fault config is, by construction, statically illegal: the
  // pre-screener rejects it so a screening tuner never spends a worker on
  // a config built to kill one. (distd workers deliberately skip this
  // check for fault kernels — they exist to exercise the crash paths.)
  input.static_check = [armed, mode]() -> std::string {
    if (!armed) return {};
    return std::string("fault-kernel: 'fault.") + mode +
           "' armed by tiles[0]==" + std::to_string(kFaultTrigger) +
           " would crash or hang the measurement process";
  };
  return input;
}

}  // namespace tvmbo::distd
