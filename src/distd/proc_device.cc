#include "distd/proc_device.h"

#include <utility>

namespace tvmbo::distd {

namespace {

ProcDeviceOptions resolve(ProcDeviceOptions options) {
  // Pin the cache directory before any worker starts: all workers (and
  // the tuner's own stats reporting) must agree on one shared cache even
  // if the environment changes underneath.
  if (options.backend == runtime::ExecBackend::kJit) {
    options.jit.cache_dir = options.jit.resolved_cache_dir();
  }
  return options;
}

}  // namespace

ProcDevice::ProcDevice(ProcDeviceOptions options)
    : options_(resolve(std::move(options))), pool_(options_.pool) {}

runtime::MeasureResult ProcDevice::measure(
    const runtime::MeasureInput& input,
    const runtime::MeasureOption& option) {
  MeasureRequest request;
  request.workload = input.workload;
  request.tiles = input.tiles;
  request.backend = options_.backend;
  request.jit = options_.jit;
  request.option = option;
  request.seed = options_.seed;
  return pool_.measure(std::move(request));
}

}  // namespace tvmbo::distd
