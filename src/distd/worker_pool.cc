#include "distd/worker_pool.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

extern char** environ;

namespace tvmbo::distd {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_until(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

int ms_until(Clock::time_point deadline) {
  const double s = seconds_until(deadline);
  return s > 0.0 ? static_cast<int>(s * 1000.0) : 0;
}

bool executable_file(const std::string& path) {
  return ::access(path.c_str(), X_OK) == 0;
}

std::string self_exe_dir() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n <= 0) return "";
  buffer[n] = '\0';
  return std::filesystem::path(buffer).parent_path().string();
}

/// "signal 11 (Segmentation fault)" / "exit status 3" from a wait status.
std::string describe_wait_status(int status) {
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    const char* name = strsignal(sig);
    return "signal " + std::to_string(sig) + " (" +
           (name != nullptr ? name : "?") + ")";
  }
  if (WIFEXITED(status)) {
    return "exit status " + std::to_string(WEXITSTATUS(status));
  }
  return "wait status " + std::to_string(status);
}

/// Waits for `pid`, polling WNOHANG up to `timeout_ms`; escalates to
/// SIGKILL + blocking wait if it does not exit in time. Returns the wait
/// status (-1 if the pid was already reaped elsewhere).
int reap(pid_t pid, int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int status = 0;
    const pid_t rc = ::waitpid(pid, &status, WNOHANG);
    if (rc == pid) return status;
    if (rc < 0) return -1;  // not our child anymore
    if (seconds_until(deadline) <= 0.0) {
      ::kill(pid, SIGKILL);
      if (::waitpid(pid, &status, 0) == pid) return status;
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Copies the environment, appending sanitizer options that keep crash
/// signals un-intercepted inside workers (so a SIGSEGV in a worker is
/// reported as a signal by the pool, not swallowed by a sanitizer's own
/// handler), merging with any caller-provided values.
std::vector<std::string> worker_environment() {
  struct Patch {
    const char* name;
    const char* extra;
  };
  static const Patch kPatches[] = {
      {"ASAN_OPTIONS", "handle_segv=0:handle_abort=0:handle_sigbus=0"},
      {"TSAN_OPTIONS", "handle_segv=0:handle_abort=0:handle_sigbus=0"},
      {"UBSAN_OPTIONS", "halt_on_error=0"},
  };
  std::vector<std::string> env;
  bool seen[std::size(kPatches)] = {};
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    std::string entry(*e);
    for (std::size_t i = 0; i < std::size(kPatches); ++i) {
      const std::string prefix = std::string(kPatches[i].name) + "=";
      if (starts_with(entry, prefix)) {
        entry += std::string(":") + kPatches[i].extra;
        seen[i] = true;
      }
    }
    env.push_back(std::move(entry));
  }
  for (std::size_t i = 0; i < std::size(kPatches); ++i) {
    if (!seen[i]) {
      env.push_back(std::string(kPatches[i].name) + "=" +
                    kPatches[i].extra);
    }
  }
  return env;
}

}  // namespace

std::string resolve_worker_binary(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("TVMBO_WORKER_BIN");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  const std::string exe_dir = self_exe_dir();
  if (!exe_dir.empty()) {
    for (const char* rel : {"/tvmbo_worker", "/../tools/tvmbo_worker"}) {
      const std::string candidate = exe_dir + rel;
      if (executable_file(candidate)) return candidate;
    }
  }
  return "tvmbo_worker";  // $PATH lookup via execvpe
}

WorkerPool::WorkerPool(WorkerPoolOptions options)
    : options_(std::move(options)) {
  TVMBO_CHECK_GE(options_.num_workers, 1u)
      << "worker pool needs at least one worker";
  binary_ = resolve_worker_binary(options_.worker_binary);
  if (binary_.find('/') != std::string::npos) {
    TVMBO_CHECK(executable_file(binary_))
        << "worker binary not found or not executable: " << binary_
        << " (build the tvmbo_worker target or set $TVMBO_WORKER_BIN)";
  }

  if (options_.transport == "tcp") {
    listener_ = ListenSocket::tcp_loopback();
  } else {
    TVMBO_CHECK_EQ(options_.transport, "unix")
        << "unknown transport (want unix|tcp): " << options_.transport;
    char dir_template[] = "/tmp/tvmbo-distd-XXXXXX";
    TVMBO_CHECK(::mkdtemp(dir_template) != nullptr)
        << "mkdtemp failed: " << std::strerror(errno);
    socket_dir_ = dir_template;
    listener_ = ListenSocket::unix_domain(socket_dir_ + "/pool.sock");
  }

  try {
    for (std::size_t i = 0; i < options_.num_workers; ++i) {
      auto worker = std::make_unique<Worker>();
      worker->id = static_cast<int>(i);
      spawn(*worker);
      workers_.push_back(std::move(worker));
    }
  } catch (...) {
    shutdown_all();
    if (!socket_dir_.empty()) {
      std::error_code ec;
      listener_ = ListenSocket();
      std::filesystem::remove_all(socket_dir_, ec);
    }
    throw;
  }
  for (auto& worker : workers_) free_.push_back(worker.get());
}

WorkerPool::~WorkerPool() {
  shutdown_all();
  if (!socket_dir_.empty()) {
    std::error_code ec;
    listener_ = ListenSocket();  // close + unlink the socket first
    std::filesystem::remove_all(socket_dir_, ec);
  }
}

void WorkerPool::trace(Json event) {
  if (options_.trace != nullptr) options_.trace->record(std::move(event));
}

Json WorkerPool::worker_event(const char* name, const Worker& worker) const {
  Json event = Json::object();
  event.set("event", name);
  event.set("worker", worker.id);
  event.set("pid", static_cast<std::int64_t>(worker.pid));
  return event;
}

void WorkerPool::spawn(Worker& worker) {
  std::lock_guard<std::mutex> lock(spawn_mutex_);

  // argv/envp are fully materialized before fork(): the child performs
  // only async-signal-safe calls (exec / _exit).
  const std::vector<std::string> args = {
      binary_,
      "--connect", listener_.endpoint(),
      "--worker-id", std::to_string(worker.id),
      "--heartbeat-ms", std::to_string(options_.heartbeat_ms),
  };
  std::vector<char*> argv;
  for (const std::string& arg : args) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  const std::vector<std::string> env = worker_environment();
  std::vector<char*> envp;
  for (const std::string& entry : env) {
    envp.push_back(const_cast<char*>(entry.c_str()));
  }
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  TVMBO_CHECK_GE(pid, 0) << "fork failed: " << std::strerror(errno);
  if (pid == 0) {
    ::execvpe(argv[0], argv.data(), envp.data());
    ::_exit(127);
  }
  spawns_.fetch_add(1);

  // Wait for *this* child's hello. Connections from stale children (a
  // previous generation that lingered past its kill) are discarded by
  // the pid check.
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(options_.spawn_timeout_s));
  for (;;) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      throw CheckError("worker " + std::to_string(worker.id) + " (" +
                       binary_ + ") died during startup: " +
                       describe_wait_status(status));
    }
    const int wait_ms = ms_until(deadline);
    if (wait_ms <= 0) {
      ::kill(pid, SIGKILL);
      reap(pid, 1000);
      throw CheckError("worker " + std::to_string(worker.id) + " (" +
                       binary_ + ") did not connect within " +
                       format_double(options_.spawn_timeout_s, 1) + " s");
    }
    std::optional<Socket> conn = listener_.accept(std::min(wait_ms, 100));
    if (!conn.has_value()) continue;
    Json hello;
    bool matches = false;
    if (read_frame(conn->fd(), &hello, std::min(ms_until(deadline), 2000)) ==
            FrameStatus::kOk &&
        frame_type(hello) == "hello") {
      try {
        matches = hello.at("pid").as_int() == static_cast<std::int64_t>(pid);
      } catch (const std::exception&) {
        matches = false;
      }
    }
    if (!matches) continue;  // stale or bogus connection; drop it
    {
      std::lock_guard<std::mutex> pid_lock(pid_mutex_);
      worker.pid = pid;
    }
    worker.generation += 1;
    worker.socket = std::move(*conn);
    break;
  }

  Json event = worker_event("worker_spawn", worker);
  event.set("generation", worker.generation);
  trace(std::move(event));
}

WorkerPool::Worker* WorkerPool::acquire() {
  std::unique_lock<std::mutex> lock(free_mutex_);
  for (;;) {
    // Prefer a live worker. A dead slot (parked by a deferred respawn or
    // with a failed spawn) is only handed out once its backoff deadline
    // has passed; the dispatch path then retries its spawn.
    Worker* cooling = nullptr;
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      Worker* candidate = *it;
      if (candidate->socket.valid()) {
        free_.erase(it);
        candidate->leased = true;
        return candidate;
      }
      if (cooling == nullptr || candidate->not_before < cooling->not_before) {
        cooling = candidate;
      }
    }
    if (cooling == nullptr) {
      free_cv_.wait(lock, [&] { return !free_.empty(); });
      continue;
    }
    if (Clock::now() >= cooling->not_before) {
      free_.erase(std::find(free_.begin(), free_.end(), cooling));
      cooling->leased = true;
      return cooling;
    }
    // Every free slot is cooling: wake at the earliest deadline or when
    // a live worker is released, whichever comes first.
    free_cv_.wait_until(lock, cooling->not_before);
  }
}

void WorkerPool::release(Worker* worker) {
  bool retired = false;
  {
    std::lock_guard<std::mutex> lock(free_mutex_);
    worker->leased = false;
    retired = worker->retired;
    if (!retired) free_.push_back(worker);
  }
  if (retired) {
    // Retired by a resize() while leased/measuring: serve out the
    // shutdown here instead of re-queueing the slot.
    shutdown_worker(*worker);
    return;
  }
  free_cv_.notify_one();
}

double WorkerPool::hard_deadline_s(
    const runtime::MeasureOption& option) const {
  if (options_.hard_timeout_s > 0.0) return options_.hard_timeout_s;
  if (option.timeout_s > 0.0) {
    // Worst legal case: every run individually just under the cooperative
    // timeout, plus one run of slack and a compile grace.
    return option.timeout_s *
               static_cast<double>(option.warmup + option.repeat + 1) +
           options_.hard_timeout_grace_s;
  }
  return 0.0;  // no budget given: wait like the local runner would
}

std::string WorkerPool::collect_exit(Worker& worker, bool force_kill) {
  if (worker.pid < 0) return "no process";
  if (force_kill) ::kill(worker.pid, SIGKILL);
  const int status = reap(worker.pid, force_kill ? 2000 : 5000);
  const std::string description = describe_wait_status(status);
  Json event = worker_event("worker_exit", worker);
  event.set("status", description);
  trace(std::move(event));
  worker.socket.close();
  {
    std::lock_guard<std::mutex> pid_lock(pid_mutex_);
    worker.pid = -1;
  }
  return description;
}

int WorkerPool::backoff_ms_for(const Worker& worker) const {
  if (worker.consecutive_failures <= 1) return 0;
  const int shift = std::min(worker.consecutive_failures - 2, 20);
  return std::min(options_.max_respawn_backoff_ms, 100 << shift);
}

void WorkerPool::respawn_after_failure(Worker& worker) {
  worker.consecutive_failures += 1;
  const int backoff_ms = backoff_ms_for(worker);
  Json event = Json::object();
  event.set("event", "worker_respawn");
  event.set("worker", worker.id);
  event.set("failures", worker.consecutive_failures);
  event.set("backoff_ms", backoff_ms);
  event.set("deferred", backoff_ms > 0);
  trace(std::move(event));
  if (backoff_ms > 0) {
    // Park the slot instead of sleeping: a sleep here blocks the thread
    // that is dispatching trials, stalling the whole pipeline while the
    // other workers sit idle. acquire() skips the slot until the
    // deadline and the spawn is retried on its next dispatch.
    worker.not_before =
        Clock::now() + std::chrono::milliseconds(backoff_ms);
    return;
  }
  try {
    spawn(worker);
  } catch (const std::exception& e) {
    // Leave the slot dead; the next measure() on it retries the spawn.
    TVMBO_LOG(Warning) << "worker " << worker.id
                       << " respawn failed: " << e.what();
  }
}

void WorkerPool::retry_spawn(Worker& worker) {
  try {
    spawn(worker);
  } catch (const std::exception& e) {
    // Apply the backoff again so a persistently unspawnable slot cannot
    // spin hot through acquire().
    worker.consecutive_failures += 1;
    const int backoff_ms = backoff_ms_for(worker);
    if (backoff_ms > 0) {
      worker.not_before =
          Clock::now() + std::chrono::milliseconds(backoff_ms);
    }
    TVMBO_LOG(Warning) << "worker " << worker.id
                       << " respawn failed: " << e.what();
  }
}

runtime::MeasureResult WorkerPool::measure_on(Worker& worker,
                                              const MeasureRequest& request) {
  runtime::MeasureResult result;
  if (!worker.socket.valid()) {
    // The slot was parked by a deferred respawn (acquire() waited out
    // its backoff) or its last spawn attempt failed; retry the spawn
    // once before giving up on this trial.
    retry_spawn(worker);
    if (!worker.socket.valid()) {
      result.valid = false;
      result.error = "worker spawn failed (slot " +
                     std::to_string(worker.id) + ")";
      return result;
    }
  }

  {
    Json event = worker_event("worker_dispatch", worker);
    event.set("trial", request.trial);
    event.set("workload", request.workload.id());
    trace(std::move(event));
  }

  const Clock::time_point start = Clock::now();
  const double budget_s = hard_deadline_s(request.option);
  const bool has_deadline = budget_s > 0.0;
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(budget_s));

  if (write_frame(worker.socket.fd(), request.to_json()) !=
      FrameStatus::kOk) {
    // Worker died between trials: report, respawn, and fail the trial
    // (the runner's retry policy re-dispatches to a live worker).
    crashes_.fetch_add(1);
    const std::string status = collect_exit(worker, /*force_kill=*/false);
    respawn_after_failure(worker);
    result.valid = false;
    result.error = "worker connection lost before dispatch (" + status + ")";
    return result;
  }

  for (;;) {
    const int wait_ms = has_deadline ? ms_until(deadline) : -1;
    Json message;
    const FrameStatus status = (has_deadline && wait_ms == 0)
                                   ? FrameStatus::kTimeout
                                   : read_frame(worker.socket.fd(), &message,
                                                wait_ms);
    if (status == FrameStatus::kOk) {
      const std::string type = frame_type(message);
      if (type == "heartbeat") {
        Json event = worker_event("worker_heartbeat", worker);
        event.set("trial", request.trial);
        trace(std::move(event));
        continue;
      }
      if (type != "result") continue;  // ignore unknown frames
      MeasureReply reply;
      try {
        reply = MeasureReply::from_json(message);
      } catch (const std::exception& e) {
        result.valid = false;
        result.error = std::string("malformed worker reply: ") + e.what();
        return result;
      }
      worker.consecutive_failures = 0;
      return reply.result;
    }
    if (status == FrameStatus::kTimeout) {
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start).count();
      kills_.fetch_add(1);
      {
        Json event = worker_event("worker_kill", worker);
        event.set("trial", request.trial);
        event.set("reason", "hard timeout");
        event.set("elapsed_s", elapsed);
        trace(std::move(event));
      }
      const pid_t pid = worker.pid;
      collect_exit(worker, /*force_kill=*/true);
      respawn_after_failure(worker);
      result.valid = false;
      result.error = "timeout (hard kill after " +
                     format_double(elapsed, 2) + " s wall-clock; worker " +
                     std::to_string(worker.id) + " pid " +
                     std::to_string(pid) + " SIGKILLed)";
      result.runtime_s = elapsed;
      return result;
    }
    // kClosed / kError: the worker died mid-trial.
    crashes_.fetch_add(1);
    const std::string exit_status =
        collect_exit(worker, /*force_kill=*/false);
    respawn_after_failure(worker);
    result.valid = false;
    result.error = starts_with(exit_status, "signal")
                       ? "worker crashed: " + exit_status +
                             " during trial " + std::to_string(request.trial)
                       : "worker exited prematurely (" + exit_status +
                             ") during trial " +
                             std::to_string(request.trial);
    return result;
  }
}

runtime::MeasureResult WorkerPool::measure(MeasureRequest request) {
  request.trial = next_trial_.fetch_add(1);
  Worker* worker = acquire();
  runtime::MeasureResult result;
  try {
    result = measure_on(*worker, request);
  } catch (const std::exception& e) {
    result = runtime::MeasureResult();
    result.valid = false;
    result.error = std::string("worker pool error: ") + e.what();
  }
  release(worker);
  return result;
}

std::optional<WorkerPool::Lease> WorkerPool::try_acquire() {
  std::lock_guard<std::mutex> lock(free_mutex_);
  // Same preference order as acquire(): a live worker first, then a dead
  // slot whose backoff has expired (its spawn is retried on dispatch) —
  // but never block: the serve scheduler polls between completions.
  Worker* pick = nullptr;
  for (Worker* candidate : free_) {
    if (candidate->socket.valid()) {
      pick = candidate;
      break;
    }
    if (pick == nullptr && Clock::now() >= candidate->not_before) {
      pick = candidate;
    }
  }
  if (pick == nullptr) return std::nullopt;
  free_.erase(std::find(free_.begin(), free_.end(), pick));
  pick->leased = true;
  Lease lease;
  lease.worker_id = pick->id;
  lease.worker = pick;
  return lease;
}

runtime::MeasureResult WorkerPool::measure_leased(Lease& lease,
                                                  MeasureRequest request) {
  TVMBO_CHECK(lease.worker != nullptr) << "measure on an empty lease";
  request.trial = next_trial_.fetch_add(1);
  try {
    return measure_on(*lease.worker, request);
  } catch (const std::exception& e) {
    runtime::MeasureResult result;
    result.valid = false;
    result.error = std::string("worker pool error: ") + e.what();
    return result;
  }
}

void WorkerPool::release(Lease lease) {
  TVMBO_CHECK(lease.worker != nullptr) << "release of an empty lease";
  release(lease.worker);
}

void WorkerPool::kill_leased(const Lease& lease) {
  TVMBO_CHECK(lease.worker != nullptr) << "kill of an empty lease";
  std::lock_guard<std::mutex> pid_lock(pid_mutex_);
  // Under pid_mutex_ the pid cannot be reaped-and-recycled concurrently:
  // collect_exit() clears it and spawn() installs the next one only
  // under this same lock.
  if (lease.worker->pid >= 0) {
    kills_.fetch_add(1);
    Json event = worker_event("worker_kill", *lease.worker);
    event.set("reason", "lease kill");
    trace(std::move(event));
    ::kill(lease.worker->pid, SIGKILL);
  }
}

void WorkerPool::resize(std::size_t n) {
  TVMBO_CHECK_GE(n, 1u) << "worker pool needs at least one worker";
  std::vector<Worker*> to_shutdown;
  {
    std::lock_guard<std::mutex> lock(free_mutex_);
    // Un-retire from the lowest ids up, retire from the highest down, so
    // repeated resizes always converge on slots [0, n).
    std::size_t active = 0;
    for (auto& worker : workers_) {
      if (!worker->retired) ++active;
    }
    if (n > active) {
      // First revive retired-but-not-yet-gone slots, then append new ones.
      for (auto& worker : workers_) {
        if (active == n) break;
        if (worker->retired) {
          worker->retired = false;
          // A slot retired while idle was shut down and dropped from
          // free_; re-queue it as a parked dead slot (lazy respawn). A
          // still-leased slot rejoins free_ through its release().
          if (!worker->leased) {
            worker->not_before = Clock::now();
            free_.push_back(worker.get());
          }
          ++active;
        }
      }
      while (active < n) {
        auto worker = std::make_unique<Worker>();
        worker->id = static_cast<int>(workers_.size());
        // Parked dead slot with an expired deadline: the first dispatch
        // spawns it (lazy growth — no fork storm inside the lock).
        worker->not_before = Clock::now();
        free_.push_back(worker.get());
        workers_.push_back(std::move(worker));
        ++active;
      }
    } else if (n < active) {
      for (auto it = workers_.rbegin(); it != workers_.rend() && active > n;
           ++it) {
        Worker* worker = it->get();
        if (worker->retired) continue;
        worker->retired = true;
        --active;
        const auto free_it = std::find(free_.begin(), free_.end(), worker);
        if (free_it != free_.end()) {
          free_.erase(free_it);
          to_shutdown.push_back(worker);  // free now: shut down below
        }
        // Leased slots finish their in-flight trial; release() reaps them.
      }
    }
    options_.num_workers = n;
  }
  free_cv_.notify_all();
  for (Worker* worker : to_shutdown) shutdown_worker(*worker);
  Json event = Json::object();
  event.set("event", "pool_resize");
  event.set("num_workers", static_cast<std::int64_t>(n));
  trace(std::move(event));
}

std::size_t WorkerPool::num_workers() const {
  std::lock_guard<std::mutex> lock(free_mutex_);
  return options_.num_workers;
}

void WorkerPool::shutdown_worker(Worker& worker) {
  if (worker.socket.valid()) {
    write_frame(worker.socket.fd(), shutdown_message());
  }
  if (worker.pid >= 0) collect_exit(worker, /*force_kill=*/false);
  worker.socket.close();
}

void WorkerPool::shutdown_all() {
  for (auto& worker : workers_) {
    if (worker->socket.valid()) {
      write_frame(worker->socket.fd(), shutdown_message());
    }
  }
  for (auto& worker : workers_) {
    if (worker->pid >= 0) collect_exit(*worker, /*force_kill=*/false);
  }
}

}  // namespace tvmbo::distd
