#include "distd/worker.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "autotvm/autotvm.h"
#include "common/logging.h"
#include "distd/fault_kernels.h"
#include "distd/socket.h"
#include "kernels/polybench.h"
#include "runtime/cpu_device.h"

namespace tvmbo::distd {

namespace {

/// Task cache key: everything that determines the rebuilt task except the
/// tiles (which vary per trial).
std::string task_key(const MeasureRequest& request) {
  std::ostringstream key;
  key << request.workload.kernel << '|' << request.workload.size_name;
  for (std::int64_t d : request.workload.dims) key << ',' << d;
  key << '|' << runtime::exec_backend_name(request.backend) << '|'
      << request.jit.compiler << '|' << request.jit.flags << '|'
      << request.jit.cache_dir << '|' << request.jit.parallel_threads;
  return key.str();
}

runtime::MeasureInput build_input(const MeasureRequest& request) {
  if (is_fault_kernel(request.workload.kernel)) {
    return make_fault_input(request.workload, request.tiles);
  }
  static std::mutex cache_mutex;
  static std::map<std::string, autotvm::Task> task_cache;
  const std::string key = task_key(request);
  autotvm::Task* task = nullptr;
  {
    std::lock_guard<std::mutex> lock(cache_mutex);
    auto it = task_cache.find(key);
    if (it == task_cache.end()) {
      autotvm::Task built =
          request.backend == runtime::ExecBackend::kNative
              ? kernels::make_task(request.workload.kernel,
                                   request.workload.size_name,
                                   request.workload.dims,
                                   /*executable=*/true)
              : kernels::make_task(request.workload.kernel,
                                   request.workload.size_name,
                                   request.workload.dims, request.backend,
                                   request.jit);
      it = task_cache.emplace(key, std::move(built)).first;
    }
    task = &it->second;
  }
  TVMBO_CHECK(static_cast<bool>(task->instantiate))
      << "kernel '" << request.workload.kernel
      << "' has no executable instantiation for backend "
      << runtime::exec_backend_name(request.backend);
  return task->instantiate(request.tiles);
}

}  // namespace

MeasureReply handle_measure_request(const MeasureRequest& request) {
  MeasureReply reply;
  reply.trial = request.trial;
  try {
    const runtime::MeasureInput input = build_input(request);
    // Workers re-verify frames before compiling them: the request arrived
    // over a socket and nothing upstream is trusted to have screened it.
    // Fault kernels are exempt — they exist to exercise the crash paths,
    // and screening them here would blind the crash-isolation tests (the
    // runner-side prescreen is the layer that keeps armed configs from
    // being dispatched at all).
    if (!is_fault_kernel(request.workload.kernel) && input.static_check) {
      const std::string violation = input.static_check();
      if (!violation.empty()) {
        reply.result.valid = false;
        reply.result.error = "analysis reject: " + violation;
        return reply;
      }
    }
    runtime::CpuDevice device;
    reply.result = device.measure(input, request.option);
  } catch (const std::exception& e) {
    reply.result.valid = false;
    reply.result.error = e.what();
  } catch (...) {
    reply.result.valid = false;
    reply.result.error = "unknown worker measurement error";
  }
  return reply;
}

int serve_worker(const WorkerConfig& config) {
  Socket socket;
  try {
    socket = Socket::connect(config.endpoint);
  } catch (const std::exception& e) {
    TVMBO_LOG(Error) << "worker " << config.worker_id << ": " << e.what();
    return 1;
  }

  // All writes (hello, heartbeats, results) share one mutex so frames
  // from the heartbeat thread never interleave with a reply.
  std::mutex write_mutex;
  {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (write_frame(socket.fd(), hello_message(config.worker_id, getpid())) !=
        FrameStatus::kOk) {
      return 1;
    }
  }

  // Heartbeats are sent only while a trial is executing: they prove the
  // worker is alive-but-busy (vs. hung-and-killable), and an idle worker
  // staying quiet means an undrained socket buffer can never fill up and
  // block the writer.
  std::atomic<bool> busy{false};
  std::atomic<bool> stop{false};
  std::mutex stop_mutex;
  std::condition_variable stop_cv;
  std::thread heartbeat;
  if (config.heartbeat_ms > 0) {
    heartbeat = std::thread([&] {
      std::unique_lock<std::mutex> lock(stop_mutex);
      while (!stop.load()) {
        stop_cv.wait_for(lock,
                         std::chrono::milliseconds(config.heartbeat_ms));
        if (stop.load()) break;
        if (!busy.load()) continue;
        std::lock_guard<std::mutex> write_lock(write_mutex);
        write_frame(socket.fd(), heartbeat_message(config.worker_id));
      }
    });
  }

  int exit_code = 0;
  for (;;) {
    Json message;
    const FrameStatus status =
        read_frame(socket.fd(), &message, /*timeout_ms=*/-1);
    if (status == FrameStatus::kClosed) break;  // pool went away: done
    if (status != FrameStatus::kOk) {
      exit_code = 1;
      break;
    }
    const std::string type = frame_type(message);
    if (type == "shutdown") break;
    if (type != "measure") continue;  // unknown frames are ignored
    busy.store(true);
    MeasureReply reply;
    try {
      reply = handle_measure_request(MeasureRequest::from_json(message));
    } catch (const std::exception& e) {
      // A malformed request still gets a reply so the pool's dispatch
      // doesn't hang waiting for one.
      reply.result.valid = false;
      reply.result.error = std::string("malformed measure request: ") +
                           e.what();
    }
    busy.store(false);
    std::lock_guard<std::mutex> lock(write_mutex);
    if (write_frame(socket.fd(), reply.to_json()) != FrameStatus::kOk) {
      exit_code = 1;
      break;
    }
  }

  if (heartbeat.joinable()) {
    {
      std::lock_guard<std::mutex> lock(stop_mutex);
      stop.store(true);
    }
    stop_cv.notify_all();
    heartbeat.join();
  }
  return exit_code;
}

}  // namespace tvmbo::distd
