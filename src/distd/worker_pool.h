// WorkerPool: fleet manager for out-of-process measurement workers.
//
// The pool spawns N copies of the tvmbo_worker binary, each of which
// connects back over the configured transport (Unix-domain socket by
// default, loopback TCP optionally) and serves length-prefixed JSON
// measure requests (protocol.h). measure() is thread-safe and blocking:
// MeasureRunner's parallel batch path calls it from up to N threads at
// once, each call exclusively owning one worker for the duration of its
// trial.
//
// Fault containment — the whole point of leaving the process:
//  * crash detection: a worker that dies mid-trial (SIGSEGV, abort,
//    nonzero exit) is detected by EOF on its socket; the trial comes back
//    as an invalid MeasureResult whose error names the signal/status, the
//    worker is respawned, and the tuner never sees the signal;
//  * hard wall-clock timeouts: when the trial has a timeout budget, a
//    worker that exceeds the derived hard deadline is SIGKILLed and the
//    trial reports "timeout (hard kill ...)" — this preempts a single
//    runaway run, which CpuDevice's cooperative between-runs check cannot;
//  * respawn backoff: consecutive failures of one worker slot back off
//    exponentially (100 ms doubling, capped) so a persistently crashing
//    environment cannot fork-bomb the host. The backoff never sleeps on
//    the dispatching thread: the slot is parked with a not-before
//    deadline and skipped by acquire() until the deadline passes (other
//    live workers keep serving trials; the spawn is retried on the
//    slot's next dispatch);
//  * lifecycle tracing: worker_spawn / worker_dispatch / worker_heartbeat
//    / worker_kill / worker_respawn / worker_exit events go through the
//    same TraceLog as the per-trial measurement events.
//
// Workers inherit the tuner's environment with sanitizer signal
// interception disabled (handle_segv=0 etc.) so intentional and genuine
// crash signals alike surface as real signals the pool can attribute.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "distd/protocol.h"
#include "distd/socket.h"
#include "runtime/trace_log.h"

namespace tvmbo::distd {

struct WorkerPoolOptions {
  std::size_t num_workers = 2;
  /// Worker executable. Empty resolves, in order: $TVMBO_WORKER_BIN, a
  /// tvmbo_worker next to the current executable, ../tools/tvmbo_worker
  /// relative to it, then a $PATH lookup.
  std::string worker_binary;
  /// "unix" (default) or "tcp" (loopback; the stepping stone to remote
  /// workers — the worker binary already accepts tcp endpoints).
  std::string transport = "unix";
  /// How long to wait for a freshly spawned worker to connect + hello.
  double spawn_timeout_s = 20.0;
  /// Explicit per-trial wall-clock cap enforced by SIGKILL (0 derives
  /// one from the trial's MeasureOption: timeout_s * (warmup + repeat +
  /// 1) + hard_timeout_grace_s, or no cap when the trial has no timeout).
  double hard_timeout_s = 0.0;
  /// Slack added to the derived hard deadline (covers compile time).
  double hard_timeout_grace_s = 10.0;
  /// Worker heartbeat interval while measuring (0 disables).
  int heartbeat_ms = 1000;
  /// Cap for the exponential respawn backoff.
  int max_respawn_backoff_ms = 2000;
  /// Lifecycle event log (not owned; may be null; must outlive the pool).
  runtime::TraceLog* trace = nullptr;
};

/// Resolves the worker binary path per WorkerPoolOptions::worker_binary.
std::string resolve_worker_binary(const std::string& configured);

class WorkerPool {
  struct Worker;

 public:
  /// Exclusive ownership of one worker slot between try_acquire() and
  /// release(): the holder may run any number of trials on it via
  /// measure_leased() before giving it back. Leases let an external
  /// scheduler (tvmbo_serve) do its own slot accounting — decide *which*
  /// job gets a freed slot — instead of the pool's FIFO measure() path.
  struct Lease {
    int worker_id = -1;

   private:
    friend class WorkerPool;
    Worker* worker = nullptr;
  };

  /// Spawns the full fleet eagerly; throws CheckError when the worker
  /// binary cannot be started (bad path, no connect within the timeout).
  explicit WorkerPool(WorkerPoolOptions options);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Dispatches one trial to a free worker (blocking until one is free
  /// and the trial completes, crashes, or hits the hard deadline). Never
  /// throws for per-trial failures; `request.trial` is overwritten with
  /// the pool's dispatch id.
  runtime::MeasureResult measure(MeasureRequest request);

  /// Non-blocking acquire: a lease on a free slot (live, or dead with an
  /// expired backoff — the next measure_leased() retries its spawn), or
  /// nullopt when every slot is busy/cooling/retired. Every lease must be
  /// release()d.
  std::optional<Lease> try_acquire();

  /// Runs one trial on a leased slot. Same fault containment as
  /// measure(): never throws for per-trial failures, crashes/timeouts
  /// come back as invalid results and the slot respawns under the same
  /// lease. `request.trial` is overwritten with the pool's dispatch id.
  runtime::MeasureResult measure_leased(Lease& lease, MeasureRequest request);

  /// Returns a leased slot to the free list (or shuts it down, if the
  /// slot was retired by a concurrent resize()).
  void release(Lease lease);

  /// SIGKILLs the process currently filling a leased slot (caller holds a
  /// *different* thread's lease — e.g. the serve scheduler cancelling a
  /// job whose trial is mid-flight). The dispatching thread sees EOF,
  /// reports an invalid "worker crashed" result, and respawns the slot —
  /// the ticket is never stranded. Safe against concurrent respawn: the
  /// pid read and the kill happen under the pool's pid lock.
  void kill_leased(const Lease& lease);

  /// Elastically resizes the fleet to `n` active slots (n >= 1). Growth
  /// adds parked slots that spawn lazily on first dispatch; shrinking
  /// retires the highest-numbered slots — free ones shut down now, leased
  /// ones when released. In-flight trials (and wait_any() tickets riding
  /// on them) are never abandoned.
  void resize(std::size_t n);

  std::size_t num_workers() const;
  const std::string& endpoint() const { return listener_.endpoint(); }

  /// Fleet statistics (monotonic over the pool's lifetime).
  std::size_t total_spawns() const { return spawns_.load(); }
  std::size_t total_kills() const { return kills_.load(); }
  std::size_t total_crashes() const { return crashes_.load(); }

 private:
  struct Worker {
    int id = 0;
    pid_t pid = -1;
    int generation = 0;  ///< how many processes have filled this slot
    Socket socket;
    int consecutive_failures = 0;
    /// Respawn-backoff deadline: while in the future the slot is parked
    /// (no process, skipped by acquire()). Written while the slot is
    /// exclusively owned; read under free_mutex_ once it is released.
    std::chrono::steady_clock::time_point not_before{};
    /// Set by resize() shrinking the fleet: the slot serves out any
    /// in-flight trial, then shuts down instead of returning to free_.
    /// Guarded by free_mutex_.
    bool retired = false;
    /// Currently held by an acquire()/try_acquire() caller. Lets a
    /// growing resize() tell a shut-down idle slot (must be re-queued
    /// on free_) from a leased one (its release() re-queues it).
    /// Guarded by free_mutex_.
    bool leased = false;
  };

  void spawn(Worker& worker);  ///< fork/exec + wait for matching hello
  runtime::MeasureResult measure_on(Worker& worker,
                                    const MeasureRequest& request);
  /// SIGKILL-or-reap the worker's process and return its wait status
  /// description (e.g. "signal 11 (Segmentation fault)").
  std::string collect_exit(Worker& worker, bool force_kill);
  void respawn_after_failure(Worker& worker);
  /// Exponential backoff for the slot's current failure count (0 for the
  /// first failure).
  int backoff_ms_for(const Worker& worker) const;
  /// Spawn retry for a parked slot whose backoff deadline has passed.
  void retry_spawn(Worker& worker);
  Worker* acquire();
  void release(Worker* worker);
  /// Sends shutdown + reaps one worker (used by release() on retired
  /// slots and by resize() on free retired slots).
  void shutdown_worker(Worker& worker);
  void shutdown_all();
  double hard_deadline_s(const runtime::MeasureOption& option) const;
  void trace(Json event);
  Json worker_event(const char* name, const Worker& worker) const;

  WorkerPoolOptions options_;
  std::string binary_;
  std::string socket_dir_;  ///< temp dir holding the unix socket
  ListenSocket listener_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Worker*> free_;
  mutable std::mutex free_mutex_;
  std::condition_variable free_cv_;
  std::mutex spawn_mutex_;
  /// Serializes worker.pid transitions (spawn / collect_exit) against
  /// kill_leased() so a cancel can never SIGKILL a recycled pid.
  std::mutex pid_mutex_;
  std::atomic<std::uint64_t> next_trial_{0};
  std::atomic<std::size_t> spawns_{0};
  std::atomic<std::size_t> kills_{0};
  std::atomic<std::size_t> crashes_{0};
};

}  // namespace tvmbo::distd
