#include "distd/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace tvmbo::distd {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw CheckError(what + ": " + std::strerror(errno));
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  TVMBO_CHECK_LT(path.size(), sizeof(addr.sun_path))
      << "unix socket path too long: " << path;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect(const std::string& endpoint) {
  if (starts_with(endpoint, "unix:")) {
    const std::string path = endpoint.substr(5);
    const sockaddr_un addr = make_unix_addr(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      throw_errno("connect to " + endpoint);
    }
    return Socket(fd);
  }
  if (starts_with(endpoint, "tcp:")) {
    const std::vector<std::string> parts = split(endpoint, ':');
    TVMBO_CHECK_EQ(parts.size(), 3u)
        << "tcp endpoint must be tcp:<ipv4>:<port>, got " << endpoint;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    TVMBO_CHECK_EQ(inet_pton(AF_INET, parts[1].c_str(), &addr.sin_addr), 1)
        << "not a numeric IPv4 address: " << parts[1];
    addr.sin_port = htons(static_cast<std::uint16_t>(std::stoi(parts[2])));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      throw_errno("connect to " + endpoint);
    }
    return Socket(fd);
  }
  throw CheckError("unknown endpoint transport (want unix:/tcp:): " +
                   endpoint);
}

ListenSocket::~ListenSocket() {
  if (fd_ >= 0) ::close(fd_);
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), endpoint_(std::move(other.endpoint_)),
      unlink_path_(std::move(other.unlink_path_)) {
  other.fd_ = -1;
  other.unlink_path_.clear();
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    unlink_path_ = std::move(other.unlink_path_);
    other.fd_ = -1;
    other.unlink_path_.clear();
  }
  return *this;
}

ListenSocket ListenSocket::unix_domain(const std::string& path) {
  const sockaddr_un addr = make_unix_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("bind " + path);
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    throw_errno("listen " + path);
  }
  ListenSocket out;
  out.fd_ = fd;
  out.endpoint_ = "unix:" + path;
  out.unlink_path_ = path;
  return out;
}

ListenSocket ListenSocket::tcp_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  ListenSocket out;
  out.fd_ = fd;
  out.endpoint_ = "tcp:127.0.0.1:" + std::to_string(ntohs(addr.sin_port));
  return out;
}

std::optional<Socket> ListenSocket::accept(int timeout_ms) {
  TVMBO_CHECK(valid()) << "accept on a closed listen socket";
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) return std::nullopt;
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll on listen socket");
    }
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept");
    }
    return Socket(fd);
  }
}

}  // namespace tvmbo::distd
