// ProcDevice: a runtime::Device that executes every trial in an
// out-of-process measurement worker (worker_pool.h) instead of the tuner
// process. This is the `--runner proc` half of the local/process runner
// split — the analogue of TVM's LocalRunner vs RPCRunner.
//
// It plugs in *behind* the existing MeasureRunner batch interface: the
// session/measure-loop code is unchanged, and because the device reports
// max_concurrent_measurements() == the fleet size, MeasureRunner's
// parallel mode dispatches up to one in-flight trial per worker while
// keeping results keyed by submission index. Crashes and hard timeouts
// come back as ordinary invalid MeasureResults, so the retry policy (with
// natural worker reassignment — a retry grabs whichever worker is free)
// and the trace pipeline apply as-is.
//
// Serialization: the MeasureInput's prepare/run closures never cross the
// process boundary. The device ships (workload, tiles, backend, JIT
// options, measure option, seed) and the worker rebuilds the executable
// via kernels::make_task — which is why the backend/JIT configuration is
// fixed at device construction. The JIT artifact-cache directory is
// resolved eagerly so every worker compiles into the same shared
// content-addressed cache (per-key single compile + atomic rename make
// cross-process sharing safe).
#pragma once

#include <cstdint>

#include "codegen/artifact_cache.h"
#include "distd/worker_pool.h"
#include "runtime/exec_backend.h"
#include "runtime/measure.h"

namespace tvmbo::distd {

struct ProcDeviceOptions {
  /// Execution tier the workers run trials with.
  runtime::ExecBackend backend = runtime::ExecBackend::kNative;
  /// Compiler/flags/cache directory forwarded to every worker (kJit).
  codegen::JitOptions jit;
  /// Session seed forwarded in every request (provenance).
  std::uint64_t seed = 0;
  WorkerPoolOptions pool;
};

class ProcDevice final : public runtime::Device {
 public:
  /// Spawns the worker fleet eagerly; throws CheckError when the worker
  /// binary cannot be started.
  explicit ProcDevice(ProcDeviceOptions options);

  std::string name() const override { return "proc"; }

  /// Serializes the trial to a free worker and blocks for its reply (or
  /// the crash/hard-timeout verdict). Thread-safe up to the fleet size.
  runtime::MeasureResult measure(const runtime::MeasureInput& input,
                                 const runtime::MeasureOption& option)
      override;

  /// One in-flight trial per worker.
  std::size_t max_concurrent_measurements() const override {
    return pool_.num_workers();
  }

  WorkerPool& pool() { return pool_; }

 private:
  ProcDeviceOptions options_;
  WorkerPool pool_;
};

}  // namespace tvmbo::distd
