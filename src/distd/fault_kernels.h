// Hostile test kernels for crash/timeout isolation: measurable inputs
// whose run() misbehaves — segfaults, aborts, spins forever, or exits —
// under one specific configuration, and completes a tiny deterministic
// workload under every other.
//
// These exist to prove the out-of-process runner's contract: a SIGSEGV or
// an unbounded single run inside a *worker* must come back as one invalid
// MeasureResult while the tuner process (and the rest of the batch)
// survives. They are only safe to execute behind ProcDevice — run in
// process they take the whole session down, which is exactly the gap the
// distd subsystem closes (CpuDevice's cooperative timeout only checks
// *between* runs and nothing catches signals).
//
// Naming: "fault.segv" | "fault.abort" | "fault.spin" | "fault.exit".
// The fault triggers when tiles[0] == kFaultTrigger; any other leading
// tile is benign, so one batch can mix healthy and hostile configurations
// of the same kernel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/measure.h"

namespace tvmbo::distd {

/// The tiles[0] value that arms the fault.
inline constexpr std::int64_t kFaultTrigger = 13;

/// True for the "fault.*" kernel names above.
bool is_fault_kernel(const std::string& kernel);

/// Workload descriptor for a fault kernel (dims are unused but kept for
/// Workload::id() stability).
runtime::Workload make_fault_workload(const std::string& kernel);

/// Builds the measurable input. Throws CheckError for an unknown fault
/// kernel name or an empty tile vector.
runtime::MeasureInput make_fault_input(const runtime::Workload& workload,
                                       std::vector<std::int64_t> tiles);

}  // namespace tvmbo::distd
