#include "distd/protocol.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"

namespace tvmbo::distd {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline` (>= 0), or -1 for "no deadline".
int remaining_ms(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// Reads exactly `size` bytes, honoring the deadline between chunks.
FrameStatus read_exact(int fd, void* data, std::size_t size,
                       bool has_deadline, Clock::time_point deadline) {
  auto* out = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < size) {
    pollfd pfd{fd, POLLIN, 0};
    const int wait = remaining_ms(has_deadline, deadline);
    if (has_deadline && wait == 0) return FrameStatus::kTimeout;
    const int rc = ::poll(&pfd, 1, wait);
    if (rc == 0) return FrameStatus::kTimeout;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return FrameStatus::kError;
    }
    const ssize_t n = ::recv(fd, out + done, size - done, 0);
    if (n == 0) return FrameStatus::kClosed;
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno == ECONNRESET ? FrameStatus::kClosed
                                 : FrameStatus::kError;
    }
    done += static_cast<std::size_t>(n);
  }
  return FrameStatus::kOk;
}

FrameStatus write_exact(int fd, const void* data, std::size_t size) {
  const auto* in = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, in + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return (errno == EPIPE || errno == ECONNRESET) ? FrameStatus::kClosed
                                                     : FrameStatus::kError;
    }
    done += static_cast<std::size_t>(n);
  }
  return FrameStatus::kOk;
}

}  // namespace

FrameStatus write_frame(int fd, const Json& message) {
  const std::string payload = message.dump();
  if (payload.size() > kMaxFrameBytes) return FrameStatus::kError;
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>(size >> 24),
      static_cast<unsigned char>(size >> 16),
      static_cast<unsigned char>(size >> 8),
      static_cast<unsigned char>(size),
  };
  const FrameStatus head = write_exact(fd, prefix, sizeof(prefix));
  if (head != FrameStatus::kOk) return head;
  return write_exact(fd, payload.data(), payload.size());
}

const char* frame_status_name(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kTimeout: return "timeout";
    case FrameStatus::kClosed: return "closed";
    case FrameStatus::kError: return "error";
    case FrameStatus::kTooLarge: return "frame_too_large";
    case FrameStatus::kMalformed: return "malformed_frame";
  }
  return "?";
}

FrameStatus read_frame(int fd, Json* message, int timeout_ms,
                       std::uint32_t max_bytes) {
  const bool has_deadline = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
  unsigned char prefix[4];
  FrameStatus status =
      read_exact(fd, prefix, sizeof(prefix), has_deadline, deadline);
  if (status != FrameStatus::kOk) return status;
  const std::uint32_t size = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                             (static_cast<std::uint32_t>(prefix[1]) << 16) |
                             (static_cast<std::uint32_t>(prefix[2]) << 8) |
                             static_cast<std::uint32_t>(prefix[3]);
  if (size > max_bytes || size > kMaxFrameBytes) {
    return FrameStatus::kTooLarge;  // reject before allocating `size` bytes
  }
  std::string payload(size, '\0');
  status = read_exact(fd, payload.data(), size, has_deadline, deadline);
  if (status != FrameStatus::kOk) return status;
  try {
    *message = Json::parse(payload);
  } catch (const JsonParseError&) {
    return FrameStatus::kMalformed;
  }
  return FrameStatus::kOk;
}

std::string frame_type(const Json& message) {
  if (!message.is_object() || !message.contains("type")) return "";
  const Json& type = message.at("type");
  return type.is_string() ? type.as_string() : "";
}

Json MeasureRequest::to_json() const {
  Json w = Json::object();
  w.set("kernel", workload.kernel);
  w.set("size", workload.size_name);
  Json dims = Json::array();
  for (std::int64_t d : workload.dims) dims.push_back(d);
  w.set("dims", std::move(dims));
  w.set("flops", workload.flops);

  Json j = Json::object();
  j.set("compiler", jit.compiler);
  j.set("flags", jit.flags);
  j.set("cache_dir", jit.cache_dir);
  j.set("parallel_threads", jit.parallel_threads);

  Json o = Json::object();
  o.set("repeat", option.repeat);
  o.set("warmup", option.warmup);
  o.set("timeout_s", option.timeout_s);

  Json tiles_json = Json::array();
  for (std::int64_t t : tiles) tiles_json.push_back(t);

  Json out = Json::object();
  out.set("type", "measure");
  out.set("trial", trial);
  out.set("workload", std::move(w));
  out.set("tiles", std::move(tiles_json));
  out.set("backend", runtime::exec_backend_name(backend));
  out.set("jit", std::move(j));
  out.set("option", std::move(o));
  out.set("seed", seed);
  return out;
}

MeasureRequest MeasureRequest::from_json(const Json& json) {
  MeasureRequest request;
  request.trial = static_cast<std::uint64_t>(json.at("trial").as_int());
  const Json& w = json.at("workload");
  request.workload.kernel = w.at("kernel").as_string();
  request.workload.size_name = w.at("size").as_string();
  for (const Json& d : w.at("dims").as_array()) {
    request.workload.dims.push_back(d.as_int());
  }
  request.workload.flops = w.at("flops").as_double();
  for (const Json& t : json.at("tiles").as_array()) {
    request.tiles.push_back(t.as_int());
  }
  const auto backend =
      runtime::exec_backend_from_name(json.at("backend").as_string());
  TVMBO_CHECK(backend.has_value())
      << "unknown backend in measure request: "
      << json.at("backend").as_string();
  request.backend = *backend;
  const Json& j = json.at("jit");
  request.jit.compiler = j.at("compiler").as_string();
  request.jit.flags = j.at("flags").as_string();
  request.jit.cache_dir = j.at("cache_dir").as_string();
  request.jit.parallel_threads =
      static_cast<int>(j.at("parallel_threads").as_int());
  const Json& o = json.at("option");
  request.option.repeat = static_cast<int>(o.at("repeat").as_int());
  request.option.warmup = static_cast<int>(o.at("warmup").as_int());
  request.option.timeout_s = o.at("timeout_s").as_double();
  request.seed = static_cast<std::uint64_t>(json.at("seed").as_int());
  return request;
}

Json MeasureReply::to_json() const {
  Json out = Json::object();
  out.set("type", "result");
  out.set("trial", trial);
  out.set("runtime_s", result.runtime_s);
  out.set("compile_s", result.compile_s);
  out.set("energy_j", result.energy_j);
  out.set("valid", result.valid);
  out.set("error", result.error);
  return out;
}

MeasureReply MeasureReply::from_json(const Json& json) {
  MeasureReply reply;
  reply.trial = static_cast<std::uint64_t>(json.at("trial").as_int());
  reply.result.runtime_s = json.at("runtime_s").as_double();
  reply.result.compile_s = json.at("compile_s").as_double();
  reply.result.energy_j = json.at("energy_j").as_double();
  reply.result.valid = json.at("valid").as_bool();
  reply.result.error = json.at("error").as_string();
  return reply;
}

Json hello_message(int worker, int pid) {
  Json out = Json::object();
  out.set("type", "hello");
  out.set("worker", worker);
  out.set("pid", pid);
  return out;
}

Json heartbeat_message(int worker) {
  Json out = Json::object();
  out.set("type", "heartbeat");
  out.set("worker", worker);
  return out;
}

Json shutdown_message() {
  Json out = Json::object();
  out.set("type", "shutdown");
  return out;
}

}  // namespace tvmbo::distd
