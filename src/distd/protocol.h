// Wire protocol between the tuner's WorkerPool and out-of-process
// measurement workers.
//
// Framing: every message is one length-prefixed JSON object — a 4-byte
// big-endian payload length followed by the UTF-8 serialization. JSON
// keeps the protocol debuggable (a frame dump is readable as-is) and
// reuses the repo's dependency-free parser; the length prefix makes
// message boundaries explicit so a half-written frame from a killed
// worker is detected instead of silently mis-parsed.
//
// Message types ("type" member):
//   hello      worker -> pool   after connecting: {worker, pid}
//   measure    pool  -> worker  a MeasureRequest (one trial)
//   heartbeat  worker -> pool   liveness while a trial is executing
//   result     worker -> pool   the MeasureReply for the current trial
//   shutdown   pool  -> worker  drain and exit cleanly
//
// A MeasureRequest carries everything a worker needs to *reconstruct* the
// trial from scratch — kernel id, dataset dims, tile/annotation vector,
// execution backend, JIT options (incl. the shared artifact-cache
// directory), measure option, seed — because std::function closures in
// MeasureInput cannot cross a process boundary. The worker rebuilds the
// task via kernels::make_task and measures with its own CpuDevice.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/artifact_cache.h"
#include "common/json.h"
#include "runtime/exec_backend.h"
#include "runtime/measure.h"

namespace tvmbo::distd {

/// Upper bound on one frame's payload; larger prefixes are treated as a
/// protocol error (a desynchronized or hostile peer).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

enum class FrameStatus {
  kOk,        ///< a complete frame was transferred
  kTimeout,   ///< the deadline expired mid-wait
  kClosed,    ///< the peer closed the connection (EOF)
  kError,     ///< socket error
  kTooLarge,  ///< length prefix exceeds the caller's frame-size limit
  kMalformed, ///< payload arrived but is not a parseable JSON document
};

/// Human-readable name of a FrameStatus (for logs and error frames).
const char* frame_status_name(FrameStatus status);

/// Writes one frame (blocking; EPIPE comes back as kClosed, never
/// SIGPIPE).
FrameStatus write_frame(int fd, const Json& message);

/// Reads one frame, waiting at most `timeout_ms` (-1 = forever) for the
/// *whole* frame. On kOk, `*message` holds the parsed object.
///
/// `max_bytes` caps the accepted payload size; a larger length prefix
/// returns kTooLarge *before* any allocation, so a hostile or
/// desynchronized peer cannot make the server reserve gigabytes. After
/// kTooLarge or kMalformed the stream position is inside/past the bad
/// frame — the connection cannot be re-synchronized and must be closed
/// (servers should first send a typed error frame; see serve/protocol).
FrameStatus read_frame(int fd, Json* message, int timeout_ms,
                       std::uint32_t max_bytes = kMaxFrameBytes);

/// "type" member of a parsed frame ("" when absent/not an object).
std::string frame_type(const Json& message);

/// One serialized trial: everything needed to rebuild and measure a
/// configured kernel in another process.
struct MeasureRequest {
  std::uint64_t trial = 0;  ///< pool-assigned dispatch id (trace key)
  runtime::Workload workload;
  std::vector<std::int64_t> tiles;  ///< incl. trailing parallel knobs
  runtime::ExecBackend backend = runtime::ExecBackend::kNative;
  codegen::JitOptions jit;  ///< compiler/flags/cache dir shared with pool
  runtime::MeasureOption option;
  std::uint64_t seed = 0;  ///< session seed (forwarded for provenance)

  Json to_json() const;
  static MeasureRequest from_json(const Json& json);
};

/// The worker's answer to one MeasureRequest.
struct MeasureReply {
  std::uint64_t trial = 0;
  runtime::MeasureResult result;

  Json to_json() const;
  static MeasureReply from_json(const Json& json);
};

Json hello_message(int worker, int pid);
Json heartbeat_message(int worker);
Json shutdown_message();

}  // namespace tvmbo::distd
